package resistecc

import (
	"errors"

	"resistecc/internal/graph"
	"resistecc/internal/sketch"
)

// Sentinel errors of the public API. All constructors, index queries, plan
// application and DynamicIndex mutations wrap one of these, so callers can
// branch with errors.Is regardless of which layer produced the failure:
//
//	if errors.Is(err, resistecc.ErrDisconnected) { ... }
//
// The sentinels alias the internal ones, so errors returned by deeper layers
// (graph mutation, sketch construction, the lifecycle manager) match without
// re-wrapping. Identity comparisons (err == ErrDisconnected) are not part of
// the contract — any layer may wrap with %w — and the erridentity analyzer
// (internal/analysis/erridentity) rejects them everywhere but a sentinel's
// own defining package.
var (
	// ErrDisconnected reports an operation that requires a connected graph:
	// effective resistance is infinite across components, so indexes refuse
	// disconnected inputs and DynamicIndex refuses bridge removals.
	ErrDisconnected = graph.ErrDisconnected

	// ErrNodeOutOfRange reports a node id outside [0, n).
	ErrNodeOutOfRange = graph.ErrNodeRange

	// ErrDuplicateEdge reports an AddEdge of an edge already present.
	ErrDuplicateEdge = graph.ErrDuplicateEdge

	// ErrEdgeNotFound reports a RemoveEdge of an edge not present.
	ErrEdgeNotFound = graph.ErrEdgeNotFound

	// ErrSelfLoop reports an edge (v, v).
	ErrSelfLoop = graph.ErrSelfLoop

	// ErrBadEpsilon reports an approximation target ε outside (0,1).
	// Approximate constructors require an explicit epsilon (WithEpsilon or
	// SketchOptions.Epsilon); a zero value is an error, not a default.
	ErrBadEpsilon = sketch.ErrBadEpsilon

	// ErrDegenerateHull reports a hull boundary too small for a boundary-pair
	// scan: ResistanceDiameter needs at least two boundary nodes.
	ErrDegenerateHull = errors.New("resistecc: hull boundary has fewer than two nodes")
)

package resistecc

import (
	"context"
	"math"
	"testing"
)

func TestAlgebraicConnectivityPublic(t *testing.T) {
	g := CompleteGraph(8)
	l2, err := g.AlgebraicConnectivity(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-8) > 1e-4 {
		t.Fatalf("λ₂(K8)=%g", l2)
	}
	lmax, err := g.LaplacianSpectralRadius(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lmax-8) > 1e-4 {
		t.Fatalf("λmax(K8)=%g", lmax)
	}
	// The 2/λ₂ bound holds against the exact eccentricities.
	ba, err := BarabasiAlbert(100, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	l2, err = ba.AlgebraicConnectivity(2)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewExactIndex(context.Background(), ba)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range idx.Distribution() {
		if c > 2/l2+1e-6 {
			t.Fatalf("c=%g exceeds 2/λ₂=%g", c, 2/l2)
		}
	}
	fv, err := ba.FiedlerVector(1)
	if err != nil || len(fv) != 100 {
		t.Fatal("fiedler vector")
	}
}

func TestUSTPublic(t *testing.T) {
	g := CycleGraph(12)
	parent, err := g.UniformSpanningTree(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if parent[0] != -1 {
		t.Fatal("root parent")
	}
	edges := 0
	for v := 1; v < 12; v++ {
		if parent[v] < 0 || !g.HasEdge(v, parent[v]) {
			t.Fatalf("bad parent of %d: %d", v, parent[v])
		}
		edges++
	}
	if edges != 11 {
		t.Fatalf("tree edges %d", edges)
	}
	// Spanning-edge centrality of a cycle edge is (n−1)/n.
	sec, err := g.SpanningEdgeCentrality(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 11.0 / 12
	for i, r := range sec {
		if math.Abs(r-want) > 0.05 {
			t.Fatalf("edge %d centrality %g, want %g", i, r, want)
		}
	}
	count, err := g.CountSpanningTrees()
	if err != nil || math.Abs(count-12) > 1e-9 {
		t.Fatalf("τ(C12)=%g err %v", count, err)
	}
}

func TestSparsifyPublic(t *testing.T) {
	g := CompleteGraph(60)
	sp, err := g.Sparsify(context.Background(), SparsifyOptions{Epsilon: 0.5, Samples: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.EdgeCount >= g.M() {
		t.Fatalf("no reduction: %d of %d", sp.EdgeCount, g.M())
	}
	if sp.Samples != 3000 {
		t.Fatal("samples")
	}
	edges, ws := sp.WeightedEdges()
	if len(edges) != sp.EdgeCount || len(ws) != sp.EdgeCount {
		t.Fatal("edge export")
	}
	// r(u,v) in K60 is 2/60; the sparsifier must be in the right ballpark.
	r, err := sp.Resistance(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 60
	if r < want/2 || r > want*2 {
		t.Fatalf("sparsified r=%g, want ≈%g", r, want)
	}
	if _, err := g.Sparsify(context.Background(), SparsifyOptions{Epsilon: 2}); err == nil {
		t.Fatal("bad epsilon")
	}
}

func TestHittingPublic(t *testing.T) {
	g := PathGraph(6)
	h, err := g.HittingTimes(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[0]-25) > 1e-6 { // (n−1)² on a path
		t.Fatalf("H(0,5)=%g, want 25", h[0])
	}
	if h[5] != 0 {
		t.Fatal("target hitting time must be 0")
	}
	single, err := g.HittingTime(2, 5)
	if err != nil || math.Abs(single-h[2]) > 1e-9 {
		t.Fatalf("HittingTime %g vs column %g", single, h[2])
	}
	// Commute identity against the exact index.
	idx, err := NewExactIndex(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := g.HittingTime(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * float64(g.M()) * idx.Resistance(2, 5)
	if math.Abs(single+rev-want) > 1e-6 {
		t.Fatalf("commute identity: %g vs %g", single+rev, want)
	}
}

func TestCentralityPublic(t *testing.T) {
	g := StarGraph(7)
	cl := g.Closeness()
	if cl[0] != 1 {
		t.Fatalf("hub closeness %g", cl[0])
	}
	ha := g.Harmonic()
	if ha[0] != 6 {
		t.Fatalf("hub harmonic %g", ha[0])
	}
	cf, err := g.CurrentFlowCloseness()
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopCentral(cf, 1)
	if err != nil || top[0] != 0 {
		t.Fatalf("top central %v err %v", top, err)
	}
	// Sketch-based CF from both index kinds tracks the exact one.
	ba, err := ScaleFreeMixed(200, 1, 5, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	exactCF, err := ba.CurrentFlowCloseness()
	if err != nil {
		t.Fatal(err)
	}
	ap, err := NewApproxIndex(context.Background(), ba, WithEpsilon(0.3), WithDim(192), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	fi, err := NewFastIndex(context.Background(), ba, WithEpsilon(0.3), WithDim(192), WithSeed(2), WithMaxHullVertices(32))
	if err != nil {
		t.Fatal(err)
	}
	for _, approx := range [][]float64{ap.CurrentFlowCloseness(), fi.CurrentFlowCloseness()} {
		for v := range exactCF {
			if rel := math.Abs(approx[v]-exactCF[v]) / exactCF[v]; rel > 0.2 {
				t.Fatalf("node %d: CF %g vs %g", v, approx[v], exactCF[v])
			}
		}
	}
	// Fast diameter is close to the distribution maximum.
	diam, pair, err := fi.ResistanceDiameter()
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(fi.Distribution())
	if diam < 0.7*sum.Diameter || diam > 1.3*sum.Diameter {
		t.Fatalf("hull diameter %g vs %g (pair %v)", diam, sum.Diameter, pair)
	}
}

func TestSpreadPublic(t *testing.T) {
	g := StarGraph(12)
	hub, err := g.SimulateSpread(0, SpreadOptions{Beta: 1, Runs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hub.MeanSaturation != 1 || hub.Coverage != 1 {
		t.Fatalf("hub spread %+v", hub)
	}
	leaf, err := g.SimulateSpread(3, SpreadOptions{Beta: 1, Runs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if leaf.MeanSaturation != 2 {
		t.Fatalf("leaf spread %+v", leaf)
	}
	sats, err := g.SpreadSaturationTimes([]int{0, 3}, SpreadOptions{Beta: 1, Runs: 4, Seed: 1})
	if err != nil || len(sats) != 2 || sats[0] >= sats[1] {
		t.Fatalf("saturation times %v err %v", sats, err)
	}
	if _, err := g.SimulateSpread(99, SpreadOptions{}); err == nil {
		t.Fatal("bad seed")
	}
	rho, err := Spearman([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("spearman %g err %v", rho, err)
	}
	rp, err := Pearson([]float64{1, 2, 3}, []float64{6, 5, 4})
	if err != nil || math.Abs(rp+1) > 1e-12 {
		t.Fatalf("pearson %g err %v", rp, err)
	}
}

package resistecc

import (
	"context"
	"fmt"

	"resistecc/internal/trace"
)

// indexExecutor replays trace records directly against a DynamicIndex,
// translating the trace's external node ids through the same label mapping
// the recording server used so digests come out bit-identical.
type indexExecutor struct {
	d          *DynamicIndex
	toExternal []int64
	toInternal map[int64]int
}

// TraceExecutor adapts a DynamicIndex into a trace replay target.
// toExternal maps internal node index i to its external (edge-list label)
// id, exactly as the serving layer's id map does; queries, mutations and
// digests all pass through it. The executor serializes operations the way
// the replayer issues them — it adds no locking of its own.
func TraceExecutor(d *DynamicIndex, toExternal []int64) trace.Executor {
	inv := make(map[int64]int, len(toExternal))
	for i, ext := range toExternal {
		inv[ext] = i
	}
	return &indexExecutor{d: d, toExternal: toExternal, toInternal: inv}
}

func (e *indexExecutor) resolve(ext int64) (int, error) {
	i, ok := e.toInternal[ext]
	if !ok {
		return 0, fmt.Errorf("resistecc: trace references unknown node %d", ext)
	}
	return i, nil
}

func (e *indexExecutor) Do(ctx context.Context, rec trace.Record) (trace.OpResult, error) {
	switch rec.Op {
	case trace.OpQuery, trace.OpBatchQuery:
		return e.query(rec.Args)
	case trace.OpAddEdge, trace.OpRemoveEdge:
		return e.mutate(ctx, rec)
	case trace.OpRebuild:
		gen, err := e.d.RebuildAndWait(ctx)
		if err != nil {
			return trace.OpResult{}, err
		}
		return trace.OpResult{Gen: gen, Digest: trace.DigestGen(gen)}, nil
	case trace.OpCheckpoint:
		// Non-durable replay targets skip the disk write; the verification
		// unit is the serving generation either way.
		if e.d.store != nil {
			if err := e.d.Checkpoint(); err != nil {
				return trace.OpResult{}, err
			}
		}
		gen := e.d.Snapshot().Generation
		return trace.OpResult{Gen: gen, Digest: trace.DigestGen(gen)}, nil
	}
	return trace.OpResult{}, fmt.Errorf("resistecc: trace record %d has unknown op %d", rec.Seq, rec.Op)
}

func (e *indexExecutor) query(ext []int64) (trace.OpResult, error) {
	nodes := make([]int, len(ext))
	for i, x := range ext {
		n, err := e.resolve(x)
		if err != nil {
			return trace.OpResult{}, err
		}
		nodes[i] = n
	}
	// Pin one snapshot so the generation reported matches the generation
	// that answered, exactly like the serving handler.
	snap := e.d.Snapshot()
	buf := GetBatchBuf()
	defer buf.Release()
	out, err := snap.Index.QueryBatch(nodes, buf)
	if err != nil {
		return trace.OpResult{}, err
	}
	res := make([]trace.EccResult, len(out))
	for i, ecc := range out {
		res[i] = trace.EccResult{
			Node:     e.toExternal[ecc.Node],
			Ecc:      ecc.Value,
			Farthest: e.toExternal[ecc.Farthest],
		}
	}
	return trace.OpResult{Gen: snap.Generation, Digest: trace.DigestQuery(res)}, nil
}

func (e *indexExecutor) mutate(ctx context.Context, rec trace.Record) (trace.OpResult, error) {
	if len(rec.Args) != 2 {
		return trace.OpResult{}, fmt.Errorf("resistecc: trace mutation record %d has %d args, want 2", rec.Seq, len(rec.Args))
	}
	u, err := e.resolve(rec.Args[0])
	if err != nil {
		return trace.OpResult{}, err
	}
	v, err := e.resolve(rec.Args[1])
	if err != nil {
		return trace.OpResult{}, err
	}
	var res MutationResult
	if rec.Op == trace.OpAddEdge {
		res, err = e.d.AddEdge(ctx, u, v)
	} else {
		res, err = e.d.RemoveEdge(ctx, u, v)
	}
	if err != nil {
		return trace.OpResult{}, err
	}
	return trace.OpResult{
		Gen:    res.Generation,
		Digest: trace.DigestMutation(res.Generation, string(res.Mode), res.Drift),
	}, nil
}

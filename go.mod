module resistecc

go 1.22

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	samples := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(samples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 10 || len(h.Counts) != 5 {
		t.Fatalf("histogram %+v", h)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("counts sum %d", total)
	}
	// Density integrates to ~1.
	integral := 0.0
	for i := range h.Counts {
		integral += h.Density(i) * h.Width
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Fatalf("density integral %g", integral)
	}
	if c := h.BinCenter(0); math.Abs(c-0.9) > 1e-12 {
		t.Fatalf("bin center %g", c)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Fatal("empty samples")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("zero bins")
	}
	// Degenerate constant sample.
	h, err := NewHistogram([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Fatalf("degenerate histogram %v", h.Counts)
	}
}

func TestMoments(t *testing.T) {
	m := ComputeMoments([]float64{1, 2, 3, 4, 5})
	if m.Mean != 3 || m.Median != 3 || m.Min != 1 || m.Max != 5 {
		t.Fatalf("moments %+v", m)
	}
	if math.Abs(m.Var-2) > 1e-12 {
		t.Fatalf("var %g", m.Var)
	}
	if math.Abs(m.Skewness) > 1e-12 {
		t.Fatalf("symmetric sample skew %g", m.Skewness)
	}
	// Even-length median.
	m2 := ComputeMoments([]float64{1, 2, 3, 4})
	if m2.Median != 2.5 {
		t.Fatalf("median %g", m2.Median)
	}
	// Right-skewed sample.
	m3 := ComputeMoments([]float64{1, 1, 1, 1, 10})
	if m3.Skewness <= 0 {
		t.Fatalf("skew %g", m3.Skewness)
	}
	if m0 := ComputeMoments(nil); m0.N != 0 {
		t.Fatal("empty moments")
	}
}

func TestKolmogorovSmirnovUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 4000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	d := KolmogorovSmirnov(samples, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	// KS for a correct model at n=4000 is ~1.36/√n ≈ 0.021 at 95%.
	if d > 0.05 {
		t.Fatalf("KS %g too large for correct model", d)
	}
	// Against a wrong cdf it must be large.
	dWrong := KolmogorovSmirnov(samples, func(x float64) float64 { return x * x })
	if dWrong < 0.15 {
		t.Fatalf("KS %g too small for wrong model", dWrong)
	}
}

func TestBurrPDFCDFConsistency(t *testing.T) {
	b := Burr{C: 2, K: 3, Lambda: 1.5}
	if b.PDF(-1) != 0 || b.CDF(-1) != 0 {
		t.Fatal("negative support")
	}
	// CDF is the integral of the PDF (trapezoid check).
	integral := 0.0
	prev := b.PDF(0)
	const dx = 1e-4
	for x := dx; x <= 3; x += dx {
		cur := b.PDF(x)
		integral += (prev + cur) / 2 * dx
		prev = cur
	}
	if math.Abs(integral-b.CDF(3)) > 1e-3 {
		t.Fatalf("∫pdf=%g vs CDF=%g", integral, b.CDF(3))
	}
	// Quantile inverts CDF.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		if q := b.Quantile(p); math.Abs(b.CDF(q)-p) > 1e-9 {
			t.Fatalf("quantile(%g) roundtrip failed: %g", p, b.CDF(q))
		}
	}
	if b.Quantile(0) != 0 || !math.IsInf(b.Quantile(1), 1) {
		t.Fatal("quantile bounds")
	}
}

func TestFitBurrRecoversParameters(t *testing.T) {
	// Sample from a known Burr via inverse-CDF and refit.
	truth := Burr{C: 3, K: 2, Lambda: 2}
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = truth.Quantile(rng.Float64())
	}
	fit, err := FitBurr(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Burr parameters are weakly identified jointly; assess by fit quality.
	if fit.KS > 0.03 {
		t.Fatalf("KS of refit %g too large (fit %+v)", fit.KS, fit.Burr)
	}
	if fit.LogLik <= truth.LogLikelihood(samples)-50 {
		t.Fatalf("fit loglik %g far below truth %g", fit.LogLik, truth.LogLikelihood(samples))
	}
}

func TestFitBurrErrors(t *testing.T) {
	if _, err := FitBurr([]float64{1, 2}); err == nil {
		t.Fatal("too few samples")
	}
	bad := []float64{1, 2, 3, 4, 5, 6, 7, -1}
	if _, err := FitBurr(bad); err == nil {
		t.Fatal("negative sample")
	}
	bad[7] = math.NaN()
	if _, err := FitBurr(bad); err == nil {
		t.Fatal("NaN sample")
	}
}

func TestLogLikelihoodGuards(t *testing.T) {
	if !math.IsInf(Burr{C: -1, K: 1, Lambda: 1}.LogLikelihood([]float64{1}), -1) {
		t.Fatal("invalid params should give -Inf")
	}
	if !math.IsInf(Burr{C: 1, K: 1, Lambda: 1}.LogLikelihood([]float64{-1}), -1) {
		t.Fatal("negative sample should give -Inf")
	}
	// Large C·log z must not overflow to NaN.
	ll := Burr{C: 50, K: 1, Lambda: 1}.LogLikelihood([]float64{100})
	if math.IsNaN(ll) {
		t.Fatal("overflow NaN in log-likelihood")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(p []float64) float64 {
		return (p[0]-3)*(p[0]-3) + 2*(p[1]+1)*(p[1]+1)
	}
	best, iters := NelderMead(f, []float64{0, 0}, NMOptions{})
	if math.Abs(best[0]-3) > 1e-4 || math.Abs(best[1]+1) > 1e-4 {
		t.Fatalf("NM converged to %v after %d iters", best, iters)
	}
}

// Property: Nelder–Mead never returns a point worse than the start.
func TestQuickNelderMeadNoWorse(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		obj := func(p []float64) float64 {
			return math.Abs(p[0]-a) + (p[1]-b)*(p[1]-b)
		}
		start := []float64{0, 0}
		best, _ := NelderMead(obj, start, NMOptions{MaxIter: 300})
		return obj(best) <= obj(start)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r, err := Pearson(x, y); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect linear: r=%g err=%v", r, err)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(x, yNeg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("anti: %g", r)
	}
	// Monotone nonlinear: Spearman 1, Pearson < 1.
	yExp := []float64{1, 10, 100, 1000, 10000}
	rs, err := Spearman(x, yExp)
	if err != nil || math.Abs(rs-1) > 1e-12 {
		t.Fatalf("spearman monotone: %g err=%v", rs, err)
	}
	rp, _ := Pearson(x, yExp)
	if rp >= 1-1e-9 {
		t.Fatalf("pearson of nonlinear should be < 1: %g", rp)
	}
	// Ties: average ranks keep it well-defined.
	if _, err := Spearman([]float64{1, 1, 2, 2}, []float64{3, 3, 4, 4}); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("too short")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero variance")
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("spearman mismatch")
	}
}

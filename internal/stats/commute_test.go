package stats

import (
	"math"
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func TestCommuteTimeErrors(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := CommuteTimeMC(g, 0, 1, 10, 1); err == nil {
		t.Fatal("disconnected graph")
	}
	c := graph.Cycle(4)
	if _, err := CommuteTimeMC(c, 0, 9, 10, 1); err == nil {
		t.Fatal("out of range")
	}
	if _, err := CommuteTimeMC(c, 0, 1, 0, 1); err == nil {
		t.Fatal("zero walks")
	}
	ct, err := CommuteTimeMC(c, 2, 2, 10, 1)
	if err != nil || ct != 0 {
		t.Fatalf("self commute %g err %v", ct, err)
	}
}

// The electrical identity C(u,v) = 2m·r(u,v) cross-checks the Monte-Carlo
// walker against the pseudoinverse on several topologies.
func TestCommuteMatchesResistance(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		u, v int
	}{
		{"path", graph.Path(8), 0, 5},
		{"cycle", graph.Cycle(9), 0, 4},
		{"star", graph.Star(10), 1, 7},
		{"ba", graph.BarabasiAlbert(30, 2, 6), 3, 17},
	}
	for _, tc := range cases {
		lp, err := linalg.Pseudoinverse(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		want := linalg.Resistance(lp, tc.u, tc.v)
		got, err := ResistanceMC(tc.g, tc.u, tc.v, 3000, 99)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.12 {
			t.Fatalf("%s: MC r=%g vs exact %g (rel %g)", tc.name, got, want, rel)
		}
	}
}

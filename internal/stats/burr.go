package stats

import (
	"fmt"
	"math"
	"sort"
)

// Burr is the Burr Type XII (Singh–Maddala) distribution with shape
// parameters C > 0, K > 0 and scale Lambda > 0:
//
//	pdf  f(x) = (C·K/λ) (x/λ)^{C−1} (1 + (x/λ)^C)^{−(K+1)},  x > 0
//	cdf  F(x) = 1 − (1 + (x/λ)^C)^{−K}.
//
// §IV-B of the paper fits this family (via MATLAB) to the resistance
// eccentricity distributions of real networks; the two-parameter form used
// there is the λ = 1 special case. We fit all three parameters by maximum
// likelihood, which subsumes the paper's form.
type Burr struct {
	C, K, Lambda float64
}

// PDF evaluates the density at x.
func (b Burr) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x / b.Lambda
	return b.C * b.K / b.Lambda * math.Pow(z, b.C-1) * math.Pow(1+math.Pow(z, b.C), -(b.K+1))
}

// CDF evaluates the distribution function at x.
func (b Burr) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := math.Pow(x/b.Lambda, b.C)
	return 1 - math.Pow(1+z, -b.K)
}

// Quantile returns the p-quantile, 0 < p < 1.
func (b Burr) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return b.Lambda * math.Pow(math.Pow(1-p, -1/b.K)-1, 1/b.C)
}

// LogLikelihood returns Σ log f(x_i); −Inf if any sample is non-positive.
func (b Burr) LogLikelihood(samples []float64) float64 {
	if b.C <= 0 || b.K <= 0 || b.Lambda <= 0 {
		return math.Inf(-1)
	}
	ll := 0.0
	logCK := math.Log(b.C * b.K / b.Lambda)
	for _, x := range samples {
		if x <= 0 {
			return math.Inf(-1)
		}
		z := x / b.Lambda
		lz := math.Log(z)
		// log(1 + z^C) computed in the log domain to avoid overflow when
		// C·log z is large.
		t := b.C * lz
		var log1pzc float64
		if t > 30 {
			log1pzc = t
		} else {
			log1pzc = math.Log1p(math.Exp(t))
		}
		ll += logCK + (b.C-1)*lz - (b.K+1)*log1pzc
	}
	return ll
}

// BurrFit is the result of FitBurr.
type BurrFit struct {
	Burr
	LogLik float64
	KS     float64 // Kolmogorov–Smirnov distance of the fit
	Iters  int
}

// FitBurr fits a Burr XII distribution to positive samples by maximizing the
// log-likelihood over (log C, log K, log λ) with Nelder–Mead. The log
// reparameterization keeps the search unconstrained.
func FitBurr(samples []float64) (*BurrFit, error) {
	if len(samples) < 8 {
		return nil, fmt.Errorf("stats: FitBurr needs at least 8 samples, got %d", len(samples))
	}
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("stats: FitBurr requires positive finite samples, got %g", x)
		}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]

	neg := func(p []float64) float64 {
		c, k, lambda := math.Exp(p[0]), math.Exp(p[1]), math.Exp(p[2])
		b := Burr{C: c, K: k, Lambda: lambda}
		ll := b.LogLikelihood(samples)
		if math.IsInf(ll, -1) || math.IsNaN(ll) {
			return math.Inf(1)
		}
		// Soft barrier against the degenerate c→∞ spike corner (the MLE of
		// left-bounded data can collapse toward a point mass at λ, which
		// maximizes likelihood but models nothing).
		penalty := 0.0
		if c > 500 {
			penalty = (c - 500) * 0.1
		}
		return -ll + penalty
	}
	// Multi-start: shape spreads from near-exponential to sharply peaked,
	// scale around the sample median. Keep the converged fit with the best
	// Kolmogorov–Smirnov distance (the quantity Figure 2 cares about).
	var fit *BurrFit
	for _, c0 := range []float64{1, 2.5, 6, 15} {
		for _, l0 := range []float64{median, 0.75 * median} {
			start := []float64{math.Log(c0), 0, math.Log(l0)}
			best, iters := NelderMead(neg, start, NMOptions{})
			cand := &BurrFit{
				Burr:  Burr{C: math.Exp(best[0]), K: math.Exp(best[1]), Lambda: math.Exp(best[2])},
				Iters: iters,
			}
			cand.LogLik = cand.LogLikelihood(samples)
			if math.IsInf(cand.LogLik, 0) || math.IsNaN(cand.LogLik) {
				continue
			}
			cand.KS = KolmogorovSmirnov(samples, cand.CDF)
			if fit == nil || cand.KS < fit.KS {
				fit = cand
			}
		}
	}
	if fit == nil {
		return nil, fmt.Errorf("stats: FitBurr failed to converge from any start")
	}
	return fit, nil
}

// NMOptions configures Nelder–Mead.
type NMOptions struct {
	MaxIter int     // zero: 2000
	Tol     float64 // simplex function-value spread target; zero: 1e-10
	Step    float64 // initial simplex step; zero: 0.5
}

// NelderMead minimizes f over R^len(start) starting from the given point,
// returning the best point found and the iteration count. A compact,
// allocation-light downhill-simplex implementation (reflection/expansion/
// contraction/shrink with standard coefficients).
func NelderMead(f func([]float64) float64, start []float64, opt NMOptions) ([]float64, int) {
	n := len(start)
	if opt.MaxIter <= 0 {
		opt.MaxIter = 2000
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.Step <= 0 {
		opt.Step = 0.5
	}
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		pts[i] = append([]float64(nil), start...)
		if i > 0 {
			pts[i][i-1] += opt.Step
		}
		vals[i] = f(pts[i])
	}
	order := make([]int, n+1)
	centroid := make([]float64, n)
	trial := make([]float64, n)
	trial2 := make([]float64, n)

	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		best, worst := order[0], order[n]
		if math.Abs(vals[worst]-vals[best]) <= opt.Tol*(math.Abs(vals[best])+opt.Tol) {
			break
		}
		for j := range centroid {
			centroid[j] = 0
		}
		for _, i := range order[:n] {
			for j := range centroid {
				centroid[j] += pts[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		// Reflection.
		for j := range trial {
			trial[j] = centroid[j] + (centroid[j] - pts[worst][j])
		}
		fr := f(trial)
		switch {
		case fr < vals[best]:
			// Expansion.
			for j := range trial2 {
				trial2[j] = centroid[j] + 2*(centroid[j]-pts[worst][j])
			}
			fe := f(trial2)
			if fe < fr {
				copy(pts[worst], trial2)
				vals[worst] = fe
			} else {
				copy(pts[worst], trial)
				vals[worst] = fr
			}
		case fr < vals[order[n-1]]:
			copy(pts[worst], trial)
			vals[worst] = fr
		default:
			// Contraction.
			for j := range trial2 {
				trial2[j] = centroid[j] + 0.5*(pts[worst][j]-centroid[j])
			}
			fc := f(trial2)
			if fc < vals[worst] {
				copy(pts[worst], trial2)
				vals[worst] = fc
			} else {
				// Shrink toward best.
				for _, i := range order[1:] {
					for j := range pts[i] {
						pts[i][j] = pts[best][j] + 0.5*(pts[i][j]-pts[best][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	bi := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[bi] {
			bi = i
		}
	}
	return pts[bi], iter
}

package stats

import (
	"fmt"
	"math/rand"

	"resistecc/internal/graph"
)

// CommuteTimeMC estimates the expected commute time C(u,v) — the expected
// number of steps of a simple random walk to go from u to v and back — by
// direct simulation of `walks` round trips. By the classical electrical-
// network identity C(u,v) = 2m·r(u,v), this provides an implementation-
// independent Monte-Carlo cross-check of every resistance-distance code
// path (pseudoinverse, CG solver, JL sketch). Standard error decreases as
// O(1/√walks).
func CommuteTimeMC(g *graph.Graph, u, v, walks int, seed int64) (float64, error) {
	if !g.Connected() {
		return 0, fmt.Errorf("stats: commute time requires a connected graph")
	}
	if u == v {
		return 0, nil
	}
	n := g.N()
	if u < 0 || v < 0 || u >= n || v >= n {
		return 0, fmt.Errorf("stats: nodes out of range")
	}
	if walks <= 0 {
		return 0, fmt.Errorf("stats: need a positive walk count")
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for w := 0; w < walks; w++ {
		steps := 0
		cur := u
		for cur != v {
			nbrs := g.Neighbors(cur)
			cur = int(nbrs[rng.Intn(len(nbrs))])
			steps++
		}
		for cur != u {
			nbrs := g.Neighbors(cur)
			cur = int(nbrs[rng.Intn(len(nbrs))])
			steps++
		}
		total += float64(steps)
	}
	return total / float64(walks), nil
}

// ResistanceMC estimates r(u,v) = C(u,v)/(2m) by Monte-Carlo commute times.
func ResistanceMC(g *graph.Graph, u, v, walks int, seed int64) (float64, error) {
	ct, err := CommuteTimeMC(g, u, v, walks, seed)
	if err != nil {
		return 0, err
	}
	return ct / (2 * float64(g.M())), nil
}

// Package stats provides the statistical substrate of §IV: histograms and
// shape statistics of resistance-eccentricity distributions, maximum-
// likelihood fitting of the Burr Type XII distribution (the paper's model
// for E(G), fitted in MATLAB there; by Nelder–Mead here), Kolmogorov–Smirnov
// goodness-of-fit, and a random-walk Monte-Carlo estimator of commute times
// used as an independent cross-check of resistance distances
// (C(u,v) = 2m·r(u,v)).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins the samples into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
	N        int
}

// NewHistogram builds a histogram with nbins bins spanning the sample range.
func NewHistogram(samples []float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: need at least one bin")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("stats: no samples")
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi <= lo {
		hi = lo + 1 // degenerate: everything lands in bin 0
	}
	h := &Histogram{Min: lo, Max: hi, Width: (hi - lo) / float64(nbins), Counts: make([]int, nbins), N: len(samples)}
	for _, s := range samples {
		b := int((s - lo) / h.Width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 { return h.Min + (float64(i)+0.5)*h.Width }

// Density returns the empirical pdf value of bin i.
func (h *Histogram) Density(i int) float64 {
	return float64(h.Counts[i]) / (float64(h.N) * h.Width)
}

// Moments summarizes location and shape of a sample.
type Moments struct {
	N                int
	Mean, Var, Std   float64
	Skewness         float64 // g1 = m3 / m2^{3/2}; > 0 ⇒ right-skew (§IV-B)
	ExcessKurtosis   float64 // m4/m2² − 3; > 0 ⇒ heavy tails
	Min, Median, Max float64
}

// ComputeMoments returns sample moments and order statistics.
func ComputeMoments(samples []float64) Moments {
	var m Moments
	m.N = len(samples)
	if m.N == 0 {
		return m
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	m.Min, m.Max = sorted[0], sorted[m.N-1]
	if m.N%2 == 1 {
		m.Median = sorted[m.N/2]
	} else {
		m.Median = 0.5 * (sorted[m.N/2-1] + sorted[m.N/2])
	}
	for _, s := range samples {
		m.Mean += s
	}
	m.Mean /= float64(m.N)
	var m2, m3, m4 float64
	for _, s := range samples {
		d := s - m.Mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	fn := float64(m.N)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	m.Var = m2
	m.Std = math.Sqrt(m2)
	if m2 > 0 {
		m.Skewness = m3 / math.Pow(m2, 1.5)
		m.ExcessKurtosis = m4/(m2*m2) - 3
	}
	return m
}

// KolmogorovSmirnov returns the KS statistic sup_x |F_n(x) − F(x)| of the
// sample against the given cdf.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// Pearson returns the Pearson linear correlation coefficient of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return 0, fmt.Errorf("stats: need at least 2 samples")
	}
	mx, my := 0.0, 0.0
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient (Pearson on
// ranks, with average ranks for ties).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks converts values to average ranks (1-based; ties share the mean rank).
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		// Rank ties are defined by semantic float equality over the sorted
		// values; a bit-level comparison would split ±0 into separate ranks.
		//recclint:ignore floateq rank ties use semantic equality by definition; Float64bits would split ±0
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

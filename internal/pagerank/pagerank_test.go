package pagerank

import (
	"math"
	"testing"

	"resistecc/internal/graph"
)

func TestSumsToOne(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 2)
	pr := Compute(g, Options{})
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("sum %g", sum)
	}
}

func TestSymmetricGraphUniform(t *testing.T) {
	// On a vertex-transitive graph (cycle) all ranks are equal.
	g := graph.Cycle(10)
	pr := Compute(g, Options{})
	for i := 1; i < 10; i++ {
		if math.Abs(pr[i]-pr[0]) > 1e-10 {
			t.Fatalf("cycle pagerank not uniform: %v", pr)
		}
	}
}

func TestHubOutranksLeaves(t *testing.T) {
	g := graph.Star(20)
	pr := Compute(g, Options{})
	for i := 1; i < 20; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub %g <= leaf %g", pr[0], pr[i])
		}
	}
}

func TestDanglingNodes(t *testing.T) {
	// Isolated node: rank mass must still sum to 1 without NaNs.
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	pr := Compute(g, Options{})
	sum := 0.0
	for _, v := range pr {
		if math.IsNaN(v) {
			t.Fatal("NaN rank")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("sum %g", sum)
	}
}

func TestEmptyGraph(t *testing.T) {
	if pr := Compute(graph.New(0), Options{}); pr != nil {
		t.Fatal("empty graph should return nil")
	}
}

func TestOptionDefaults(t *testing.T) {
	g := graph.Path(5)
	a := Compute(g, Options{})
	b := Compute(g, Options{Damping: 0.85, Tol: 1e-10, MaxIter: 200})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("defaults mismatch")
		}
	}
	// Invalid damping falls back to default.
	c := Compute(g, Options{Damping: 1.5})
	for i := range a {
		if math.Abs(a[i]-c[i]) > 1e-12 {
			t.Fatal("invalid damping not defaulted")
		}
	}
}

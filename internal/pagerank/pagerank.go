// Package pagerank provides the PageRank centrality used by the PK-REMD and
// PK-REM baselines of §VIII-C: both pick edge endpoints with the *lowest*
// PageRank, on the intuition that low-centrality nodes are the peripheral
// ones whose attachment shrinks eccentricities.
package pagerank

import (
	"math"

	"resistecc/internal/graph"
)

// Options configures the power iteration.
type Options struct {
	// Damping is the teleport damping factor; zero means 0.85.
	Damping float64
	// Tol is the L1 convergence threshold; zero means 1e-10.
	Tol float64
	// MaxIter caps iterations; zero means 200.
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	return o
}

// Compute returns the PageRank vector of g (undirected: each edge acts as
// two directed arcs), normalized to sum 1.
func Compute(g *graph.Graph, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.N()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	base := (1 - opt.Damping) * inv
	for iter := 0; iter < opt.MaxIter; iter++ {
		for i := range next {
			next[i] = base
		}
		dangling := 0.0
		for u := 0; u < n; u++ {
			d := g.Degree(u)
			if d == 0 {
				dangling += rank[u]
				continue
			}
			share := opt.Damping * rank[u] / float64(d)
			for _, v := range g.Neighbors(u) {
				next[v] += share
			}
		}
		if dangling > 0 {
			spread := opt.Damping * dangling * inv
			for i := range next {
				next[i] += spread
			}
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if diff < opt.Tol {
			break
		}
	}
	return rank
}

// Package repl implements the replicated serving tier: a writer ships
// snapshots and serves WAL tails (Source), replicas pull and apply them
// (Tailer), and a router spreads query batches over healthy replicas with
// generation-aware read-your-writes routing (Pool).
//
// The protocol is two idempotent GETs on the writer:
//
//	GET /v1/repl/snapshot        → raw RECCSNP1 bytes (X-Repl-Seq, X-Repl-Generation)
//	GET /v1/repl/wal?from=N      → RECCTAL1 frame of WAL records with Seq ≥ N
//
// A tail position the writer can no longer vouch for (truncated by a
// checkpoint, or diverged across a restart) answers 410 Gone with code
// "wal_gap"; the replica re-bases on a fresh snapshot. Every payload is
// checksummed end to end (per-section CRCs in the snapshot, header + per-
// record CRCs in the tail frame), so a corrupt transfer is rejected before
// any of it is applied.
package repl

import (
	"net/http"
	"strconv"
	"sync/atomic"

	"resistecc/internal/obs"
	"resistecc/internal/persist"
)

// Source serves a writer's replication feed from its durable store.
// Handlers are safe for concurrent use with serving and mutations; they
// take the store mutex only long enough to cut a consistent view.
type Source struct {
	// Store is the writer's durable store (snapshot + WAL).
	Store *persist.Store
	// Generation reports the writer's currently served index generation,
	// stamped on tail frames so caught-up replicas can detect divergence.
	Generation func() uint64
	// MaxBatch caps records per tail frame (0 = 4096). Fetches asking for
	// more are truncated; the frame's LastSeq tells the replica to keep
	// fetching.
	MaxBatch int

	// Serving counters: Store, Generation, and MaxBatch above are set
	// before the first request and never reassigned; these are the only
	// fields handlers mutate, each atomically, snapshotted by Stats.
	snapshotsServed atomic.Uint64
	framesServed    atomic.Uint64
	recordsServed   atomic.Uint64
	bytesServed     atomic.Uint64
}

// DefaultMaxBatch is the tail-frame record cap when MaxBatch is 0.
const DefaultMaxBatch = 4096

// SourceStats are cumulative serving counters for metrics.
type SourceStats struct {
	SnapshotsServed uint64
	FramesServed    uint64
	RecordsServed   uint64
	BytesServed     uint64
}

// Stats returns a point-in-time view of the serving counters.
func (s *Source) Stats() SourceStats {
	return SourceStats{
		SnapshotsServed: s.snapshotsServed.Load(),
		FramesServed:    s.framesServed.Load(),
		RecordsServed:   s.recordsServed.Load(),
		BytesServed:     s.bytesServed.Load(),
	}
}

// ServeSnapshot answers GET /v1/repl/snapshot with the newest on-disk
// snapshot, raw. 503 "no_snapshot" before the first checkpoint — the
// caller retries; the writer checkpoints at startup.
func (s *Source) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	b, seq, gen, err := s.Store.SnapshotBytes()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "no_snapshot", "writer has no snapshot yet; retry")
		return
	}
	s.snapshotsServed.Add(1)
	s.bytesServed.Add(uint64(len(b)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Seq", strconv.FormatUint(seq, 10))
	w.Header().Set("X-Repl-Generation", strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// ServeWAL answers GET /v1/repl/wal?from=N with a RECCTAL1 frame of the
// records with Seq ≥ N (capped at MaxBatch). 410 "wal_gap" when the store
// cannot vouch for that position: the replica must re-base on the current
// snapshot.
func (s *Source) ServeWAL(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_parameter", "missing or malformed ?from=")
		return
	}
	max := s.MaxBatch
	if max <= 0 {
		max = DefaultMaxBatch
	}
	// A replica may ask for less (smaller apply batches); never more.
	if raw := r.URL.Query().Get("max"); raw != "" {
		if m, err := strconv.Atoi(raw); err == nil && m > 0 && m < max {
			max = m
		}
	}
	view, err := s.Store.TailSince(from, max)
	if err != nil {
		writeErr(w, http.StatusGone, "wal_gap",
			"position %d outside the served tail; re-fetch the snapshot", from)
		return
	}
	frame := persist.EncodeTailFrame(persist.TailFrame{
		LastSeq:   view.LastSeq,
		WriterGen: s.Generation(),
		SnapSeq:   view.SnapSeq,
		SnapGen:   view.SnapGen,
		Records:   view.Records,
	})
	s.framesServed.Add(1)
	s.recordsServed.Add(uint64(len(view.Records)))
	s.bytesServed.Add(uint64(len(frame)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.Write(frame)
}

// The replication feed is part of the public HTTP surface; hold it to the
// same envelope discipline as cmd/reccd.
//recclint:apisurface

// writeErr emits the canonical {"error":{code,message}} envelope via the
// shared obs helper, so replication clients and human callers see one error
// shape — and exactly one implementation of it.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	obs.WriteError(w, status, code, format, args...)
}

package repl

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/lifecycle"
	"resistecc/internal/persist"
)

// testWriter is a writer-side fixture: a durable store behind Source
// handlers on an httptest server, with a controllable served generation.
type testWriter struct {
	store *persist.Store
	gen   atomic.Uint64
	srv   *httptest.Server
	g     *graph.Graph
	fast  *ecc.Fast
}

func newTestWriter(t *testing.T) *testWriter {
	t.Helper()
	st, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	g := graph.RandomConnected(30, 60, 7)
	p := persist.Params{Epsilon: 0.3, Dim: 32, Seed: 21}
	f, err := ecc.NewFast(g, ecc.FastOptions{Sketch: p.SketchOptions(), Hull: p.HullOptions()})
	if err != nil {
		t.Fatal(err)
	}
	tw := &testWriter{store: st, g: g, fast: f}
	tw.gen.Store(1)
	src := &Source{Store: st, Generation: tw.gen.Load}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/snapshot", src.ServeSnapshot)
	mux.HandleFunc("GET /v1/repl/wal", src.ServeWAL)
	tw.srv = httptest.NewServer(mux)
	t.Cleanup(tw.srv.Close)
	return tw
}

// checkpoint writes a snapshot at (seq, gen) and bumps the served generation.
func (tw *testWriter) checkpoint(t *testing.T, seq, gen uint64) {
	t.Helper()
	cs := lifecycle.CheckpointState{Seq: seq, Gen: gen, Graph: tw.g, Fast: tw.fast}
	p := persist.Params{Epsilon: 0.3, Dim: 32, Seed: 21}
	if err := tw.store.Checkpoint(persist.Capture(cs, p, persist.Fingerprint(tw.g), true)); err != nil {
		t.Fatal(err)
	}
	tw.gen.Store(gen)
}

// append logs n mutations continuing from seq from+1, bumping the served
// generation per record the way incremental writer mutations do.
func (tw *testWriter) append(t *testing.T, from uint64, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		seq := from + uint64(i)
		if err := tw.store.Append(persist.Record{Seq: seq, Add: true, U: int(seq), V: 0}); err != nil {
			t.Fatal(err)
		}
		tw.gen.Add(1)
	}
}

// fakeFollower mirrors the writer's seq/gen bookkeeping without an index:
// Restore adopts the decoded snapshot's meta, Apply bumps both.
type fakeFollower struct {
	mu       sync.Mutex
	seq, gen uint64 // guarded by mu
	applied  []persist.Record
	restores int
	failNext error // next Apply returns this once
}

func (f *fakeFollower) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

func (f *fakeFollower) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

func (f *fakeFollower) Apply(_ context.Context, rec persist.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.failNext; err != nil {
		f.failNext = nil
		return err
	}
	f.seq = rec.Seq
	f.gen++
	f.applied = append(f.applied, rec)
	return nil
}

func (f *fakeFollower) Restore(_ context.Context, b []byte) error {
	snap, err := persist.ReadSnapshot(b)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq, f.gen = snap.Seq, snap.Gen
	f.restores++
	f.applied = nil
	return nil
}

func newTestTailer(t *testing.T, tw *testWriter, f *fakeFollower) *Tailer {
	t.Helper()
	tl, err := NewTailer(TailerConfig{
		Upstream: tw.srv.URL,
		Follower: f,
		Interval: 10 * time.Millisecond,
		MaxBatch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestTailerInitialSyncRestoresThenTails(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	tw.append(t, 0, 3)

	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.restores != 1 {
		t.Fatalf("restores = %d, want 1", f.restores)
	}
	if f.Seq() != 3 || len(f.applied) != 3 || f.applied[0].Seq != 1 {
		t.Fatalf("follower seq %d applied %+v", f.Seq(), f.applied)
	}
	if f.Generation() != tw.gen.Load() {
		t.Fatalf("generation %d, writer %d", f.Generation(), tw.gen.Load())
	}
	st := tl.Stats()
	if st.AppliedSeq != 3 || st.UpstreamSeq != 3 || st.Lag != 0 || st.Resyncs != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTailerGapTriggersResync(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	tw.append(t, 0, 3)
	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Writer rebuilds: checkpoint at seq 5 truncates the WAL past the
	// follower's position, then two more mutations land.
	tw.append(t, 3, 2)
	tw.checkpoint(t, 5, 20)
	tw.append(t, 5, 2)

	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.restores != 2 {
		t.Fatalf("restores = %d, want 2", f.restores)
	}
	if f.Seq() != 7 || len(f.applied) != 2 || f.applied[0].Seq != 6 {
		t.Fatalf("after gap resync: seq %d applied %+v", f.Seq(), f.applied)
	}
	if got := tl.Stats().Resyncs; got != 2 {
		t.Fatalf("resyncs = %d", got)
	}
}

func TestTailerCaughtUpGenerationMismatchResyncs(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The writer rebuilt without new mutations (drift/manual): its served
	// generation moved but the snapshot hasn't caught up yet — no resync,
	// restoring the same snapshot would change nothing.
	tw.gen.Store(9)
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.restores != 1 {
		t.Fatalf("resynced against a stale snapshot: restores = %d", f.restores)
	}

	// Once the rebuild checkpoint lands, the mismatch is actionable.
	tw.checkpoint(t, 0, 9)
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.restores != 2 || f.Generation() != 9 {
		t.Fatalf("after checkpoint: restores %d gen %d", f.restores, f.Generation())
	}
}

func TestTailerApplyErrorResyncs(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	tw.append(t, 0, 2)
	f.failNext = errors.New("incremental update impossible")
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The snapshot is still at seq 0, so the resync replays both records.
	if f.restores != 2 || f.Seq() != 2 || len(f.applied) != 2 {
		t.Fatalf("after apply-error resync: restores %d seq %d applied %d",
			f.restores, f.Seq(), len(f.applied))
	}
}

func TestTailerDrainsCappedBatches(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	tw.append(t, 0, 10)
	f := &fakeFollower{}
	tl, err := NewTailer(TailerConfig{
		Upstream: tw.srv.URL,
		Follower: f,
		MaxBatch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Seq() != 10 || len(f.applied) != 10 {
		t.Fatalf("capped drain stopped early: seq %d applied %d", f.Seq(), len(f.applied))
	}
	if got := tl.Stats().Fetches; got < 4 {
		t.Fatalf("expected ≥4 capped fetches, got %d", got)
	}
}

func TestTailerBackgroundLoopConverges(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := tl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	tl.Start(ctx)
	defer tl.Stop()

	tw.append(t, 0, 4)
	deadline := time.Now().Add(5 * time.Second)
	for f.Seq() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop never converged: seq %d", f.Seq())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSourceRejectsBadRequests(t *testing.T) {
	tw := newTestWriter(t)
	// No snapshot yet: both endpoints refuse.
	resp, err := http.Get(tw.srv.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("snapshot before checkpoint: %d", resp.StatusCode)
	}
	resp, err = http.Get(tw.srv.URL + "/v1/repl/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("wal before checkpoint: %d", resp.StatusCode)
	}
	resp, err = http.Get(tw.srv.URL + "/v1/repl/wal?from=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed from: %d", resp.StatusCode)
	}
}

// backendStub is a minimal routable backend for pool tests.
func backendStub(t *testing.T, gen uint64, fail *atomic.Bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail != nil && fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Index-Generation", fmt.Sprint(gen))
		fmt.Fprintf(w, `{"path":%q}`, r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestPoolCandidatesStableAndFiltered(t *testing.T) {
	w := backendStub(t, 10, nil)
	r1 := backendStub(t, 5, nil)
	r2 := backendStub(t, 8, nil)
	p := NewPool(w.URL, []string{r1.URL, r2.URL}, nil, time.Hour)
	p.CheckOnce(context.Background())

	for _, b := range p.Replicas() {
		if !b.Healthy() {
			t.Fatalf("replica %s unhealthy after check", b.URL)
		}
	}
	// Same key, same order, every time.
	first := p.Candidates("/v1/eccentricity?node=7", 0)
	for i := 0; i < 10; i++ {
		again := p.Candidates("/v1/eccentricity?node=7", 0)
		if len(again) != len(first) {
			t.Fatalf("candidate count changed")
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("candidate order changed at %d", j)
			}
		}
	}
	if len(first) != 3 || !first[len(first)-1].IsWriter {
		t.Fatalf("candidates: %d, writer last = %v", len(first), first[len(first)-1].IsWriter)
	}

	// A generation floor drops stale replicas; the writer always stays.
	got := p.Candidates("k", 6)
	if len(got) != 2 || got[0].Generation() != 8 || !got[1].IsWriter {
		t.Fatalf("minGen filter: %+v", got)
	}
	got = p.Candidates("k", 100)
	if len(got) != 1 || !got[0].IsWriter {
		t.Fatalf("floor above all replicas must leave only the writer: %+v", got)
	}
}

func TestPoolProxyRetriesAcrossFailure(t *testing.T) {
	var fail1, fail2 atomic.Bool
	w := backendStub(t, 10, nil)
	r1 := backendStub(t, 10, &fail1)
	r2 := backendStub(t, 10, &fail2)
	p := NewPool(w.URL, []string{r1.URL, r2.URL}, nil, time.Hour)
	p.CheckOnce(context.Background())

	// Both replicas dead mid-flight (health check hasn't noticed): the
	// request still succeeds via retry down to the writer.
	fail1.Store(true)
	fail2.Store(true)
	req := httptest.NewRequest(http.MethodGet, "/v1/eccentricity?node=3", nil)
	rec := httptest.NewRecorder()
	p.ProxyQuery(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("proxy with dead replicas: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Served-By"); got != w.URL {
		t.Fatalf("served by %q, want writer %q", got, w.URL)
	}
	st := p.Stats()
	if st.Retries < 1 || st.WriterFallbacks != 1 {
		t.Fatalf("stats after failover: %+v", st)
	}

	// Replicas recover: the same key routes back to a replica.
	fail1.Store(false)
	fail2.Store(false)
	rec = httptest.NewRecorder()
	p.ProxyQuery(rec, httptest.NewRequest(http.MethodGet, "/v1/eccentricity?node=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("proxy after recovery: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Served-By"); got == w.URL {
		t.Fatalf("healthy replicas ignored")
	}
}

func TestPoolMinGenerationHeader(t *testing.T) {
	w := backendStub(t, 10, nil)
	r1 := backendStub(t, 2, nil)
	p := NewPool(w.URL, []string{r1.URL}, nil, time.Hour)
	p.CheckOnce(context.Background())

	req := httptest.NewRequest(http.MethodGet, "/v1/summary", nil)
	req.Header.Set("X-Min-Generation", "5")
	rec := httptest.NewRecorder()
	p.ProxyQuery(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Served-By") != w.URL {
		t.Fatalf("floor must route to writer: %d served by %q", rec.Code, rec.Header().Get("X-Served-By"))
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/summary", nil)
	req.Header.Set("X-Min-Generation", "bogus")
	rec = httptest.NewRecorder()
	p.ProxyQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed floor: %d", rec.Code)
	}
}

func TestPoolHealthLoopEjectsAndReadmits(t *testing.T) {
	var fail atomic.Bool
	w := backendStub(t, 10, nil)
	r1 := backendStub(t, 10, &fail)
	p := NewPool(w.URL, []string{r1.URL}, nil, 5*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	defer p.Stop()

	waitFor := func(want bool) {
		deadline := time.Now().Add(5 * time.Second)
		for p.Replicas()[0].Healthy() != want {
			if time.Now().After(deadline) {
				t.Fatalf("replica health never became %v", want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor(true)
	fail.Store(true)
	waitFor(false)
	fail.Store(false)
	waitFor(true)
}

package repl

import (
	"os"
	"testing"

	"resistecc/internal/testutil"
)

// TestMain fails the suite if any test leaks a tailer or health-loop
// goroutine: every Tailer/Pool started by a test must be stopped.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaksMain(m))
}

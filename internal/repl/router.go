package repl

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// vnodesPerBackend spreads each backend over the hash ring so load stays
// even when one replica drops out.
const vnodesPerBackend = 64

// Backend is one routable process: the writer or a read replica. Health
// and generation are written by the pool's health loop and read lock-free
// on the routing path.
type Backend struct {
	// URL is the backend's base URL.
	URL string
	// IsWriter marks the writer; it serves as the fallback of last resort
	// and the only mutation target.
	IsWriter bool

	healthy atomic.Bool
	gen     atomic.Uint64
}

// Healthy reports the last health-check outcome.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Generation reports the backend's index generation at the last check.
func (b *Backend) Generation() uint64 { return b.gen.Load() }

// PoolStats are cumulative routing counters for metrics.
type PoolStats struct {
	// Retries counts requests re-sent after a backend failed mid-flight.
	Retries uint64
	// WriterFallbacks counts reads that landed on the writer because no
	// healthy replica satisfied the caller's generation floor.
	WriterFallbacks uint64
	// Proxied counts successfully answered proxied requests.
	Proxied uint64
	// NoBackend counts requests that exhausted every candidate.
	NoBackend uint64
}

// ringEntry is one virtual node on the consistent-hash ring.
type ringEntry struct {
	hash    uint64
	backend *Backend
}

// Pool routes requests over a writer plus read replicas: consistent
// hashing picks a stable replica per key, a health loop ejects dead or
// lagging backends, and reads carrying an X-Min-Generation floor skip
// replicas that have not caught up to it (read-your-writes).
type Pool struct {
	writer   *Backend      // set in NewPool, immutable; per-Backend state is atomic
	replicas []*Backend    // set in NewPool, immutable (the slice; Backends self-synchronize)
	ring     []ringEntry   // static; health is filtered at lookup time
	client   *http.Client  // set in NewPool, immutable
	interval time.Duration // set in NewPool, immutable

	// Routing counters: bumped atomically on the request path, snapshotted
	// by Stats. No lock orders them against each other — each is
	// independently monotonic.
	retries         atomic.Uint64
	writerFallbacks atomic.Uint64
	proxied         atomic.Uint64
	noBackend       atomic.Uint64

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool   // set by Start; Stop only waits on a started loop
	stop      chan struct{} // closed exactly once, through stopOnce
	done      chan struct{} // closed by the health loop as it exits
}

// NewPool builds a pool for one writer URL and its replica URLs. client
// nil means a 30s-timeout client; interval 0 means 1s health polls.
func NewPool(writer string, replicas []string, client *http.Client, interval time.Duration) *Pool {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if interval <= 0 {
		interval = time.Second
	}
	p := &Pool{
		writer:   &Backend{URL: writer, IsWriter: true},
		client:   client,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range replicas {
		b := &Backend{URL: u}
		p.replicas = append(p.replicas, b)
		for i := 0; i < vnodesPerBackend; i++ {
			p.ring = append(p.ring, ringEntry{hash: hashKey(fmt.Sprintf("%s#%d", u, i)), backend: b})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
	return p
}

// Writer returns the writer backend.
func (p *Pool) Writer() *Backend { return p.writer }

// Replicas returns the replica backends in registration order.
func (p *Pool) Replicas() []*Backend { return p.replicas }

// Stats returns a point-in-time view of the routing counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Retries:         p.retries.Load(),
		WriterFallbacks: p.writerFallbacks.Load(),
		Proxied:         p.proxied.Load(),
		NoBackend:       p.noBackend.Load(),
	}
}

// Start launches the health loop after one synchronous sweep, so routing
// decisions are informed from the first request.
func (p *Pool) Start(ctx context.Context) {
	p.startOnce.Do(func() {
		p.CheckOnce(ctx)
		p.started.Store(true)
		go func() {
			defer close(p.done)
			ticker := time.NewTicker(p.interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-p.stop:
					return
				case <-ticker.C:
					p.CheckOnce(ctx)
				}
			}
		}()
	})
}

// Stop ends the health loop and waits for it to exit. A no-op before Start;
// safe to call from any number of goroutines (the close is serialized
// through stopOnce — checking the channel first and closing in a default
// clause would let two callers race to the close and panic).
func (p *Pool) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
}

// CheckOnce health-checks every backend concurrently: a 200 from
// /v1/healthz marks it healthy and records its X-Index-Generation.
func (p *Pool) CheckOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range append([]*Backend{p.writer}, p.replicas...) {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.checkBackend(ctx, b)
		}(b)
	}
	wg.Wait()
}

func (p *Pool) checkBackend(ctx context.Context, b *Backend) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/healthz", nil)
	if err != nil {
		b.healthy.Store(false)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		b.healthy.Store(false)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		b.healthy.Store(false)
		return
	}
	if gen, err := strconv.ParseUint(resp.Header.Get("X-Index-Generation"), 10, 64); err == nil {
		b.gen.Store(gen)
	}
	b.healthy.Store(true)
}

// hashKey is 64-bit FNV-1a.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Candidates returns the backends to try for a read, in order: healthy
// replicas satisfying minGen walked clockwise from the key's ring
// position (so the same key consistently lands on the same replica), then
// the writer — which by definition satisfies every generation floor.
func (p *Pool) Candidates(key string, minGen uint64) []*Backend {
	out := make([]*Backend, 0, len(p.replicas)+1)
	if len(p.ring) > 0 {
		h := hashKey(key)
		start := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
		seen := make(map[*Backend]bool, len(p.replicas))
		for i := 0; i < len(p.ring) && len(seen) < len(p.replicas); i++ {
			b := p.ring[(start+i)%len(p.ring)].backend
			if seen[b] {
				continue
			}
			seen[b] = true
			if b.Healthy() && b.Generation() >= minGen {
				out = append(out, b)
			}
		}
	}
	out = append(out, p.writer)
	return out
}

// ProxyQuery forwards a read to the first candidate that answers, retrying
// the next one on connection failure or 5xx — a replica death mid-request
// costs the client nothing. The routing key is the request path + query,
// so identical queries hit the same replica's caches. The caller's
// X-Min-Generation floor (default 0) implements read-your-writes: pass the
// generation a mutation response reported and no stale replica will answer.
func (p *Pool) ProxyQuery(w http.ResponseWriter, r *http.Request) {
	minGen := uint64(0)
	if raw := r.Header.Get("X-Min-Generation"); raw != "" {
		g, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_parameter", "malformed X-Min-Generation %q", raw)
			return
		}
		minGen = g
	}
	candidates := p.Candidates(r.URL.RequestURI(), minGen)
	for i, b := range candidates {
		if i > 0 {
			p.retries.Add(1)
		}
		if b.IsWriter && len(p.replicas) > 0 {
			p.writerFallbacks.Add(1)
		}
		if p.forward(w, r, b) {
			p.proxied.Add(1)
			return
		}
	}
	p.noBackend.Add(1)
	writeErr(w, http.StatusServiceUnavailable, "no_backend", "no backend could answer")
}

// ProxyWriter forwards a request to the writer, single-attempt — mutations
// are not idempotent, so the router never retries them.
func (p *Pool) ProxyWriter(w http.ResponseWriter, r *http.Request) {
	if p.forward(w, r, p.writer) {
		p.proxied.Add(1)
		return
	}
	p.noBackend.Add(1)
	writeErr(w, http.StatusServiceUnavailable, "no_backend", "writer unreachable")
}

// forward proxies one request to b. It reports false — leaving the
// response untouched — when the backend cannot be reached or answered a
// 5xx, so the caller can try the next candidate.
func (p *Pool) forward(w http.ResponseWriter, r *http.Request, b *Backend) bool {
	var body io.Reader
	if r.Body != nil {
		body = r.Body
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.URL+r.URL.RequestURI(), body)
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Served-By", b.URL)
	//recclint:ignore apisurface relaying a backend status whose body the backend already enveloped
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

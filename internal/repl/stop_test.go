package repl

import (
	"context"
	"sync"
	"testing"
	"time"
)

// The Stop methods on Pool and Tailer are idempotent and safe to call from
// any number of goroutines: shutdown paths converge (a signal handler, a
// failing health probe, and a deferred cleanup can all reach Stop), and the
// old select-then-close idiom let two callers race past the guard and panic
// on the second close. These tests hammer that window; under -race they also
// pin the started-latch handoff between Start and Stop.

func TestPoolStopConcurrent(t *testing.T) {
	w := backendStub(t, 1, nil)
	p := NewPool(w.URL, nil, nil, 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Stop() // must not panic on a concurrently closed channel
		}()
	}
	wg.Wait()
	p.Stop() // and stays idempotent afterwards
}

func TestPoolStopBeforeStart(t *testing.T) {
	w := backendStub(t, 1, nil)
	p := NewPool(w.URL, nil, nil, 10*time.Millisecond)
	p.Stop() // no-op: must not block waiting on a loop that never started
	p.Stop()
}

func TestTailerStopConcurrent(t *testing.T) {
	tw := newTestWriter(t)
	tw.checkpoint(t, 0, 1)
	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := tl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	tl.Start(ctx)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl.Stop()
		}()
	}
	wg.Wait()
	tl.Stop()
}

func TestTailerStopBeforeStart(t *testing.T) {
	tw := newTestWriter(t)
	f := &fakeFollower{}
	tl := newTestTailer(t, tw, f)
	tl.Stop() // started is false: Stop must return without waiting on done
	tl.Stop()
}

package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"resistecc/internal/persist"
)

// Follower is the replica-side state a Tailer drives: a restored index that
// applies mutations in writer order. resistecc.DynamicIndex in follower mode
// satisfies it via a thin adapter in cmd/reccd.
type Follower interface {
	// Seq is the number of writer mutations reflected in the state (the
	// restored snapshot's sequence plus mutations applied since).
	Seq() uint64
	// Generation is the served index generation, which tracks the writer's
	// while the replica is caught up.
	Generation() uint64
	// Apply replays one writer mutation. An error means the state can no
	// longer follow incrementally; the Tailer re-bases on a snapshot.
	Apply(ctx context.Context, rec persist.Record) error
	// Restore replaces the state with a decoded writer snapshot.
	Restore(ctx context.Context, snapshot []byte) error
}

// TailerConfig configures a Tailer.
type TailerConfig struct {
	// Upstream is the writer's base URL, e.g. "http://10.0.0.1:8077".
	Upstream string
	// Follower is the replica state to drive.
	Follower Follower
	// Client is the HTTP client for fetches (nil = 30s-timeout client).
	Client *http.Client
	// Interval is the poll period (0 = 250ms).
	Interval time.Duration
	// MaxBatch is the per-fetch record cap passed to the writer (0 = 4096).
	MaxBatch int
}

// TailerStats is a point-in-time view of replication progress for health
// and metrics endpoints.
type TailerStats struct {
	// AppliedSeq is the follower's sequence; UpstreamSeq the writer's newest
	// known sequence, so Lag = UpstreamSeq − AppliedSeq.
	AppliedSeq, UpstreamSeq uint64
	// UpstreamGen is the writer's generation from the last frame.
	UpstreamGen uint64
	// Lag is UpstreamSeq − AppliedSeq (0 when caught up).
	Lag uint64
	// Resyncs counts snapshot re-bases (startup, WAL gaps, divergence).
	Resyncs uint64
	// Fetches and FetchBytes count successful tail/snapshot transfers.
	Fetches, FetchBytes uint64
	// FetchFailures counts failed or rejected transfers.
	FetchFailures uint64
	// LastContact is when the writer last answered successfully.
	LastContact time.Time
	// LastError is the most recent failure ("" after a clean poll).
	LastError string
}

// Tailer keeps a Follower converged with a writer: it polls the WAL tail,
// applies records in order, and re-bases on a fresh snapshot whenever the
// writer signals a gap (410) or the replica has diverged (caught up on
// sequence but serving a different generation — the writer rebuilt).
type Tailer struct {
	cfg TailerConfig

	mu          sync.Mutex // guards the stats fields below
	upstreamSeq uint64     // guarded by mu
	upstreamGen uint64     // guarded by mu
	resyncs     uint64     // guarded by mu
	fetches     uint64     // guarded by mu
	fetchBytes  uint64     // guarded by mu
	failures    uint64     // guarded by mu
	lastContact time.Time  // guarded by mu
	lastError   string     // guarded by mu

	started  atomic.Bool // set by Start; Stop only waits on a started loop
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewTailer validates cfg and fills defaults.
func NewTailer(cfg TailerConfig) (*Tailer, error) {
	if cfg.Upstream == "" {
		return nil, errors.New("repl: tailer needs an upstream URL")
	}
	if cfg.Follower == nil {
		return nil, errors.New("repl: tailer needs a follower")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	return &Tailer{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Stats returns a point-in-time progress view.
func (t *Tailer) Stats() TailerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TailerStats{
		AppliedSeq:    t.cfg.Follower.Seq(),
		UpstreamSeq:   t.upstreamSeq,
		UpstreamGen:   t.upstreamGen,
		Resyncs:       t.resyncs,
		Fetches:       t.fetches,
		FetchBytes:    t.fetchBytes,
		FetchFailures: t.failures,
		LastContact:   t.lastContact,
		LastError:     t.lastError,
	}
	if s.UpstreamSeq > s.AppliedSeq {
		s.Lag = s.UpstreamSeq - s.AppliedSeq
	}
	return s
}

// Sync runs one full catch-up pass: restore from a snapshot if the follower
// has no usable position, then drain the tail until caught up. Replicas call
// it inline at startup so they never serve before reaching the writer once.
func (t *Tailer) Sync(ctx context.Context) error {
	return t.poll(ctx)
}

// Start launches the background poll loop. Stop (or ctx cancellation) ends
// it; Start must be called at most once.
func (t *Tailer) Start(ctx context.Context) {
	t.started.Store(true)
	go func() {
		defer close(t.done)
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.stop:
				return
			case <-ticker.C:
				if err := t.poll(ctx); err != nil {
					t.recordFailure(err)
				}
			}
		}
	}()
}

// Stop ends the poll loop and waits for it to exit. A no-op before Start;
// safe to call from any number of goroutines (the close is serialized
// through stopOnce, and started is atomic because Stop may run on a
// different goroutine than the Start that set it).
func (t *Tailer) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	if t.started.Load() {
		<-t.done
	}
}

// poll drains the writer's tail: fetch → apply → repeat until caught up.
// At most one snapshot re-base per call keeps a confused writer from
// driving a hot resync loop; the next poll retries.
func (t *Tailer) poll(ctx context.Context) error {
	resynced := false
	// Generation 0 means the follower has never held state (the first index
	// build publishes generation 1): restore before tailing anything.
	if t.cfg.Follower.Generation() == 0 {
		if err := t.resync(ctx); err != nil {
			t.recordFailure(err)
			return err
		}
		resynced = true
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		f := t.cfg.Follower
		frame, gone, err := t.fetchTail(ctx, f.Seq()+1)
		if err != nil {
			t.recordFailure(err)
			return err
		}
		if gone {
			// The writer truncated past our position (checkpoint after a
			// rebuild, or our history predates its current snapshot).
			if resynced {
				err := errors.New("repl: writer reports a WAL gap immediately after a resync")
				t.recordFailure(err)
				return err
			}
			if err := t.resync(ctx); err != nil {
				t.recordFailure(err)
				return err
			}
			resynced = true
			continue
		}
		t.recordFrame(frame)
		if n := len(frame.Records); n > 0 {
			if frame.Records[0].Seq != f.Seq()+1 {
				err := fmt.Errorf("repl: writer answered from %d for position %d",
					frame.Records[0].Seq, f.Seq()+1)
				t.recordFailure(err)
				return err
			}
			for _, rec := range frame.Records {
				if err := f.Apply(ctx, rec); err != nil {
					// The follower cannot absorb this mutation incrementally
					// (e.g. a removal that needs a rebuild): re-base.
					if resynced {
						err := fmt.Errorf("repl: apply failed after a resync: %w", err)
						t.recordFailure(err)
						return err
					}
					if err := t.resync(ctx); err != nil {
						t.recordFailure(err)
						return err
					}
					resynced = true
					break
				}
			}
			continue // drain: more records may be waiting
		}
		// Caught up on sequence. A generation mismatch means the writer
		// rebuilt without a new mutation (drift rebuild, manual trigger):
		// our answers have diverged and only a fresh snapshot reconverges
		// them — but only if the writer has checkpointed the rebuild yet.
		if f.Seq() == frame.LastSeq && f.Generation() != frame.WriterGen &&
			frame.SnapGen != f.Generation() && !resynced {
			if err := t.resync(ctx); err != nil {
				t.recordFailure(err)
				return err
			}
			resynced = true
			continue
		}
		t.clearError()
		return nil
	}
}

// resync re-bases the follower on the writer's current snapshot.
func (t *Tailer) resync(ctx context.Context) error {
	b, err := t.fetchSnapshot(ctx)
	if err != nil {
		return err
	}
	if err := t.cfg.Follower.Restore(ctx, b); err != nil {
		return fmt.Errorf("repl: restoring shipped snapshot: %w", err)
	}
	t.mu.Lock()
	t.resyncs++
	t.mu.Unlock()
	return nil
}

// fetchTail fetches one tail frame; gone=true reports a 410 WAL gap.
func (t *Tailer) fetchTail(ctx context.Context, from uint64) (persist.TailFrame, bool, error) {
	url := fmt.Sprintf("%s/v1/repl/wal?from=%d&max=%d", t.cfg.Upstream, from, t.cfg.MaxBatch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return persist.TailFrame{}, false, err
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return persist.TailFrame{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, resp.Body)
		return persist.TailFrame{}, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return persist.TailFrame{}, false, fmt.Errorf("repl: tail fetch: writer answered %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return persist.TailFrame{}, false, err
	}
	frame, err := persist.DecodeTailFrame(b)
	if err != nil {
		return persist.TailFrame{}, false, err
	}
	t.mu.Lock()
	t.fetchBytes += uint64(len(b))
	t.mu.Unlock()
	return frame, false, nil
}

// fetchSnapshot fetches the writer's newest snapshot, raw.
func (t *Tailer) fetchSnapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.cfg.Upstream+"/v1/repl/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("repl: snapshot fetch: writer answered %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.fetchBytes += uint64(len(b))
	t.mu.Unlock()
	return b, nil
}

func (t *Tailer) recordFrame(f persist.TailFrame) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fetches++
	t.upstreamSeq = f.LastSeq
	t.upstreamGen = f.WriterGen
	t.lastContact = time.Now()
}

func (t *Tailer) recordFailure(err error) {
	if errors.Is(err, context.Canceled) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failures++
	t.lastError = err.Error()
}

func (t *Tailer) clearError() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastError = ""
}

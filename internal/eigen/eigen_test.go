package eigen

import (
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func TestLambdaMaxClosedForms(t *testing.T) {
	// Complete graph K_n: eigenvalues {0, n (multiplicity n−1)}.
	kn := graph.Complete(10).ToCSR()
	lam, err := LambdaMax(kn, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-10) > 1e-6 {
		t.Fatalf("λmax(K10)=%g, want 10", lam)
	}
	// Star S_n: λmax = n.
	st := graph.Star(12).ToCSR()
	lam, err = LambdaMax(st, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-12) > 1e-6 {
		t.Fatalf("λmax(S12)=%g, want 12", lam)
	}
	// Cycle C_n: λmax = 2 − 2cos(2π⌊n/2⌋/n) = 4 for even n.
	cy := graph.Cycle(8).ToCSR()
	lam, err = LambdaMax(cy, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-4) > 1e-6 {
		t.Fatalf("λmax(C8)=%g, want 4", lam)
	}
}

func TestLambdaTwoClosedForms(t *testing.T) {
	// Complete graph: λ₂ = n.
	kn := graph.Complete(9).ToCSR()
	lam, err := LambdaTwo(kn, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-9) > 1e-5 {
		t.Fatalf("λ₂(K9)=%g, want 9", lam)
	}
	// Cycle C_n: λ₂ = 2 − 2cos(2π/n).
	n := 12
	cy := graph.Cycle(n).ToCSR()
	want := 2 - 2*math.Cos(2*math.Pi/float64(n))
	lam, err = LambdaTwo(cy, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-want)/want > 1e-4 {
		t.Fatalf("λ₂(C12)=%g, want %g", lam, want)
	}
	// Path P_n: λ₂ = 2 − 2cos(π/n).
	pn := graph.Path(n).ToCSR()
	wantP := 2 - 2*math.Cos(math.Pi/float64(n))
	lam, err = LambdaTwo(pn, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-wantP)/wantP > 1e-4 {
		t.Fatalf("λ₂(P12)=%g, want %g", lam, wantP)
	}
}

func TestTrivialSizes(t *testing.T) {
	if _, err := LambdaMax(graph.New(0).ToCSR(), Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
	lam, err := LambdaMax(graph.New(1).ToCSR(), Options{})
	if err != nil || lam != 0 {
		t.Fatal("single node λmax should be 0")
	}
	lam, err = LambdaTwo(graph.New(1).ToCSR(), Options{})
	if err != nil || lam != 0 {
		t.Fatal("single node λ₂ should be 0")
	}
	fv, err := FiedlerVector(graph.New(1).ToCSR(), Options{})
	if err != nil || len(fv) != 1 {
		t.Fatal("trivial fiedler")
	}
}

// Property: the spectral sandwich λ₂·I ⪯ L ⪯ λmax·I on 1⊥ forces
// r(u,v) ≤ 2/λ₂ and r(u,v) ≥ 2/λmax for every pair.
func TestQuickResistanceSpectralBounds(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(30, 2, seed)
		u, v := int(a)%30, int(b)%30
		if u == v {
			return true
		}
		csr := g.ToCSR()
		l2, err := LambdaTwo(csr, Options{Seed: seed})
		if err != nil {
			return false
		}
		lmax, err := LambdaMax(csr, Options{Seed: seed})
		if err != nil {
			return false
		}
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		r := linalg.Resistance(lp, u, v)
		return r <= 2/l2+1e-6 && r >= 2/lmax-1e-6 && l2 <= lmax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The Fiedler vector of a path orders the nodes monotonically along it.
func TestFiedlerVectorPath(t *testing.T) {
	n := 20
	fv, err := FiedlerVector(graph.Path(n).ToCSR(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	increasing, decreasing := true, true
	for i := 1; i < n; i++ {
		if fv[i] < fv[i-1] {
			increasing = false
		}
		if fv[i] > fv[i-1] {
			decreasing = false
		}
	}
	if !increasing && !decreasing {
		t.Fatalf("path Fiedler vector not monotone: %v", fv)
	}
	// Mean zero, unit norm.
	if math.Abs(linalg.Sum(fv)) > 1e-8 {
		t.Fatal("not mean zero")
	}
	if math.Abs(linalg.Norm2(fv)-1) > 1e-8 {
		t.Fatal("not normalized")
	}
}

// λ₂ sanity against the eccentricity bound of the library: c(v) ≤ 2/λ₂.
func TestLambdaTwoBoundsEccentricity(t *testing.T) {
	g := graph.Lollipop(8, 10)
	csr := g.ToCSR()
	l2, err := LambdaTwo(csr, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		c, _ := linalg.EccentricityFromPinv(lp, v)
		if c > 2/l2+1e-6 {
			t.Fatalf("c(%d)=%g exceeds 2/λ₂=%g", v, c, 2/l2)
		}
	}
}

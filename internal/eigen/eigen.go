// Package eigen provides the Laplacian extremal eigenvalues used for
// validation and diagnostics: the algebraic connectivity λ₂ (the smallest
// non-zero Laplacian eigenvalue) and the spectral radius λ_max.
//
// They bound every quantity in this library:
//
//	2/(n·λ_max)... ≤ r(u,v) ≤ 2/λ₂      (so c(v) ≤ 2/λ₂ and R(G) ≤ 2/λ₂)
//	Kf(G) = n·Σ_{k≥2} 1/λ_k ∈ [n(n−1)/λ_max, n(n−1)/λ₂]
//
// λ_max comes from plain power iteration on L; λ₂ from inverse power
// iteration (each step is one Laplacian solve on the subspace ⊥ 1, i.e. a
// largest-eigenvalue iteration on L†).
package eigen

import (
	"fmt"
	"math"
	"math/rand"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/solver"
)

// Options configures the iterations.
type Options struct {
	// Tol is the relative eigenvalue-change tolerance (default 1e-9).
	Tol float64
	// MaxIter caps the iterations (default 1000).
	MaxIter int
	// Seed fixes the random start vector.
	Seed int64
	// Solver configures the inner Laplacian solves (LambdaTwo only).
	Solver solver.Options
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	return o
}

// LambdaMax estimates the largest Laplacian eigenvalue by power iteration.
// For connected graphs λ_max ∈ (d_max, 2·d_max].
func LambdaMax(csr *graph.CSR, opt Options) (float64, error) {
	opt = opt.withDefaults()
	n := csr.N
	if n == 0 {
		return 0, fmt.Errorf("eigen: empty graph")
	}
	if n == 1 {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	lam := 0.0
	for it := 0; it < opt.MaxIter; it++ {
		csr.LapMul(x, y)
		next := linalg.Dot(x, y) // Rayleigh quotient
		norm := linalg.Norm2(y)
		if norm == 0 {
			return 0, nil
		}
		for i := range x {
			x[i] = y[i] / norm
		}
		if it > 0 && math.Abs(next-lam) <= opt.Tol*math.Abs(next) {
			return next, nil
		}
		lam = next
	}
	return lam, nil
}

// LambdaTwo estimates the algebraic connectivity λ₂ of a connected graph by
// inverse power iteration: repeated solves x ← L†x on the subspace ⊥ 1
// converge to the eigenvector of L†'s largest eigenvalue 1/λ₂ (the Fiedler
// vector).
func LambdaTwo(csr *graph.CSR, opt Options) (float64, error) {
	opt = opt.withDefaults()
	n := csr.N
	if n == 0 {
		return 0, fmt.Errorf("eigen: empty graph")
	}
	if n == 1 {
		return 0, nil
	}
	lap, err := solver.NewLap(csr, opt.Solver)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	linalg.ProjectOutOnes(x)
	normalize(x)
	mu := 0.0 // estimate of 1/λ₂
	for it := 0; it < opt.MaxIter; it++ {
		for i := range y {
			y[i] = 0
		}
		if _, err := lap.Solve(x, y); err != nil {
			return 0, fmt.Errorf("eigen: inverse iteration %d: %w", it, err)
		}
		next := linalg.Dot(x, y) // Rayleigh quotient of L†
		norm := linalg.Norm2(y)
		if norm == 0 {
			break
		}
		for i := range x {
			x[i] = y[i] / norm
		}
		linalg.ProjectOutOnes(x)
		normalize(x)
		if it > 0 && math.Abs(next-mu) <= opt.Tol*math.Abs(next) {
			mu = next
			break
		}
		mu = next
	}
	if mu <= 0 {
		return 0, fmt.Errorf("eigen: inverse iteration failed to converge to a positive eigenvalue")
	}
	return 1 / mu, nil
}

// FiedlerVector returns the (approximate) eigenvector of λ₂, useful for
// spectral bisection diagnostics. Normalized, mean zero.
func FiedlerVector(csr *graph.CSR, opt Options) ([]float64, error) {
	opt = opt.withDefaults()
	n := csr.N
	if n <= 1 {
		return make([]float64, n), nil
	}
	lap, err := solver.NewLap(csr, opt.Solver)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 2))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	linalg.ProjectOutOnes(x)
	normalize(x)
	prev := 0.0
	for it := 0; it < opt.MaxIter; it++ {
		for i := range y {
			y[i] = 0
		}
		if _, err := lap.Solve(x, y); err != nil {
			return nil, err
		}
		mu := linalg.Dot(x, y)
		norm := linalg.Norm2(y)
		if norm == 0 {
			break
		}
		for i := range x {
			x[i] = y[i] / norm
		}
		linalg.ProjectOutOnes(x)
		normalize(x)
		if it > 0 && math.Abs(mu-prev) <= opt.Tol*math.Abs(mu) {
			break
		}
		prev = mu
	}
	return x, nil
}

func normalize(x []float64) {
	n := linalg.Norm2(x)
	if n > 0 {
		linalg.Scale(1/n, x)
	}
}

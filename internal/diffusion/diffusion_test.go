package diffusion

import (
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/stats"
)

func TestSimulateSIBasics(t *testing.T) {
	g := graph.Star(10)
	res, err := SimulateSI(g, 0, SIOptions{Beta: 1, Seed: 1, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With β=1 from the hub, everything is infected after exactly 1 step.
	if res.MeanSaturation != 1 || res.Coverage != 1 {
		t.Fatalf("hub spread: %+v", res)
	}
	// From a leaf: leaf → hub (step 1) → all leaves (step 2).
	res, err = SimulateSI(g, 3, SIOptions{Beta: 1, Seed: 1, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanSaturation != 2 {
		t.Fatalf("leaf spread: %+v", res)
	}
	if res.MeanHalf > res.MeanSaturation {
		t.Fatal("half-coverage after saturation")
	}
}

func TestSimulateSIErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := SimulateSI(g, 9, SIOptions{}); err == nil {
		t.Fatal("seed range")
	}
	d := graph.New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateSI(d, 0, SIOptions{}); err == nil {
		t.Fatal("disconnected")
	}
}

func TestSIDeterministicInSeed(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, 3)
	a, err := SimulateSI(g, 5, SIOptions{Beta: 0.3, Seed: 9, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSI(g, 5, SIOptions{Beta: 0.3, Seed: 9, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSaturation != b.MeanSaturation || a.MeanHalf != b.MeanHalf {
		t.Fatal("not deterministic per seed")
	}
}

// The paper's reference-[20] claim, demonstrated end-to-end: resistance
// eccentricity positively rank-correlates with SI saturation time — central
// nodes (small c) saturate the network faster than peripheral ones (large c).
func TestEccentricityPredictsSpread(t *testing.T) {
	g := graph.ScaleFreeMixed(250, 1, 4, 0.3, 11)
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int, 0, 50)
	ecc := make([]float64, 0, 50)
	for v := 0; v < g.N(); v += 5 {
		c, _ := linalg.EccentricityFromPinv(lp, v)
		seeds = append(seeds, v)
		ecc = append(ecc, c)
	}
	sat, err := SaturationTimes(g, seeds, SIOptions{Beta: 0.25, Runs: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := stats.Spearman(ecc, sat)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.3 {
		t.Fatalf("resistance eccentricity should predict saturation time: ρ=%.3f", rho)
	}
}

func TestWalkSaturation(t *testing.T) {
	g := graph.Complete(8)
	hub, err := WalkSaturation(g, 0, 20, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Cover time of K8 ≈ n·H_{n−1} ≈ 8·2.59 ≈ 20.7; generous band.
	if hub < 8 || hub > 60 {
		t.Fatalf("K8 cover time %g outside plausible band", hub)
	}
	// Errors.
	if _, err := WalkSaturation(g, 99, 5, 0, 1); err == nil {
		t.Fatal("seed range")
	}
	if _, err := WalkSaturation(g, 0, 0, 0, 1); err == nil {
		t.Fatal("zero runs")
	}
	d := graph.New(2)
	if _, err := WalkSaturation(d, 0, 5, 0, 1); err == nil {
		t.Fatal("disconnected")
	}
}

// Package diffusion simulates spreading processes on graphs — the
// application context the paper cites for resistance eccentricity
// (reference [20]: identifying influential nodes for disease propagation).
// Resistance eccentricity, unlike hop eccentricity, accounts for all
// parallel transmission routes, so a node's c(v) predicts how quickly a
// spread seeded at v saturates the network; this package provides the
// simulators used to demonstrate that correlation empirically
// (examples/epidemic, TestEccentricityPredictsSpread).
package diffusion

import (
	"fmt"
	"math/rand"

	"resistecc/internal/graph"
)

// SIOptions configures an independent-cascade / SI spread.
type SIOptions struct {
	// Beta is the per-edge per-step transmission probability ∈ (0,1].
	Beta float64
	// MaxSteps caps the simulation length (0 = 4·n steps).
	MaxSteps int
	// Runs averages this many independent simulations (0 = 32).
	Runs int
	// Seed fixes the randomness.
	Seed int64
}

func (o SIOptions) withDefaults(n int) SIOptions {
	if o.Beta <= 0 || o.Beta > 1 {
		o.Beta = 0.5
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4*n + 16
	}
	if o.Runs <= 0 {
		o.Runs = 32
	}
	return o
}

// SIResult summarizes an averaged SI spread from one seed.
type SIResult struct {
	Seed int
	// MeanSaturation is the mean number of steps until every node is
	// infected (runs that never saturate within MaxSteps count as MaxSteps).
	MeanSaturation float64
	// MeanHalf is the mean number of steps until half the nodes are infected.
	MeanHalf float64
	// Coverage is the mean fraction of nodes infected at the horizon.
	Coverage float64
}

// SimulateSI runs a discrete-time susceptible–infected process from the
// given seed node: each step, every infected node independently infects
// each susceptible neighbour with probability Beta. Averages over Runs.
func SimulateSI(g *graph.Graph, seed int, opt SIOptions) (*SIResult, error) {
	n := g.N()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("diffusion: seed %d out of range (n=%d)", seed, n)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("diffusion: graph must be connected")
	}
	opt = opt.withDefaults(n)
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &SIResult{Seed: seed}
	infected := make([]bool, n)
	frontier := make([]int32, 0, n)
	next := make([]int32, 0, n)
	for run := 0; run < opt.Runs; run++ {
		for i := range infected {
			infected[i] = false
		}
		infected[seed] = true
		count := 1
		frontier = frontier[:0]
		frontier = append(frontier, int32(seed))
		half, sat := -1, -1
		step := 0
		for ; step < opt.MaxSteps && count < n && len(frontier) > 0; step++ {
			next = next[:0]
			for _, u := range frontier {
				for _, v := range g.Neighbors(int(u)) {
					if !infected[v] && rng.Float64() < opt.Beta {
						infected[v] = true
						count++
						next = append(next, v)
					}
				}
			}
			// Infected nodes keep transmitting: the new frontier is all
			// nodes that still have susceptible neighbours. For efficiency
			// approximate with newly infected + previous frontier nodes that
			// still border susceptibles.
			merged := next
			for _, u := range frontier {
				for _, v := range g.Neighbors(int(u)) {
					if !infected[v] {
						merged = append(merged, u)
						break
					}
				}
			}
			frontier = frontier[:0]
			frontier = append(frontier, merged...)
			if half < 0 && 2*count >= n {
				half = step + 1
			}
			if count == n {
				sat = step + 1
				break
			}
		}
		if half < 0 {
			half = opt.MaxSteps
		}
		if sat < 0 {
			sat = opt.MaxSteps
		}
		res.MeanHalf += float64(half)
		res.MeanSaturation += float64(sat)
		res.Coverage += float64(count) / float64(n)
	}
	res.MeanHalf /= float64(opt.Runs)
	res.MeanSaturation /= float64(opt.Runs)
	res.Coverage /= float64(opt.Runs)
	return res, nil
}

// SaturationTimes runs SimulateSI from every node in seeds and returns the
// mean saturation time per seed, aligned with the input order.
func SaturationTimes(g *graph.Graph, seeds []int, opt SIOptions) ([]float64, error) {
	out := make([]float64, len(seeds))
	for i, s := range seeds {
		o := opt
		o.Seed += int64(i) * 7919
		r, err := SimulateSI(g, s, o)
		if err != nil {
			return nil, err
		}
		out[i] = r.MeanSaturation
	}
	return out, nil
}

// WalkSaturation measures the "random-walk reach" of a seed: the mean number
// of steps for a single random walker started at the seed to visit every
// node (cover time from the seed), capped at MaxSteps. Slower than SI but
// directly tied to commute times, hence to resistance distances.
func WalkSaturation(g *graph.Graph, seed, runs, maxSteps int, rngSeed int64) (float64, error) {
	n := g.N()
	if seed < 0 || seed >= n {
		return 0, fmt.Errorf("diffusion: seed out of range")
	}
	if !g.Connected() {
		return 0, fmt.Errorf("diffusion: graph must be connected")
	}
	if runs <= 0 {
		return 0, fmt.Errorf("diffusion: need positive runs")
	}
	if maxSteps <= 0 {
		maxSteps = 50 * n * n
	}
	rng := rand.New(rand.NewSource(rngSeed))
	visited := make([]bool, n)
	total := 0.0
	for r := 0; r < runs; r++ {
		for i := range visited {
			visited[i] = false
		}
		visited[seed] = true
		remaining := n - 1
		cur := seed
		steps := 0
		for remaining > 0 && steps < maxSteps {
			nbrs := g.Neighbors(cur)
			cur = int(nbrs[rng.Intn(len(nbrs))])
			steps++
			if !visited[cur] {
				visited[cur] = true
				remaining--
			}
		}
		total += float64(steps)
	}
	return total / float64(runs), nil
}

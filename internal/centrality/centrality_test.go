package centrality

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/sketch"
)

func TestClosenessStar(t *testing.T) {
	g := graph.Star(6)
	c := Closeness(g)
	// Hub: distances all 1 → (n−1)/(n−1) = 1. Leaf: 1 + 4·2 = 9 → 5/9.
	if math.Abs(c[0]-1) > 1e-12 {
		t.Fatalf("hub closeness %g", c[0])
	}
	for v := 1; v < 6; v++ {
		if math.Abs(c[v]-5.0/9) > 1e-12 {
			t.Fatalf("leaf closeness %g", c[v])
		}
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c := Closeness(g)
	if c[2] != 0 {
		t.Fatalf("isolated node closeness %g", c[2])
	}
	if c[0] != 1 { // one reachable node at distance 1
		t.Fatalf("c[0]=%g", c[0])
	}
}

func TestHarmonicPath(t *testing.T) {
	g := graph.Path(4)
	h := Harmonic(g)
	want0 := 1.0 + 0.5 + 1.0/3
	if math.Abs(h[0]-want0) > 1e-12 {
		t.Fatalf("h[0]=%g want %g", h[0], want0)
	}
	want1 := 1.0 + 1.0 + 0.5
	if math.Abs(h[1]-want1) > 1e-12 {
		t.Fatalf("h[1]=%g want %g", h[1], want1)
	}
}

func TestCurrentFlowClosenessStar(t *testing.T) {
	g := graph.Star(8)
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	cf := CurrentFlowCloseness(lp)
	// Hub: Σ_u r = 7 → 7/7 = 1; leaf: 1 + 6·2 = 13 → 7/13.
	if math.Abs(cf[0]-1) > 1e-9 {
		t.Fatalf("hub CF %g", cf[0])
	}
	for v := 1; v < 8; v++ {
		if math.Abs(cf[v]-7.0/13) > 1e-9 {
			t.Fatalf("leaf CF %g", cf[v])
		}
	}
}

// CF from the closed form must equal the brute-force (n−1)/Σ r(v,u).
func TestQuickCurrentFlowBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(25, 2, seed)
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		cf := CurrentFlowCloseness(lp)
		for v := 0; v < 25; v++ {
			sum := 0.0
			for u := 0; u < 25; u++ {
				if u != v {
					sum += linalg.Resistance(lp, v, u)
				}
			}
			if math.Abs(cf[v]-24/sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxCurrentFlowTracksExact(t *testing.T) {
	g := graph.ScaleFreeMixed(300, 1, 5, 0.3, 4)
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	exact := CurrentFlowCloseness(lp)
	sk, err := sketch.NewContext(context.Background(), g.ToCSR(), sketch.Options{Epsilon: 0.3, Dim: 256, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	approx := ApproxCurrentFlowCloseness(sk)
	worst := 0.0
	for v := range exact {
		rel := math.Abs(approx[v]-exact[v]) / exact[v]
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst relative error %.3f", worst)
	}
	// Rankings should agree at the top.
	te, err := Top(exact, 5)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := Top(approx, 5)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, a := range ta {
		for _, e := range te {
			if a == e {
				agree++
			}
		}
	}
	if agree < 3 {
		t.Fatalf("top-5 overlap only %d (exact %v vs approx %v)", agree, te, ta)
	}
}

func TestTop(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7}
	top, err := Top(scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 1 || top[1] != 3 {
		t.Fatalf("top %v", top)
	}
	if _, err := Top(scores, 9); err == nil {
		t.Fatal("k too large")
	}
	if _, err := Top(scores, -1); err == nil {
		t.Fatal("negative k")
	}
	empty, err := Top(scores, 0)
	if err != nil || len(empty) != 0 {
		t.Fatal("k=0")
	}
}

func TestTrivialSizes(t *testing.T) {
	lp, err := linalg.Pseudoinverse(graph.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if cf := CurrentFlowCloseness(lp); cf[0] != 0 {
		t.Fatal("single node CF should be 0")
	}
}

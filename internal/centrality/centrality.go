// Package centrality implements the node-importance measures the paper's
// introduction situates resistance eccentricity against: classical closeness
// and harmonic centrality (shortest-path based, refs [16]) and current-flow
// closeness a.k.a. information centrality (resistance based, refs [10],
// [19]).
//
// Current-flow closeness of v is
//
//	CF(v) = (n−1) / Σ_u r(v,u) = (n−1) / (n·L†_vv + tr(L†)),
//
// exact from the pseudoinverse in O(n) per node after preprocessing, or
// approximated from the same JL sketch FASTQUERY uses (the column norms of
// X̃ estimate the diagonal of L†).
package centrality

import (
	"fmt"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/sketch"
)

// Closeness returns classical closeness centrality
// C(v) = (n−1)/Σ_u d_hop(v,u) for all nodes, by n BFS traversals (O(nm)).
// Disconnected pairs contribute nothing (their nodes get centrality of the
// reachable part only; 0 if nothing is reachable).
func Closeness(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		dist := g.BFS(v)
		sum, reach := 0, 0
		for u, d := range dist {
			if u != v && d > 0 {
				sum += d
				reach++
			}
		}
		if sum > 0 {
			out[v] = float64(reach) / float64(sum)
		}
	}
	return out
}

// Harmonic returns harmonic centrality H(v) = Σ_{u≠v} 1/d_hop(v,u)
// (with 1/∞ = 0), robust to disconnection.
func Harmonic(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		dist := g.BFS(v)
		h := 0.0
		for u, d := range dist {
			if u != v && d > 0 {
				h += 1 / float64(d)
			}
		}
		out[v] = h
	}
	return out
}

// CurrentFlowCloseness computes information centrality exactly for all nodes
// from a precomputed Laplacian pseudoinverse: O(n) total after the O(n³)
// preprocessing.
func CurrentFlowCloseness(lp *linalg.Dense) []float64 {
	n := lp.N
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	tr := 0.0
	for i := 0; i < n; i++ {
		tr += lp.At(i, i)
	}
	for v := 0; v < n; v++ {
		denom := float64(n)*lp.At(v, v) + tr
		if denom > 0 {
			out[v] = float64(n-1) / denom
		}
	}
	return out
}

// ApproxCurrentFlowCloseness estimates information centrality for all nodes
// from a resistance sketch in O(n·d) total: the diagonal L†_vv is estimated
// by ‖X̃ e_v − mean column‖²-style identities. Concretely, with the columns
// x_v = X̃e_v we use r(u,v) ≈ ‖x_u − x_v‖² and
//
//	Σ_u r(v,u) = n‖x_v‖² + Σ_u‖x_u‖² − 2 x_vᵀ Σ_u x_u,
//
// computed with one pass of running sums.
func ApproxCurrentFlowCloseness(sk *sketch.Sketch) []float64 {
	n := sk.N
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	d := sk.Dim
	sumVec := make([]float64, d)
	sumSq := 0.0
	for v := 0; v < n; v++ {
		p := sk.Point(v)
		for i, x := range p {
			sumVec[i] += x
		}
		sumSq += dot(p, p)
	}
	for v := 0; v < n; v++ {
		p := sk.Point(v)
		total := float64(n)*dot(p, p) + sumSq - 2*dot(p, sumVec)
		if total > 0 {
			out[v] = float64(n-1) / total
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Top returns the indices of the k highest-scoring nodes (ties broken by
// index), for ranking-style comparisons.
func Top(scores []float64, k int) ([]int, error) {
	if k < 0 || k > len(scores) {
		return nil, fmt.Errorf("centrality: k=%d out of range (n=%d)", k, len(scores))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection: k is usually small.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k], nil
}

package solver

import (
	"fmt"
	"sort"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

// WeightedCSR is a CSR snapshot of a weighted undirected graph, the output
// form of the spectral sparsifier. Row u's neighbours are
// Col[Ptr[u]:Ptr[u+1]] with positive weights W in the same positions.
type WeightedCSR struct {
	Ptr []int32
	Col []int32
	W   []float64
	N   int
	M   int // number of undirected weighted edges
}

// NewWeightedCSR assembles a weighted CSR from canonical (u < v) edges and
// weights. Duplicate edges are merged by summing their weights.
func NewWeightedCSR(n int, edges []graph.Edge, weights []float64) (*WeightedCSR, error) {
	if len(edges) != len(weights) {
		return nil, fmt.Errorf("solver: %d edges but %d weights", len(edges), len(weights))
	}
	merged := make(map[graph.Edge]float64, len(edges))
	for i, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("solver: self-loop %v", e)
		}
		if e.U < 0 || e.V < 0 || e.U >= n || e.V >= n {
			return nil, fmt.Errorf("solver: edge %v out of range (n=%d)", e, n)
		}
		if weights[i] <= 0 {
			return nil, fmt.Errorf("solver: non-positive weight %g on %v", weights[i], e)
		}
		merged[e.Canon()] += weights[i]
	}
	keys := make([]graph.Edge, 0, len(merged))
	for e := range merged {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].U != keys[b].U {
			return keys[a].U < keys[b].U
		}
		return keys[a].V < keys[b].V
	})
	deg := make([]int32, n+1)
	for _, e := range keys {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	w := &WeightedCSR{
		Ptr: deg,
		Col: make([]int32, 2*len(keys)),
		W:   make([]float64, 2*len(keys)),
		N:   n,
		M:   len(keys),
	}
	fill := make([]int32, n)
	copy(fill, w.Ptr[:n])
	for _, e := range keys {
		we := merged[e]
		w.Col[fill[e.U]] = int32(e.V)
		w.W[fill[e.U]] = we
		fill[e.U]++
		w.Col[fill[e.V]] = int32(e.U)
		w.W[fill[e.V]] = we
		fill[e.V]++
	}
	return w, nil
}

// Edges returns the canonical edge list and weights.
func (w *WeightedCSR) Edges() ([]graph.Edge, []float64) {
	edges := make([]graph.Edge, 0, w.M)
	weights := make([]float64, 0, w.M)
	for u := 0; u < w.N; u++ {
		for i := w.Ptr[u]; i < w.Ptr[u+1]; i++ {
			if int32(u) < w.Col[i] {
				edges = append(edges, graph.Edge{U: u, V: int(w.Col[i])})
				weights = append(weights, w.W[i])
			}
		}
	}
	return edges, weights
}

// LapMul computes y = L_w·x for the weighted Laplacian.
func (w *WeightedCSR) LapMul(x, y []float64) {
	for u := 0; u < w.N; u++ {
		s, d := 0.0, 0.0
		for i := w.Ptr[u]; i < w.Ptr[u+1]; i++ {
			s += w.W[i] * x[w.Col[i]]
			d += w.W[i]
		}
		y[u] = d*x[u] - s
	}
}

// WeightedLap is a preconditioned-CG solver for weighted Laplacians,
// mirroring Lap for the sparsifier outputs. Jacobi preconditioning with the
// weighted degrees. Not safe for concurrent use.
type WeightedLap struct {
	csr         *WeightedCSR
	opt         Options
	invD        []float64
	r, p, ap, z []float64
}

// NewWeightedLap builds the solver; isolated (zero-weighted-degree) nodes
// are rejected.
func NewWeightedLap(csr *WeightedCSR, opt Options) (*WeightedLap, error) {
	n := csr.N
	s := &WeightedLap{
		csr:  csr,
		opt:  opt.withDefaults(n),
		invD: make([]float64, n),
		r:    make([]float64, n),
		p:    make([]float64, n),
		ap:   make([]float64, n),
		z:    make([]float64, n),
	}
	for u := 0; u < n; u++ {
		d := 0.0
		for i := csr.Ptr[u]; i < csr.Ptr[u+1]; i++ {
			d += csr.W[i]
		}
		if d <= 0 && n > 1 {
			return nil, fmt.Errorf("solver: node %d isolated in weighted graph", u)
		}
		if d > 0 {
			s.invD[u] = 1 / d
		}
	}
	return s, nil
}

// Solve computes x = L_w† b; semantics match Lap.Solve.
func (s *WeightedLap) Solve(b, x []float64) (int, error) {
	n := s.csr.N
	if len(b) != n || len(x) != n {
		return 0, fmt.Errorf("solver: dimension mismatch")
	}
	if n == 0 {
		return 0, nil
	}
	rhs := append([]float64(nil), b...)
	linalg.ProjectOutOnes(rhs)
	bnorm := linalg.Norm2(rhs)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	linalg.ProjectOutOnes(x)
	r, p, ap, z := s.r, s.p, s.ap, s.z
	s.csr.LapMul(x, ap)
	for i := range r {
		r[i] = rhs[i] - ap[i]
	}
	for i := range z {
		z[i] = r[i] * s.invD[i]
	}
	copy(p, z)
	rz := linalg.Dot(r, z)
	tol := s.opt.Tol * bnorm
	iter := 0
	for ; iter < s.opt.MaxIter; iter++ {
		if linalg.Norm2(r) <= tol {
			break
		}
		s.csr.LapMul(p, ap)
		pap := linalg.Dot(p, ap)
		if pap <= 0 {
			linalg.ProjectOutOnes(p)
			s.csr.LapMul(p, ap)
			pap = linalg.Dot(p, ap)
			if pap <= 0 {
				break
			}
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		if iter%64 == 63 {
			linalg.ProjectOutOnes(x)
			linalg.ProjectOutOnes(r)
		}
		for i := range z {
			z[i] = r[i] * s.invD[i]
		}
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	linalg.ProjectOutOnes(x)
	if linalg.Norm2(r) > tol*4 && iter >= s.opt.MaxIter {
		return iter, fmt.Errorf("%w: weighted solve, %d iterations", ErrNoConvergence, iter)
	}
	return iter, nil
}

// Resistance returns the weighted effective resistance between u and v.
func (s *WeightedLap) Resistance(u, v int) (float64, error) {
	n := s.csr.N
	b := make([]float64, n)
	b[u], b[v] = 1, -1
	x := make([]float64, n)
	if _, err := s.Solve(b, x); err != nil {
		return 0, err
	}
	r := x[u] - x[v]
	if r < 0 {
		r = 0
	}
	return r, nil
}

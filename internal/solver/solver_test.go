package solver

import (
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func solveOnce(t *testing.T, g *graph.Graph, opt Options, b []float64) []float64 {
	t.Helper()
	lap, err := NewLap(g.ToCSR(), opt)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.N())
	if _, err := lap.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	return x
}

func TestSolveMatchesPseudoinverse(t *testing.T) {
	for _, pc := range []Preconditioner{None, Jacobi, SGS} {
		g := graph.BarabasiAlbert(60, 3, 5)
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, g.N())
		b[3], b[40] = 1, -1
		x := solveOnce(t, g, Options{Precond: pc}, b)
		// Expected: L†b = column 3 − column 40 of L†.
		for i := 0; i < g.N(); i++ {
			want := lp.At(i, 3) - lp.At(i, 40)
			if !almostEq(x[i], want, 1e-7) {
				t.Fatalf("precond %v: x[%d]=%g, want %g", pc, i, x[i], want)
			}
		}
	}
}

func TestSolvePathIllConditioned(t *testing.T) {
	// Long paths are the worst case for CG conditioning.
	g := graph.Path(400)
	b := make([]float64, 400)
	b[0], b[399] = 1, -1
	x := solveOnce(t, g, Options{Precond: Jacobi}, b)
	// r(0, 399) = 399.
	if r := x[0] - x[399]; !almostEq(r, 399, 1e-5) {
		t.Fatalf("path resistance via solve: %g, want 399", r)
	}
}

func TestResistanceHelper(t *testing.T) {
	g := graph.Cycle(10)
	lap, err := NewLap(g.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := lap.Resistance(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 2.5, 1e-8) { // k(L−k)/L = 5·5/10
		t.Fatalf("cycle r(0,5)=%g, want 2.5", r)
	}
}

func TestSolveZeroRHS(t *testing.T) {
	g := graph.Star(6)
	lap, err := NewLap(g.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	x := make([]float64, 6)
	x[0] = 99 // stale initial guess must be cleared
	iters, err := lap.Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 {
		t.Fatalf("zero rhs should take 0 iterations, got %d", iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("x=%v, want zeros", x)
		}
	}
}

func TestSolveConstantRHSProjected(t *testing.T) {
	// b = 1 is entirely in the null space; the projected system is b=0.
	g := graph.Complete(5)
	lap, err := NewLap(g.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 1, 1, 1, 1}
	x := make([]float64, 5)
	if _, err := lap.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if !almostEq(v, 0, 1e-12) {
			t.Fatalf("x=%v", x)
		}
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	g := graph.Path(4)
	lap, err := NewLap(g.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lap.Solve(make([]float64, 3), make([]float64, 4)); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestIsolatedNodeRejected(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLap(g.ToCSR(), Options{}); err == nil {
		t.Fatal("isolated node must be rejected")
	}
}

func TestMaxIterFailure(t *testing.T) {
	g := graph.Path(300)
	lap, err := NewLap(g.ToCSR(), Options{MaxIter: 3, Precond: None})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 300)
	b[0], b[299] = 1, -1
	x := make([]float64, 300)
	if _, err := lap.Solve(b, x); err == nil {
		t.Fatal("3 iterations cannot solve a 300-path; expected ErrNoConvergence")
	}
}

func TestColumnsBatch(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 9)
	csr := g.ToCSR()
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([][]float64, 3)
	for i := range rhs {
		rhs[i] = make([]float64, 40)
		rhs[i][i], rhs[i][20+i] = 1, -1
	}
	if err := Columns(csr, Options{}, rhs); err != nil {
		t.Fatal(err)
	}
	for i := range rhs {
		want := lp.At(5, i) - lp.At(5, 20+i)
		if !almostEq(rhs[i][5], want, 1e-7) {
			t.Fatalf("batch col %d: %g want %g", i, rhs[i][5], want)
		}
	}
}

func TestResidualNorm(t *testing.T) {
	g := graph.Cycle(6)
	csr := g.ToCSR()
	b := make([]float64, 6)
	b[0], b[3] = 1, -1
	x := solveOnce(t, g, Options{}, b)
	if rn := ResidualNorm(csr, b, x); rn > 1e-8 {
		t.Fatalf("residual %g", rn)
	}
}

// Property: solver resistance equals pseudoinverse resistance on random
// scale-free graphs, for every preconditioner.
func TestQuickSolverResistance(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(30, 2, seed)
		u, v := int(a)%30, int(b)%30
		if u == v {
			return true
		}
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		want := linalg.Resistance(lp, u, v)
		for _, pc := range []Preconditioner{None, Jacobi, SGS} {
			lap, err := NewLap(g.ToCSR(), Options{Precond: pc})
			if err != nil {
				return false
			}
			got, err := lap.Resistance(u, v)
			if err != nil {
				return false
			}
			if !almostEq(got, want, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPreconditionerString(t *testing.T) {
	if None.String() != "none" || Jacobi.String() != "jacobi" || SGS.String() != "sgs" {
		t.Fatal("stringer broken")
	}
	if Preconditioner(9).String() == "" {
		t.Fatal("unknown preconditioner should still print")
	}
}

func TestLastStats(t *testing.T) {
	g := graph.BarabasiAlbert(80, 3, 7)
	lap, err := NewLap(g.ToCSR(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	b[0], b[50] = 1, -1
	x := make([]float64, g.N())
	iters, err := lap.Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	gotIters, res := lap.LastStats()
	if gotIters != iters {
		t.Fatalf("LastStats iters %d, Solve returned %d", gotIters, iters)
	}
	if iters <= 0 {
		t.Fatalf("expected positive iteration count, got %d", iters)
	}
	if res < 0 || res > DefaultTol*4 {
		t.Fatalf("relative residual %g outside [0, 4·tol]", res)
	}
	// A zero RHS short-circuits and resets the stats.
	zero := make([]float64, g.N())
	if _, err := lap.Solve(zero, x); err != nil {
		t.Fatal(err)
	}
	if gotIters, res = lap.LastStats(); gotIters != 0 || res != 0 {
		t.Fatalf("zero-RHS stats = (%d, %g), want (0, 0)", gotIters, res)
	}
}

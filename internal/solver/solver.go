// Package solver provides the Laplacian linear-system substrate that the
// paper obtains from an off-the-shelf SDD solver (Kyng–Sachdeva approximate
// Gaussian elimination, reference [80]). We hand-roll a preconditioned
// Conjugate Gradient over CSR Laplacians instead: per-iteration cost is
// O(m), the solution is exact in the limit, and the calling code (APPROXER,
// FASTQUERY, the optimization loops) is agnostic to which SDD solver sits
// underneath. See DESIGN.md, "Substitutions".
//
// Laplacians are symmetric positive semidefinite with null space span{1}
// (for connected graphs). All solves here assume a connected graph, project
// the right-hand side and iterates onto 1⊥, and return the mean-zero
// (pseudoinverse) solution x = L†b.
package solver

import (
	"errors"
	"fmt"
	"math"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

// Preconditioner selects the CG preconditioner.
type Preconditioner int

const (
	// None runs plain CG.
	None Preconditioner = iota
	// Jacobi preconditions with the degree diagonal D⁻¹ — essentially free
	// and effective on the irregular-degree scale-free graphs studied here.
	Jacobi
	// SGS preconditions with the symmetric Gauss–Seidel splitting
	// M = (D+Lo) D⁻¹ (D+Lo)ᵀ where Lo is the strict lower triangle of L.
	// One application costs one forward plus one backward sweep (O(m)).
	SGS
)

// String implements fmt.Stringer.
func (p Preconditioner) String() string {
	switch p {
	case None:
		return "none"
	case Jacobi:
		return "jacobi"
	case SGS:
		return "sgs"
	default:
		return fmt.Sprintf("Preconditioner(%d)", int(p))
	}
}

// Options configures a Laplacian solve.
type Options struct {
	// Tol is the relative residual target ‖b − Lx‖ ≤ Tol·‖b‖. Zero means
	// the DefaultTol.
	Tol float64
	// MaxIter caps CG iterations; zero means 10n + 100.
	MaxIter int
	// Precond selects the preconditioner; default Jacobi.
	Precond Preconditioner
}

// DefaultTol is the default relative residual target. 1e-10 keeps the solver
// error far below the ε-approximation error of the JL sketch, so sketch
// accuracy is governed by dimension alone.
const DefaultTol = 1e-10

func (o Options) withDefaults(n int) Options {
	if o.Tol <= 0 {
		o.Tol = DefaultTol
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10*n + 100
	}
	return o
}

// ErrNoConvergence reports that CG hit MaxIter before reaching Tol.
var ErrNoConvergence = errors.New("solver: conjugate gradient did not converge")

// Lap is a reusable Laplacian solver bound to one CSR snapshot.
// It owns scratch buffers, so a single Lap must not be used concurrently;
// create one per goroutine (they share the read-only CSR).
type Lap struct {
	csr  *graph.CSR
	opt  Options
	invD []float64 // 1/degree, Jacobi scaling
	// scratch
	r, p, ap, z []float64
	// last-solve diagnostics (see LastStats); single-goroutine like scratch
	lastIters    int
	lastResidual float64
}

// NewLap builds a solver for the Laplacian of csr. Graphs with isolated
// nodes (degree 0) are rejected: the paper's graphs are connected.
func NewLap(csr *graph.CSR, opt Options) (*Lap, error) {
	n := csr.N
	s := &Lap{
		csr:  csr,
		opt:  opt.withDefaults(n),
		invD: make([]float64, n),
		r:    make([]float64, n),
		p:    make([]float64, n),
		ap:   make([]float64, n),
		z:    make([]float64, n),
	}
	for u := 0; u < n; u++ {
		d := csr.Degree(u)
		if d == 0 && n > 1 {
			return nil, fmt.Errorf("solver: node %d is isolated; Laplacian solve requires a connected graph: %w",
				u, graph.ErrDisconnected)
		}
		if d > 0 {
			s.invD[u] = 1 / float64(d)
		}
	}
	return s, nil
}

// Solve computes x = L†b for b ⊥ 1 (b is projected if not). x must have
// length n and provides the initial guess; pass a zero slice for a cold
// start. Returns the iteration count used.
func (s *Lap) Solve(b, x []float64) (int, error) {
	n := s.csr.N
	if len(b) != n || len(x) != n {
		return 0, fmt.Errorf("solver: dimension mismatch: n=%d len(b)=%d len(x)=%d", n, len(b), len(x))
	}
	if n == 0 {
		return 0, nil
	}
	// Work on a projected copy of b; callers keep their buffer.
	rhs := append([]float64(nil), b...)
	linalg.ProjectOutOnes(rhs)
	bnorm := linalg.Norm2(rhs)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		s.lastIters, s.lastResidual = 0, 0
		return 0, nil
	}
	linalg.ProjectOutOnes(x)

	r, p, ap, z := s.r, s.p, s.ap, s.z
	s.csr.LapMul(x, ap)
	for i := range r {
		r[i] = rhs[i] - ap[i]
	}
	s.applyPrecond(r, z)
	copy(p, z)
	rz := linalg.Dot(r, z)
	tol := s.opt.Tol * bnorm

	iter := 0
	for ; iter < s.opt.MaxIter; iter++ {
		if linalg.Norm2(r) <= tol {
			break
		}
		s.csr.LapMul(p, ap)
		pap := linalg.Dot(p, ap)
		if pap <= 0 {
			// p has drifted into the null space; re-project and restart.
			linalg.ProjectOutOnes(p)
			s.csr.LapMul(p, ap)
			pap = linalg.Dot(p, ap)
			if pap <= 0 {
				break
			}
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		// Keep the iterate and residual orthogonal to 1 against round-off.
		if iter%64 == 63 {
			linalg.ProjectOutOnes(x)
			linalg.ProjectOutOnes(r)
		}
		s.applyPrecond(r, z)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	linalg.ProjectOutOnes(x)
	res := linalg.Norm2(r)
	s.lastIters, s.lastResidual = iter, res/bnorm
	if res > tol*4 && iter >= s.opt.MaxIter {
		return iter, fmt.Errorf("%w: %d iterations, residual %.3e (target %.3e)",
			ErrNoConvergence, iter, res, tol)
	}
	return iter, nil
}

// LastStats reports the iteration count and relative residual
// ‖b − Lx‖/‖b‖ of the most recent Solve. Like the scratch buffers, these
// are per-Lap state: read them from the goroutine that called Solve.
func (s *Lap) LastStats() (iters int, relResidual float64) {
	return s.lastIters, s.lastResidual
}

//recclint:hotpath
func (s *Lap) applyPrecond(r, z []float64) {
	switch s.opt.Precond {
	case None:
		copy(z, r)
	case Jacobi:
		for i := range z {
			z[i] = r[i] * s.invD[i]
		}
	case SGS:
		s.applySGS(r, z)
	default:
		copy(z, r)
	}
}

// applySGS solves M z = r with M = (D+Lo) D⁻¹ (D+Lo)ᵀ: a forward sweep with
// the lower triangle, a diagonal scaling, then a backward sweep with the
// upper triangle. Off-diagonal Laplacian entries are all −1 on neighbours.
//
//recclint:hotpath
func (s *Lap) applySGS(r, z []float64) {
	csr := s.csr
	n := csr.N
	// Forward: (D + Lo) y = r, Lo_{uv} = −1 for neighbours v < u.
	y := s.ap // reuse scratch; LapMul is not in flight during precond
	for u := 0; u < n; u++ {
		sum := r[u]
		for _, v := range csr.Neighbors(u) {
			if int(v) < u {
				sum += y[v]
			}
		}
		y[u] = sum * s.invD[u]
	}
	// Diagonal: y ← D y  (cancels with the scaling below; combined form)
	// Backward: (D + Up) z = D y.
	for u := n - 1; u >= 0; u-- {
		sum := y[u] / s.invD[u]
		for _, v := range csr.Neighbors(u) {
			if int(v) > u {
				sum += z[v]
			}
		}
		z[u] = sum * s.invD[u]
	}
}

// Resistance computes r(u,v) exactly (to solver tolerance) with a single
// solve: r(u,v) = bᵀL†b for b = e_u − e_v.
func (s *Lap) Resistance(u, v int) (float64, error) {
	n := s.csr.N
	b := make([]float64, n)
	b[u], b[v] = 1, -1
	x := make([]float64, n)
	if _, err := s.Solve(b, x); err != nil {
		return 0, err
	}
	r := x[u] - x[v]
	if r < 0 {
		r = 0 // round-off guard; effective resistance is non-negative
	}
	return r, nil
}

// Columns solves L x_i = b_i for a batch of right-hand sides, writing each
// solution over its input row. Rows are independent solves sharing the CSR.
func Columns(csr *graph.CSR, opt Options, rhs [][]float64) error {
	lap, err := NewLap(csr, opt)
	if err != nil {
		return err
	}
	x := make([]float64, csr.N)
	for i := range rhs {
		for j := range x {
			x[j] = 0
		}
		if _, err := lap.Solve(rhs[i], x); err != nil {
			return fmt.Errorf("solver: batch column %d: %w", i, err)
		}
		copy(rhs[i], x)
	}
	return nil
}

// ResidualNorm returns ‖b − Lx‖₂ for diagnostics and tests.
func ResidualNorm(csr *graph.CSR, b, x []float64) float64 {
	ap := make([]float64, csr.N)
	csr.LapMul(x, ap)
	s := 0.0
	for i := range ap {
		d := b[i] - ap[i]
		s += d * d
	}
	return math.Sqrt(s)
}

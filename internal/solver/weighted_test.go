package solver

import (
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func unitWeighted(t *testing.T, g *graph.Graph) *WeightedCSR {
	t.Helper()
	edges := g.Edges()
	ws := make([]float64, len(edges))
	for i := range ws {
		ws[i] = 1
	}
	h, err := NewWeightedCSR(g.N(), edges, ws)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestWeightedCSRShape(t *testing.T) {
	g := graph.Star(5)
	h := unitWeighted(t, g)
	if h.N != 5 || h.M != 4 {
		t.Fatalf("shape %d/%d", h.N, h.M)
	}
	edges, ws := h.Edges()
	if len(edges) != 4 || len(ws) != 4 {
		t.Fatal("edge export")
	}
	// Weighted LapMul equals unweighted LapMul at unit weights.
	x := []float64{1, 2, 3, 4, 5}
	yw := make([]float64, 5)
	yu := make([]float64, 5)
	h.LapMul(x, yw)
	g.ToCSR().LapMul(x, yu)
	for i := range yw {
		if math.Abs(yw[i]-yu[i]) > 1e-15 {
			t.Fatalf("LapMul mismatch at %d: %g vs %g", i, yw[i], yu[i])
		}
	}
}

func TestWeightedSolveAgainstDense(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 6)
	h := unitWeighted(t, g)
	wl, err := NewWeightedLap(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	b[2], b[30] = 1, -1
	x := make([]float64, 40)
	if _, err := wl.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		want := lp.At(i, 2) - lp.At(i, 30)
		if math.Abs(x[i]-want) > 1e-7 {
			t.Fatalf("x[%d]=%g want %g", i, x[i], want)
		}
	}
}

func TestWeightedSolveEdgeCases(t *testing.T) {
	g := graph.Cycle(6)
	h := unitWeighted(t, g)
	wl, err := NewWeightedLap(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero RHS.
	x := make([]float64, 6)
	x[0] = 42
	iters, err := wl.Solve(make([]float64, 6), x)
	if err != nil || iters != 0 || x[0] != 0 {
		t.Fatalf("zero rhs: iters=%d x=%v err=%v", iters, x, err)
	}
	// Dimension mismatch.
	if _, err := wl.Solve(make([]float64, 3), x); err == nil {
		t.Fatal("dimension mismatch")
	}
	// Weighted resistance on a weighted triangle: edge (0,1) weight 2 in
	// parallel with path 0-2-1 (weights 1,1 → resistance 2):
	// r = (1/2 series? no): conductances: direct branch conductance 2,
	// path branch resistance 2 → total conductance 2 + 1/2 → r = 0.4.
	tri, err := NewWeightedCSR(3,
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}},
		[]float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	twl, err := NewWeightedLap(tri, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := twl.Resistance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.4) > 1e-9 {
		t.Fatalf("weighted triangle r=%g, want 0.4", r)
	}
}

// Property: unit-weight WeightedLap matches Lap on random graphs and pairs.
func TestQuickWeightedMatchesUnweighted(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(25, 2, seed)
		u, v := int(a)%25, int(b)%25
		if u == v {
			return true
		}
		edges := g.Edges()
		ws := make([]float64, len(edges))
		for i := range ws {
			ws[i] = 1
		}
		h, err := NewWeightedCSR(25, edges, ws)
		if err != nil {
			return false
		}
		wl, err := NewWeightedLap(h, Options{})
		if err != nil {
			return false
		}
		ul, err := NewLap(g.ToCSR(), Options{})
		if err != nil {
			return false
		}
		rw, err := wl.Resistance(u, v)
		if err != nil {
			return false
		}
		ru, err := ul.Resistance(u, v)
		if err != nil {
			return false
		}
		return math.Abs(rw-ru) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Scaling property: multiplying all weights by c divides resistances by c.
func TestQuickWeightScaling(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(20, 2, seed)
		edges := g.Edges()
		w1 := make([]float64, len(edges))
		w3 := make([]float64, len(edges))
		for i := range w1 {
			w1[i], w3[i] = 1, 3
		}
		h1, err := NewWeightedCSR(20, edges, w1)
		if err != nil {
			return false
		}
		h3, err := NewWeightedCSR(20, edges, w3)
		if err != nil {
			return false
		}
		l1, err := NewWeightedLap(h1, Options{})
		if err != nil {
			return false
		}
		l3, err := NewWeightedLap(h3, Options{})
		if err != nil {
			return false
		}
		r1, err := l1.Resistance(0, 10)
		if err != nil {
			return false
		}
		r3, err := l3.Resistance(0, 10)
		if err != nil {
			return false
		}
		return math.Abs(r3-r1/3) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

//recclint:deterministic — incremental updates feed the served sketch; no wall clock or unseeded randomness.

// Incremental sketch maintenance under single-edge graph mutations.
//
// The sketch is X̃ = M·L† with M = Q·B fixed at build time. Adding the edge
// (u,v) replaces L by L' = L + bbᵀ with b = e_u − e_v, and Sherman–Morrison
// on the pseudoinverse (restricted to 1⊥, where L is invertible) gives
//
//	L'† = L† − (L†b)(L†b)ᵀ / (1 + bᵀL†b),
//
// so the updated embedding M·L'† follows from the current one by a rank-1
// correction: with x = L†b (one Laplacian solve on the *old* graph) and
// r = bᵀL†b = x[u] − x[v] (the effective resistance r(u,v)),
//
//	pts'[w] = pts[w] − (x[w] / (1+r)) · (pts[u] − pts[v]).
//
// Removing an edge is the same identity with the opposite sign and 1 − r in
// the denominator, valid only while r < 1 (r = 1 exactly when the edge is a
// bridge, whose removal disconnects the graph).
//
// The correction is exact for M·L'† but *not* for the true new-graph sketch
// Q'·B'·L'†, which would carry one extra random projection row for the new
// incidence column. The missing (addition) or stale (removal) row biases the
// sketched resistance of a pair (a,b) by at most
//
//	(bᵀL'†(e_a − e_b))² ≤ (bᵀL'†b)·((e_a−e_b)ᵀL'†(e_a−e_b)) = r'(u,v)·r'(a,b)
//
// by Cauchy–Schwarz in the L'† inner product — a relative error of at most
// r'(u,v), the effective resistance of the mutated pair in the *new* graph
// (r/(1+r) for additions, r/(1−r) for removals). That quantity is the drift
// contribution accumulated in Sketch.Drift; the lifecycle manager triggers a
// full rebuild once the sum crosses its ε_drift threshold, so serving error
// stays bounded by ε + Drift at all times.
package sketch

import (
	"errors"
	"fmt"

	"resistecc/internal/graph"
	"resistecc/internal/solver"
)

// ErrUnsafeUpdate reports that an incremental removal was refused because
// the edge's effective resistance is too close to 1 (a bridge or nearly so):
// the Sherman–Morrison denominator 1 − r degenerates and the drift bound
// becomes vacuous. Callers should fall back to a full rebuild.
var ErrUnsafeUpdate = errors.New("sketch: incremental update unsafe (edge resistance ≈ 1; bridge-like)")

// removeSafeLimit is the largest edge resistance for which an incremental
// removal is attempted; above it, ErrUnsafeUpdate is returned.
const removeSafeLimit = 0.95

// AddEdgeUpdate returns a new sketch approximating the graph csr ∪ {(u,v)},
// together with the drift contribution of the update. csr must be the
// pre-insertion graph the receiver was built on (the edge must not be
// present). The receiver is not modified; cost is one Laplacian solve plus
// an O(n·d) embedding pass — versus d solves for a full rebuild.
func (s *Sketch) AddEdgeUpdate(csr *graph.CSR, u, v int, sopt solver.Options) (*Sketch, float64, error) {
	x, r, err := s.updateSolve(csr, u, v, sopt)
	if err != nil {
		return nil, 0, err
	}
	// New-graph resistance of the inserted edge bounds the relative bias.
	contrib := r / (1 + r)
	out := s.applyRank1(x, u, v, -1/(1+r), contrib)
	return out, contrib, nil
}

// RemoveEdgeUpdate returns a new sketch approximating csr \ {(u,v)} and the
// drift contribution. csr must be the pre-removal graph (edge present, and
// not a bridge — removal must leave the graph connected, which the caller is
// responsible for checking structurally). Returns ErrUnsafeUpdate when the
// edge resistance is so close to 1 that the rank-1 downdate degenerates.
func (s *Sketch) RemoveEdgeUpdate(csr *graph.CSR, u, v int, sopt solver.Options) (*Sketch, float64, error) {
	x, r, err := s.updateSolve(csr, u, v, sopt)
	if err != nil {
		return nil, 0, err
	}
	if r >= removeSafeLimit {
		return nil, 0, fmt.Errorf("%w: r(%d,%d)=%.4f", ErrUnsafeUpdate, u, v, r)
	}
	contrib := r / (1 - r)
	out := s.applyRank1(x, u, v, 1/(1-r), contrib)
	return out, contrib, nil
}

// updateSolve computes x = L†(e_u − e_v) on csr and r = x[u] − x[v].
func (s *Sketch) updateSolve(csr *graph.CSR, u, v int, sopt solver.Options) ([]float64, float64, error) {
	if csr.N != s.N {
		return nil, 0, fmt.Errorf("sketch: update on %d-node graph, sketch has %d", csr.N, s.N)
	}
	if u < 0 || v < 0 || u >= s.N || v >= s.N {
		return nil, 0, fmt.Errorf("%w: (%d,%d) with n=%d", graph.ErrNodeRange, u, v, s.N)
	}
	if u == v {
		return nil, 0, fmt.Errorf("%w: node %d", graph.ErrSelfLoop, u)
	}
	lap, err := solver.NewLap(csr, sopt)
	if err != nil {
		return nil, 0, fmt.Errorf("sketch: incremental update: %w", err)
	}
	b := make([]float64, s.N)
	b[u], b[v] = 1, -1
	x := make([]float64, s.N)
	if _, err := lap.Solve(b, x); err != nil {
		return nil, 0, fmt.Errorf("sketch: incremental update solve: %w", err)
	}
	r := x[u] - x[v]
	if r <= 0 {
		return nil, 0, fmt.Errorf("sketch: incremental update: non-positive resistance %g for (%d,%d)", r, u, v)
	}
	return x, r, nil
}

// applyRank1 returns a fresh sketch with pts'[w] = pts[w] + scale·x[w]·δ,
// δ = pts[u] − pts[v], and the drift/update accounting advanced by contrib.
func (s *Sketch) applyRank1(x []float64, u, v int, scale, contrib float64) *Sketch {
	d, n := s.Dim, s.N
	out := &Sketch{
		Dim:     d,
		N:       n,
		Epsilon: s.Epsilon,
		Stats:   s.Stats,
		Drift:   s.Drift + contrib,
		Updates: s.Updates + 1,
	}
	out.pts = make([][]float64, n)
	flat := make([]float64, n*d)
	for w := 0; w < n; w++ {
		out.pts[w] = flat[w*d : (w+1)*d]
	}
	delta := make([]float64, d)
	pu, pv := s.pts[u], s.pts[v]
	for i := 0; i < d; i++ {
		delta[i] = pu[i] - pv[i]
	}
	for w := 0; w < n; w++ {
		addScaledRow(out.pts[w], s.pts[w], delta, scale*x[w])
	}
	return out
}

// addScaledRow writes dst = src + c·delta elementwise: the O(d) inner kernel
// of the rank-1 embedding correction, run once per node per update.
//
//recclint:hotpath
func addScaledRow(dst, src, delta []float64, c float64) {
	if c == 0 {
		copy(dst, src)
		return
	}
	for i := range dst {
		dst[i] = src[i] + c*delta[i]
	}
}

//recclint:deterministic — serialization must round-trip the sketch bit-exactly.

package sketch

import "fmt"

// Meta mirrors the scalar state of a Sketch for serialization: everything a
// snapshot must round-trip besides the embedding matrix itself. The zero
// Drift/Updates of a freshly built sketch survive the round trip, so a
// restored index reports the same staleness budget the saved one had.
type Meta struct {
	Dim     int
	N       int
	Epsilon float64
	Drift   float64
	Updates int
	Stats   BuildStats
}

// Meta returns the serializable scalar state of the sketch.
func (s *Sketch) Meta() Meta {
	return Meta{
		Dim:     s.Dim,
		N:       s.N,
		Epsilon: s.Epsilon,
		Drift:   s.Drift,
		Updates: s.Updates,
		Stats:   s.Stats,
	}
}

// AppendPoints appends the embedding matrix to dst in node-major order
// (n rows of d float64s) and returns the extended slice. Together with Meta
// this is the full sketch state; Restore inverts it bit-exactly.
func (s *Sketch) AppendPoints(dst []float64) []float64 {
	for _, p := range s.pts {
		dst = append(dst, p...)
	}
	return dst
}

// Restore rebuilds a Sketch from serialized state. flat must hold exactly
// n*d float64s in the node-major layout produced by AppendPoints; Restore
// takes ownership of it (the returned sketch aliases flat). The result is
// bit-identical to the sketch Meta/AppendPoints were called on, so sketched
// resistances — and therefore eccentricity answers — match exactly.
func Restore(meta Meta, flat []float64) (*Sketch, error) {
	if meta.Dim <= 0 || meta.N < 0 {
		return nil, fmt.Errorf("sketch: restore: invalid shape d=%d n=%d", meta.Dim, meta.N)
	}
	if len(flat) != meta.N*meta.Dim {
		return nil, fmt.Errorf("sketch: restore: matrix has %d values, want n*d = %d",
			len(flat), meta.N*meta.Dim)
	}
	if meta.Epsilon <= 0 || meta.Epsilon >= 1 {
		return nil, fmt.Errorf("%w, got %g", ErrBadEpsilon, meta.Epsilon)
	}
	sk := &Sketch{
		Dim:     meta.Dim,
		N:       meta.N,
		Epsilon: meta.Epsilon,
		Drift:   meta.Drift,
		Updates: meta.Updates,
		Stats:   meta.Stats,
	}
	sk.pts = make([][]float64, meta.N)
	d := meta.Dim
	for v := 0; v < meta.N; v++ {
		sk.pts[v] = flat[v*d : (v+1)*d]
	}
	return sk, nil
}

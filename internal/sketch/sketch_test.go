package sketch

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func TestTheoreticalDim(t *testing.T) {
	// d = ⌈24 ln n / ε²⌉.
	if d := TheoreticalDim(1000, 0.3); d != int(math.Ceil(24*math.Log(1000)/0.09)) {
		t.Fatalf("d=%d", d)
	}
	if TheoreticalDim(1, 0.5) != 1 {
		t.Fatal("tiny n should clamp to 1")
	}
}

func TestOptionsValidation(t *testing.T) {
	g := graph.Path(4).ToCSR()
	if _, err := NewContext(context.Background(), g, Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0 must fail")
	}
	if _, err := NewContext(context.Background(), g, Options{Epsilon: 1.5}); err == nil {
		t.Fatal("epsilon >= 1 must fail")
	}
}

func TestSketchPathResistance(t *testing.T) {
	// On the 16-node path, sketched resistances should track |i−j| within a
	// modest relative error at d=256.
	g := graph.Path(16)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Dim != 256 || sk.N != 16 {
		t.Fatalf("dims %d/%d", sk.Dim, sk.N)
	}
	for i := 0; i < 16; i += 3 {
		for j := i + 1; j < 16; j += 2 {
			want := float64(j - i)
			got := sk.Resistance(i, j)
			if math.Abs(got-want)/want > 0.35 {
				t.Fatalf("r̃(%d,%d)=%g, want ≈%g", i, j, got, want)
			}
		}
	}
}

func TestSketchSelfResistanceZero(t *testing.T) {
	g := graph.Cycle(8)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := sk.Resistance(3, 3); r != 0 {
		t.Fatalf("r̃(3,3)=%g", r)
	}
}

func TestSketchDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(50, 2, 4)
	a, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.2, Dim: 40, Seed: 99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.2, Dim: 40, Seed: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		pa, pb := a.Point(v), b.Point(v)
		for i := range pa {
			if math.Abs(pa[i]-pb[i]) > 1e-9 {
				t.Fatalf("sketch differs across worker counts at node %d dim %d", v, i)
			}
		}
	}
}

func TestEccentricityMatchesScan(t *testing.T) {
	g := graph.Lollipop(6, 4)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.25, Dim: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, far := sk.Eccentricity(0)
	// From inside the clique, the farthest node is the path tip (node 9).
	if far != 9 {
		t.Fatalf("farthest from clique should be path tip, got %d", far)
	}
	// Candidate-restricted scan that includes the true argmax must agree.
	c2, far2 := sk.EccentricityOver(0, []int{0, 3, 9, 5})
	if far2 != 9 || math.Abs(c-c2) > 1e-12 {
		t.Fatalf("EccentricityOver mismatch: %g/%d vs %g/%d", c, far, c2, far2)
	}
}

// Property: with the theoretical dimension, sketched resistances are within
// ε of exact with margin, on random graphs (spot-checked pairs).
func TestQuickSketchEpsilonBound(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(30, 2, seed)
		const eps = 0.5
		sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: eps, Seed: seed})
		if err != nil {
			return false
		}
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		for u := 0; u < 30; u += 5 {
			for v := u + 1; v < 30; v += 7 {
				exact := linalg.Resistance(lp, u, v)
				got := sk.Resistance(u, v)
				if got < (1-eps)*exact || got > (1+eps)*exact {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchEmptyGraph(t *testing.T) {
	sk, err := NewContext(context.Background(), graph.New(0).ToCSR(), Options{Epsilon: 0.3, Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sk.N != 0 {
		t.Fatal("empty sketch")
	}
}

func TestBuildStats(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 5)
	const dim = 48
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: dim, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := sk.Stats
	if st.Rows != dim {
		t.Fatalf("stats rows %d, want %d", st.Rows, dim)
	}
	if st.TotalIters < st.MaxIters || st.MaxIters <= 0 {
		t.Fatalf("iteration stats inconsistent: total %d, max %d", st.TotalIters, st.MaxIters)
	}
	if st.TotalIters < dim {
		t.Fatalf("total iters %d below one per row", st.TotalIters)
	}
	if st.MaxResidual <= 0 || st.MaxResidual > 1e-8 {
		t.Fatalf("max relative residual %g implausible", st.MaxResidual)
	}
	if st.Workers != 4 {
		t.Fatalf("workers %d, want 4", st.Workers)
	}
}

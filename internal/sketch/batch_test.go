package sketch

import (
	"context"
	"testing"

	"resistecc/internal/graph"
)

func batchTestSketch(t *testing.T, n int) *Sketch {
	t.Helper()
	g := graph.BarabasiAlbert(n, 3, 11)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestEccentricityBatchBitIdentical pins the tentpole contract: the 4-wide
// blocked kernel must produce bit-identical values AND witnesses to the
// serial per-source scan, for every batch length (full tiles, remainders,
// empty), including sources that are themselves candidates.
func TestEccentricityBatchBitIdentical(t *testing.T) {
	sk := batchTestSketch(t, 120)
	cand := []int{0, 7, 13, 42, 87, 119, 3, 55} // unsorted, includes sources below
	for _, size := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		srcs := make([]int, size)
		for i := range srcs {
			srcs[i] = (i*37 + 7) % sk.N
		}
		// Make some sources members of cand so the v==src skip is exercised
		// in every lane position.
		for i := range srcs {
			if i%3 == 0 && i < len(cand) {
				srcs[i] = cand[i]
			}
		}
		ecc := make([]float64, size)
		arg := make([]int, size)
		sk.EccentricityBatch(srcs, cand, ecc, arg)
		for i, s := range srcs {
			wantE, wantA := sk.EccentricityOver(s, cand)
			if ecc[i] != wantE || arg[i] != wantA {
				t.Fatalf("size %d src %d: batch (%v,%d) != serial (%v,%d)",
					size, s, ecc[i], arg[i], wantE, wantA)
			}
		}
	}
}

// TestEccentricityBatchEmptyCandidates: no admissible candidate must yield
// (0, src), exactly like EccentricityOver.
func TestEccentricityBatchEmptyCandidates(t *testing.T) {
	sk := batchTestSketch(t, 16)
	srcs := []int{0, 1, 2, 3, 4} // one full tile + remainder
	ecc := make([]float64, len(srcs))
	arg := make([]int, len(srcs))
	sk.EccentricityBatch(srcs, nil, ecc, arg)
	for i, s := range srcs {
		if ecc[i] != 0 || arg[i] != s {
			t.Fatalf("src %d: got (%v,%d), want (0,%d)", s, ecc[i], arg[i], s)
		}
	}
	// A candidate list of only the source itself is equally inadmissible.
	sk.EccentricityBatch([]int{5, 5, 5, 5}, []int{5}, ecc[:4], arg[:4])
	for i := 0; i < 4; i++ {
		if ecc[i] != 0 || arg[i] != 5 {
			t.Fatalf("self-only cand: got (%v,%d), want (0,5)", ecc[i], arg[i])
		}
	}
}

// TestEccentricityBatchAllBitIdentical pins the full-scan variant against
// Eccentricity the same way.
func TestEccentricityBatchAllBitIdentical(t *testing.T) {
	sk := batchTestSketch(t, 90)
	for _, size := range []int{1, 3, 4, 6, 8, 13} {
		srcs := make([]int, size)
		for i := range srcs {
			srcs[i] = (i * 17) % sk.N
		}
		ecc := make([]float64, size)
		arg := make([]int, size)
		sk.EccentricityBatchAll(srcs, ecc, arg)
		for i, s := range srcs {
			wantE, wantA := sk.Eccentricity(s)
			if ecc[i] != wantE || arg[i] != wantA {
				t.Fatalf("size %d src %d: batch (%v,%d) != serial (%v,%d)",
					size, s, ecc[i], arg[i], wantE, wantA)
			}
		}
	}
}

// TestEccentricityBatchDuplicateSources: the kernel itself must tolerate the
// same source in several lanes of one tile (the dedup layer above normally
// removes them, but the kernel contract does not require it).
func TestEccentricityBatchDuplicateSources(t *testing.T) {
	sk := batchTestSketch(t, 50)
	cand := []int{1, 9, 20, 33, 49}
	srcs := []int{4, 4, 4, 4, 4}
	ecc := make([]float64, len(srcs))
	arg := make([]int, len(srcs))
	sk.EccentricityBatch(srcs, cand, ecc, arg)
	wantE, wantA := sk.EccentricityOver(4, cand)
	for i := range srcs {
		if ecc[i] != wantE || arg[i] != wantA {
			t.Fatalf("lane %d: got (%v,%d), want (%v,%d)", i, ecc[i], arg[i], wantE, wantA)
		}
	}
}

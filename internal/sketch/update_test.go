package sketch

import (
	"context"
	"errors"
	"math"
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/solver"
)

// maxRelErr returns the worst relative deviation of the sketched resistance
// from the exact one over all node pairs.
func maxRelErr(t *testing.T, sk *Sketch, lp *linalg.Dense) float64 {
	t.Helper()
	worst := 0.0
	for u := 0; u < sk.N; u++ {
		for v := u + 1; v < sk.N; v++ {
			exact := linalg.Resistance(lp, u, v)
			if exact <= 0 {
				t.Fatalf("exact resistance (%d,%d) = %g", u, v, exact)
			}
			if e := math.Abs(sk.Resistance(u, v)-exact) / exact; e > worst {
				worst = e
			}
		}
	}
	return worst
}

func pinv(t *testing.T, g *graph.Graph) *linalg.Dense {
	t.Helper()
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

// nonEdge returns some missing edge of g (deterministically).
func nonEdge(t *testing.T, g *graph.Graph) (int, int) {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	t.Fatal("graph is complete")
	return 0, 0
}

// TestAddEdgeUpdateWithinDriftBound is the documented accuracy property of
// the Sherman–Morrison embedding update: after one AddEdge, the incremental
// sketch's resistances deviate from the *exact* new-graph resistances by at
// most ε_emp·(1+c) + c, where ε_emp is the old sketch's own worst empirical
// JL error and c is the drift contribution reported by the update. It also
// cross-checks against a fresh rebuild within the combined bound.
func TestAddEdgeUpdateWithinDriftBound(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path30", graph.Path(30)},
		{"star30", graph.Star(30)},
		{"ba60", graph.BarabasiAlbert(60, 3, 11)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			u, v := nonEdge(t, g)
			opt := Options{Epsilon: 0.3, Dim: 512, Seed: 7}
			sk, err := NewContext(context.Background(), g.ToCSR(), opt)
			if err != nil {
				t.Fatal(err)
			}
			oldErr := maxRelErr(t, sk, pinv(t, g))

			upd, contrib, err := sk.AddEdgeUpdate(g.ToCSR(), u, v, solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if contrib <= 0 || contrib >= 1 {
				t.Fatalf("drift contribution %g outside (0,1)", contrib)
			}
			if upd.Drift != contrib || upd.Updates != 1 {
				t.Fatalf("accounting: Drift=%g Updates=%d, want %g, 1", upd.Drift, upd.Updates, contrib)
			}
			if sk.Drift != 0 || sk.Updates != 0 {
				t.Fatal("receiver sketch was mutated")
			}

			g2 := g.Clone()
			if err := g2.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			lp2 := pinv(t, g2)
			updErr := maxRelErr(t, upd, lp2)
			bound := oldErr*(1+contrib) + contrib + 1e-6
			if updErr > bound {
				t.Fatalf("incremental error %.4f exceeds drift bound %.4f (oldErr=%.4f contrib=%.4f)",
					updErr, bound, oldErr, contrib)
			}

			// Cross-check against a fresh rebuild: both approximate the same
			// exact values, so they agree within the sum of their bounds.
			fresh, err := NewContext(context.Background(), g2.ToCSR(), opt)
			if err != nil {
				t.Fatal(err)
			}
			freshErr := maxRelErr(t, fresh, lp2)
			for a := 0; a < g2.N(); a++ {
				for b := a + 1; b < g2.N(); b++ {
					exact := linalg.Resistance(lp2, a, b)
					if d := math.Abs(upd.Resistance(a, b) - fresh.Resistance(a, b)); d > (bound+freshErr)*exact+1e-9 {
						t.Fatalf("incremental vs rebuild at (%d,%d): |%g - %g| > %g", a, b,
							upd.Resistance(a, b), fresh.Resistance(a, b), (bound+freshErr)*exact)
					}
				}
			}
		})
	}
}

// TestRemoveEdgeUpdateWithinDriftBound checks the downdate on a non-bridge
// edge of K8 (every edge there has resistance 2/8, far from the bridge
// degeneracy).
func TestRemoveEdgeUpdateWithinDriftBound(t *testing.T) {
	g := graph.Complete(8)
	opt := Options{Epsilon: 0.3, Dim: 512, Seed: 9}
	sk, err := NewContext(context.Background(), g.ToCSR(), opt)
	if err != nil {
		t.Fatal(err)
	}
	oldErr := maxRelErr(t, sk, pinv(t, g))

	upd, contrib, err := sk.RemoveEdgeUpdate(g.ToCSR(), 0, 1, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	if err := g2.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	lp2 := pinv(t, g2)
	updErr := maxRelErr(t, upd, lp2)
	bound := oldErr*(1+contrib) + contrib + 1e-6
	if updErr > bound {
		t.Fatalf("incremental removal error %.4f exceeds bound %.4f (oldErr=%.4f contrib=%.4f)",
			updErr, bound, oldErr, contrib)
	}
}

// TestRemoveEdgeUpdateRefusesBridges: every path edge is a bridge (r = 1),
// so the downdate must refuse with ErrUnsafeUpdate rather than divide by ~0.
func TestRemoveEdgeUpdateRefusesBridges(t *testing.T) {
	g := graph.Path(16)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sk.RemoveEdgeUpdate(g.ToCSR(), 7, 8, solver.Options{}); !errors.Is(err, ErrUnsafeUpdate) {
		t.Fatalf("bridge removal: got %v, want ErrUnsafeUpdate", err)
	}
}

// TestDriftAccumulates: consecutive updates sum their contributions.
func TestDriftAccumulates(t *testing.T) {
	g := graph.Cycle(12)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s1, c1, err := sk.AddEdgeUpdate(g.ToCSR(), 0, 6, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g1 := g.Clone()
	if err := g1.AddEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	s2, c2, err := s1.AddEdgeUpdate(g1.ToCSR(), 3, 9, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := c1 + c2; math.Abs(s2.Drift-want) > 1e-12 || s2.Updates != 2 {
		t.Fatalf("Drift=%g Updates=%d, want %g, 2", s2.Drift, s2.Updates, want)
	}
}

// TestUpdateValidation: range and self-loop errors surface as sentinels.
func TestUpdateValidation(t *testing.T) {
	g := graph.Path(8)
	sk, err := NewContext(context.Background(), g.ToCSR(), Options{Epsilon: 0.3, Dim: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sk.AddEdgeUpdate(g.ToCSR(), 0, 99, solver.Options{}); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("out of range: got %v", err)
	}
	if _, _, err := sk.AddEdgeUpdate(g.ToCSR(), 3, 3, solver.Options{}); !errors.Is(err, graph.ErrSelfLoop) {
		t.Fatalf("self loop: got %v", err)
	}
}

// TestNewContextCancelled: a cancelled context aborts the build.
func TestNewContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewContext(ctx, graph.Path(64).ToCSR(), Options{Epsilon: 0.3, Dim: 256, Seed: 1})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: got %v, want context.Canceled", err)
	}
}

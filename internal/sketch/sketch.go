//recclint:deterministic — the build must be bit-identical for identical options (rebuild == cold build).

// Package sketch implements APPROXER, the Spielman–Srivastava
// Johnson–Lindenstrauss sketch of effective resistances (Lemma 5.1 of the
// paper, following reference [1]).
//
// The sketch is the d×n matrix X̃ = Q·B·L†, where B is the m×n signed
// edge–node incidence matrix, L† the Laplacian pseudoinverse and Q a d×m
// random ±1/√d projection with d = ⌈24 ln n / ε²⌉. With probability at least
// 1 − 1/n it holds simultaneously for all pairs u, v that
//
//	(1−ε) r(u,v) ≤ ‖X̃(e_u − e_v)‖² ≤ (1+ε) r(u,v).
//
// Each of the d rows costs one O(m) projection push (Bᵀqᵢ) plus one
// Laplacian solve, so the total cost is Õ(m/ε²) with a near-linear solver.
//
// Columns of X̃ embed the nodes as points in R^d whose squared Euclidean
// distances approximate resistance distances — the geometric view that
// FASTQUERY's convex-hull pruning (package hull) builds on.
package sketch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"resistecc/internal/graph"
	"resistecc/internal/solver"
)

// ErrBadEpsilon is returned when the error target ε lies outside (0,1).
var ErrBadEpsilon = errors.New("sketch: epsilon must be in (0,1)")

// Options configures APPROXER.
type Options struct {
	// Epsilon is the multiplicative error target ε ∈ (0,1). Required.
	Epsilon float64
	// Dim overrides the sketch dimension d. Zero uses the theoretical
	// ⌈24 ln n / ε²⌉ of Lemma 5.1 — extremely conservative in practice; the
	// experiments harness uses overrides (ablation 2 in DESIGN.md measures
	// the dimension/accuracy trade-off).
	Dim int
	// Seed drives the random projection. The same seed yields the same
	// sketch for the same graph, keeping experiments reproducible.
	Seed int64
	// Solver configures the underlying Laplacian solves.
	Solver solver.Options
	// Workers caps the solve parallelism; zero means GOMAXPROCS.
	// The paper's timing runs pin a single thread; pass 1 to match.
	Workers int
}

// TheoreticalDim returns ⌈24 ln n / ε²⌉, the JL dimension of Lemma 5.1.
func TheoreticalDim(n int, epsilon float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(24 * math.Log(float64(n)) / (epsilon * epsilon)))
}

// BuildStats aggregates the Laplacian-solver effort spent building a
// sketch: one CG solve per sketch row. Serving layers surface these in
// health and metrics endpoints, and they quantify the solver side of the
// Õ(m/ε²) preprocessing bound.
type BuildStats struct {
	// Rows is the number of solves (= sketch dimension d).
	Rows int
	// TotalIters is the summed CG iteration count across rows.
	TotalIters int
	// MaxIters is the worst single row.
	MaxIters int
	// MaxResidual is the worst relative final residual ‖b − Lx‖/‖b‖.
	MaxResidual float64
	// Workers is the solve parallelism actually used.
	Workers int
}

func (st *BuildStats) merge(o BuildStats) {
	st.Rows += o.Rows
	st.TotalIters += o.TotalIters
	if o.MaxIters > st.MaxIters {
		st.MaxIters = o.MaxIters
	}
	if o.MaxResidual > st.MaxResidual {
		st.MaxResidual = o.MaxResidual
	}
}

// Sketch is the computed X̃ with columns as node embeddings.
type Sketch struct {
	// Dim is the sketch dimension d.
	Dim int
	// N is the number of nodes.
	N int
	// Epsilon echoes the error parameter the sketch was built for.
	Epsilon float64
	// Stats records the solver effort of the build.
	Stats BuildStats
	// Drift is the accumulated staleness bound of incremental edge updates
	// (see update.go): the sum over applied updates of the relative-error
	// contribution each one may add on top of the JL error ε. A freshly
	// built sketch has Drift 0; the lifecycle manager schedules a full
	// rebuild once Drift crosses its threshold.
	Drift float64
	// Updates counts the incremental edge updates applied since the last
	// full build.
	Updates int
	// pts holds the node embeddings: pts[v] is the d-vector X̃[:,v].
	pts [][]float64
}

// NewContext runs APPROXER(G, ε) on the CSR snapshot and returns the sketch.
// The build checks ctx between solver rows and aborts with ctx.Err(), so
// background index rebuilds (the lifecycle manager) and optimizer loops can
// be torn down mid-flight without finishing the remaining Õ(m/ε²) work.
func NewContext(ctx context.Context, csr *graph.CSR, opt Options) (*Sketch, error) {
	if opt.Epsilon <= 0 || opt.Epsilon >= 1 {
		return nil, fmt.Errorf("%w, got %g", ErrBadEpsilon, opt.Epsilon)
	}
	n := csr.N
	d := opt.Dim
	if d <= 0 {
		d = TheoreticalDim(n, opt.Epsilon)
	}
	sk := &Sketch{Dim: d, N: n, Epsilon: opt.Epsilon}
	sk.pts = make([][]float64, n)
	flat := make([]float64, n*d)
	for v := 0; v < n; v++ {
		sk.pts[v] = flat[v*d : (v+1)*d]
	}
	if n == 0 {
		return sk, nil
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d {
		workers = d
	}
	if workers < 1 {
		workers = 1
	}

	// Row i of X̃ is the solution of L x = Bᵀ qᵢ with qᵢ a random ±1/√d
	// m-vector. Rows are independent; distribute them over workers, each
	// with its own solver scratch and its own deterministic RNG stream.
	scale := 1 / math.Sqrt(float64(d))
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		abort     = make(chan struct{})
		abortOnce sync.Once
	)
	// fail records the first error and unblocks the feeder, so a build whose
	// workers all die early (e.g. a disconnected graph failing NewLap) does
	// not deadlock the row feed.
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}
	sk.Stats.Workers = workers
	rowCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lap, err := solver.NewLap(csr, opt.Solver)
			if err != nil {
				fail(err)
				return
			}
			q := make([]float64, csr.M)
			b := make([]float64, n)
			x := make([]float64, n)
			var local BuildStats
			defer func() {
				mu.Lock()
				sk.Stats.merge(local)
				mu.Unlock()
			}()
			for i := range rowCh {
				rng := rand.New(rand.NewSource(opt.Seed + int64(i)*0x9E3779B9))
				for e := range q {
					if rng.Int63()&1 == 0 {
						q[e] = scale
					} else {
						q[e] = -scale
					}
				}
				csr.IncidenceTMul(q, b)
				for j := range x {
					x[j] = 0
				}
				iters, err := lap.Solve(b, x)
				if err != nil {
					fail(fmt.Errorf("sketch: row %d: %w", i, err))
					return
				}
				_, res := lap.LastStats()
				local.Rows++
				local.TotalIters += iters
				if iters > local.MaxIters {
					local.MaxIters = iters
				}
				if res > local.MaxResidual {
					local.MaxResidual = res
				}
				for v := 0; v < n; v++ {
					sk.pts[v][i] = x[v]
				}
			}
		}()
	}
feed:
	for i := 0; i < d; i++ {
		select {
		case rowCh <- i:
		case <-abort:
			break feed
		case <-ctx.Done():
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("sketch: build cancelled: %w", ctx.Err())
			}
			mu.Unlock()
			break feed
		}
	}
	close(rowCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sk, nil
}

// Point returns the embedding X̃[:,v] of node v. Shared storage; read-only.
func (s *Sketch) Point(v int) []float64 { return s.pts[v] }

// Points returns all node embeddings indexed by node. Shared storage.
func (s *Sketch) Points() [][]float64 { return s.pts }

// Resistance returns r̃(u,v) = ‖X̃(e_u − e_v)‖², the sketched resistance
// distance between u and v (Algorithm 2, line 4).
//
//recclint:hotpath
func (s *Sketch) Resistance(u, v int) float64 {
	pu, pv := s.pts[u], s.pts[v]
	r := 0.0
	for i, x := range pu {
		dx := x - pv[i]
		r += dx * dx
	}
	return r
}

// Eccentricity scans all nodes and returns
// c̄(s) = max_{j != src} r̃(src, j) together with the farthest node — the
// query step of APPROXQUERY and the whole of APPROXRECC (Algorithm 7).
//
//recclint:hotpath
func (s *Sketch) Eccentricity(src int) (float64, int) {
	best, arg := 0.0, src
	for v := 0; v < s.N; v++ {
		if v == src {
			continue
		}
		if r := s.Resistance(src, v); r > best {
			best, arg = r, v
		}
	}
	return best, arg
}

// EccentricityOver scans only the candidate node set (FASTQUERY's hull
// boundary Ŝ) and returns ĉ(src) = max_{j ∈ cand} r̃(src, j) with the
// argmax. Nodes equal to src are skipped.
//
//recclint:hotpath
func (s *Sketch) EccentricityOver(src int, cand []int) (float64, int) {
	best, arg := 0.0, src
	for _, v := range cand {
		if v == src {
			continue
		}
		if r := s.Resistance(src, v); r > best {
			best, arg = r, v
		}
	}
	return best, arg
}

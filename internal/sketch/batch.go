//recclint:deterministic — the build must be bit-identical for identical options (rebuild == cold build).

package sketch

// Batch eccentricity kernels. The serial query path answers one source at a
// time: EccentricityOver streams all l candidate embeddings (l·d floats) per
// source, and its inner loop is a single dependent FMA chain, so per-pair
// cost is bound by floating-point add latency, not throughput. The batch
// kernel tiles sources four at a time against the candidate stream: each
// candidate vector is loaded once per source block instead of once per
// source, and the four accumulator chains are independent, so the CPU
// overlaps them. Summation order per (source, candidate) pair is exactly the
// serial order — j ascending over the d dimensions, candidates in slice
// order — so results are bit-identical to EccentricityOver/Eccentricity,
// including argmax tie-breaking (strict > keeps the earliest maximum).

// EccentricityBatch computes ĉ(src) = max_{v ∈ cand, v ≠ src} r̃(src, v) for
// every source in srcs, writing the value and the witness farthest node into
// ecc[i] and arg[i]. A source with no admissible candidate gets (0, src),
// matching EccentricityOver. ecc and arg must have len(srcs) elements; the
// kernel allocates nothing.
//
//recclint:hotpath
func (s *Sketch) EccentricityBatch(srcs, cand []int, ecc []float64, arg []int) {
	si := 0
	for ; si+4 <= len(srcs); si += 4 {
		s.scan4(srcs[si], srcs[si+1], srcs[si+2], srcs[si+3], cand, ecc[si:si+4], arg[si:si+4])
	}
	for ; si < len(srcs); si++ {
		ecc[si], arg[si] = s.EccentricityOver(srcs[si], cand)
	}
}

// EccentricityBatchAll is EccentricityBatch over the full node set — the
// batched form of Eccentricity (APPROXQUERY's scan, no hull pruning).
//
//recclint:hotpath
func (s *Sketch) EccentricityBatchAll(srcs []int, ecc []float64, arg []int) {
	si := 0
	for ; si+4 <= len(srcs); si += 4 {
		s.scan4All(srcs[si], srcs[si+1], srcs[si+2], srcs[si+3], ecc[si:si+4], arg[si:si+4])
	}
	for ; si < len(srcs); si++ {
		ecc[si], arg[si] = s.Eccentricity(srcs[si])
	}
}

// scan4 is the register tile of the batch kernel: four sources scanned
// against the candidate list in one pass. The candidate embedding pv is read
// once per iteration and consumed by four independent accumulator chains.
//
//recclint:hotpath
func (s *Sketch) scan4(s0, s1, s2, s3 int, cand []int, ecc []float64, arg []int) {
	p0, p1, p2, p3 := s.pts[s0], s.pts[s1], s.pts[s2], s.pts[s3]
	e0, e1, e2, e3 := 0.0, 0.0, 0.0, 0.0
	a0, a1, a2, a3 := s0, s1, s2, s3
	for _, v := range cand {
		pv := s.pts[v]
		// Equal-length reslices let the compiler elide the q[j] bound checks.
		q0, q1, q2, q3 := p0[:len(pv)], p1[:len(pv)], p2[:len(pv)], p3[:len(pv)]
		var r0, r1, r2, r3 float64
		for j, x := range pv {
			t0 := q0[j] - x
			r0 += t0 * t0
			t1 := q1[j] - x
			r1 += t1 * t1
			t2 := q2[j] - x
			r2 += t2 * t2
			t3 := q3[j] - x
			r3 += t3 * t3
		}
		if v != s0 && r0 > e0 {
			e0, a0 = r0, v
		}
		if v != s1 && r1 > e1 {
			e1, a1 = r1, v
		}
		if v != s2 && r2 > e2 {
			e2, a2 = r2, v
		}
		if v != s3 && r3 > e3 {
			e3, a3 = r3, v
		}
	}
	ecc[0], ecc[1], ecc[2], ecc[3] = e0, e1, e2, e3
	arg[0], arg[1], arg[2], arg[3] = a0, a1, a2, a3
}

// scan4All is scan4 over all n nodes instead of a candidate list.
//
//recclint:hotpath
func (s *Sketch) scan4All(s0, s1, s2, s3 int, ecc []float64, arg []int) {
	p0, p1, p2, p3 := s.pts[s0], s.pts[s1], s.pts[s2], s.pts[s3]
	e0, e1, e2, e3 := 0.0, 0.0, 0.0, 0.0
	a0, a1, a2, a3 := s0, s1, s2, s3
	for v := 0; v < s.N; v++ {
		pv := s.pts[v]
		q0, q1, q2, q3 := p0[:len(pv)], p1[:len(pv)], p2[:len(pv)], p3[:len(pv)]
		var r0, r1, r2, r3 float64
		for j, x := range pv {
			t0 := q0[j] - x
			r0 += t0 * t0
			t1 := q1[j] - x
			r1 += t1 * t1
			t2 := q2[j] - x
			r2 += t2 * t2
			t3 := q3[j] - x
			r3 += t3 * t3
		}
		if v != s0 && r0 > e0 {
			e0, a0 = r0, v
		}
		if v != s1 && r1 > e1 {
			e1, a1 = r1, v
		}
		if v != s2 && r2 > e2 {
			e2, a2 = r2, v
		}
		if v != s3 && r3 > e3 {
			e3, a3 = r3, v
		}
	}
	ecc[0], ecc[1], ecc[2], ecc[3] = e0, e1, e2, e3
	arg[0], arg[1], arg[2], arg[3] = a0, a1, a2, a3
}

package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTPExecutor replays a trace against a live reccd server (or a router in
// front of one) over the /v1 API. Digests are computed from the parsed
// response bodies with the same functions the recording server used, so a
// bit-identical server yields bit-identical digests — JSON float64 encoding
// round-trips exactly.
type HTTPExecutor struct {
	// Base is the server base URL, e.g. http://localhost:8080.
	Base string
	// Client defaults to a 2-minute-timeout client when nil.
	Client *http.Client
}

// statusError is a non-2xx answer, kept typed so the load driver can split
// shed load (4xx) from server failure (5xx).
type statusError struct {
	what   string
	status int
	body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("trace: %s answered %d: %s", e.what, e.status, e.body)
}

func (e *HTTPExecutor) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return &http.Client{Timeout: 2 * time.Minute}
}

// Do executes one record. Non-2xx answers are errors (a recorded trace only
// holds operations the recording server accepted).
func (e *HTTPExecutor) Do(ctx context.Context, rec Record) (OpResult, error) {
	switch rec.Op {
	case OpQuery, OpBatchQuery:
		return e.query(ctx, rec.Args)
	case OpAddEdge, OpRemoveEdge:
		return e.mutate(ctx, rec)
	case OpRebuild:
		return e.rebuild(ctx)
	case OpCheckpoint:
		return e.checkpoint(ctx)
	}
	return OpResult{}, fmt.Errorf("trace: unknown op %d", rec.Op)
}

// queryBody is the /v1/eccentricity response element shape.
type queryBody struct {
	Node         int64   `json:"node"`
	Eccentricity float64 `json:"eccentricity"`
	Farthest     int64   `json:"farthest"`
}

// ParseQueryBody digests a raw /v1/eccentricity response body. Shared by the
// replayer and the router's recording tee, which both see only bytes.
func ParseQueryBody(body []byte) (uint64, error) {
	var items []queryBody
	if err := json.Unmarshal(body, &items); err != nil {
		return 0, fmt.Errorf("trace: parsing query response: %w", err)
	}
	res := make([]EccResult, len(items))
	for i, it := range items {
		res[i] = EccResult{Node: it.Node, Ecc: it.Eccentricity, Farthest: it.Farthest}
	}
	return DigestQuery(res), nil
}

// mutationBody is the /v1/edges response shape.
type mutationBody struct {
	Generation uint64  `json:"generation"`
	Mode       string  `json:"mode"`
	Drift      float64 `json:"drift"`
}

// ParseMutationBody digests a raw mutation response body.
func ParseMutationBody(body []byte) (gen, dig uint64, err error) {
	var mb mutationBody
	if err := json.Unmarshal(body, &mb); err != nil {
		return 0, 0, fmt.Errorf("trace: parsing mutation response: %w", err)
	}
	return mb.Generation, DigestMutation(mb.Generation, mb.Mode, mb.Drift), nil
}

func (e *HTTPExecutor) do(ctx context.Context, method, path string, body io.Reader) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, method, e.Base+path, body)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := e.client().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}

func headerGen(h http.Header) (uint64, error) {
	return strconv.ParseUint(h.Get("X-Index-Generation"), 10, 64)
}

func (e *HTTPExecutor) query(ctx context.Context, nodes []int64) (OpResult, error) {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = strconv.FormatInt(n, 10)
	}
	status, body, hdr, err := e.do(ctx, http.MethodGet, "/v1/eccentricity?node="+strings.Join(parts, ","), nil)
	if err != nil {
		return OpResult{}, err
	}
	if status != http.StatusOK {
		return OpResult{}, &statusError{what: "query", status: status, body: string(body)}
	}
	gen, err := headerGen(hdr)
	if err != nil {
		return OpResult{}, fmt.Errorf("trace: query response generation header: %w", err)
	}
	dig, err := ParseQueryBody(body)
	if err != nil {
		return OpResult{}, err
	}
	return OpResult{Gen: gen, Digest: dig}, nil
}

func (e *HTTPExecutor) mutate(ctx context.Context, rec Record) (OpResult, error) {
	if len(rec.Args) != 2 {
		return OpResult{}, fmt.Errorf("trace: mutation record %d has %d args, want 2", rec.Seq, len(rec.Args))
	}
	u, v := rec.Args[0], rec.Args[1]
	var (
		status int
		body   []byte
		err    error
	)
	if rec.Op == OpAddEdge {
		payload := strings.NewReader(fmt.Sprintf(`{"u":%d,"v":%d}`, u, v))
		status, body, _, err = e.do(ctx, http.MethodPost, "/v1/edges", payload)
	} else {
		status, body, _, err = e.do(ctx, http.MethodDelete,
			fmt.Sprintf("/v1/edges?u=%d&v=%d", u, v), nil)
	}
	if err != nil {
		return OpResult{}, err
	}
	if status != http.StatusOK {
		return OpResult{}, &statusError{
			what:   fmt.Sprintf("%s (%d,%d)", rec.Op, u, v),
			status: status, body: string(body),
		}
	}
	gen, dig, err := ParseMutationBody(body)
	if err != nil {
		return OpResult{}, err
	}
	return OpResult{Gen: gen, Digest: dig}, nil
}

// health is the /v1/healthz subset the executor needs.
type health struct {
	Generation        uint64 `json:"generation"`
	Rebuilds          uint64 `json:"rebuilds"`
	RebuildInProgress bool   `json:"rebuildInProgress"`
}

func (e *HTTPExecutor) healthz(ctx context.Context) (health, error) {
	status, body, _, err := e.do(ctx, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return health{}, err
	}
	if status != http.StatusOK {
		return health{}, &statusError{what: "healthz", status: status, body: string(body)}
	}
	var h health
	if err := json.Unmarshal(body, &h); err != nil {
		return health{}, fmt.Errorf("trace: parsing healthz: %w", err)
	}
	return h, nil
}

// rebuild triggers a rebuild and polls /v1/healthz until it completes, so
// the next record executes against the post-rebuild index exactly as it did
// when recorded. The reported generation is the pre-rebuild one the
// recording server stamped on its 202.
func (e *HTTPExecutor) rebuild(ctx context.Context) (OpResult, error) {
	before, err := e.healthz(ctx)
	if err != nil {
		return OpResult{}, err
	}
	status, body, _, err := e.do(ctx, http.MethodPost, "/v1/rebuild", nil)
	if err != nil {
		return OpResult{}, err
	}
	if status != http.StatusAccepted {
		return OpResult{}, &statusError{what: "rebuild", status: status, body: string(body)}
	}
	for {
		h, err := e.healthz(ctx)
		if err != nil {
			return OpResult{}, err
		}
		if h.Rebuilds > before.Rebuilds && !h.RebuildInProgress {
			return OpResult{Gen: before.Generation, Digest: DigestGen(before.Generation)}, nil
		}
		select {
		case <-ctx.Done():
			return OpResult{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (e *HTTPExecutor) checkpoint(ctx context.Context) (OpResult, error) {
	status, body, hdr, err := e.do(ctx, http.MethodPost, "/v1/checkpoint", nil)
	if err != nil {
		return OpResult{}, err
	}
	if status != http.StatusOK {
		return OpResult{}, &statusError{what: "checkpoint", status: status, body: string(body)}
	}
	gen, err := headerGen(hdr)
	if err != nil {
		return OpResult{}, fmt.Errorf("trace: checkpoint response generation header: %w", err)
	}
	return OpResult{Gen: gen, Digest: DigestGen(gen)}, nil
}

//recclint:deterministic — trace records must encode byte-identically for identical operations.

// Package trace is the deterministic workload subsystem: a compact binary
// format for API operation traces (RECCTRC1), a Recorder that captures live
// reccd traffic, a Replayer that re-executes a trace bit-exactly against any
// index (or a live server), and a Generator that synthesizes open-loop
// workloads for capacity testing.
//
// A trace is the serving tier's flight recorder. Every record carries a
// monotonic logical sequence number, the arrival delta to the previous
// operation, the index generation that answered it, and a digest of the
// response — enough to re-execute the workload in order and verify that a
// rebuilt index (same graph, same seeds) produces the same bits.
package trace

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Trace file layout:
//
//	magic "RECCTRC1" | u32 format version
//	per record: u64 seq | u64 deltaNanos | u8 op | u64 gen | u64 digest |
//	            u32 nargs | nargs × u64 arg | u32 CRC32-C
//
// All integers are little-endian; args are int64 node ids in the external
// (edge-list label) id space, stored as their two's-complement u64 bits. The
// CRC covers every record byte before it. Like the mutation WAL, sequence
// numbers are strictly contiguous from 1 and readers stop at the first
// record that is short, fails its checksum, or breaks monotonicity: the
// prefix before that point is trusted, a torn tail never yields a bogus
// operation.
const (
	// Magic identifies a trace file; recc inspect sniffs it.
	Magic = "RECCTRC1"
	// FormatVersion is the trace format generation this package writes.
	FormatVersion = 1

	headerSize = 12
	// recPrefix is the fixed-width record part before the args; the trailing
	// CRC adds crcSize more after them.
	recPrefix = 8 + 8 + 1 + 8 + 8 + 4
	crcSize   = 4
	// maxArgs bounds the per-record argument count so a corrupt length
	// field cannot drive an allocation; it comfortably exceeds any real
	// batch (reccd's default batch cap is 256).
	maxArgs = 1 << 16
)

// Op is the operation kind of one trace record.
type Op uint8

// The traced API operations. OpQuery and OpBatchQuery replay identically
// (both are GET /v1/eccentricity); they are distinct so per-op counts in
// inspection reports separate single-id lookups from batches.
const (
	OpQuery      Op = 1 // single-id eccentricity query; args = [node]
	OpBatchQuery Op = 2 // multi-id eccentricity query; args = nodes in request order
	OpAddEdge    Op = 3 // edge insertion; args = [u, v]
	OpRemoveEdge Op = 4 // edge removal; args = [u, v]
	OpRebuild    Op = 5 // explicit index rebuild; no args
	OpCheckpoint Op = 6 // durable snapshot checkpoint; no args

	opMax = 7
)

// String names the op for reports.
func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpBatchQuery:
		return "batch-query"
	case OpAddEdge:
		return "add-edge"
	case OpRemoveEdge:
		return "remove-edge"
	case OpRebuild:
		return "rebuild"
	case OpCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

func validOp(o Op) bool { return o >= OpQuery && o < opMax }

// Record is one traced API operation.
type Record struct {
	// Seq is the logical timestamp: strictly contiguous from 1 in the order
	// operations were recorded (or generated).
	Seq uint64
	// DeltaNanos is the arrival gap to the previous record (0 for the
	// first). Replay in timed mode and the load generator honor it;
	// as-fast-as-possible replay ignores it.
	DeltaNanos uint64
	// Op is the operation kind.
	Op Op
	// Gen is the serving generation observed when the operation was
	// recorded; 0 in generated traces (nothing to verify against).
	Gen uint64
	// Digest summarizes the response bits (see digest.go); 0 in generated
	// traces, which carry load but no expected answers.
	Digest uint64
	// Args are the operation's external node ids: the queried ids for
	// (batch-)queries, [u, v] for edge mutations, empty for rebuild and
	// checkpoint.
	Args []int64
}

// encodedSize is the on-disk size of the record.
func (r Record) encodedSize() int { return recPrefix + 8*len(r.Args) + crcSize }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func putU32(b []byte, x uint32) {
	b[0], b[1], b[2], b[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
}

func putU64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}

// appendRecord encodes r onto dst and returns the extended slice.
func appendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	var scratch [8]byte
	putU64(scratch[:], r.Seq)
	dst = append(dst, scratch[:]...)
	putU64(scratch[:], r.DeltaNanos)
	dst = append(dst, scratch[:]...)
	dst = append(dst, byte(r.Op))
	putU64(scratch[:], r.Gen)
	dst = append(dst, scratch[:]...)
	putU64(scratch[:], r.Digest)
	dst = append(dst, scratch[:]...)
	putU32(scratch[:4], uint32(len(r.Args)))
	dst = append(dst, scratch[:4]...)
	for _, a := range r.Args {
		putU64(scratch[:], uint64(a))
		dst = append(dst, scratch[:]...)
	}
	putU32(scratch[:4], crc32.Checksum(dst[start:], castagnoli))
	return append(dst, scratch[:4]...)
}

// decodeRecord parses one record from the front of b, returning it and the
// bytes consumed; ok is false when b holds no complete valid record.
func decodeRecord(b []byte) (rec Record, n int, ok bool) {
	if len(b) < recPrefix {
		return Record{}, 0, false
	}
	nargs := getU32(b[33:37])
	if nargs > maxArgs {
		return Record{}, 0, false
	}
	n = recPrefix + 8*int(nargs) + crcSize
	if len(b) < n {
		return Record{}, 0, false
	}
	if crc32.Checksum(b[:n-4], castagnoli) != getU32(b[n-4:n]) {
		return Record{}, 0, false
	}
	rec = Record{
		Seq:        getU64(b[0:8]),
		DeltaNanos: getU64(b[8:16]),
		Op:         Op(b[16]),
		Gen:        getU64(b[17:25]),
		Digest:     getU64(b[25:33]),
	}
	if !validOp(rec.Op) {
		return Record{}, 0, false
	}
	if nargs > 0 {
		rec.Args = make([]int64, nargs)
		for i := range rec.Args {
			rec.Args[i] = int64(getU64(b[37+8*i:]))
		}
	}
	return rec, n, true
}

// header renders the 12-byte file header.
//
//recclint:wirepair traceheader
func header() [headerSize]byte {
	var h [headerSize]byte
	copy(h[:8], Magic)
	putU32(h[8:12], FormatVersion)
	return h
}

// ErrVersion reports a trace written by a different format generation.
var ErrVersion = fmt.Errorf("trace: unsupported format version")

// ScanTrace reads a trace stream and returns the valid record prefix plus
// the byte offset where validity ends. A missing or foreign magic yields
// zero records and offset 0; a foreign version is ErrVersion (the file is
// a trace, but this reader cannot interpret it). Everything after the valid
// prefix — a torn tail from a crashed recorder, or corruption — is simply
// not returned; callers report it via the offset.
//
//recclint:wirepair traceheader
func ScanTrace(r io.Reader) (recs []Record, validSize int64, err error) {
	var hdr [headerSize]byte
	if _, herr := io.ReadFull(r, hdr[:]); herr != nil {
		return nil, 0, nil
	}
	if string(hdr[:8]) != Magic {
		return nil, 0, nil
	}
	if v := getU32(hdr[8:12]); v != FormatVersion {
		return nil, 0, fmt.Errorf("%w: trace format v%d, reader supports v%d", ErrVersion, v, FormatVersion)
	}
	validSize = headerSize
	// Records are variable-length, so scan over a growing buffer: read the
	// fixed prefix, then the args the length field promises.
	buf := make([]byte, 0, 4096)
	var scratch [4096]byte
	var lastSeq uint64
	for {
		// Top the buffer up until it holds a whole candidate record (or the
		// stream ends, which terminates the valid prefix).
		for {
			if len(buf) >= recPrefix {
				nargs := getU32(buf[33:37])
				if nargs > maxArgs {
					return recs, validSize, nil
				}
				if len(buf) >= recPrefix+8*int(nargs)+crcSize {
					break
				}
			}
			n, rerr := r.Read(scratch[:])
			buf = append(buf, scratch[:n]...)
			if rerr != nil {
				if len(buf) < recPrefix {
					return recs, validSize, nil
				}
				if nargs := getU32(buf[33:37]); nargs > maxArgs || len(buf) < recPrefix+8*int(nargs)+crcSize {
					return recs, validSize, nil
				}
				break
			}
		}
		rec, n, ok := decodeRecord(buf)
		if !ok || rec.Seq == 0 || (lastSeq != 0 && rec.Seq != lastSeq+1) || (lastSeq == 0 && rec.Seq != 1) {
			return recs, validSize, nil
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		validSize += int64(n)
		buf = buf[n:]
	}
}

// Info summarizes a trace file for inspection: counts per op, the time span
// the arrival deltas cover, and how much of the file is a torn tail.
type Info struct {
	Version uint32
	Records int
	// ByOp counts records per operation kind, indexed by Op.
	ByOp [opMax]int
	// FirstSeq/LastSeq bound the valid prefix (both 0 when empty).
	FirstSeq, LastSeq uint64
	// SpanNanos is the sum of arrival deltas: the wall-clock span the
	// workload covered when recorded (or targets when generated).
	SpanNanos uint64
	// ValidBytes is the trusted prefix; TornBytes is what a reader discards.
	ValidBytes, TornBytes int64
}

// summarize folds a scanned trace into an Info.
func summarize(recs []Record, validSize, fileSize int64) *Info {
	info := &Info{
		Version:    FormatVersion,
		Records:    len(recs),
		ValidBytes: validSize,
		TornBytes:  fileSize - validSize,
	}
	for _, r := range recs {
		info.ByOp[r.Op]++
		info.SpanNanos += r.DeltaNanos
	}
	if len(recs) > 0 {
		info.FirstSeq = recs[0].Seq
		info.LastSeq = recs[len(recs)-1].Seq
	}
	return info
}

// ReadFile loads the valid record prefix of a trace file. A torn or corrupt
// tail is not an error — the Info reports how many bytes were discarded; a
// file that is not a trace at all yields zero records with ValidBytes 0.
func ReadFile(path string) ([]Record, *Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	recs, validSize, err := ScanTrace(f)
	if err != nil {
		return nil, nil, err
	}
	return recs, summarize(recs, validSize, fi.Size()), nil
}

// InspectFile summarizes a trace file without retaining its records.
func InspectFile(path string) (*Info, error) {
	_, info, err := ReadFile(path)
	return info, err
}

// WriteFile writes recs as a complete trace file at path, fsynced. Records
// must already carry contiguous sequence numbers from 1 (Generate's output
// does); violating that would produce a file whose own reader stops early.
func WriteFile(path string, recs []Record) error {
	buf := make([]byte, 0, headerSize+len(recs)*(recPrefix+16))
	h := header()
	buf = append(buf, h[:]...)
	var lastSeq uint64
	for _, r := range recs {
		if !validOp(r.Op) {
			return fmt.Errorf("trace: record %d has invalid op %d", r.Seq, r.Op)
		}
		if r.Seq != lastSeq+1 {
			return fmt.Errorf("trace: record seq %d breaks contiguity after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		buf = appendRecord(buf, r)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

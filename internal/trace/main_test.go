package trace

import (
	"os"
	"testing"

	"resistecc/internal/testutil"
)

// TestMain fails the suite if any test leaks a recorder writer goroutine:
// every Recorder a test starts must be closed.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaksMain(m))
}

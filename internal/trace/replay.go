package trace

import (
	"context"
	"fmt"
	"time"
)

// OpResult is what executing one trace operation observed: the serving
// generation and the response digest, computed with the same functions the
// recorder used. The replayer compares both against the record.
//
// For OpRebuild, Gen is the generation *before* the rebuild (what the
// recording server stamped on its 202 acceptance) — the rebuild itself then
// runs to completion before the next record executes, which is exactly how
// a serially recorded workload observed it.
type OpResult struct {
	Gen    uint64
	Digest uint64
}

// Executor runs one trace operation against some target — a local
// DynamicIndex (resistecc.TraceExecutor) or a live server (HTTPExecutor).
type Executor interface {
	Do(ctx context.Context, rec Record) (OpResult, error)
}

// ReplayOptions tune re-execution.
type ReplayOptions struct {
	// Timed honors the recorded arrival deltas (open-loop pacing); the
	// default replays as fast as the target executes.
	Timed bool
	// MaxMismatches stops the replay early once this many divergences have
	// been collected (0 = replay everything regardless).
	MaxMismatches int
}

// Mismatch is one divergence between the trace and the replay target.
type Mismatch struct {
	Seq       uint64
	Op        Op
	Field     string // "generation" or "digest"
	Want, Got uint64
}

func (m Mismatch) String() string {
	return fmt.Sprintf("seq %d %s: %s %d, trace recorded %d", m.Seq, m.Op, m.Field, m.Got, m.Want)
}

// Report is the outcome of one replay.
type Report struct {
	// Ops counts executed records; ByOp splits them per operation kind.
	Ops  int
	ByOp [opMax]int
	// Checked counts digest comparisons performed; Skipped counts records
	// with no recorded digest (generated traces) that only executed.
	Checked, Skipped int
	// Mismatches are the divergences; empty means bit-exact.
	Mismatches []Mismatch
	// Rejected counts unverified (zero-digest) records the target refused —
	// a generated mutation may legitimately conflict (duplicate edge,
	// removal of a bridge); that is load-shaping, not divergence.
	Rejected int
	// Failures counts verified records whose execution errored: the target
	// refused an operation the recorded server accepted.
	Failures int
	// FirstFailure describes the first execution error, for diagnostics.
	FirstFailure string
	Duration     time.Duration
}

// OK reports whether the replay was bit-exact: every executed verified
// record matched its recorded generation and digest.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 && r.Failures == 0 }

// Replay re-executes recs in sequence order against ex and verifies each
// response against the recorded generation and digest. It returns early only
// on ctx cancellation (or when MaxMismatches is hit); individual op errors
// and divergences are collected in the report so one bad record doesn't hide
// the rest.
func Replay(ctx context.Context, recs []Record, ex Executor, opt ReplayOptions) (*Report, error) {
	rep := &Report{}
	start := time.Now()
	var cum time.Duration
	for _, rec := range recs {
		if opt.Timed {
			cum += time.Duration(rec.DeltaNanos)
			if wait := cum - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					rep.Duration = time.Since(start)
					return rep, ctx.Err()
				}
			}
		} else if err := ctx.Err(); err != nil {
			rep.Duration = time.Since(start)
			return rep, err
		}

		res, err := ex.Do(ctx, rec)
		rep.Ops++
		if validOp(rec.Op) {
			rep.ByOp[rec.Op]++
		}
		verified := rec.Digest != 0 || rec.Gen != 0
		if err != nil {
			if !verified {
				rep.Rejected++
				continue
			}
			rep.Failures++
			if rep.FirstFailure == "" {
				rep.FirstFailure = fmt.Sprintf("seq %d %s: %v", rec.Seq, rec.Op, err)
			}
			continue
		}
		if rec.Gen != 0 && res.Gen != rec.Gen {
			rep.Mismatches = append(rep.Mismatches, Mismatch{
				Seq: rec.Seq, Op: rec.Op, Field: "generation", Want: rec.Gen, Got: res.Gen,
			})
		}
		if rec.Digest == 0 {
			rep.Skipped++
		} else {
			rep.Checked++
			if res.Digest != rec.Digest {
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Seq: rec.Seq, Op: rec.Op, Field: "digest", Want: rec.Digest, Got: res.Digest,
				})
			}
		}
		if opt.MaxMismatches > 0 && len(rep.Mismatches) >= opt.MaxMismatches {
			break
		}
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

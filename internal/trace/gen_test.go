package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	w := Workload{
		Nodes: 200, Ops: 500, Seed: 42,
		MaxBatch: 8, MutationRate: 0.2, RemoveFraction: 0.3,
		RebuildEvery: 100, CheckpointEvery: 77, Rate: 5000,
	}
	a, err := w.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec and seed produced different traces")
	}
	// Byte-level determinism, not just structural.
	if !bytes.Equal(encodeTrace(a), encodeTrace(b)) {
		t.Fatal("same spec and seed produced different bytes")
	}
	w2 := w
	w2.Seed = 43
	c, err := w2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	w := Workload{
		Nodes: 100, Ops: 2000, Seed: 7,
		MaxBatch: 4, MutationRate: 0.25, RemoveFraction: 0.4,
		RebuildEvery: 500, Rate: 10000,
	}
	recs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != w.Ops {
		t.Fatalf("generated %d records, want %d", len(recs), w.Ops)
	}
	var byOp [opMax]int
	live := map[genEdge]bool{}
	var span uint64
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Gen != 0 || r.Digest != 0 {
			t.Fatalf("generated record %d carries verification fields: %+v", i, r)
		}
		byOp[r.Op]++
		span += r.DeltaNanos
		switch r.Op {
		case OpQuery:
			if len(r.Args) != 1 || r.Args[0] < 0 || r.Args[0] >= int64(w.Nodes) {
				t.Fatalf("query record %d args %v out of range", i, r.Args)
			}
		case OpBatchQuery:
			if len(r.Args) < 2 || len(r.Args) > w.MaxBatch {
				t.Fatalf("batch record %d has %d args, cap %d", i, len(r.Args), w.MaxBatch)
			}
		case OpAddEdge:
			if len(r.Args) != 2 || r.Args[0] == r.Args[1] {
				t.Fatalf("add record %d args %v", i, r.Args)
			}
			e := genEdge{r.Args[0], r.Args[1]}
			if live[e] {
				t.Fatalf("record %d re-adds live edge %v", i, e)
			}
			live[e] = true
		case OpRemoveEdge:
			e := genEdge{r.Args[0], r.Args[1]}
			if !live[e] {
				t.Fatalf("record %d removes edge %v this trace never added", i, e)
			}
			delete(live, e)
		}
	}
	if byOp[OpRebuild] != w.Ops/w.RebuildEvery {
		t.Fatalf("rebuilds = %d, want %d", byOp[OpRebuild], w.Ops/w.RebuildEvery)
	}
	if byOp[OpAddEdge] == 0 || byOp[OpRemoveEdge] == 0 || byOp[OpBatchQuery] == 0 {
		t.Fatalf("workload mix degenerate: %v", byOp)
	}
	// 2000 ops at 10k/s target ≈ 200ms span; exponential arrivals put wide
	// but bounded error bars on the sum.
	if span < 50e6 || span > 800e6 {
		t.Fatalf("arrival span %dns implausible for 2000 ops at 10k/s", span)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Workload{
		{Nodes: 1, Ops: 10},
		{Nodes: 10, Ops: 0},
		{Nodes: 10, Ops: 10, MutationRate: 1.5},
		{Nodes: 10, Ops: 10, RemoveFraction: -0.1},
		{Nodes: 10, Ops: 10, ZipfS: 0.5, ZipfV: 1},
	}
	for i, w := range bad {
		if _, err := w.Generate(); err == nil {
			t.Fatalf("spec %d (%+v) accepted", i, w)
		}
	}
}

func TestGenerateFileRoundTrip(t *testing.T) {
	w := Workload{Nodes: 50, Ops: 120, Seed: 3, MutationRate: 0.1, Rate: 1000}
	recs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/gen.trc"
	if err := WriteFile(path, recs); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, info, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("generated trace did not survive the file round-trip")
	}
	if info.TornBytes != 0 || info.Records != len(recs) {
		t.Fatalf("info = %+v", info)
	}
}

//recclint:deterministic — digests must hash identical responses to identical bits.

package trace

import "math"

// Response digests are 64-bit FNV-1a over the semantic content of the
// response, with float64 values hashed by their IEEE-754 bits. "Semantic"
// means the fields a bit-exact replay must reproduce — node ids, eccentricity
// bits, witness ids, mutation mode and drift — not the JSON framing, so the
// same digest can be computed from a live handler's values, a replayed
// DynamicIndex, or a parsed HTTP response body.
//
// A zero digest means "unverified": generated traces carry load but no
// expected answers, and replay skips their comparison. (FNV of real content
// hitting exactly 0 is a 2⁻⁶⁴ event; the convention costs nothing.)
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type digest uint64

func newDigest() digest { return fnvOffset }

func (d digest) u64(x uint64) digest {
	for i := 0; i < 8; i++ {
		d ^= digest(byte(x >> (8 * i)))
		d *= fnvPrime
	}
	return d
}

func (d digest) i64(x int64) digest   { return d.u64(uint64(x)) }
func (d digest) f64(x float64) digest { return d.u64(math.Float64bits(x)) }
func (d digest) str(s string) digest {
	for i := 0; i < len(s); i++ {
		d ^= digest(s[i])
		d *= fnvPrime
	}
	return d
}

// EccResult is one eccentricity answer in external ids, the unit query
// digests are computed over.
type EccResult struct {
	Node     int64
	Ecc      float64
	Farthest int64
}

// DigestQuery hashes a query response: every answered node, its
// eccentricity bits and its farthest-witness id, in response order.
//
//recclint:wirelayout loop(i64 f64 i64)
func DigestQuery(res []EccResult) uint64 {
	d := newDigest()
	for _, r := range res {
		d = d.i64(r.Node).f64(r.Ecc).i64(r.Farthest)
	}
	return uint64(d)
}

// DigestMutation hashes a mutation response: the generation now serving it,
// how it was absorbed (incremental vs stale), and the accumulated drift
// bound — the fields that must match bit-exactly when the same mutation
// sequence is replayed against a same-seed index.
//
//recclint:wirelayout u64 str f64
func DigestMutation(gen uint64, mode string, drift float64) uint64 {
	return uint64(newDigest().u64(gen).str(mode).f64(drift))
}

// DigestGen hashes a bare generation number, the verification unit for
// rebuild and checkpoint records (their other response fields — wall-clock
// durations, snapshot ages — are not deterministic and excluded by design).
//
//recclint:wirelayout u64
func DigestGen(gen uint64) uint64 {
	return uint64(newDigest().u64(gen))
}

package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeTrace asserts the two invariants that make torn-tail recovery
// safe on arbitrary bytes: the scanner never panics, and whatever prefix it
// accepts re-encodes byte-identically to the input it consumed (so a
// repaired trace is exactly the trusted prefix, nothing synthesized).
func FuzzDecodeTrace(f *testing.F) {
	f.Add([]byte{})
	h := header()
	f.Add(h[:])
	f.Add(encodeTrace(sampleRecords()))
	torn := encodeTrace(sampleRecords())
	f.Add(torn[:len(torn)-9])
	flipped := encodeTrace(sampleRecords())
	flipped[headerSize+5] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("RECCTRC1\x02\x00\x00\x00tail"))
	f.Add(bytes.Repeat([]byte{0xab}, 200))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validSize, err := ScanTrace(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrVersion) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if validSize > int64(len(data)) {
			t.Fatalf("validSize %d exceeds input %d", validSize, len(data))
		}
		if len(recs) == 0 {
			if validSize != 0 && validSize != headerSize {
				t.Fatalf("no records but validSize = %d", validSize)
			}
			return
		}
		// Re-encode the accepted prefix; it must reproduce data[:validSize].
		reenc := encodeTrace(recs)
		if !bytes.Equal(reenc, data[:validSize]) {
			t.Fatalf("accepted prefix does not re-encode identically (%d records, %d bytes)", len(recs), validSize)
		}
		// Sequence contiguity from 1 is part of the accept contract.
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
			if !validOp(r.Op) {
				t.Fatalf("record %d has invalid op %d", i, r.Op)
			}
		}
	})
}

package trace

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"resistecc/internal/obs"
)

// LoadOptions tune the open-loop driver.
type LoadOptions struct {
	// Concurrency bounds in-flight requests (default 64). An open-loop
	// generator that outruns the target otherwise piles up unbounded
	// goroutines; the bound converts overload into queueing delay, which the
	// latency percentiles then expose honestly.
	Concurrency int
	// AsFast ignores the trace's arrival deltas and dispatches as fast as
	// the concurrency bound allows (closed-loop capacity probing).
	AsFast bool
	// Client defaults to a 2-minute-timeout client when nil.
	Client *http.Client
}

// LoadReport summarizes one load run.
type LoadReport struct {
	// Ops counts dispatched operations; ByOp splits them per kind.
	Ops  int
	ByOp [opMax]int
	// Errors counts transport failures (connection refused, timeouts).
	Errors int
	// Rejected counts well-formed non-2xx answers below 500 — shed load
	// (429/503 is a 5xx here, see ServerErrors), conflicts, validation.
	Rejected int
	// ServerErrors counts 5xx answers — the zero-5xx capacity assertion.
	ServerErrors int
	// Duration is dispatch start to last response.
	Duration time.Duration
	// AchievedRate is Ops / Duration in ops per second.
	AchievedRate float64
	// P50, P90, P99 are per-operation latency quantiles.
	P50, P90, P99 time.Duration
}

// RunLoad drives a trace against base open-loop: a dispatcher honors each
// record's arrival delta (unless AsFast) and hands the operation to a
// bounded worker pool, so a slow target sees queueing delay rather than a
// convoy of blocked arrivals. Results are verified only for well-formedness
// (generated traces carry no digests); the report carries the error split
// and latency quantiles.
func RunLoad(ctx context.Context, recs []Record, base string, opt LoadOptions) (*LoadReport, error) {
	if opt.Concurrency <= 0 {
		opt.Concurrency = 64
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	ex := &HTTPExecutor{Base: base, Client: client}

	var (
		lat          obs.Latencies
		errs         atomic.Int64
		rejected     atomic.Int64
		serverErrors atomic.Int64
		wg           sync.WaitGroup
		sem          = make(chan struct{}, opt.Concurrency)
	)
	rep := &LoadReport{}
	start := time.Now()
	var cum time.Duration

dispatch:
	for _, rec := range recs {
		if !opt.AsFast {
			cum += time.Duration(rec.DeltaNanos)
			if wait := cum - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					break dispatch
				}
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		rep.Ops++
		if validOp(rec.Op) {
			rep.ByOp[rec.Op]++
		}
		wg.Add(1)
		go func(rec Record) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			_, err := ex.Do(ctx, rec)
			lat.Observe(time.Since(t0))
			if err == nil {
				return
			}
			if se, ok := err.(*statusError); ok {
				if se.status >= 500 {
					serverErrors.Add(1)
				} else {
					rejected.Add(1)
				}
				return
			}
			errs.Add(1)
		}(rec)
	}
	wg.Wait()

	rep.Duration = time.Since(start)
	rep.Errors = int(errs.Load())
	rep.Rejected = int(rejected.Load())
	rep.ServerErrors = int(serverErrors.Load())
	if rep.Duration > 0 {
		rep.AchievedRate = float64(rep.Ops) / rep.Duration.Seconds()
	}
	rep.P50 = lat.Quantile(0.50)
	rep.P90 = lat.Quantile(0.90)
	rep.P99 = lat.Quantile(0.99)
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

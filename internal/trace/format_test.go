package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeRaw(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// sampleRecords is a mixed workload covering every op kind, arg shape and
// field width the format must round-trip.
func sampleRecords() []Record {
	return []Record{
		{Seq: 1, DeltaNanos: 0, Op: OpQuery, Gen: 1, Digest: 0xdeadbeefcafe, Args: []int64{42}},
		{Seq: 2, DeltaNanos: 1500, Op: OpBatchQuery, Gen: 1, Digest: 7, Args: []int64{0, -9, 1 << 40}},
		{Seq: 3, DeltaNanos: 2, Op: OpAddEdge, Gen: 2, Digest: 99, Args: []int64{5, 11}},
		{Seq: 4, DeltaNanos: 1 << 33, Op: OpRemoveEdge, Gen: 2, Digest: 100, Args: []int64{5, 11}},
		{Seq: 5, DeltaNanos: 0, Op: OpRebuild, Gen: 2, Digest: DigestGen(2)},
		{Seq: 6, DeltaNanos: 12345, Op: OpCheckpoint, Gen: 3, Digest: DigestGen(3)},
		{Seq: 7, DeltaNanos: 1, Op: OpQuery, Gen: 3, Digest: 0}, // unverified, no args
	}
}

func encodeTrace(recs []Record) []byte {
	h := header()
	buf := append([]byte{}, h[:]...)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		b := appendRecord(nil, want)
		if len(b) != want.encodedSize() {
			t.Fatalf("record %d encoded to %d bytes, encodedSize says %d", want.Seq, len(b), want.encodedSize())
		}
		got, n, ok := decodeRecord(b)
		if !ok || n != len(b) {
			t.Fatalf("record %d failed to decode (ok=%v n=%d)", want.Seq, ok, n)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", want.Seq, got, want)
		}
	}
}

func TestScanTraceFull(t *testing.T) {
	want := sampleRecords()
	buf := encodeTrace(want)
	recs, validSize, err := ScanTrace(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("ScanTrace: %v", err)
	}
	if validSize != int64(len(buf)) {
		t.Fatalf("validSize = %d, want whole file %d", validSize, len(buf))
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("scanned records differ:\n got %+v\nwant %+v", recs, want)
	}
}

func TestScanTraceEmptyFile(t *testing.T) {
	h := header()
	recs, validSize, err := ScanTrace(bytes.NewReader(h[:]))
	if err != nil || len(recs) != 0 || validSize != headerSize {
		t.Fatalf("empty trace: recs=%d validSize=%d err=%v, want 0/%d/nil", len(recs), validSize, err, headerSize)
	}
}

// TestScanTraceCorruption is the torn-tail/corrupt-record decode matrix,
// mirroring the persist WAL suites: every mutation of a valid file must
// yield exactly the intact prefix, never an error, never a bogus record.
func TestScanTraceCorruption(t *testing.T) {
	recs := sampleRecords()
	full := encodeTrace(recs)
	// offsets[i] is where record i starts in full.
	offsets := make([]int, len(recs)+1)
	offsets[0] = headerSize
	for i, r := range recs {
		offsets[i+1] = offsets[i] + r.encodedSize()
	}

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantRecs int
		wantSize int64
	}{
		{"truncated header", func(b []byte) []byte { return b[:headerSize-3] }, 0, 0},
		{"foreign magic", func(b []byte) []byte {
			c := append([]byte{}, b...)
			copy(c, "NOTATRCE")
			return c
		}, 0, 0},
		{"mid-record cut in prefix", func(b []byte) []byte { return b[:offsets[2]+10] }, 2, int64(offsets[2])},
		{"mid-record cut in args", func(b []byte) []byte { return b[:offsets[1]+recPrefix+5] }, 1, int64(offsets[1])},
		{"cut before CRC", func(b []byte) []byte { return b[:offsets[4]-2] }, 3, int64(offsets[3])},
		{"CRC bit flip", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[offsets[4]-1] ^= 0x01 // last CRC byte of record 4
			return c
		}, 3, int64(offsets[3])},
		{"payload bit flip", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[offsets[1]+20] ^= 0x80 // inside record 2's delta field
			return c
		}, 1, int64(offsets[1])},
		{"oversize nargs", func(b []byte) []byte {
			c := append([]byte{}, b[:offsets[3]]...)
			bad := appendRecord(nil, recs[3])
			putU32(bad[33:37], maxArgs+1) // CRC now wrong too, but nargs bound trips first
			return append(c, bad...)
		}, 3, int64(offsets[3])},
		{"garbage tail", func(b []byte) []byte {
			return append(append([]byte{}, b...), 0xff, 0x13, 0x37)
		}, len(recs), int64(len(full))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, validSize, err := ScanTrace(bytes.NewReader(tc.mutate(full)))
			if err != nil {
				t.Fatalf("ScanTrace: %v", err)
			}
			if len(got) != tc.wantRecs || validSize != tc.wantSize {
				t.Fatalf("got %d records valid to %d, want %d records valid to %d",
					len(got), validSize, tc.wantRecs, tc.wantSize)
			}
			if tc.wantRecs > 0 && !reflect.DeepEqual(got, recs[:tc.wantRecs]) {
				t.Fatalf("prefix records differ from original")
			}
		})
	}
}

func TestScanTraceForeignVersion(t *testing.T) {
	buf := encodeTrace(sampleRecords())
	putU32(buf[8:12], FormatVersion+1)
	if _, _, err := ScanTrace(bytes.NewReader(buf)); !errors.Is(err, ErrVersion) {
		t.Fatalf("foreign version: err = %v, want ErrVersion", err)
	}
}

func TestScanTraceSeqViolations(t *testing.T) {
	recs := sampleRecords()
	t.Run("gap", func(t *testing.T) {
		bad := append([]Record{}, recs...)
		bad[3].Seq = 9 // 1,2,3,9,...
		got, _, err := ScanTrace(bytes.NewReader(encodeTrace(bad)))
		if err != nil || len(got) != 3 {
			t.Fatalf("seq gap: got %d records err=%v, want 3 records", len(got), err)
		}
	})
	t.Run("not starting at 1", func(t *testing.T) {
		bad := append([]Record{}, recs...)
		for i := range bad {
			bad[i].Seq += 5
		}
		got, validSize, err := ScanTrace(bytes.NewReader(encodeTrace(bad)))
		if err != nil || len(got) != 0 || validSize != headerSize {
			t.Fatalf("seq from 6: got %d records valid to %d err=%v, want 0/%d", len(got), validSize, err, headerSize)
		}
	})
}

func TestWriteReadFile(t *testing.T) {
	want := sampleRecords()
	path := filepath.Join(t.TempDir(), "w.trc")
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, info, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records differ after file round-trip")
	}
	if info.Records != len(want) || info.TornBytes != 0 {
		t.Fatalf("info = %+v, want %d records and no torn tail", info, len(want))
	}
	if info.FirstSeq != 1 || info.LastSeq != uint64(len(want)) {
		t.Fatalf("seq bounds = [%d,%d], want [1,%d]", info.FirstSeq, info.LastSeq, len(want))
	}
	var span uint64
	for _, r := range want {
		span += r.DeltaNanos
	}
	if info.SpanNanos != span {
		t.Fatalf("span = %d, want %d", info.SpanNanos, span)
	}
	if info.ByOp[OpQuery] != 2 || info.ByOp[OpBatchQuery] != 1 || info.ByOp[OpRebuild] != 1 {
		t.Fatalf("per-op counts wrong: %+v", info.ByOp)
	}
}

func TestWriteFileRejectsBadRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trc")
	if err := WriteFile(path, []Record{{Seq: 1, Op: Op(42)}}); err == nil {
		t.Fatal("invalid op accepted")
	}
	if err := WriteFile(path, []Record{{Seq: 2, Op: OpQuery}}); err == nil {
		t.Fatal("seq not starting at 1 accepted")
	}
}

func TestInspectFileTornTail(t *testing.T) {
	recs := sampleRecords()
	buf := encodeTrace(recs)
	cut := len(buf) - 13 // slice into the last record
	path := filepath.Join(t.TempDir(), "torn.trc")
	if err := writeRaw(path, buf[:cut]); err != nil {
		t.Fatal(err)
	}
	info, err := InspectFile(path)
	if err != nil {
		t.Fatalf("InspectFile: %v", err)
	}
	if info.Records != len(recs)-1 {
		t.Fatalf("torn trace: %d records, want %d", info.Records, len(recs)-1)
	}
	if info.TornBytes <= 0 || info.ValidBytes+info.TornBytes != int64(cut) {
		t.Fatalf("byte accounting wrong: valid=%d torn=%d file=%d", info.ValidBytes, info.TornBytes, cut)
	}
}

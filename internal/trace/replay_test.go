package trace

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// scriptExecutor answers from a fixed script keyed by sequence number.
type scriptExecutor struct {
	results map[uint64]OpResult
	errs    map[uint64]error
	calls   int
}

func (s *scriptExecutor) Do(_ context.Context, rec Record) (OpResult, error) {
	s.calls++
	if err := s.errs[rec.Seq]; err != nil {
		return OpResult{}, err
	}
	return s.results[rec.Seq], nil
}

func TestReplayBitExact(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: OpQuery, Gen: 3, Digest: 0xaa, Args: []int64{1}},
		{Seq: 2, Op: OpAddEdge, Gen: 4, Digest: 0xbb, Args: []int64{1, 2}},
		{Seq: 3, Op: OpRebuild, Gen: 4, Digest: DigestGen(4)},
	}
	ex := &scriptExecutor{results: map[uint64]OpResult{
		1: {Gen: 3, Digest: 0xaa},
		2: {Gen: 4, Digest: 0xbb},
		3: {Gen: 4, Digest: DigestGen(4)},
	}}
	rep, err := Replay(context.Background(), recs, ex, ReplayOptions{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.OK() || rep.Ops != 3 || rep.Checked != 3 || rep.Skipped != 0 {
		t.Fatalf("report = %+v, want OK with 3 checked", rep)
	}
	if rep.ByOp[OpQuery] != 1 || rep.ByOp[OpAddEdge] != 1 || rep.ByOp[OpRebuild] != 1 {
		t.Fatalf("per-op counts wrong: %v", rep.ByOp)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: OpQuery, Gen: 3, Digest: 0xaa, Args: []int64{1}},
		{Seq: 2, Op: OpQuery, Gen: 3, Digest: 0xbb, Args: []int64{2}},
	}
	ex := &scriptExecutor{results: map[uint64]OpResult{
		1: {Gen: 5, Digest: 0xaa},   // generation divergence
		2: {Gen: 3, Digest: 0xdead}, // digest divergence
	}}
	rep, err := Replay(context.Background(), recs, ex, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Mismatches) != 2 {
		t.Fatalf("report = %+v, want 2 mismatches", rep)
	}
	if rep.Mismatches[0].Field != "generation" || rep.Mismatches[0].Want != 3 || rep.Mismatches[0].Got != 5 {
		t.Fatalf("first mismatch = %+v", rep.Mismatches[0])
	}
	if rep.Mismatches[1].Field != "digest" {
		t.Fatalf("second mismatch = %+v", rep.Mismatches[1])
	}
	if !strings.Contains(rep.Mismatches[0].String(), "seq 1") {
		t.Fatalf("mismatch string uninformative: %q", rep.Mismatches[0])
	}
}

func TestReplayMaxMismatches(t *testing.T) {
	var recs []Record
	results := map[uint64]OpResult{}
	for i := uint64(1); i <= 10; i++ {
		recs = append(recs, Record{Seq: i, Op: OpQuery, Gen: 1, Digest: i, Args: []int64{int64(i)}})
		results[i] = OpResult{Gen: 1, Digest: 0xffff} // all diverge
	}
	ex := &scriptExecutor{results: results}
	rep, err := Replay(context.Background(), recs, ex, ReplayOptions{MaxMismatches: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 3 || rep.Ops != 3 {
		t.Fatalf("early stop failed: %d mismatches over %d ops", len(rep.Mismatches), rep.Ops)
	}
}

func TestReplayRejectedVsFailed(t *testing.T) {
	boom := errors.New("conflict")
	recs := []Record{
		// Unverified (generated) record: an executor error is load-shaping.
		{Seq: 1, Op: OpAddEdge, Args: []int64{1, 2}},
		// Verified record: the same error is a failure.
		{Seq: 2, Op: OpAddEdge, Gen: 2, Digest: 0xcc, Args: []int64{3, 4}},
		// Unverified success: executes, digest comparison skipped.
		{Seq: 3, Op: OpQuery, Args: []int64{5}},
	}
	ex := &scriptExecutor{
		results: map[uint64]OpResult{3: {Gen: 9, Digest: 0x11}},
		errs:    map[uint64]error{1: boom, 2: boom},
	}
	rep, err := Replay(context.Background(), recs, ex, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 || rep.Failures != 1 || rep.Skipped != 1 || rep.Checked != 0 {
		t.Fatalf("report = %+v, want 1 rejected / 1 failed / 1 skipped", rep)
	}
	if rep.OK() {
		t.Fatal("a failed verified record must fail the replay")
	}
	if !strings.Contains(rep.FirstFailure, "seq 2") {
		t.Fatalf("FirstFailure = %q, want seq 2 context", rep.FirstFailure)
	}
}

func TestReplayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	recs := []Record{{Seq: 1, Op: OpQuery, Gen: 1, Digest: 1, Args: []int64{1}}}
	ex := &scriptExecutor{results: map[uint64]OpResult{1: {Gen: 1, Digest: 1}}}
	rep, err := Replay(ctx, recs, ex, ReplayOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Ops != 0 || ex.calls != 0 {
		t.Fatalf("cancelled replay still executed %d ops", ex.calls)
	}
}

func TestReplayTimedHonorsDeltas(t *testing.T) {
	// Three records 20ms apart: a timed replay must take at least the span.
	recs := []Record{
		{Seq: 1, Op: OpQuery, Gen: 1, Digest: 1, Args: []int64{1}},
		{Seq: 2, DeltaNanos: 20e6, Op: OpQuery, Gen: 1, Digest: 1, Args: []int64{1}},
		{Seq: 3, DeltaNanos: 20e6, Op: OpQuery, Gen: 1, Digest: 1, Args: []int64{1}},
	}
	ex := &scriptExecutor{results: map[uint64]OpResult{
		1: {Gen: 1, Digest: 1}, 2: {Gen: 1, Digest: 1}, 3: {Gen: 1, Digest: 1},
	}}
	rep, err := Replay(context.Background(), recs, ex, ReplayOptions{Timed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Duration < 40e6 {
		t.Fatalf("timed replay finished in %v, deltas span 40ms", rep.Duration)
	}
}

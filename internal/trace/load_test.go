package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// stubServer fakes the reccd /v1 surface closely enough to exercise the
// HTTP executor and the load driver: fixed eccentricities, a generation
// counter bumped by mutations, and an injectable failure mode.
type stubServer struct {
	gen      atomic.Uint64
	rebuilds atomic.Uint64
	// failEvery makes every Nth query answer 503 (0 = never).
	failEvery int64
	queries   atomic.Int64
}

func (s *stubServer) ecc(node int64) EccResult {
	return EccResult{Node: node, Ecc: float64(node) * 1.5, Farthest: node + 1}
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/eccentricity", func(w http.ResponseWriter, r *http.Request) {
		if n := s.queries.Add(1); s.failEvery > 0 && n%s.failEvery == 0 {
			http.Error(w, `{"error":{"code":"overloaded"}}`, http.StatusServiceUnavailable)
			return
		}
		var out []map[string]any
		for _, part := range strings.Split(r.URL.Query().Get("node"), ",") {
			id, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				http.Error(w, "bad node", http.StatusBadRequest)
				return
			}
			e := s.ecc(id)
			out = append(out, map[string]any{"node": e.Node, "eccentricity": e.Ecc, "farthest": e.Farthest})
		}
		w.Header().Set("X-Index-Generation", strconv.FormatUint(s.gen.Load(), 10))
		json.NewEncoder(w).Encode(out)
	})
	mutate := func(w http.ResponseWriter, r *http.Request) {
		g := s.gen.Add(1)
		fmt.Fprintf(w, `{"generation":%d,"mode":"incremental","drift":0.25}`, g)
	}
	mux.HandleFunc("POST /v1/edges", mutate)
	mux.HandleFunc("DELETE /v1/edges", mutate)
	mux.HandleFunc("POST /v1/rebuild", func(w http.ResponseWriter, r *http.Request) {
		s.rebuilds.Add(1)
		s.gen.Add(1)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"scheduled":true}`)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"generation":%d,"rebuilds":%d,"rebuildInProgress":false}`,
			s.gen.Load(), s.rebuilds.Load())
	})
	mux.HandleFunc("POST /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Index-Generation", strconv.FormatUint(s.gen.Load(), 10))
		fmt.Fprintf(w, `{"generation":%d}`, s.gen.Load())
	})
	return mux
}

func TestHTTPExecutorOps(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	ex := &HTTPExecutor{Base: srv.URL, Client: srv.Client()}
	ctx := context.Background()

	res, err := ex.Do(ctx, Record{Seq: 1, Op: OpBatchQuery, Args: []int64{3, 8}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	want := DigestQuery([]EccResult{stub.ecc(3), stub.ecc(8)})
	if res.Digest != want || res.Gen != 0 {
		t.Fatalf("query result %+v, want digest %d gen 0", res, want)
	}

	res, err = ex.Do(ctx, Record{Seq: 2, Op: OpAddEdge, Args: []int64{1, 2}})
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if res.Gen != 1 || res.Digest != DigestMutation(1, "incremental", 0.25) {
		t.Fatalf("add result %+v", res)
	}

	res, err = ex.Do(ctx, Record{Seq: 3, Op: OpRebuild})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if res.Gen != 1 || res.Digest != DigestGen(1) {
		t.Fatalf("rebuild result %+v, want pre-rebuild gen 1", res)
	}

	res, err = ex.Do(ctx, Record{Seq: 4, Op: OpCheckpoint})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if res.Gen != 2 || res.Digest != DigestGen(2) {
		t.Fatalf("checkpoint result %+v", res)
	}

	if _, err := ex.Do(ctx, Record{Seq: 5, Op: OpRemoveEdge, Args: []int64{1}}); err == nil {
		t.Fatal("malformed mutation record accepted")
	}
}

func TestRunLoadCleanRun(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	w := Workload{Nodes: 60, Ops: 300, Seed: 11, MaxBatch: 4, MutationRate: 0.1, Rate: 20000}
	recs, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(context.Background(), recs, srv.URL, LoadOptions{Concurrency: 16, Client: srv.Client()})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Ops != len(recs) {
		t.Fatalf("dispatched %d ops, want %d", rep.Ops, len(recs))
	}
	if rep.Errors != 0 || rep.ServerErrors != 0 {
		t.Fatalf("clean stub produced errors: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.AchievedRate <= 0 {
		t.Fatalf("latency summary implausible: %+v", rep)
	}
}

func TestRunLoadClassifies5xx(t *testing.T) {
	stub := &stubServer{failEvery: 5}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	recs, err := Workload{Nodes: 40, Ops: 200, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(context.Background(), recs, srv.URL, LoadOptions{Concurrency: 8, AsFast: true, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerErrors == 0 {
		t.Fatal("injected 503s not counted as server errors")
	}
	if rep.Errors != 0 {
		t.Fatalf("503s misclassified as transport errors: %+v", rep)
	}
}

func TestRunLoadCancellation(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	// A far-future arrival delta parks the dispatcher; cancellation must
	// unblock it.
	recs := []Record{
		{Seq: 1, Op: OpQuery, Args: []int64{1}},
		{Seq: 2, DeltaNanos: 60e9, Op: OpQuery, Args: []int64{2}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rep *LoadReport
	var rerr error
	go func() {
		rep, rerr = RunLoad(ctx, recs, srv.URL, LoadOptions{Concurrency: 2, Client: srv.Client()})
		close(done)
	}()
	cancel()
	<-done
	if rerr == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if rep.Ops > 1 {
		t.Fatalf("dispatcher ran past cancellation: %d ops", rep.Ops)
	}
}

//recclint:deterministic — same spec, same seed, same trace, byte for byte.

package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Workload specifies a synthetic open-loop trace. Node popularity follows a
// Zipf distribution over a seeded permutation of the node ids (so the hot set
// is spread across the id space, not clustered at 0), inter-arrival times are
// exponential around the target rate, and a configurable fraction of
// operations mutate the graph. All generated records carry zero digests —
// they describe load, not expected answers; replaying one exercises the
// target without verification.
type Workload struct {
	// Nodes is the external id space [0, Nodes); queries and mutations draw
	// from it.
	Nodes int
	// Ops is the number of records to generate.
	Ops int
	// Seed fixes every random choice.
	Seed int64

	// ZipfS and ZipfV shape node popularity (s > 1, v >= 1). Zero values
	// default to s=1.2, v=8 — a realistic skew where the top ~1% of nodes
	// absorb a large share of queries without starving the tail.
	ZipfS, ZipfV float64

	// MaxBatch caps batch-query size; sizes are uniform in [1, MaxBatch].
	// 0 or 1 generates only single-node queries.
	MaxBatch int

	// MutationRate is the fraction of operations that mutate the graph
	// (edge adds and removes) rather than query it.
	MutationRate float64
	// RemoveFraction is the share of mutations that delete a previously
	// generated edge rather than add a new one (removals only target edges
	// this workload added, so they never race the base graph).
	RemoveFraction float64

	// RebuildEvery inserts an explicit rebuild every N operations (0 = never).
	RebuildEvery int
	// CheckpointEvery inserts a checkpoint every N operations (0 = never).
	CheckpointEvery int

	// Rate is the target arrival rate in operations per second; arrival
	// deltas are exponential with mean 1/Rate. 0 generates a zero-delay
	// trace (as-fast-as-possible when replayed with pacing).
	Rate float64
}

type genEdge struct{ u, v int64 }

// Generate synthesizes the trace. It is fully deterministic in the spec.
func (w Workload) Generate() ([]Record, error) {
	if w.Nodes < 2 {
		return nil, fmt.Errorf("trace: workload needs at least 2 nodes, got %d", w.Nodes)
	}
	if w.Ops <= 0 {
		return nil, fmt.Errorf("trace: workload needs at least 1 op, got %d", w.Ops)
	}
	if w.MutationRate < 0 || w.MutationRate > 1 {
		return nil, fmt.Errorf("trace: mutation rate %v outside [0,1]", w.MutationRate)
	}
	if w.RemoveFraction < 0 || w.RemoveFraction > 1 {
		return nil, fmt.Errorf("trace: remove fraction %v outside [0,1]", w.RemoveFraction)
	}
	s, v := w.ZipfS, w.ZipfV
	if s == 0 {
		s = 1.2
	}
	if v == 0 {
		v = 8
	}
	if s <= 1 || v < 1 {
		return nil, fmt.Errorf("trace: zipf parameters s=%v v=%v need s>1, v>=1", s, v)
	}

	r := rand.New(rand.NewSource(w.Seed))
	zipf := rand.NewZipf(r, s, v, uint64(w.Nodes-1))
	// Spread popularity ranks across the id space: rank i maps to a random
	// node, so the hot set isn't just the lowest ids.
	rank := r.Perm(w.Nodes)
	pick := func() int64 { return int64(rank[zipf.Uint64()]) }

	delta := func() uint64 {
		if w.Rate <= 0 {
			return 0
		}
		d := r.ExpFloat64() / w.Rate * 1e9
		if d > math.MaxInt64 {
			d = math.MaxInt64
		}
		return uint64(d)
	}

	var (
		recs  = make([]Record, 0, w.Ops)
		added []genEdge
		have  = make(map[genEdge]bool)
	)
	emit := func(op Op, args ...int64) {
		recs = append(recs, Record{
			Seq:        uint64(len(recs) + 1),
			DeltaNanos: delta(),
			Op:         op,
			Args:       args,
		})
	}

	for i := 1; i <= w.Ops; i++ {
		if w.RebuildEvery > 0 && i%w.RebuildEvery == 0 {
			emit(OpRebuild)
			continue
		}
		if w.CheckpointEvery > 0 && i%w.CheckpointEvery == 0 {
			emit(OpCheckpoint)
			continue
		}
		if r.Float64() < w.MutationRate {
			if len(added) > 0 && r.Float64() < w.RemoveFraction {
				j := r.Intn(len(added))
				e := added[j]
				added[j] = added[len(added)-1]
				added = added[:len(added)-1]
				delete(have, e)
				emit(OpRemoveEdge, e.u, e.v)
				continue
			}
			// Draw a fresh edge: one popular endpoint, one uniform, normalized
			// u<v so the duplicate check is canonical.
			var e genEdge
			found := false
			for try := 0; try < 32; try++ {
				a, b := pick(), int64(r.Intn(w.Nodes))
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				e = genEdge{a, b}
				if !have[e] {
					found = true
					break
				}
			}
			if !found {
				// Dense neighborhood: fall back to a query instead of looping.
				emit(OpQuery, pick())
				continue
			}
			have[e] = true
			added = append(added, e)
			emit(OpAddEdge, e.u, e.v)
			continue
		}
		n := 1
		if w.MaxBatch > 1 {
			n = 1 + r.Intn(w.MaxBatch)
		}
		if n == 1 {
			emit(OpQuery, pick())
			continue
		}
		args := make([]int64, n)
		for j := range args {
			args[j] = pick()
		}
		emit(OpBatchQuery, args...)
	}
	return recs, nil
}

package trace

// The Recorder lives outside the deterministic-marked files on purpose: it
// stamps wall-clock arrival deltas (time.Since), which the determinism
// analyzer rightly bans from the encode/decode path. Encoding itself stays
// in format.go, so the bytes written for a given record sequence are still
// canonical.

import (
	"bufio"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// RecorderOptions tune the trace writer.
type RecorderOptions struct {
	// SyncEvery fsyncs the trace after every Nth record, the same explicit
	// checked-Sync discipline the persist store uses for its WAL; 0 keeps
	// records buffered until Close (losing at most the tail on a crash —
	// which the torn-tail scanner then discards cleanly).
	SyncEvery int
	// Buffer is the hand-off channel capacity between the hot path and the
	// writer goroutine (default 1024). When the writer falls behind (e.g.
	// during an fsync stall) Record blocks, preserving order — dropping
	// records would corrupt the replay contract.
	Buffer int
}

// Recorder appends API operations to a trace file. The hot path — Record —
// takes no lock: it stamps a monotonic timestamp and hands the operation to
// a single background writer over a channel; the writer assigns contiguous
// sequence numbers in hand-off order, computes arrival deltas, encodes and
// writes. Close drains, flushes, fsyncs and reports the first write error.
type Recorder struct {
	f     *os.File
	w     *bufio.Writer
	ch    chan recordMsg
	quit  chan struct{}
	done  chan struct{}
	start time.Time

	syncEvery int
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	records  atomic.Uint64
	bytes    atomic.Uint64
	failures atomic.Uint64
	errMu    sync.Mutex
	lastErr  error // guarded by errMu
}

type recordMsg struct {
	at     time.Duration // monotonic offset from recorder start
	op     Op
	gen    uint64
	digest uint64
	args   []int64
}

// RecorderStats is a point-in-time view for /metrics.
type RecorderStats struct {
	// Records and Bytes count what reached the encoder (buffered writes
	// included; an fsync may still be pending).
	Records, Bytes uint64
	// WriteFailures counts encode-to-disk errors; recording continues (a
	// broken trace must never take serving down) and the error surfaces
	// again from Close.
	WriteFailures uint64
}

// NewRecorder creates (truncating) the trace file at path and starts the
// writer goroutine.
func NewRecorder(path string, opt RecorderOptions) (*Recorder, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if opt.Buffer <= 0 {
		opt.Buffer = 1024
	}
	r := &Recorder{
		f:         f,
		w:         bufio.NewWriterSize(f, 1<<16),
		ch:        make(chan recordMsg, opt.Buffer),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		start:     time.Now(),
		syncEvery: opt.SyncEvery,
	}
	h := header()
	if _, err := r.w.Write(h[:]); err != nil {
		f.Close()
		return nil, err
	}
	go r.writeLoop()
	return r, nil
}

// Record captures one operation. args is copied, so handlers may pass
// request-scoped slices. Safe for concurrent use; calls after Close are
// dropped.
func (r *Recorder) Record(op Op, gen, digest uint64, args ...int64) {
	if r == nil || r.closed.Load() {
		return
	}
	msg := recordMsg{at: time.Since(r.start), op: op, gen: gen, digest: digest}
	if len(args) > 0 {
		msg.args = append(make([]int64, 0, len(args)), args...)
	}
	select {
	case r.ch <- msg:
	case <-r.quit: // closing: the trace ends here, don't block the handler
	}
}

// Stats reports recorder activity for metrics exposition.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Records:       r.records.Load(),
		Bytes:         r.bytes.Load(),
		WriteFailures: r.failures.Load(),
	}
}

// Close drains buffered records, flushes and fsyncs the file, and returns
// the first error the writer hit (or the flush/sync error). Idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.closeOnce.Do(func() {
		r.closed.Store(true)
		close(r.quit)
		<-r.done

		err := r.w.Flush()
		if serr := r.f.Sync(); err == nil {
			err = serr
		}
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.errMu.Lock()
		if r.lastErr != nil && err == nil {
			err = r.lastErr
		}
		r.errMu.Unlock()
		r.closeErr = err
	})
	return r.closeErr
}

func (r *Recorder) writeLoop() {
	defer close(r.done)
	var (
		seq    uint64
		lastAt time.Duration
		buf    []byte
	)
	write := func(m recordMsg) {
		seq++
		delta := m.at - lastAt
		if delta < 0 {
			// Hand-off order is the trace order; a message stamped slightly
			// before its predecessor (two goroutines racing to the channel)
			// clamps to zero rather than going back in time.
			delta = 0
		}
		lastAt = m.at
		rec := Record{
			Seq:        seq,
			DeltaNanos: uint64(delta),
			Op:         m.op,
			Gen:        m.gen,
			Digest:     m.digest,
			Args:       m.args,
		}
		buf = appendRecord(buf[:0], rec)
		if _, err := r.w.Write(buf); err != nil {
			r.fail(err)
			return
		}
		r.records.Add(1)
		r.bytes.Add(uint64(len(buf)))
		if r.syncEvery > 0 && seq%uint64(r.syncEvery) == 0 {
			if err := r.w.Flush(); err != nil {
				r.fail(err)
				return
			}
			if err := r.f.Sync(); err != nil {
				r.fail(err)
			}
		}
	}
	for {
		select {
		case m := <-r.ch:
			write(m)
		case <-r.quit:
			// Drain what the hot path already handed off, then stop.
			for {
				select {
				case m := <-r.ch:
					write(m)
				default:
					return
				}
			}
		}
	}
}

func (r *Recorder) fail(err error) {
	r.failures.Add(1)
	r.errMu.Lock()
	if r.lastErr == nil {
		r.lastErr = fmt.Errorf("trace: writing record: %w", err)
	}
	r.errMu.Unlock()
}

package trace

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.trc")
	r, err := NewRecorder(path, RecorderOptions{SyncEvery: 2})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	r.Record(OpQuery, 1, 0xabc, 7)
	r.Record(OpBatchQuery, 1, 0xdef, 1, 2, 3)
	r.Record(OpAddEdge, 2, DigestMutation(2, "incremental", 0.5), 4, 9)
	r.Record(OpRebuild, 2, DigestGen(2))
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := r.Stats()
	if st.Records != 4 || st.WriteFailures != 0 {
		t.Fatalf("stats = %+v, want 4 records and no failures", st)
	}

	recs, info, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(recs) != 4 || info.TornBytes != 0 {
		t.Fatalf("read back %d records, torn %d bytes; want 4 and 0", len(recs), info.TornBytes)
	}
	if int64(st.Bytes)+headerSize != info.ValidBytes {
		t.Fatalf("recorder counted %d body bytes, file has %d valid", st.Bytes, info.ValidBytes)
	}
	wantOps := []Op{OpQuery, OpBatchQuery, OpAddEdge, OpRebuild}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Op != wantOps[i] {
			t.Fatalf("record %d = seq %d op %s, want seq %d op %s", i, rec.Seq, rec.Op, i+1, wantOps[i])
		}
	}
	if got := recs[1].Args; len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("batch args round-trip wrong: %v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.trc")
	r, err := NewRecorder(path, RecorderOptions{Buffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Record(OpQuery, 1, uint64(g*each+i+1), int64(i))
			}
		}(g)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, info, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*each || info.TornBytes != 0 {
		t.Fatalf("got %d records (torn %d), want %d clean", len(recs), info.TornBytes, goroutines*each)
	}
	// The writer assigns seq in hand-off order; contiguity is the contract.
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
}

func TestRecorderAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.trc")
	r, err := NewRecorder(path, RecorderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r.Record(OpQuery, 1, 5, 1)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r.Record(OpQuery, 1, 6, 2) // must not block or panic
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	recs, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("post-close record leaked into the file: %d records", len(recs))
	}
}

func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.Record(OpQuery, 1, 2, 3)
	if err := r.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if st := r.Stats(); st != (RecorderStats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
}

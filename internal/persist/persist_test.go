package persist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/lifecycle"
	"resistecc/internal/sketch"
)

func testParams() Params {
	return Params{Epsilon: 0.3, Dim: 48, Seed: 21}
}

func buildFast(t *testing.T, g *graph.Graph, p Params) *ecc.Fast {
	t.Helper()
	f, err := ecc.NewFast(g, ecc.FastOptions{Sketch: p.SketchOptions(), Hull: p.HullOptions()})
	if err != nil {
		t.Fatalf("NewFast: %v", err)
	}
	return f
}

func testSnapshot(t *testing.T, seq, gen uint64) *Snapshot {
	t.Helper()
	g := graph.RandomConnected(40, 90, 7)
	p := testParams()
	f := buildFast(t, g, p)
	cs := lifecycle.CheckpointState{Seq: seq, Gen: gen, Graph: g, Fast: f}
	return Capture(cs, p, Fingerprint(g), true)
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot(t, 3, 5)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Seq != s.Seq || got.Gen != s.Gen || got.BaseFP != s.BaseFP || got.Params != s.Params {
		t.Fatalf("meta mismatch: got %+v", got)
	}
	if got.SavedUnixNano != s.SavedUnixNano {
		t.Fatalf("timestamp mismatch")
	}
	if Fingerprint(got.Graph) != Fingerprint(s.Graph) {
		t.Fatalf("graph fingerprint mismatch")
	}
	if got.SketchMeta != s.SketchMeta {
		t.Fatalf("sketch meta mismatch: got %+v want %+v", got.SketchMeta, s.SketchMeta)
	}
	if len(got.Points) != len(s.Points) {
		t.Fatalf("points length mismatch")
	}
	for i := range s.Points {
		if got.Points[i] != s.Points[i] {
			t.Fatalf("point %d not bit-identical", i)
		}
	}
	if len(got.Boundary) != len(s.Boundary) {
		t.Fatalf("boundary mismatch")
	}
	for i := range s.Boundary {
		if got.Boundary[i] != s.Boundary[i] {
			t.Fatalf("boundary[%d] mismatch", i)
		}
	}
	if got.Diameter != s.Diameter || got.Certified != s.Certified || got.Rounds != s.Rounds {
		t.Fatalf("hull diagnostics mismatch")
	}
	for i := range s.Ecc {
		if got.Ecc[i] != s.Ecc[i] {
			t.Fatalf("ecc cache %d not bit-identical", i)
		}
	}

	// The restored index answers bit-identically.
	want, err := s.Index()
	if err != nil {
		t.Fatalf("index from original: %v", err)
	}
	have, err := got.Index()
	if err != nil {
		t.Fatalf("index from decoded: %v", err)
	}
	for v := 0; v < got.Graph.N(); v++ {
		if want.Eccentricity(v) != have.Eccentricity(v) {
			t.Fatalf("eccentricity of %d differs after round trip", v)
		}
	}
}

func TestSnapshotCorruptSectionRejected(t *testing.T) {
	s := testSnapshot(t, 1, 1)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the file (inside some section payload).
	for _, off := range []int{len(b) / 4, len(b) / 2, len(b) - 5} {
		c := append([]byte(nil), b...)
		c[off] ^= 0x40
		if _, rerr := ReadSnapshot(c); rerr == nil {
			t.Fatalf("bit flip at %d not detected", off)
		} else if !errors.Is(rerr, ErrCorrupt) && !errors.Is(rerr, ErrVersion) {
			t.Fatalf("bit flip at %d: unexpected error class: %v", off, rerr)
		}
	}
	// Truncations at every section boundary and mid-payload must fail too.
	for _, cut := range []int{10, 30, len(b) / 3, len(b) - 1} {
		if _, rerr := ReadSnapshot(b[:cut]); rerr == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestSnapshotVersionMismatch(t *testing.T) {
	s := testSnapshot(t, 1, 1)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, _ := os.ReadFile(path)
	b[8] = 99 // version field follows the 8-byte magic
	if _, err := ReadSnapshot(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestWALAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A snapshot at seq 0 anchors the log.
	if err := st.Checkpoint(testSnapshot(t, 0, 1)); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	recs := []Record{
		{Seq: 1, Add: true, U: 3, V: 9},
		{Seq: 2, Add: false, U: 1, V: 2},
		{Seq: 3, Add: true, U: 0, V: 7},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	st.Close() // crash-like: no final checkpoint

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	snap, got, err := st2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if snap == nil || snap.Seq != 0 {
		t.Fatalf("snapshot not recovered")
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i] != r {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], r)
		}
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(testSnapshot(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if err := st.Append(Record{Seq: seq, Add: true, U: int(seq), V: 0}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	walPath := filepath.Join(dir, "wal.log")
	fi, _ := os.Stat(walPath)
	// Torn write: the last record lost its final 5 bytes.
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, got, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d records after torn tail, want 3", len(got))
	}
	// The file was repaired: a fresh append continues cleanly.
	if err := st2.Append(Record{Seq: 4, Add: false, U: 9, V: 9}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, _ := Open(dir)
	defer st3.Close()
	_, got, err = st3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != (Record{Seq: 4, Add: false, U: 9, V: 9}) {
		t.Fatalf("append after repair lost: %+v", got)
	}
}

func TestWALBitFlipStopsPrefix(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := st.Checkpoint(testSnapshot(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := st.Append(Record{Seq: seq, Add: true, U: int(seq), V: 0}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	walPath := filepath.Join(dir, "wal.log")
	b, _ := os.ReadFile(walPath)
	// Corrupt record 3 (0-indexed 2).
	b[walHeaderSize+2*walRecordSize+4] ^= 0xFF
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _ := Open(dir)
	defer st2.Close()
	_, got, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d records past corruption, want 2", len(got))
	}
}

func TestRecoverSkipsLeftoverAndGappedRecords(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := st.Checkpoint(testSnapshot(t, 2, 3)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Hand-write a WAL with a leftover record (seq 2 ≤ snapshot), the live
	// run 3..4, then a gap to 6: only 3..4 may replay.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.Create(walPath)
	if err != nil {
		t.Fatal(err)
	}
	hdr := walHeader()
	f.Write(hdr[:])
	for _, r := range []Record{
		{Seq: 2, Add: true, U: 1, V: 2},
		{Seq: 3, Add: true, U: 4, V: 5},
		{Seq: 4, Add: false, U: 4, V: 5},
	} {
		b := encodeRecord(r)
		f.Write(b[:])
	}
	f.Close()
	st2, _ := Open(dir)
	defer st2.Close()
	snap, got, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 2 {
		t.Fatalf("snapshot seq: %+v", snap)
	}
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("usable records: %+v", got)
	}
}

func TestCheckpointTruncatesWALAndPrunesSnapshots(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := st.Checkpoint(testSnapshot(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		st.Append(Record{Seq: seq, Add: true, U: int(seq), V: 0})
	}
	if got := st.Stats().WALRecords; got != 3 {
		t.Fatalf("wal records before checkpoint: %d", got)
	}
	if err := st.Checkpoint(testSnapshot(t, 3, 4)); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.WALRecords != 0 || stats.SnapshotSeq != 3 || stats.Checkpoints != 2 {
		t.Fatalf("post-checkpoint stats: %+v", stats)
	}
	files := st.snapshotFiles()
	if len(files) != 1 {
		t.Fatalf("old snapshots not pruned: %v", files)
	}
	// An out-of-date checkpoint must not clobber the fresher one.
	if err := st.Checkpoint(testSnapshot(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().SnapshotSeq; got != 3 {
		t.Fatalf("stale checkpoint overwrote snapshot: seq %d", got)
	}
	st.Close()
}

func TestRecoverFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	oldSnap := testSnapshot(t, 0, 1)
	if err := st.Checkpoint(oldSnap); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-lineage: a corrupt newer snapshot beside a valid
	// older one, with the WAL still covering the gap.
	newPath := st.snapshotPath(2)
	if err := os.WriteFile(newPath, []byte("RECCSNP1garbage-not-a-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	st.Append(Record{Seq: 1, Add: true, U: 1, V: 2})
	st.Append(Record{Seq: 2, Add: true, U: 3, V: 4})
	st.Close()

	st2, _ := Open(dir)
	defer st2.Close()
	snap, recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 0 {
		t.Fatalf("did not fall back to older snapshot: %+v", snap)
	}
	if len(recs) != 2 {
		t.Fatalf("records after fallback: %+v", recs)
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap, recs, err := st.Recover()
	if err != nil || snap != nil || recs != nil {
		t.Fatalf("empty dir: snap=%v recs=%v err=%v", snap, recs, err)
	}
	if st.Stats().HasSnapshot {
		t.Fatal("stats claim a snapshot in an empty dir")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g1 := graph.RandomConnected(30, 60, 1)
	g2 := g1.Clone()
	if Fingerprint(g1) != Fingerprint(g2) {
		t.Fatal("clone fingerprint differs")
	}
	// Find a non-edge and add it.
	cand := g2.ComplementCandidates()
	if len(cand) == 0 {
		t.Skip("complete graph")
	}
	if err := g2.AddEdge(cand[0].U, cand[0].V); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(g1) == Fingerprint(g2) {
		t.Fatal("edge change not reflected in fingerprint")
	}
}

func TestSketchRestoreBitIdentical(t *testing.T) {
	g := graph.RandomConnected(25, 50, 3)
	p := testParams()
	sk, err := sketch.NewContext(context.Background(), g.ToCSR(), p.SketchOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := sketch.Restore(sk.Meta(), sk.AppendPoints(nil))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if sk.Resistance(u, v) != got.Resistance(u, v) {
				t.Fatalf("resistance (%d,%d) not bit-identical", u, v)
			}
		}
	}
}

func TestInspectSnapshotAndWAL(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := st.Checkpoint(testSnapshot(t, 5, 7)); err != nil {
		t.Fatal(err)
	}
	st.Append(Record{Seq: 6, Add: true, U: 0, V: 1})
	st.Close()

	reps, wi, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Valid || reps[0].Seq != 5 || reps[0].Gen != 7 {
		t.Fatalf("snapshot report: %+v", reps[0])
	}
	if !reps[0].HasEcc || reps[0].N == 0 || reps[0].BoundaryL == 0 {
		t.Fatalf("report sections incomplete: %+v", reps[0])
	}
	if wi == nil || wi.Records != 1 || wi.FirstSeq != 6 || wi.TornBytes != 0 {
		t.Fatalf("wal info: %+v", wi)
	}

	// Corrupt the snapshot: the report flags it instead of erroring.
	path := filepath.Join(dir, st.snapshotFiles()[0])
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0x01
	os.WriteFile(path, b, 0o644)
	rep, err := InspectSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid || rep.Err == "" {
		t.Fatalf("corrupt snapshot reported valid: %+v", rep)
	}
}

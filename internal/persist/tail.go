//recclint:deterministic — tail frames must encode byte-identically for identical state.

package persist

import (
	"fmt"
	"hash/crc32"
)

// Tail-fetch frame layout (the wire format of GET /v1/repl/wal):
//
//	magic "RECCTAL1" | u32 format version
//	u64 lastSeq | u64 writerGen | u64 snapSeq | u64 snapGen
//	u32 record count | u32 CRC32-C over the 44 header bytes before it
//	count × 21-byte WAL records (each self-checksummed, see wal.go)
//
// The header CRC catches truncated or bit-flipped transfers before any
// record is trusted; each record then re-verifies its own WAL checksum, and
// the decoder enforces strict sequence contiguity — a frame can be either
// applied in full or rejected, never half-trusted.
const (
	// TailMagic is the 8-byte tag that opens every tail-fetch frame; `recc
	// inspect` sniffs it to dispatch between the on-disk formats.
	TailMagic = "RECCTAL1"

	tailHeaderSize = 8 + 4 + 8 + 8 + 8 + 8 + 4 + 4
)

// TailFrame is one decoded tail-fetch response.
type TailFrame struct {
	// LastSeq is the newest sequence the writer's store holds; with a capped
	// Records list it exceeds the last record's sequence, letting the
	// replica compute lag and keep fetching without an extra round trip.
	LastSeq uint64
	// WriterGen is the writer's served index generation when the frame was
	// cut. A replica that has applied every record up to LastSeq but serves
	// a different generation has diverged (the writer rebuilt) and must
	// re-base on a fresh snapshot.
	WriterGen uint64
	// SnapSeq/SnapGen identify the writer's newest on-disk snapshot — the
	// base a resyncing replica would restore.
	SnapSeq, SnapGen uint64
	// Records is the contiguous mutation run (possibly empty).
	Records []Record
}

// EncodeTailFrame serializes f.
func EncodeTailFrame(f TailFrame) []byte {
	b := make([]byte, tailHeaderSize, tailHeaderSize+len(f.Records)*walRecordSize)
	copy(b[0:8], TailMagic)
	putU32(b[8:12], FormatVersion)
	putU64(b[12:20], f.LastSeq)
	putU64(b[20:28], f.WriterGen)
	putU64(b[28:36], f.SnapSeq)
	putU64(b[36:44], f.SnapGen)
	putU32(b[44:48], uint32(len(f.Records)))
	putU32(b[48:52], crc32.Checksum(b[:48], castagnoli))
	for _, r := range f.Records {
		rec := encodeRecord(r)
		b = append(b, rec[:]...)
	}
	return b
}

// DecodeTailFrame parses and verifies a tail-fetch response: header
// checksum, per-record checksums, exact length, and strict sequence
// contiguity. Any violation fails with ErrCorrupt (a replica discards the
// frame and re-fetches); a foreign format version fails with ErrVersion.
func DecodeTailFrame(b []byte) (TailFrame, error) {
	if len(b) < tailHeaderSize || string(b[0:8]) != TailMagic {
		return TailFrame{}, fmt.Errorf("%w: bad tail-frame header", ErrCorrupt)
	}
	if v := getU32(b[8:12]); v != FormatVersion {
		return TailFrame{}, fmt.Errorf("%w: tail frame v%d, reader supports v%d", ErrVersion, v, FormatVersion)
	}
	if crc32.Checksum(b[:48], castagnoli) != getU32(b[48:52]) {
		return TailFrame{}, fmt.Errorf("%w: tail-frame header checksum", ErrCorrupt)
	}
	f := TailFrame{
		LastSeq:   getU64(b[12:20]),
		WriterGen: getU64(b[20:28]),
		SnapSeq:   getU64(b[28:36]),
		SnapGen:   getU64(b[36:44]),
	}
	count := int(getU32(b[44:48]))
	if len(b) != tailHeaderSize+count*walRecordSize {
		return TailFrame{}, fmt.Errorf("%w: tail frame declares %d records, carries %d bytes",
			ErrCorrupt, count, len(b)-tailHeaderSize)
	}
	f.Records = make([]Record, 0, count)
	for i := 0; i < count; i++ {
		off := tailHeaderSize + i*walRecordSize
		rec, ok := decodeRecord(b[off : off+walRecordSize])
		if !ok {
			return TailFrame{}, fmt.Errorf("%w: tail-frame record %d checksum", ErrCorrupt, i)
		}
		if i > 0 && rec.Seq != f.Records[i-1].Seq+1 {
			return TailFrame{}, fmt.Errorf("%w: tail-frame records not contiguous at %d", ErrCorrupt, i)
		}
		f.Records = append(f.Records, rec)
	}
	return f, nil
}

package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"resistecc/internal/lifecycle"
)

// ErrTailGap is returned by TailSince when the requested position falls
// outside the contiguous WAL run the store can serve: below the newest
// snapshot (those records were absorbed and truncated), beyond the newest
// record (the caller's history diverged, e.g. across a writer restart), or
// inside a hole left by a failed append. The caller must re-base on the
// current snapshot instead of tailing.
var ErrTailGap = errors.New("persist: requested WAL position outside the served tail")

// ErrNoSnapshot is returned by SnapshotBytes before the first checkpoint.
var ErrNoSnapshot = errors.New("persist: no snapshot on disk")

// Store manages one durable-index directory: the newest snapshot plus the
// WAL of mutations committed since it. All file operations serialize on an
// internal mutex; the lock-free query path never touches the store.
type Store struct {
	dir string

	mu         sync.Mutex
	wal        *os.File // guarded by mu
	walRecords int      // guarded by mu
	walLastSeq uint64   // guarded by mu
	recovered  []Record // guarded by mu; valid WAL prefix found at Open, consumed by Recover
	tail       []Record // guarded by mu; in-memory mirror of the WAL for O(1) tail serving
	tailHole   bool     // guarded by mu; a failed append left a gap — tail unservable until rewritten

	hasSnap  bool      // guarded by mu
	snapSeq  uint64    // guarded by mu
	snapGen  uint64    // guarded by mu
	snapTime time.Time // guarded by mu

	checkpoints        uint64        // guarded by mu
	checkpointFailures uint64        // guarded by mu
	lastCheckpointDur  time.Duration // guarded by mu

	// SyncAppends fsyncs the WAL after every record, making acknowledged
	// mutations crash-durable at the cost of one fsync per mutation. On by
	// default; tests of pure warm-start speed may disable it.
	SyncAppends bool
}

// StoreStats is a point-in-time view of the store for metrics.
type StoreStats struct {
	WALRecords         int
	WALLastSeq         uint64
	HasSnapshot        bool
	SnapshotSeq        uint64
	SnapshotGen        uint64
	SnapshotTime       time.Time
	Checkpoints        uint64
	CheckpointFailures uint64
	LastCheckpointDur  time.Duration
}

// Open prepares dir (creating it if needed), sweeps temp files left by
// interrupted checkpoints, and opens the WAL, repairing a torn tail in
// place. Call Recover next to obtain the persisted state.
//
//recclint:holds mu — the store is not shared until Open returns.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	wal, recs, err := loadWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	st := &Store{dir: dir, wal: wal, recovered: recs, SyncAppends: true}
	st.tail = append([]Record(nil), recs...)
	st.walRecords = len(recs)
	if n := len(recs); n > 0 {
		st.walLastSeq = recs[n-1].Seq
	}
	return st, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// snapshotPath names the snapshot file for a sequence number.
func (st *Store) snapshotPath(seq uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("snapshot-%016x.snap", seq))
}

// snapshotFiles lists snapshot files newest-sequence-first.
func (st *Store) snapshotFiles() []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "snapshot-") && strings.HasSuffix(n, ".snap") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded hex: lexicographic = numeric
	return names
}

// Recover returns the newest valid snapshot together with the WAL records
// that apply on top of it: the longest contiguous run Seq+1, Seq+2, …
// found in the log. Corrupt or mismatched snapshot files are skipped
// (newest-first); with no usable snapshot it returns (nil, nil, nil) and
// resets the WAL — records without their base state are unusable, and the
// caller cold-builds. The WAL file is rewritten to exactly the returned
// records, restoring the invariant "log = mutations since the snapshot".
func (st *Store) Recover() (*Snapshot, []Record, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	recs := st.recovered
	st.recovered = nil

	var snap *Snapshot
	for _, name := range st.snapshotFiles() {
		s, err := ReadSnapshotFile(filepath.Join(st.dir, name))
		if err != nil {
			continue // corrupt or foreign-version snapshot: try an older one
		}
		snap = s
		break
	}
	if snap == nil {
		if err := st.rewriteWALLocked(nil); err != nil {
			return nil, nil, err
		}
		return nil, nil, nil
	}

	// Keep only the contiguous run starting right after the snapshot. A
	// record below the cut is a leftover the checkpoint's truncation did not
	// reach (crash between rename and truncate); a gap means lost history —
	// everything past it must be dropped, or replay would skip a mutation.
	usable := recs[:0]
	next := snap.Seq + 1
	for _, r := range recs {
		if r.Seq < next {
			continue
		}
		if r.Seq != next {
			break
		}
		usable = append(usable, r)
		next++
	}
	if err := st.rewriteWALLocked(usable); err != nil {
		return nil, nil, err
	}
	st.hasSnap = true
	st.snapSeq = snap.Seq
	st.snapGen = snap.Gen
	st.snapTime = time.Unix(0, snap.SavedUnixNano)
	return snap, usable, nil
}

// Append logs one committed mutation. Called (via Hook) on the lifecycle
// mutation worker after each commit.
func (st *Store) Append(r Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	b := encodeRecord(r)
	if _, err := st.wal.Write(b[:]); err != nil {
		return fmt.Errorf("persist: wal append: %w", err)
	}
	if st.SyncAppends {
		if err := st.wal.Sync(); err != nil {
			return fmt.Errorf("persist: wal sync: %w", err)
		}
	}
	// Mirror the record for tail serving. A non-contiguous append means an
	// earlier append failed (a hole on disk too): the tail stops serving
	// until the next checkpoint re-anchors it — a replica must never be
	// handed a run with a silent gap in it.
	if n := len(st.tail); !st.tailHole && (n == 0 || r.Seq == st.tail[n-1].Seq+1) {
		st.tail = append(st.tail, r)
	} else {
		st.tail = nil
		st.tailHole = true
	}
	st.walRecords++
	st.walLastSeq = r.Seq
	return nil
}

// TailView is a consistent cut of the servable WAL tail: the records from
// the requested position, plus where the log and the newest snapshot stood
// when the cut was taken.
type TailView struct {
	// Records is the contiguous run starting at the requested position
	// (possibly empty when the caller is caught up, possibly capped).
	Records []Record
	// LastSeq is the newest sequence the store has (snapshot or WAL), so
	// callers can compute lag even from a capped or empty view.
	LastSeq uint64
	// SnapSeq/SnapGen identify the newest on-disk snapshot.
	SnapSeq, SnapGen uint64
}

// TailSince returns the WAL records with sequence ≥ from, capped at max
// (0 = uncapped). It fails with ErrTailGap when from is not inside the
// contiguous run the store can vouch for: at or below the newest snapshot's
// sequence, past the newest record + 1, in a hole left by a failed append,
// or before the first checkpoint exists. Records are copied; the view stays
// valid after the store moves on.
func (st *Store) TailSince(from uint64, max int) (TailView, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := TailView{LastSeq: st.snapSeq, SnapSeq: st.snapSeq, SnapGen: st.snapGen}
	// The tail is anchored when it starts exactly one past the snapshot; an
	// unanchored tail (hole after a failed append, or records predating a
	// failed checkpoint truncation) is not servable.
	anchored := !st.tailHole && (len(st.tail) == 0 || st.tail[0].Seq == st.snapSeq+1)
	if len(st.tail) > 0 && anchored {
		v.LastSeq = st.tail[len(st.tail)-1].Seq
	}
	if !st.hasSnap || !anchored || from == 0 || from <= st.snapSeq || from > v.LastSeq+1 {
		return TailView{}, ErrTailGap
	}
	recs := st.tail[from-st.snapSeq-1:]
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	v.Records = append([]Record(nil), recs...)
	return v, nil
}

// SnapshotBytes returns the raw encoded bytes of the newest on-disk
// snapshot together with its sequence and generation, for shipping to a
// replica. Fails with ErrNoSnapshot before the first checkpoint.
func (st *Store) SnapshotBytes() ([]byte, uint64, uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.hasSnap {
		return nil, 0, 0, ErrNoSnapshot
	}
	b, err := os.ReadFile(st.snapshotPath(st.snapSeq))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("persist: snapshot bytes: %w", err)
	}
	return b, st.snapSeq, st.snapGen, nil
}

// Checkpoint atomically writes snap as the newest snapshot, deletes older
// snapshot files and drops WAL records at or below snap.Seq. An out-of-date
// checkpoint (older than the one already on disk) is skipped, so a slow
// manual checkpoint can never overwrite a fresher rebuild checkpoint.
func (st *Store) Checkpoint(snap *Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.hasSnap && snap.Seq < st.snapSeq {
		return nil
	}
	start := time.Now()
	err := st.checkpointLocked(snap)
	st.lastCheckpointDur = time.Since(start)
	if err != nil {
		st.checkpointFailures++
		return err
	}
	st.checkpoints++
	return nil
}

func (st *Store) checkpointLocked(snap *Snapshot) error {
	path := st.snapshotPath(snap.Seq)
	if err := WriteSnapshotFile(path, snap); err != nil {
		return fmt.Errorf("persist: checkpoint: %w", err)
	}
	st.hasSnap = true
	st.snapSeq = snap.Seq
	st.snapGen = snap.Gen
	st.snapTime = time.Unix(0, snap.SavedUnixNano)
	keep := filepath.Base(path)
	for _, name := range st.snapshotFiles() {
		if name != keep {
			os.Remove(filepath.Join(st.dir, name))
		}
	}
	// Drop the records the snapshot absorbed. Appends racing this
	// checkpoint carry seq > snap.Seq and are preserved.
	recs, _, err := st.walRecordsOnDiskLocked()
	if err != nil {
		return err
	}
	live := recs[:0]
	for _, r := range recs {
		if r.Seq > snap.Seq {
			live = append(live, r)
		}
	}
	return st.rewriteWALLocked(live)
}

// Reset wipes the store to empty: all snapshots deleted, WAL truncated.
// Used when a cold build replaces persisted state that no longer matches
// the input (changed data file or build parameters).
func (st *Store) Reset() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, name := range st.snapshotFiles() {
		os.Remove(filepath.Join(st.dir, name))
	}
	st.hasSnap = false
	st.snapSeq, st.snapGen = 0, 0
	st.snapTime = time.Time{}
	return st.rewriteWALLocked(nil)
}

// walRecordsOnDiskLocked re-reads the WAL file. Callers hold st.mu.
func (st *Store) walRecordsOnDiskLocked() ([]Record, int64, error) {
	if _, err := st.wal.Seek(0, 0); err != nil {
		return nil, 0, err
	}
	recs, size, err := scanWAL(st.wal)
	if err != nil {
		return nil, 0, err
	}
	if _, serr := st.wal.Seek(0, 2); serr != nil {
		return nil, 0, serr
	}
	return recs, size, nil
}

// rewriteWALLocked atomically replaces the WAL with header + recs and
// reopens the append handle. Callers hold st.mu.
func (st *Store) rewriteWALLocked(recs []Record) error {
	path := filepath.Join(st.dir, "wal.log")
	tmp, err := os.CreateTemp(st.dir, tmpPrefix+"wal-*")
	if err != nil {
		return fmt.Errorf("persist: wal rewrite: %w", err)
	}
	hdr := walHeader()
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	for _, r := range recs {
		b := encodeRecord(r)
		if _, err := tmp.Write(b[:]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return err
	}
	old := st.wal
	st.wal = f
	if old != nil {
		//recclint:ignore syncerr the rename above already replaced this handle's inode; its close error cannot lose acknowledged records
		old.Close()
	}
	st.tail = append([]Record(nil), recs...)
	st.tailHole = false
	st.walRecords = len(recs)
	if n := len(recs); n > 0 {
		st.walLastSeq = recs[n-1].Seq
	} else {
		st.walLastSeq = 0
	}
	return nil
}

// Stats reports store gauges for metrics endpoints.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StoreStats{
		WALRecords:         st.walRecords,
		WALLastSeq:         st.walLastSeq,
		HasSnapshot:        st.hasSnap,
		SnapshotSeq:        st.snapSeq,
		SnapshotGen:        st.snapGen,
		SnapshotTime:       st.snapTime,
		Checkpoints:        st.checkpoints,
		CheckpointFailures: st.checkpointFailures,
		LastCheckpointDur:  st.lastCheckpointDur,
	}
}

// Close releases the WAL handle. Detach the store from its lifecycle
// manager (Close the manager) first.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.wal == nil {
		return nil
	}
	err := st.wal.Close()
	st.wal = nil
	return err
}

// Hook adapts a Store to lifecycle.Journal: committed mutations append WAL
// records; every rebuild swap checkpoints the fresh index (absorbing and
// truncating the log). Params and BaseFP stamp each snapshot so recovery
// can prove it matches the serving configuration.
type Hook struct {
	Store  *Store
	Params Params
	BaseFP uint64
	// SkipEccCache drops the eccentricity-distribution section from
	// checkpoints (smaller files, slower first /summary after restart).
	SkipEccCache bool
}

// AppendMutation implements lifecycle.Journal.
func (h *Hook) AppendMutation(seq uint64, add bool, u, v int) error {
	return h.Store.Append(Record{Seq: seq, Add: add, U: u, V: v})
}

// Checkpoint implements lifecycle.Journal.
func (h *Hook) Checkpoint(cs lifecycle.CheckpointState) error {
	return h.Store.Checkpoint(Capture(cs, h.Params, h.BaseFP, !h.SkipEccCache))
}

//recclint:deterministic — WAL records must encode byte-identically for identical mutations.

package persist

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL file layout:
//
//	magic "RECCWAL1" | u32 format version
//	per record (21 bytes): u64 seq | u8 op | u32 u | u32 v | u32 CRC32-C
//
// The CRC covers the 17 record bytes before it. Records are appended by the
// single lifecycle mutation worker, so sequence numbers are strictly
// contiguous; readers stop at the first record that is short, fails its
// checksum, or breaks monotonicity — everything before that prefix is
// trusted, everything after is discarded (a torn tail never yields a bogus
// mutation).
const (
	// WALMagic is the 8-byte tag that opens every WAL file; `recc inspect`
	// sniffs it to dispatch between the on-disk formats.
	WALMagic = "RECCWAL1"

	walHeaderSize = 12
	walRecordSize = 21

	opAdd    = 1
	opRemove = 2
)

// Record is one committed edge mutation.
type Record struct {
	Seq  uint64
	Add  bool
	U, V int
}

func encodeRecord(r Record) [walRecordSize]byte {
	var b [walRecordSize]byte
	putU64(b[0:8], r.Seq)
	if r.Add {
		b[8] = opAdd
	} else {
		b[8] = opRemove
	}
	putU32(b[9:13], uint32(r.U))
	putU32(b[13:17], uint32(r.V))
	putU32(b[17:21], crc32.Checksum(b[:17], castagnoli))
	return b
}

func putU32(b []byte, x uint32) {
	b[0], b[1], b[2], b[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
}

func putU64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}

func decodeRecord(b []byte) (Record, bool) {
	if len(b) < walRecordSize {
		return Record{}, false
	}
	if crc32.Checksum(b[:17], castagnoli) != getU32(b[17:21]) {
		return Record{}, false
	}
	op := b[8]
	if op != opAdd && op != opRemove {
		return Record{}, false
	}
	return Record{
		Seq: getU64(b[0:8]),
		Add: op == opAdd,
		U:   int(int32(getU32(b[9:13]))),
		V:   int(int32(getU32(b[13:17]))),
	}, true
}

// walHeader renders the 12-byte WAL file header.
//
//recclint:wirepair walheader
func walHeader() [walHeaderSize]byte {
	var h [walHeaderSize]byte
	copy(h[:8], WALMagic)
	putU32(h[8:12], FormatVersion)
	return h
}

// scanWAL reads r and returns the valid record prefix plus the byte offset
// where validity ends (for tail repair). A missing or foreign header yields
// zero records and offset 0 — the caller rewrites the file.
//
//recclint:wirepair walheader
func scanWAL(r io.Reader) (recs []Record, validSize int64, err error) {
	var hdr [walHeaderSize]byte
	if _, herr := io.ReadFull(r, hdr[:]); herr != nil {
		return nil, 0, nil
	}
	if string(hdr[:8]) != WALMagic {
		return nil, 0, nil
	}
	if v := getU32(hdr[8:12]); v != FormatVersion {
		return nil, 0, fmt.Errorf("%w: wal format v%d, reader supports v%d", ErrVersion, v, FormatVersion)
	}
	validSize = walHeaderSize
	var buf [walRecordSize]byte
	var lastSeq uint64
	for {
		if _, rerr := io.ReadFull(r, buf[:]); rerr != nil {
			return recs, validSize, nil // clean EOF or torn tail: stop here
		}
		rec, ok := decodeRecord(buf[:])
		if !ok || rec.Seq == 0 || (lastSeq != 0 && rec.Seq != lastSeq+1) {
			return recs, validSize, nil
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		validSize += walRecordSize
	}
}

// loadWAL opens (creating if absent) the WAL at path in append mode,
// repairing any invalid tail first, and returns the handle plus the valid
// records. A WAL whose header is unreadable or from another format version
// is reset to an empty log — its records are unusable, and recovery treats
// missing history as "fall back to cold build".
func loadWAL(path string) (*os.File, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, validSize, err := scanWAL(f)
	if err != nil || validSize == 0 {
		// Foreign version or unreadable header: start over.
		recs = nil
		if terr := f.Truncate(0); terr != nil {
			f.Close()
			return nil, nil, terr
		}
		hdr := walHeader()
		if _, werr := f.WriteAt(hdr[:], 0); werr != nil {
			f.Close()
			return nil, nil, werr
		}
		validSize = walHeaderSize
	}
	if fi, serr := f.Stat(); serr == nil && fi.Size() > validSize {
		if terr := f.Truncate(validSize); terr != nil {
			f.Close()
			return nil, nil, terr
		}
	}
	if _, serr := f.Seek(0, io.SeekEnd); serr != nil {
		f.Close()
		return nil, nil, serr
	}
	return f, recs, nil
}

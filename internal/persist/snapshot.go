//recclint:deterministic — snapshot encodings must be byte-identical for identical state.

package persist

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"resistecc/internal/graph"
	"resistecc/internal/sketch"
)

// Snapshot file layout (all integers little-endian):
//
//	magic "RECCSNP1" | u32 format version | u32 section count
//	per section: u32 kind | u64 payload length | payload | u32 CRC32-C
//
// Sections appear in kind order; the eccentricity cache is optional. The
// whole payload of a section is covered by its CRC, so a torn write or a
// flipped bit anywhere is detected before any decoded value is trusted.
const snapshotMagic = "RECCSNP1"

const (
	secMeta   = 1
	secGraph  = 2
	secSketch = 3
	secHull   = 4
	secEcc    = 5
)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// enc is a little-endian append-only byte encoder.
type enc struct{ b []byte }

func (e *enc) u8(x uint8) { e.b = append(e.b, x) }
func (e *enc) u32(x uint32) {
	e.b = append(e.b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}
func (e *enc) u64(x uint64) {
	e.b = append(e.b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}
func (e *enc) i64(x int64)   { e.u64(uint64(x)) }
func (e *enc) f64(x float64) { e.u64(math.Float64bits(x)) }

// dec is the matching bounds-checked decoder; the first out-of-bounds read
// latches err and zero-fills every later read.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.err = fmt.Errorf("%w: truncated payload (want %d bytes at offset %d of %d)",
			ErrCorrupt, n, d.off, len(d.b))
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// intLen guards a decoded length field before it sizes an allocation: it
// must fit the remaining payload, so a corrupt length cannot demand memory.
func (d *dec) intLen(x uint64, unit int) int {
	if d.err != nil {
		return 0
	}
	rem := len(d.b) - d.off
	if unit < 1 || x > uint64(rem)/uint64(unit) {
		d.err = fmt.Errorf("%w: length %d exceeds remaining %d bytes", ErrCorrupt, x, rem)
		return 0
	}
	return int(x)
}

func encodeMeta(s *Snapshot) []byte {
	var e enc
	e.u64(s.Seq)
	e.u64(s.Gen)
	e.i64(s.SavedUnixNano)
	e.u64(s.BaseFP)
	p := s.Params
	e.f64(p.Epsilon)
	e.i64(int64(p.Dim))
	e.i64(p.Seed)
	e.f64(p.SolverTol)
	e.f64(p.HullTheta)
	e.i64(p.HullSeed)
	e.i64(int64(p.HullDirections))
	e.i64(int64(p.HullMaxVertices))
	e.i64(int64(p.HullMaxFWIters))
	return e.b
}

func decodeMeta(b []byte, s *Snapshot) error {
	d := dec{b: b}
	s.Seq = d.u64()
	s.Gen = d.u64()
	s.SavedUnixNano = d.i64()
	s.BaseFP = d.u64()
	s.Params.Epsilon = d.f64()
	s.Params.Dim = int(d.i64())
	s.Params.Seed = d.i64()
	s.Params.SolverTol = d.f64()
	s.Params.HullTheta = d.f64()
	s.Params.HullSeed = d.i64()
	s.Params.HullDirections = int(d.i64())
	s.Params.HullMaxVertices = int(d.i64())
	s.Params.HullMaxFWIters = int(d.i64())
	return d.err
}

func encodeGraph(g *graph.Graph) []byte {
	e := enc{b: make([]byte, 0, 16+8*g.M())}
	e.u64(uint64(g.N()))
	e.u64(uint64(g.M()))
	g.EachEdge(func(u, v int) bool {
		e.u32(uint32(u))
		e.u32(uint32(v))
		return true
	})
	return e.b
}

func decodeGraph(b []byte) (*graph.Graph, error) {
	d := dec{b: b}
	n := d.u64()
	m := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: graph n=%d too large", ErrCorrupt, n)
	}
	mm := d.intLen(m, 8)
	g := graph.New(int(n))
	for i := 0; i < mm; i++ {
		u := d.u32()
		v := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, fmt.Errorf("%w: edge %d: %v", ErrCorrupt, i, err)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes in graph section", ErrCorrupt, len(b)-d.off)
	}
	return g, nil
}

func encodeSketch(meta sketch.Meta, points []float64) []byte {
	e := enc{b: make([]byte, 0, 80+8*len(points))}
	e.i64(int64(meta.Dim))
	e.i64(int64(meta.N))
	e.f64(meta.Epsilon)
	e.f64(meta.Drift)
	e.i64(int64(meta.Updates))
	e.i64(int64(meta.Stats.Rows))
	e.i64(int64(meta.Stats.TotalIters))
	e.i64(int64(meta.Stats.MaxIters))
	e.f64(meta.Stats.MaxResidual)
	e.i64(int64(meta.Stats.Workers))
	e.u64(uint64(len(points)))
	for _, x := range points {
		e.f64(x)
	}
	return e.b
}

func decodeSketch(b []byte, s *Snapshot) error {
	d := dec{b: b}
	s.SketchMeta.Dim = int(d.i64())
	s.SketchMeta.N = int(d.i64())
	s.SketchMeta.Epsilon = d.f64()
	s.SketchMeta.Drift = d.f64()
	s.SketchMeta.Updates = int(d.i64())
	s.SketchMeta.Stats.Rows = int(d.i64())
	s.SketchMeta.Stats.TotalIters = int(d.i64())
	s.SketchMeta.Stats.MaxIters = int(d.i64())
	s.SketchMeta.Stats.MaxResidual = d.f64()
	s.SketchMeta.Stats.Workers = int(d.i64())
	k := d.intLen(d.u64(), 8)
	s.Points = make([]float64, k)
	for i := range s.Points {
		s.Points[i] = d.f64()
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes in sketch section", ErrCorrupt, len(b)-d.off)
	}
	return nil
}

func encodeHull(s *Snapshot) []byte {
	var e enc
	e.u64(uint64(len(s.Boundary)))
	for _, v := range s.Boundary {
		e.u32(uint32(v))
	}
	e.f64(s.Diameter)
	if s.Certified {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.i64(int64(s.Rounds))
	return e.b
}

func decodeHull(b []byte, s *Snapshot) error {
	d := dec{b: b}
	l := d.intLen(d.u64(), 4)
	s.Boundary = make([]int, l)
	for i := range s.Boundary {
		s.Boundary[i] = int(d.u32())
	}
	s.Diameter = d.f64()
	s.Certified = d.u8() != 0
	s.Rounds = int(d.i64())
	if d.err != nil {
		return d.err
	}
	if d.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes in hull section", ErrCorrupt, len(b)-d.off)
	}
	return nil
}

func encodeEcc(ecc []float64) []byte {
	e := enc{b: make([]byte, 0, 8+8*len(ecc))}
	e.u64(uint64(len(ecc)))
	for _, x := range ecc {
		e.f64(x)
	}
	return e.b
}

func decodeEcc(b []byte, s *Snapshot) error {
	d := dec{b: b}
	n := d.intLen(d.u64(), 8)
	s.Ecc = make([]float64, n)
	for i := range s.Ecc {
		s.Ecc[i] = d.f64()
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes in ecc section", ErrCorrupt, len(b)-d.off)
	}
	return nil
}

func writeSection(w io.Writer, kind uint32, payload []byte) error {
	var hdr enc
	hdr.u32(kind)
	hdr.u64(uint64(len(payload)))
	if _, err := w.Write(hdr.b); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail enc
	tail.u32(crc32.Checksum(payload, castagnoli))
	_, err := w.Write(tail.b)
	return err
}

// WriteSnapshot writes the full snapshot encoding to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	sections := []struct {
		kind    uint32
		payload []byte
	}{
		{secMeta, encodeMeta(s)},
		{secGraph, encodeGraph(s.Graph)},
		{secSketch, encodeSketch(s.SketchMeta, s.Points)},
		{secHull, encodeHull(s)},
	}
	if s.Ecc != nil {
		sections = append(sections, struct {
			kind    uint32
			payload []byte
		}{secEcc, encodeEcc(s.Ecc)})
	}
	var hdr enc
	hdr.b = append(hdr.b, snapshotMagic...)
	hdr.u32(FormatVersion)
	hdr.u32(uint32(len(sections)))
	if _, err := w.Write(hdr.b); err != nil {
		return err
	}
	for _, sec := range sections {
		if err := writeSection(w, sec.kind, sec.payload); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotFile writes the snapshot atomically: a temp file in the same
// directory, fsync, rename over path, then a directory fsync — so path
// either keeps its old content or holds the complete new snapshot, never a
// torn write.
func WriteSnapshotFile(path string, s *Snapshot) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = WriteSnapshot(bw, s); err != nil {
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// tmpPrefix marks in-progress writes; Open sweeps leftovers from crashes.
const tmpPrefix = ".persist-tmp-"

// syncDir fsyncs a directory so a just-renamed file is durable. Filesystems
// that do not support directory fsync (EINVAL/ENOTSUP) are tolerated — there
// is nothing more to do there — but a real I/O error is surfaced: swallowing
// it would acknowledge a checkpoint whose rename may not survive a crash.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	if err := df.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("persist: fsync %s: %w", dir, err)
	}
	return nil
}

// readSections parses the framing of an encoded snapshot and returns the
// CRC-verified payload per section kind. Strict: unknown kinds, duplicate
// kinds, bad checksums and truncations all fail with ErrCorrupt.
func readSections(b []byte) (map[uint32][]byte, error) {
	d := dec{b: b}
	magic := d.take(8)
	if d.err != nil || string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.u32(); v != FormatVersion {
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("%w: snapshot format v%d, reader supports v%d", ErrVersion, v, FormatVersion)
	}
	count := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	secs := make(map[uint32][]byte, count)
	for i := uint32(0); i < count; i++ {
		kind := d.u32()
		plen := d.intLen(d.u64(), 1)
		payload := d.take(plen)
		sum := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if kind < secMeta || kind > secEcc {
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrCorrupt, kind)
		}
		if _, dup := secs[kind]; dup {
			return nil, fmt.Errorf("%w: duplicate section kind %d", ErrCorrupt, kind)
		}
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return nil, fmt.Errorf("%w: section %d checksum mismatch (got %08x, want %08x)",
				ErrCorrupt, kind, got, sum)
		}
		secs[kind] = payload
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(b)-d.off)
	}
	return secs, nil
}

// ReadSnapshot decodes and fully validates an encoded snapshot.
func ReadSnapshot(b []byte) (*Snapshot, error) {
	secs, err := readSections(b)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{}
	for _, kind := range []uint32{secMeta, secGraph, secSketch, secHull} {
		if secs[kind] == nil {
			return nil, fmt.Errorf("%w: missing section kind %d", ErrCorrupt, kind)
		}
	}
	if err := decodeMeta(secs[secMeta], s); err != nil {
		return nil, err
	}
	g, err := decodeGraph(secs[secGraph])
	if err != nil {
		return nil, err
	}
	s.Graph = g
	if err := decodeSketch(secs[secSketch], s); err != nil {
		return nil, err
	}
	if err := decodeHull(secs[secHull], s); err != nil {
		return nil, err
	}
	if p := secs[secEcc]; p != nil {
		if err := decodeEcc(p, s); err != nil {
			return nil, err
		}
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadSnapshotFile reads and validates a snapshot file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ReadSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}

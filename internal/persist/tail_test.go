package persist

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// headerCRC recomputes the tail-frame header checksum after a test mutation.
func headerCRC(b []byte) uint32 { return crc32.Checksum(b[:48], castagnoli) }

// tailStore opens a store with a checkpoint at seq 0 and n appended records.
func tailStore(t *testing.T, n int) *Store {
	t.Helper()
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Checkpoint(testSnapshot(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= n; seq++ {
		if err := st.Append(Record{Seq: uint64(seq), Add: true, U: seq, V: 0}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestTailSinceServesAndCaps(t *testing.T) {
	st := tailStore(t, 5)
	v, err := st.TailSince(1, 0)
	if err != nil {
		t.Fatalf("full tail: %v", err)
	}
	if len(v.Records) != 5 || v.Records[0].Seq != 1 || v.LastSeq != 5 || v.SnapSeq != 0 || v.SnapGen != 1 {
		t.Fatalf("full tail view: %+v", v)
	}
	v, err = st.TailSince(3, 2)
	if err != nil {
		t.Fatalf("capped tail: %v", err)
	}
	if len(v.Records) != 2 || v.Records[0].Seq != 3 || v.Records[1].Seq != 4 {
		t.Fatalf("capped records: %+v", v.Records)
	}
	if v.LastSeq != 5 {
		t.Fatalf("capped view must still report LastSeq 5, got %d", v.LastSeq)
	}
	// A caught-up caller gets an empty view, not an error.
	v, err = st.TailSince(6, 0)
	if err != nil || len(v.Records) != 0 || v.LastSeq != 5 {
		t.Fatalf("caught-up view: %+v err=%v", v, err)
	}
	// The view is a copy: later appends must not alias into it.
	v, _ = st.TailSince(5, 0)
	if err := st.Append(Record{Seq: 6, Add: false, U: 9, V: 9}); err != nil {
		t.Fatal(err)
	}
	if len(v.Records) != 1 || v.Records[0].Seq != 5 {
		t.Fatalf("view mutated by later append: %+v", v.Records)
	}
}

func TestTailSinceGaps(t *testing.T) {
	st := tailStore(t, 3)
	for _, from := range []uint64{0, 7, 100} {
		if _, err := st.TailSince(from, 0); !errors.Is(err, ErrTailGap) {
			t.Fatalf("from=%d: want ErrTailGap, got %v", from, err)
		}
	}
	// At or below the snapshot seq is a gap too: those records were absorbed.
	if err := st.Checkpoint(testSnapshot(t, 2, 2)); err != nil {
		t.Fatal(err)
	}
	for _, from := range []uint64{1, 2} {
		if _, err := st.TailSince(from, 0); !errors.Is(err, ErrTailGap) {
			t.Fatalf("from=%d after checkpoint: want ErrTailGap, got %v", from, err)
		}
	}
	if v, err := st.TailSince(3, 0); err != nil || len(v.Records) != 1 || v.Records[0].Seq != 3 {
		t.Fatalf("post-checkpoint tail: %+v err=%v", v, err)
	}
}

func TestTailSinceRequiresSnapshot(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.TailSince(1, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("no snapshot: want ErrTailGap, got %v", err)
	}
	if _, _, _, err := st.SnapshotBytes(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("no snapshot bytes: %v", err)
	}
}

func TestTailHoleStopsServingUntilCheckpoint(t *testing.T) {
	st := tailStore(t, 2)
	// Simulate an append that skipped a sequence (an earlier append failed):
	// the in-memory tail drops and serving stops.
	if err := st.Append(Record{Seq: 5, Add: true, U: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.TailSince(1, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("holed tail served: %v", err)
	}
	if _, err := st.TailSince(5, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("unanchored tail served: %v", err)
	}
	// The next checkpoint re-anchors the tail and serving resumes.
	if err := st.Checkpoint(testSnapshot(t, 5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Seq: 6, Add: true, U: 3, V: 4}); err != nil {
		t.Fatal(err)
	}
	v, err := st.TailSince(6, 0)
	if err != nil || len(v.Records) != 1 || v.Records[0].Seq != 6 {
		t.Fatalf("tail after re-anchor: %+v err=%v", v, err)
	}
}

func TestTailAfterTornTailRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(testSnapshot(t, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if err := st.Append(Record{Seq: seq, Add: true, U: int(seq), V: 0}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// Tear the last record mid-write.
	walPath := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, err := st2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Only the valid prefix 1..3 is servable after the repair.
	v, err := st2.TailSince(1, 0)
	if err != nil {
		t.Fatalf("tail after torn restart: %v", err)
	}
	if len(v.Records) != 3 || v.LastSeq != 3 {
		t.Fatalf("torn tail served %d records (last %d), want 3", len(v.Records), v.LastSeq)
	}
	if _, err := st2.TailSince(5, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("position past torn cut served: %v", err)
	}
}

func TestSnapshotBytesRoundTrip(t *testing.T) {
	st := tailStore(t, 0)
	b, seq, gen, err := st.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 || gen != 1 {
		t.Fatalf("snapshot meta: seq=%d gen=%d", seq, gen)
	}
	snap, err := ReadSnapshot(b)
	if err != nil {
		t.Fatalf("shipped bytes unreadable: %v", err)
	}
	if snap.Seq != 0 || snap.Gen != 1 {
		t.Fatalf("shipped snapshot meta: %+v", snap)
	}
	if _, err := snap.Index(); err != nil {
		t.Fatalf("shipped snapshot index: %v", err)
	}
}

func TestTailFrameRoundTrip(t *testing.T) {
	f := TailFrame{
		LastSeq: 12, WriterGen: 4, SnapSeq: 9, SnapGen: 3,
		Records: []Record{
			{Seq: 10, Add: true, U: 1, V: 2},
			{Seq: 11, Add: false, U: 3, V: 4},
			{Seq: 12, Add: true, U: 5, V: 6},
		},
	}
	b := EncodeTailFrame(f)
	got, err := DecodeTailFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != f.LastSeq || got.WriterGen != f.WriterGen ||
		got.SnapSeq != f.SnapSeq || got.SnapGen != f.SnapGen {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Records) != len(f.Records) {
		t.Fatalf("record count: %d", len(got.Records))
	}
	for i := range f.Records {
		if got.Records[i] != f.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got.Records[i], f.Records[i])
		}
	}
	// An empty frame (caught-up poll) round-trips too.
	if got, err := DecodeTailFrame(EncodeTailFrame(TailFrame{LastSeq: 7, WriterGen: 2})); err != nil ||
		len(got.Records) != 0 || got.LastSeq != 7 {
		t.Fatalf("empty frame: %+v err=%v", got, err)
	}
}

func TestTailFrameRejectsCorruption(t *testing.T) {
	f := TailFrame{
		LastSeq: 3, WriterGen: 1,
		Records: []Record{{Seq: 2, Add: true, U: 1, V: 2}, {Seq: 3, Add: true, U: 3, V: 4}},
	}
	good := EncodeTailFrame(f)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantVer bool
	}{
		{"short", func(b []byte) []byte { return b[:10] }, false},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, false},
		{"version", func(b []byte) []byte {
			putU32(b[8:12], FormatVersion+1)
			// Re-seal the header CRC so only the version mismatch fires.
			putU32(b[48:52], headerCRC(b))
			return b
		}, true},
		{"header flip", func(b []byte) []byte { b[14] ^= 0x01; return b }, false},
		{"count mismatch", func(b []byte) []byte { return b[:len(b)-1] }, false},
		{"record flip", func(b []byte) []byte { b[tailHeaderSize+3] ^= 0x01; return b }, false},
		{"gapped records", func(b []byte) []byte {
			rec := encodeRecord(Record{Seq: 9, Add: true, U: 0, V: 1})
			copy(b[tailHeaderSize+walRecordSize:], rec[:])
			return b
		}, false},
	}
	for _, tc := range cases {
		b := append([]byte(nil), good...)
		_, err := DecodeTailFrame(tc.mutate(b))
		want := ErrCorrupt
		if tc.wantVer {
			want = ErrVersion
		}
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, want)
		}
	}
}

package persist

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// SectionInfo describes one snapshot section as found on disk.
type SectionInfo struct {
	Kind    uint32
	Name    string
	Bytes   int
	CRCOK   bool
	Details string
}

// Report is a tolerant description of a snapshot file for operators: it
// keeps going past checksum failures so `recc inspect` can show what is
// wrong, while Valid summarizes whether recovery would accept the file.
type Report struct {
	Path     string
	Size     int64
	Version  uint32
	Sections []SectionInfo
	Valid    bool
	Err      string // first validation error, "" when Valid

	// Populated when the meta + graph sections decode.
	Seq, Gen  uint64
	SavedAt   time.Time
	BaseFP    uint64
	Params    Params
	N, M      int
	Dim       int
	BoundaryL int
	HasEcc    bool
}

func sectionName(kind uint32) string {
	switch kind {
	case secMeta:
		return "meta"
	case secGraph:
		return "graph"
	case secSketch:
		return "sketch"
	case secHull:
		return "hull"
	case secEcc:
		return "ecc-cache"
	}
	return fmt.Sprintf("unknown(%d)", kind)
}

// InspectSnapshot examines a snapshot file without requiring it to be
// valid. The returned report is best-effort; Err carries the first reason
// recovery would reject the file.
func InspectSnapshot(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{Path: path, Size: int64(len(b))}

	d := dec{b: b}
	magic := d.take(8)
	if d.err != nil || string(magic) != snapshotMagic {
		rep.Err = "bad magic (not a snapshot file)"
		return rep, nil
	}
	rep.Version = d.u32()
	count := d.u32()
	if d.err != nil {
		rep.Err = "truncated header"
		return rep, nil
	}
	if rep.Version != FormatVersion {
		rep.Err = fmt.Sprintf("format v%d, reader supports v%d", rep.Version, FormatVersion)
	}
	for i := uint32(0); i < count && d.err == nil; i++ {
		kind := d.u32()
		plen := d.intLen(d.u64(), 1)
		payload := d.take(plen)
		sum := d.u32()
		if d.err != nil {
			if rep.Err == "" {
				rep.Err = fmt.Sprintf("truncated in section %d", i+1)
			}
			break
		}
		info := SectionInfo{
			Kind:  kind,
			Name:  sectionName(kind),
			Bytes: len(payload),
			CRCOK: crc32.Checksum(payload, castagnoli) == sum,
		}
		if !info.CRCOK && rep.Err == "" {
			rep.Err = fmt.Sprintf("section %q checksum mismatch", info.Name)
		}
		if info.CRCOK {
			var s Snapshot
			switch kind {
			case secMeta:
				if decodeMeta(payload, &s) == nil {
					rep.Seq, rep.Gen = s.Seq, s.Gen
					rep.SavedAt = time.Unix(0, s.SavedUnixNano)
					rep.BaseFP = s.BaseFP
					rep.Params = s.Params
					info.Details = fmt.Sprintf("seq=%d gen=%d eps=%g dim=%d seed=%d",
						s.Seq, s.Gen, s.Params.Epsilon, s.Params.Dim, s.Params.Seed)
				}
			case secGraph:
				if g, gerr := decodeGraph(payload); gerr == nil {
					rep.N, rep.M = g.N(), g.M()
					info.Details = fmt.Sprintf("n=%d m=%d", g.N(), g.M())
				}
			case secSketch:
				if decodeSketch(payload, &s) == nil {
					rep.Dim = s.SketchMeta.Dim
					info.Details = fmt.Sprintf("d=%d n=%d drift=%g updates=%d",
						s.SketchMeta.Dim, s.SketchMeta.N, s.SketchMeta.Drift, s.SketchMeta.Updates)
				}
			case secHull:
				if decodeHull(payload, &s) == nil {
					rep.BoundaryL = len(s.Boundary)
					info.Details = fmt.Sprintf("l=%d diameter=%.6g certified=%v",
						len(s.Boundary), s.Diameter, s.Certified)
				}
			case secEcc:
				if decodeEcc(payload, &s) == nil {
					rep.HasEcc = true
					info.Details = fmt.Sprintf("%d cached eccentricities", len(s.Ecc))
				}
			}
		}
		rep.Sections = append(rep.Sections, info)
	}
	if rep.Err == "" {
		// Authoritative answer: exactly what recovery would decide.
		if _, rerr := ReadSnapshot(b); rerr != nil {
			rep.Err = rerr.Error()
		} else {
			rep.Valid = true
		}
	}
	return rep, nil
}

// WALInfo summarizes a WAL file for operators.
type WALInfo struct {
	Path     string
	Size     int64
	Version  uint32 // 0 when the header is missing or foreign
	Records  int
	FirstSeq uint64
	LastSeq  uint64
	// TornBytes counts trailing bytes past the valid prefix (0 for a clean
	// log); recovery discards them.
	TornBytes int64
}

// InspectWAL reads the valid prefix of a WAL file.
func InspectWAL(path string) (*WALInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var version uint32
	var hdr [walHeaderSize]byte
	// ReadAt leaves the scan offset at 0; the version is reported even when
	// scanWAL rejects the rest of the header.
	if n, _ := f.ReadAt(hdr[:], 0); n == walHeaderSize && string(hdr[:8]) == WALMagic {
		version = getU32(hdr[8:12])
	}
	recs, validSize, err := scanWAL(f)
	if err != nil {
		return nil, err
	}
	info := &WALInfo{Path: path, Size: fi.Size(), Version: version, Records: len(recs), TornBytes: fi.Size() - validSize}
	if validSize == 0 {
		info.TornBytes = fi.Size()
	}
	if len(recs) > 0 {
		info.FirstSeq = recs[0].Seq
		info.LastSeq = recs[len(recs)-1].Seq
	}
	return info, nil
}

// TailInfo is a tolerant description of a tail-fetch frame (the wire format
// of GET /v1/repl/wal, sometimes captured to disk for debugging). Like
// Report it keeps going past checksum failures so `recc inspect` can show
// what is wrong; Valid summarizes whether a replica would apply the frame.
type TailInfo struct {
	Path    string
	Size    int64
	Version uint32

	// Header fields, trustworthy only when HeaderOK (the header CRC held).
	HeaderOK  bool
	LastSeq   uint64 // newest sequence the writer's store holds
	WriterGen uint64
	SnapSeq   uint64
	SnapGen   uint64
	Declared  int // record count the header declares

	// The verified record prefix: records whose own checksums hold and whose
	// sequences stay contiguous. A replica applies all of Declared or
	// nothing, so Records < Declared always means Valid is false.
	Records           int
	FirstRec, LastRec uint64
	TornBytes         int64 // bytes past the verified prefix

	Valid bool
	Err   string // first reason a replica would reject the frame, "" when Valid
}

// InspectTail examines a tail-frame file without requiring it to be valid.
func InspectTail(path string) (*TailInfo, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	info := &TailInfo{Path: path, Size: int64(len(b))}
	if len(b) < tailHeaderSize || string(b[0:8]) != TailMagic {
		info.Err = "bad or truncated tail-frame header"
		info.TornBytes = info.Size
		return info, nil
	}
	info.Version = getU32(b[8:12])
	if crc32.Checksum(b[:48], castagnoli) == getU32(b[48:52]) {
		info.HeaderOK = true
		info.LastSeq = getU64(b[12:20])
		info.WriterGen = getU64(b[20:28])
		info.SnapSeq = getU64(b[28:36])
		info.SnapGen = getU64(b[36:44])
		info.Declared = int(getU32(b[44:48]))
	}
	off := tailHeaderSize
	for info.Records < info.Declared && off+walRecordSize <= len(b) {
		rec, ok := decodeRecord(b[off : off+walRecordSize])
		if !ok || (info.Records > 0 && rec.Seq != info.LastRec+1) {
			break
		}
		if info.Records == 0 {
			info.FirstRec = rec.Seq
		}
		info.LastRec = rec.Seq
		info.Records++
		off += walRecordSize
	}
	info.TornBytes = int64(len(b) - off)
	// Authoritative answer: exactly what a replica would decide.
	if _, derr := DecodeTailFrame(b); derr != nil {
		info.Err = derr.Error()
	} else {
		info.Valid = true
	}
	return info, nil
}

// InspectDir summarizes a store directory: every snapshot file (newest
// first) plus the WAL.
func InspectDir(dir string) ([]*Report, *WALInfo, error) {
	st := &Store{dir: dir}
	var reps []*Report
	for _, name := range st.snapshotFiles() {
		rep, err := InspectSnapshot(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		reps = append(reps, rep)
	}
	walPath := filepath.Join(dir, "wal.log")
	wi, err := InspectWAL(walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return reps, nil, nil
		}
		return nil, nil, err
	}
	return reps, wi, nil
}

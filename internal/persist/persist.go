// Package persist is the durable store for the dynamic FASTQUERY index:
// versioned, checksummed binary snapshots of a served index generation plus
// a mutation write-ahead log, so a restart replays cheap WAL records instead
// of re-running the Õ(m/ε²) sketch build, and acknowledged edge mutations
// survive a crash.
//
// The design follows the "precompute offline, persist, answer from the
// stored artifact" pattern of the resistance-labelling line of related work,
// adapted to the lifecycle manager's consistency model:
//
//   - A snapshot is a consistent cut (lifecycle.CheckpointState): the master
//     graph after exactly Seq mutations plus the index reflecting it. The
//     sketch matrix is stored bit-exactly, so a warm start answers
//     bit-identically to the index that was saved.
//   - The WAL logs every committed mutation with its sequence number.
//     Recovery loads the newest valid snapshot and replays records Seq+1,
//     Seq+2, … through the ordinary lifecycle mutation path, landing in the
//     same incremental/stale/rebuild state a live server would.
//   - Every corruption — torn snapshot, truncated or bit-flipped WAL tail,
//     format-version or build-parameter mismatch — degrades to a cold build.
//     Never to wrong answers: a record or section is used only after its CRC
//     and sequence checks pass.
//
// Files in a store directory: "wal.log" and "snapshot-<seq>.snap" (only the
// newest is kept; an interrupted checkpoint leaves at most a stray tmp file
// that the next Open removes).
package persist

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/lifecycle"
	"resistecc/internal/sketch"
	"resistecc/internal/solver"
)

// FormatVersion is the current snapshot/WAL format version. Readers reject
// any other version (a mismatch degrades to a cold build, by design: the
// artifact is a cache, not a source of truth).
const FormatVersion = 1

var (
	// ErrCorrupt marks a snapshot or WAL whose structure or checksums do not
	// hold. Callers fall back to older artifacts or a cold build.
	ErrCorrupt = errors.New("persist: corrupt artifact")
	// ErrVersion marks an artifact written by an incompatible format version.
	ErrVersion = errors.New("persist: unsupported format version")
	// ErrMismatch marks a snapshot whose build parameters or base-graph
	// fingerprint do not match what the caller is serving.
	ErrMismatch = errors.New("persist: snapshot does not match requested build")
)

// Params captures every build input that determines index content. Two
// builds with equal Params over the same graph are bit-identical, so a
// snapshot is valid for a caller exactly when its stored Params equal the
// caller's. Fields mirror the raw (pre-default-resolution) options: both
// sides resolve zeros identically downstream, so comparing raw values is
// conservative and safe.
type Params struct {
	Epsilon   float64
	Dim       int
	Seed      int64
	SolverTol float64

	HullTheta       float64
	HullSeed        int64
	HullDirections  int
	HullMaxVertices int
	HullMaxFWIters  int
}

// SketchOptions expands the stored parameters back into build options
// (solver workers are a speed knob, not a content input, and default).
func (p Params) SketchOptions() sketch.Options {
	return sketch.Options{
		Epsilon: p.Epsilon,
		Dim:     p.Dim,
		Seed:    p.Seed,
		Solver:  solver.Options{Tol: p.SolverTol},
	}
}

// HullOptions expands the stored hull parameters.
func (p Params) HullOptions() hull.Options {
	return hull.Options{
		Theta:       p.HullTheta,
		Seed:        p.HullSeed,
		Directions:  p.HullDirections,
		MaxVertices: p.HullMaxVertices,
		MaxFWIters:  p.HullMaxFWIters,
	}
}

// Snapshot is the in-memory form of one persisted index generation.
type Snapshot struct {
	// Seq is the mutation sequence number this state reflects; WAL records
	// with larger sequence numbers apply on top.
	Seq uint64
	// Gen is the served generation, so clients observe a monotone
	// X-Index-Generation across restarts.
	Gen uint64
	// SavedUnixNano is the wall-clock write time (snapshot_age_seconds).
	SavedUnixNano int64
	// Params are the build inputs; BaseFP fingerprints the original input
	// graph (before any mutations), tying the artifact to its data file.
	Params Params
	BaseFP uint64

	// Graph is the master graph at Seq.
	Graph *graph.Graph
	// SketchMeta + Points carry the APPROXER state bit-exactly.
	SketchMeta sketch.Meta
	Points     []float64
	// Boundary is the hull boundary Ŝ; Diameter/Certified/Rounds are the
	// APPROXCH diagnostics of hull.Result.
	Boundary  []int
	Diameter  float64
	Certified bool
	Rounds    int
	// Ecc optionally caches the eccentricity distribution E(G) at Seq (nil
	// when absent). Purely an acceleration for summary endpoints.
	Ecc []float64
}

// Capture assembles a Snapshot from a lifecycle checkpoint cut. When
// withEcc is set the eccentricity distribution is computed and embedded
// (O(n·l·d), cheap next to the build the checkpoint amortizes).
func Capture(cs lifecycle.CheckpointState, params Params, baseFP uint64, withEcc bool) *Snapshot {
	f := cs.Fast
	s := &Snapshot{
		Seq:           cs.Seq,
		Gen:           cs.Gen,
		SavedUnixNano: time.Now().UnixNano(),
		Params:        params,
		BaseFP:        baseFP,
		Graph:         cs.Graph,
		SketchMeta:    f.Sk.Meta(),
		Points:        f.Sk.AppendPoints(make([]float64, 0, f.Sk.N*f.Sk.Dim)),
		Boundary:      append([]int(nil), f.Boundary...),
		Diameter:      f.HullInfo.Diameter,
		Certified:     f.HullInfo.Certified,
		Rounds:        f.HullInfo.Rounds,
	}
	if withEcc {
		s.Ecc = f.DistributionParallel(0)
	}
	return s
}

// Index reconstructs the FASTQUERY index from the snapshot, bit-identical
// to the one Capture saw.
func (s *Snapshot) Index() (*ecc.Fast, error) {
	sk, err := sketch.Restore(s.SketchMeta, s.Points)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	boundary := append([]int(nil), s.Boundary...)
	return &ecc.Fast{
		Sk:       sk,
		Boundary: boundary,
		HullInfo: &hull.Result{
			Vertices:  boundary,
			Diameter:  s.Diameter,
			Certified: s.Certified,
			Rounds:    s.Rounds,
		},
	}, nil
}

// validate cross-checks the decoded sections against each other, so a
// snapshot that passed every CRC but is internally inconsistent (a bug, or
// adversarial corruption that kept checksums valid) is still rejected.
func (s *Snapshot) validate() error {
	if s.Graph == nil {
		return fmt.Errorf("%w: missing graph section", ErrCorrupt)
	}
	if err := s.Graph.Validate(); err != nil {
		return fmt.Errorf("%w: graph: %v", ErrCorrupt, err)
	}
	n := s.Graph.N()
	if s.SketchMeta.N != n {
		return fmt.Errorf("%w: sketch covers %d nodes, graph has %d", ErrCorrupt, s.SketchMeta.N, n)
	}
	if len(s.Points) != s.SketchMeta.N*s.SketchMeta.Dim {
		return fmt.Errorf("%w: sketch matrix has %d values, want %d",
			ErrCorrupt, len(s.Points), s.SketchMeta.N*s.SketchMeta.Dim)
	}
	for _, v := range s.Boundary {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: boundary node %d out of range n=%d", ErrCorrupt, v, n)
		}
	}
	if s.Ecc != nil && len(s.Ecc) != n {
		return fmt.Errorf("%w: eccentricity cache has %d values, want %d", ErrCorrupt, len(s.Ecc), n)
	}
	return nil
}

// Fingerprint hashes a graph's exact edge set: FNV-1a over n, m and the
// canonical (sorted, u < v) edge list. Adjacency lists are kept sorted, so
// equal edge sets hash equally regardless of insertion order.
func Fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	g.EachEdge(func(u, v int) bool {
		put(uint64(u)<<32 | uint64(v))
		return true
	})
	return h.Sum64()
}

// Package spectral implements the resistance-based graph invariants adjacent
// to resistance eccentricity: the Kirchhoff index (the aggregate of
// resistance distances across all node pairs, §II) and Kemeny's constant
// (the paper's closing future-work pointer). Both come in an exact dense
// form (via the Laplacian pseudoinverse) and a near-linear randomized
// estimator built from the same Laplacian-solver substrate the sketches use.
//
// Identities used:
//
//	Kf(G) = Σ_{u<v} r(u,v)              = n · tr(L†)
//	K(G)  = Σ_{u<v} π_u π_v C(u,v)      = tr(D L†) − dᵀL†d / (2m)
//
// where C(u,v) = 2m·r(u,v) is the commute time, d the degree vector and
// π = d/2m the stationary distribution. The estimators replace the traces
// with Hutchinson's Rademacher estimator, each probe costing one Laplacian
// solve.
package spectral

import (
	"fmt"
	"math/rand"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/solver"
)

// KirchhoffExact computes Kf(G) = n·tr(L†) from a precomputed pseudoinverse.
func KirchhoffExact(lp *linalg.Dense) float64 {
	tr := 0.0
	for i := 0; i < lp.N; i++ {
		tr += lp.At(i, i)
	}
	return float64(lp.N) * tr
}

// KemenyExact computes Kemeny's constant K(G) = tr(DL†) − dᵀL†d/(2m) from a
// precomputed pseudoinverse and the graph's degree sequence.
func KemenyExact(g *graph.Graph, lp *linalg.Dense) float64 {
	n := g.N()
	if n != lp.N {
		panic("spectral: graph/pseudoinverse size mismatch")
	}
	trDL := 0.0
	d := make([]float64, n)
	for u := 0; u < n; u++ {
		d[u] = float64(g.Degree(u))
		trDL += d[u] * lp.At(u, u)
	}
	// dᵀ L† d.
	quad := 0.0
	for i := 0; i < n; i++ {
		row := lp.Row(i)
		s := 0.0
		for j := 0; j < n; j++ {
			s += row[j] * d[j]
		}
		quad += d[i] * s
	}
	return trDL - quad/(2*float64(g.M()))
}

// EstimateOptions configures the randomized estimators.
type EstimateOptions struct {
	// Probes is the number of Hutchinson probes (default 64). The standard
	// error decreases as O(1/√Probes).
	Probes int
	// Seed fixes the Rademacher probes.
	Seed int64
	// Solver configures the underlying Laplacian solves.
	Solver solver.Options
}

func (o EstimateOptions) withDefaults() EstimateOptions {
	if o.Probes <= 0 {
		o.Probes = 64
	}
	return o
}

// KirchhoffEstimate estimates Kf(G) = n·tr(L†) with Hutchinson probes:
// tr(L†) ≈ mean_z zᵀL†z over Rademacher z (projected onto 1⊥, which leaves
// the trace over the range of L† unchanged). Each probe is one solve, so the
// total cost is Õ(Probes · m).
func KirchhoffEstimate(g *graph.Graph, opt EstimateOptions) (float64, error) {
	opt = opt.withDefaults()
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	lap, err := solver.NewLap(g.ToCSR(), opt.Solver)
	if err != nil {
		return 0, fmt.Errorf("spectral: kirchhoff estimate: %w", err)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	z := make([]float64, n)
	x := make([]float64, n)
	sum := 0.0
	for p := 0; p < opt.Probes; p++ {
		for i := range z {
			if rng.Int63()&1 == 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		// Solve projects z internally; zᵀL†z = zᵀL†(proj z) since L†1 = 0,
		// but the quadratic form needs the projected z on the left too:
		// zᵀL†z = (proj z)ᵀ L† (proj z) because L†'s range ⊥ 1.
		for i := range x {
			x[i] = 0
		}
		if _, err := lap.Solve(z, x); err != nil {
			return 0, fmt.Errorf("spectral: kirchhoff probe %d: %w", p, err)
		}
		sum += linalg.Dot(z, x)
	}
	return float64(n) * sum / float64(opt.Probes), nil
}

// KemenyEstimate estimates K(G) = tr(DL†) − dᵀL†d/(2m). The trace term uses
// Hutchinson probes of tr(L†D) = E[zᵀ L† D z]; the quadratic term costs one
// extra solve.
func KemenyEstimate(g *graph.Graph, opt EstimateOptions) (float64, error) {
	opt = opt.withDefaults()
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	lap, err := solver.NewLap(g.ToCSR(), opt.Solver)
	if err != nil {
		return 0, fmt.Errorf("spectral: kemeny estimate: %w", err)
	}
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = float64(g.Degree(u))
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	z := make([]float64, n)
	w := make([]float64, n)
	x := make([]float64, n)
	trace := 0.0
	for p := 0; p < opt.Probes; p++ {
		for i := range z {
			if rng.Int63()&1 == 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		// w = D z; probe zᵀ L† D z.
		for i := range w {
			w[i] = deg[i] * z[i]
		}
		for i := range x {
			x[i] = 0
		}
		if _, err := lap.Solve(w, x); err != nil {
			return 0, fmt.Errorf("spectral: kemeny probe %d: %w", p, err)
		}
		trace += linalg.Dot(z, x)
	}
	trace /= float64(opt.Probes)
	// Quadratic term dᵀL†d with a single solve.
	for i := range x {
		x[i] = 0
	}
	if _, err := lap.Solve(deg, x); err != nil {
		return 0, fmt.Errorf("spectral: kemeny quadratic term: %w", err)
	}
	quad := linalg.Dot(deg, x)
	return trace - quad/(2*float64(g.M())), nil
}

package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func pinv(t *testing.T, g *graph.Graph) *linalg.Dense {
	t.Helper()
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	return lp
}

func TestKirchhoffClosedForms(t *testing.T) {
	// Complete graph: Kf = Σ_{u<v} 2/n = (n−1).
	kn := graph.Complete(9)
	if got := KirchhoffExact(pinv(t, kn)); math.Abs(got-8) > 1e-8 {
		t.Fatalf("Kf(K9)=%g, want 8", got)
	}
	// Path: Kf = Σ_{i<j}(j−i) = n(n²−1)/6.
	p := graph.Path(10)
	want := 10.0 * (100 - 1) / 6
	if got := KirchhoffExact(pinv(t, p)); math.Abs(got-want) > 1e-7 {
		t.Fatalf("Kf(P10)=%g, want %g", got, want)
	}
	// Star: hub-leaf pairs contribute (n−1)·1, leaf-leaf pairs C(n−1,2)·2.
	s := graph.Star(8)
	wantStar := 7.0 + 2*float64(7*6/2)
	if got := KirchhoffExact(pinv(t, s)); math.Abs(got-wantStar) > 1e-8 {
		t.Fatalf("Kf(S8)=%g, want %g", got, wantStar)
	}
}

// KirchhoffExact must equal the brute-force pairwise sum.
func TestQuickKirchhoffPairwise(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(25, 2, seed)
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		sum := 0.0
		for u := 0; u < 25; u++ {
			for v := u + 1; v < 25; v++ {
				sum += linalg.Resistance(lp, u, v)
			}
		}
		return math.Abs(sum-KirchhoffExact(lp)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKemenyExactClosedForm(t *testing.T) {
	// Complete graph: Kemeny's constant is (n−1)²/n.
	n := 8
	kn := graph.Complete(n)
	got := KemenyExact(kn, pinv(t, kn))
	want := float64((n-1)*(n-1)) / float64(n)
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("K(K%d)=%g, want %g", n, got, want)
	}
}

// KemenyExact must match the commute-time definition
// K = Σ_{u<v} π_u π_v C(u,v) with C(u,v) = 2m·r(u,v).
func TestQuickKemenyPairwise(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(20, 2, seed)
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		m2 := 2 * float64(g.M())
		sum := 0.0
		for u := 0; u < 20; u++ {
			for v := u + 1; v < 20; v++ {
				pu := float64(g.Degree(u)) / m2
				pv := float64(g.Degree(v)) / m2
				sum += pu * pv * m2 * linalg.Resistance(lp, u, v)
			}
		}
		return math.Abs(sum-KemenyExact(g, lp)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKirchhoffEstimate(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 7)
	exact := KirchhoffExact(pinv(t, g))
	est, err := KirchhoffEstimate(g, EstimateOptions{Probes: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-exact) / exact; rel > 0.12 {
		t.Fatalf("Kf estimate %g vs exact %g (rel %.3f)", est, exact, rel)
	}
	if v, err := KirchhoffEstimate(graph.New(0), EstimateOptions{}); err != nil || v != 0 {
		t.Fatal("empty graph")
	}
	// Disconnected rejected via the solver.
	d := graph.New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := KirchhoffEstimate(d, EstimateOptions{}); err == nil {
		t.Fatal("isolated node should fail")
	}
}

func TestKemenyEstimate(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 9)
	exact := KemenyExact(g, pinv(t, g))
	est, err := KemenyEstimate(g, EstimateOptions{Probes: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-exact) / exact; rel > 0.12 {
		t.Fatalf("Kemeny estimate %g vs exact %g (rel %.3f)", est, exact, rel)
	}
	if v, err := KemenyEstimate(graph.New(0), EstimateOptions{}); err != nil || v != 0 {
		t.Fatal("empty graph")
	}
}

// Rayleigh: adding edges cannot increase the Kirchhoff index.
func TestQuickKirchhoffMonotone(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(18, 2, seed)
		u, v := int(a)%18, int(b)%18
		if u == v || g.HasEdge(u, v) {
			return true
		}
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		before := KirchhoffExact(lp)
		linalg.AddEdgePinv(lp, u, v)
		return KirchhoffExact(lp) <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package optimize

import (
	"fmt"
	"math"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

// Exhaustive is OPT-REMD / OPT-REM (§VIII-C): it enumerates every size-k
// subset of the candidate set and returns one minimizing the exact c(s) in
// the augmented graph. Exponential in k — intended only for the tiny
// networks of Figure 8 (n ≤ 18, k ≤ 4).
//
// Each subset is evaluated incrementally: depth-d recursion carries the
// pseudoinverse of the graph with the first d chosen edges applied
// (Sherman–Morrison, O(n²) per extension), so a full evaluation never
// re-factorizes.
func Exhaustive(g *graph.Graph, p Problem, s, k int) (*Result, float64, error) {
	if err := validate(g, s, k); err != nil {
		return nil, 0, err
	}
	var cand []graph.Edge
	forEachCandidate(g, p, s, func(u, v int) {
		cand = append(cand, graph.Edge{U: u, V: v})
	})
	if k > len(cand) {
		k = len(cand)
	}
	name := "OPT-REMD"
	if p == REM {
		name = "OPT-REM"
	}
	res := &Result{Algorithm: name, Problem: p, Source: s}

	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		return nil, 0, fmt.Errorf("optimize: Exhaustive: %w", err)
	}
	if k == 0 {
		c, _ := linalg.EccentricityFromPinv(lp, s)
		return res, c, nil
	}

	bestEcc := math.Inf(1)
	best := make([]graph.Edge, k)
	chosen := make([]graph.Edge, 0, k)

	var recurse func(lp *linalg.Dense, start int)
	recurse = func(lp *linalg.Dense, start int) {
		if len(chosen) == k {
			c, _ := linalg.EccentricityFromPinv(lp, s)
			if c < bestEcc {
				bestEcc = c
				copy(best, chosen)
			}
			return
		}
		remaining := k - len(chosen)
		for i := start; i+remaining <= len(cand); i++ {
			e := cand[i]
			next := lp
			if len(chosen)+1 == k {
				// Leaf: score without copying the whole matrix.
				c := eccAfterEdge(lp, s, e.U, e.V)
				if c < bestEcc {
					bestEcc = c
					copy(best, chosen)
					best[k-1] = e
				}
				continue
			}
			next = lp.Clone()
			linalg.AddEdgePinv(next, e.U, e.V)
			chosen = append(chosen, e)
			recurse(next, i+1)
			chosen = chosen[:len(chosen)-1]
		}
	}
	recurse(lp, 0)
	if math.IsInf(bestEcc, 1) {
		// No subset of size k exists (empty candidate set).
		c, _ := linalg.EccentricityFromPinv(lp, s)
		return res, c, nil
	}
	res.Edges = best
	return res, bestEcc, nil
}

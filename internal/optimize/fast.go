package optimize

import (
	"context"
	"fmt"
	"math"
	"sort"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/sketch"
)

// FastOptions configures the sketch-based heuristics of §VII.
type FastOptions struct {
	// Sketch configures APPROXER; Sketch.Epsilon is the ε of Algorithms 5-9.
	Sketch sketch.Options
	// Hull configures APPROXCH for ChMinRecc/MinRecc. Zero Theta means ε/12
	// (Algorithms 8-9, line 3).
	Hull hull.Options
	// MaxCandidates caps how many hull-pair candidates ChMinRecc/MinRecc
	// score with ApproxRecc per round, keeping the top pairs by sketched
	// distance. Zero means no cap (the paper's literal O(k·l²·m/ε²) loop).
	MaxCandidates int
}

// hullOptions resolves APPROXCH parameters for one optimizer round. As in
// ecc.HullOptionsFor, a zero Theta with no positive Epsilon to derive it from
// is a configuration error, not a θ = 0 hull.
func (o FastOptions) hullOptions(round int) (hull.Options, error) {
	h := o.Hull
	if h.Theta <= 0 {
		if o.Sketch.Epsilon <= 0 {
			return hull.Options{}, fmt.Errorf("optimize: cannot derive hull θ = ε/12: %w", sketch.ErrBadEpsilon)
		}
		h.Theta = o.Sketch.Epsilon / 12
	}
	if h.Seed == 0 {
		h.Seed = o.Sketch.Seed + 7919
	}
	h.Seed += int64(round)
	return h, nil
}

func (o FastOptions) sketchOptions(round int) sketch.Options {
	s := o.Sketch
	s.Seed += int64(round) * 1000003
	return s
}

// FarMinRecc is Algorithm 5 (REMD): each round re-sketches the current graph
// and connects s to the node with the largest sketched resistance distance
// from s — the farthest-first heuristic. Õ(k·m/ε²).
func FarMinRecc(ctx context.Context, g *graph.Graph, s, k int, opt FastOptions) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	res := &Result{Algorithm: "FarMinRecc", Problem: REMD, Source: s}
	for i := 0; i < k; i++ {
		sk, err := sketch.NewContext(ctx, work.ToCSR(), opt.sketchOptions(i))
		if err != nil {
			return nil, fmt.Errorf("optimize: FarMinRecc round %d: %w", i, err)
		}
		best, arg := -1.0, -1
		for u := 0; u < work.N(); u++ {
			if u == s || work.HasEdge(s, u) {
				continue
			}
			if r := sk.Resistance(s, u); r > best {
				best, arg = r, u
			}
		}
		if arg < 0 {
			break // s is adjacent to everything
		}
		if err := work.AddEdge(s, arg); err != nil {
			return nil, fmt.Errorf("optimize: FarMinRecc commit: %w", err)
		}
		res.Edges = append(res.Edges, graph.Edge{U: s, V: arg}.Canon())
	}
	return res, nil
}

// CenMinRecc is Algorithm 6 (REMD): a single sketch of the input graph,
// then a k-center (farthest-first traversal) seeded at s in the embedded
// metric; each selected center u_i is wired to s. Avoids re-sketching, so it
// runs in Õ(m/ε² + k·n/ε²) — the fastest of the four heuristics (Table III)
// at some cost in effectiveness (Figure 9).
//
// Algorithm 6's line 6 literally reads "argmax over u∉T, v∈T of distance";
// per its prose description ("find the node farthest from all nodes in set
// T") we implement the standard farthest-first rule
// argmax_{u∉T} min_{v∈T} d(u,v).
func CenMinRecc(ctx context.Context, g *graph.Graph, s, k int, opt FastOptions) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	res := &Result{Algorithm: "CenMinRecc", Problem: REMD, Source: s}
	sk, err := sketch.NewContext(ctx, work.ToCSR(), opt.sketchOptions(0))
	if err != nil {
		return nil, fmt.Errorf("optimize: CenMinRecc: %w", err)
	}
	n := work.N()
	inT := make([]bool, n)
	inT[s] = true
	// minDist[u] = min over v ∈ T of r̃(u,v); T starts as {s}.
	minDist := make([]float64, n)
	for u := 0; u < n; u++ {
		if u != s {
			minDist[u] = sk.Resistance(s, u)
		}
	}
	for i := 0; i < k; i++ {
		best, arg := -1.0, -1
		for u := 0; u < n; u++ {
			if inT[u] || u == s || work.HasEdge(s, u) {
				continue
			}
			if minDist[u] > best {
				best, arg = minDist[u], u
			}
		}
		if arg < 0 {
			break
		}
		inT[arg] = true
		if err := work.AddEdge(s, arg); err != nil {
			return nil, fmt.Errorf("optimize: CenMinRecc commit: %w", err)
		}
		res.Edges = append(res.Edges, graph.Edge{U: s, V: arg}.Canon())
		for u := 0; u < n; u++ {
			if !inT[u] {
				if r := sk.Resistance(arg, u); r < minDist[u] {
					minDist[u] = r
				}
			}
		}
	}
	return res, nil
}

// ChMinRecc is Algorithm 8 (REM): each round sketches the current graph,
// extracts the hull boundary Ŝ, forms candidate edges between boundary
// nodes, scores each candidate with APPROXRECC on the augmented graph, and
// commits the best. Õ(k·l²·m/ε²) with l = |Ŝ|.
func ChMinRecc(ctx context.Context, g *graph.Graph, s, k int, opt FastOptions) (*Result, error) {
	return hullGreedy(ctx, g, s, k, opt, false, "ChMinRecc")
}

// MinRecc is Algorithm 9 (REM): ChMinRecc's hull-pair candidates plus the
// direct edge from s to the farthest hull node (the FarMinRecc move), taking
// whichever scores best each round. Strictly dominates ChMinRecc's candidate
// set, at the cost of one extra APPROXRECC evaluation per round.
func MinRecc(ctx context.Context, g *graph.Graph, s, k int, opt FastOptions) (*Result, error) {
	return hullGreedy(ctx, g, s, k, opt, true, "MinRecc")
}

func hullGreedy(ctx context.Context, g *graph.Graph, s, k int, opt FastOptions, includeDirect bool, name string) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	res := &Result{Algorithm: name, Problem: REM, Source: s}
	for i := 0; i < k; i++ {
		skOpt := opt.sketchOptions(i)
		hopt, err := opt.hullOptions(i)
		if err != nil {
			return nil, fmt.Errorf("optimize: %s round %d: %w", name, i, err)
		}
		sk, err := sketch.NewContext(ctx, work.ToCSR(), skOpt)
		if err != nil {
			return nil, fmt.Errorf("optimize: %s round %d: %w", name, i, err)
		}
		hres, err := hull.Approx(sk.Points(), hopt)
		if err != nil {
			return nil, fmt.Errorf("optimize: %s round %d hull: %w", name, i, err)
		}
		cands := hullPairs(work, hres.Vertices, opt.MaxCandidates, sk)
		if includeDirect {
			// e' = (s, argmax_{u ∈ Ŝ, (s,u) ∉ E} r̃(s,u))  (Algorithm 9, line 9).
			best, arg := -1.0, -1
			for _, u := range hres.Vertices {
				if u == s || work.HasEdge(s, u) {
					continue
				}
				if r := sk.Resistance(s, u); r > best {
					best, arg = r, u
				}
			}
			if arg >= 0 {
				cands = append(cands, graph.Edge{U: s, V: arg}.Canon())
			}
		}
		if len(cands) == 0 {
			break
		}
		bestEcc, bestIdx := math.Inf(1), -1
		for ci, e := range cands {
			// Score c(s) on the augmented graph with a fresh APPROXRECC
			// sketch (Algorithm 7). Mutate-and-undo avoids copying the graph.
			if err := work.AddEdge(e.U, e.V); err != nil {
				return nil, fmt.Errorf("optimize: %s scoring %v: %w", name, e, err)
			}
			c, err := ecc.ApproxRecc(ctx, work, s, skOpt)
			if err2 := work.RemoveEdge(e.U, e.V); err2 != nil {
				return nil, fmt.Errorf("optimize: %s undo %v: %w", name, e, err2)
			}
			if err != nil {
				return nil, fmt.Errorf("optimize: %s APPROXRECC %v: %w", name, e, err)
			}
			if c < bestEcc {
				bestEcc, bestIdx = c, ci
			}
		}
		e := cands[bestIdx]
		if err := work.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("optimize: %s commit %v: %w", name, e, err)
		}
		res.Edges = append(res.Edges, e)
	}
	return res, nil
}

// hullPairs returns the candidate edges {(u,v) : u,v ∈ Ŝ, (u,v) ∉ E}. When
// cap > 0 and more pairs exist, the pairs with the largest sketched distance
// are kept — bypassing the longest residual "resistance circuits" first,
// per the electrical argument of §VII-B.
func hullPairs(g *graph.Graph, boundary []int, maxPairs int, sk *sketch.Sketch) []graph.Edge {
	type scored struct {
		e graph.Edge
		r float64
	}
	var pairs []scored
	for i := 0; i < len(boundary); i++ {
		for j := i + 1; j < len(boundary); j++ {
			u, v := boundary[i], boundary[j]
			if u == v || g.HasEdge(u, v) {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			pairs = append(pairs, scored{e, sk.Resistance(u, v)})
		}
	}
	if maxPairs > 0 && len(pairs) > maxPairs {
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].r > pairs[b].r })
		pairs = pairs[:maxPairs]
	}
	out := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = p.e
	}
	return out
}

package optimize

import (
	"context"
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/sketch"
)

func fastOpts(seed int64) FastOptions {
	return FastOptions{
		Sketch: sketch.Options{Epsilon: 0.3, Dim: 128, Seed: seed},
		Hull:   hull.Options{MaxVertices: 12},
	}
}

// TestFigure6FarVsDirect reproduces §VII-B's Figure 6(a): on the 6-node line
// with source 3 (node 2 here), connecting the two farthest nodes (1,6) beats
// the best direct edge: c = 1.5 vs 2.
func TestFigure6FarVsDirect(t *testing.T) {
	g := graph.Path(6)
	s := 2
	direct := eccAfter(t, g, s, graph.Edge{U: 2, V: 5}) // paper: (3,6) → 2
	if !almostEq(direct, 2, 1e-9) {
		t.Fatalf("direct (3,6): %g, want 2", direct)
	}
	bridge := eccAfter(t, g, s, graph.Edge{U: 0, V: 5}) // (1,6) → 1.5
	if !almostEq(bridge, 1.5, 1e-9) {
		t.Fatalf("bridge (1,6): %g, want 1.5", bridge)
	}
}

// TestFigure6bDirectBeatsHull reproduces Figure 6(b): with source 1 (node 0),
// the direct edge (1,6) (c = 1.5) beats the hull-pair edge (4,6)
// (c = 11/3 ≈ 3.67, printed as 3.6 in the paper).
func TestFigure6bDirectBeatsHull(t *testing.T) {
	g := graph.Path(6)
	s := 0
	direct := eccAfter(t, g, s, graph.Edge{U: 0, V: 5})
	if !almostEq(direct, 1.5, 1e-9) {
		t.Fatalf("direct (1,6): %g, want 1.5", direct)
	}
	pair := eccAfter(t, g, s, graph.Edge{U: 3, V: 5})
	if !almostEq(pair, 11.0/3, 1e-9) {
		t.Fatalf("hull pair (4,6): %g, want 11/3", pair)
	}
	if direct >= pair {
		t.Fatal("figure 6(b) ordering violated")
	}
}

func TestFarMinReccOnPath(t *testing.T) {
	// From the left end of a path, the farthest node is the right end; the
	// first FarMinRecc edge must be (0, n−1) (or extremely close to it).
	g := graph.Path(12)
	plan, err := FarMinRecc(context.Background(), g, 0, 1, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 1 {
		t.Fatalf("edges %v", plan.Edges)
	}
	e := plan.Edges[0]
	if e.U != 0 || e.V < 9 {
		t.Fatalf("FarMinRecc picked %v, want ≈(0,11)", e)
	}
	if plan.Algorithm != "FarMinRecc" || plan.Problem != REMD {
		t.Fatalf("metadata %+v", plan)
	}
}

func TestFarMinReccReducesEcc(t *testing.T) {
	g := graph.BarabasiAlbert(80, 2, 6)
	s := 50
	plan, err := FarMinRecc(context.Background(), g, s, 5, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	traj, err := ExactTrajectory(g, s, plan.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if traj[5] >= traj[0] {
		t.Fatalf("no improvement: %g → %g", traj[0], traj[5])
	}
	// All edges must touch the source (REMD).
	for _, e := range plan.Edges {
		if e.U != s && e.V != s {
			t.Fatalf("REMD edge %v does not touch source %d", e, s)
		}
	}
}

func TestCenMinReccBasics(t *testing.T) {
	g := graph.BarabasiAlbert(80, 2, 7)
	s := 10
	plan, err := CenMinRecc(context.Background(), g, s, 6, fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 6 {
		t.Fatalf("want 6 edges, got %d", len(plan.Edges))
	}
	seen := map[graph.Edge]bool{}
	for _, e := range plan.Edges {
		if e.U != s && e.V != s {
			t.Fatalf("REMD edge %v off-source", e)
		}
		if seen[e] {
			t.Fatalf("duplicate pick %v", e)
		}
		seen[e] = true
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("pick %v already in graph", e)
		}
	}
	traj, err := ExactTrajectory(g, s, plan.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if traj[len(traj)-1] >= traj[0] {
		t.Fatal("CenMinRecc made no progress")
	}
}

func TestChMinReccAndMinRecc(t *testing.T) {
	g := graph.Lollipop(6, 6) // pronounced periphery: path tip far from clique
	s := 2                    // inside the clique
	for _, algo := range []struct {
		name string
		run  func(context.Context, *graph.Graph, int, int, FastOptions) (*Result, error)
	}{
		{"ChMinRecc", ChMinRecc},
		{"MinRecc", MinRecc},
	} {
		plan, err := algo.run(context.Background(), g, s, 3, fastOpts(5))
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if plan.Algorithm != algo.name || plan.Problem != REM {
			t.Fatalf("%s metadata %+v", algo.name, plan)
		}
		if len(plan.Edges) != 3 {
			t.Fatalf("%s returned %d edges", algo.name, len(plan.Edges))
		}
		traj, err := ExactTrajectory(g, s, plan.Edges)
		if err != nil {
			t.Fatal(err)
		}
		if traj[3] >= traj[0]*0.95 {
			t.Fatalf("%s: weak improvement %g → %g", algo.name, traj[0], traj[3])
		}
	}
}

// MinRecc's candidate set is a superset of ChMinRecc's, so with the same
// sketch seeds its first pick can never be worse (round 1 compares the same
// scored values plus one extra).
func TestMinReccAtLeastChMinReccK1(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.BarabasiAlbert(60, 2, seed+10)
		s := 30
		opt := fastOpts(seed)
		ch, err := ChMinRecc(context.Background(), g, s, 1, opt)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := MinRecc(context.Background(), g, s, 1, opt)
		if err != nil {
			t.Fatal(err)
		}
		cCh := eccAfter(t, g, s, ch.Edges...)
		cMr := eccAfter(t, g, s, mr.Edges...)
		// Allow sketch noise slack: MinRecc scored candidates with the same
		// seeds, so a large regression would indicate a logic bug.
		if cMr > cCh*1.10 {
			t.Fatalf("seed %d: MinRecc %g much worse than ChMinRecc %g", seed, cMr, cCh)
		}
	}
}

func TestFastOptionsCandidateCap(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, 15)
	opt := fastOpts(6)
	opt.MaxCandidates = 3
	plan, err := MinRecc(context.Background(), g, 5, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 2 {
		t.Fatalf("edges %v", plan.Edges)
	}
}

func TestFastValidation(t *testing.T) {
	g := graph.Path(5)
	bad := FastOptions{Sketch: sketch.Options{Epsilon: 0}}
	if _, err := FarMinRecc(context.Background(), g, 0, 1, bad); err == nil {
		t.Fatal("invalid epsilon must fail")
	}
	if _, err := CenMinRecc(context.Background(), g, 99, 1, fastOpts(1)); err == nil {
		t.Fatal("bad source must fail")
	}
}

func TestFarMinReccExhaustsCandidates(t *testing.T) {
	g := graph.Complete(5)
	if err := g.RemoveEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	plan, err := FarMinRecc(context.Background(), g, 0, 3, fastOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 1 {
		t.Fatalf("should stop after exhausting Q1: %v", plan.Edges)
	}
}

package optimize

import (
	"math"
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// eccAfter computes the exact c(s) of g with extra edges added, by
// recomputation — the oracle the fast paths are tested against.
func eccAfter(t *testing.T, g *graph.Graph, s int, edges ...graph.Edge) float64 {
	t.Helper()
	h := g.Clone()
	for _, e := range edges {
		if err := h.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	lp, err := linalg.Pseudoinverse(h)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := linalg.EccentricityFromPinv(lp, s)
	return c
}

// TestFigure3 reproduces §VI-A's motivating example: on the 6-node line
// graph with source node 3 (paper numbering; node 2 here), directly adding
// the best incident edge gives c = 2, while the free edge (1,6) gives 1.5.
func TestFigure3(t *testing.T) {
	g := graph.Path(6)
	s := 2 // paper's node 3
	// Paper: adding (3,5) → c(3) = 2.
	if c := eccAfter(t, g, s, graph.Edge{U: 2, V: 4}); !almostEq(c, 2, 1e-9) {
		t.Fatalf("c after (3,5): %g, want 2", c)
	}
	// Paper: adding (1,6) → c(3) = 1.5.
	if c := eccAfter(t, g, s, graph.Edge{U: 0, V: 5}); !almostEq(c, 1.5, 1e-9) {
		t.Fatalf("c after (1,6): %g, want 1.5", c)
	}
	// And (3,5) is indeed the best REMD single edge.
	plan, err := Simple(g, REMD, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := eccAfter(t, g, s, plan.Edges...); !almostEq(c, 2, 1e-9) {
		t.Fatalf("Simple REMD pick %v gives %g, want 2", plan.Edges, c)
	}
	// REM greedy must find an edge at least as good as (1,6).
	planREM, err := Simple(g, REM, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := eccAfter(t, g, s, planREM.Edges...); c > 1.5+1e-9 {
		t.Fatalf("Simple REM pick %v gives %g, want ≤ 1.5", planREM.Edges, c)
	}
}

// TestFigure4NonSupermodularREMD reproduces the §VI-B counterexample on the
// 6-node line graph with source 1: A = {(1,6)}, B = {(1,3),(1,6)},
// e = (3,5); the marginal gain of e under B exceeds that under A, violating
// supermodularity.
func TestFigure4NonSupermodularREMD(t *testing.T) {
	g := graph.Path(6)
	s := 0                        // paper's node 1
	eA := graph.Edge{U: 0, V: 5}  // (1,6)
	eB1 := graph.Edge{U: 0, V: 2} // (1,3)
	e := graph.Edge{U: 2, V: 4}   // (3,5)

	cA := eccAfter(t, g, s, eA)
	cAe := eccAfter(t, g, s, eA, e)
	cB := eccAfter(t, g, s, eA, eB1)
	cBe := eccAfter(t, g, s, eA, eB1, e)

	if !almostEq(cA, 1.5, 1e-3) || !almostEq(cAe, 1.5, 1e-3) {
		t.Fatalf("c_A=%g c_A'=%g, want 1.5, 1.5", cA, cAe)
	}
	if !almostEq(cB, 1.14, 5e-3) || !almostEq(cBe, 1.03, 5e-3) {
		t.Fatalf("c_B=%g c_B'=%g, want ≈1.14, ≈1.03", cB, cBe)
	}
	gainA := cA - cAe
	gainB := cB - cBe
	if gainA >= gainB {
		t.Fatalf("supermodularity not violated: gainA=%g gainB=%g", gainA, gainB)
	}
}

// TestNonSupermodularREMSearch constructively demonstrates §VI-B's claim for
// Problem 2 (Figure 5's exact topology is only shown graphically in the
// paper): on the 6-node line graph there exist sets A ⊂ B and an edge e with
// marginal gain under B strictly larger than under A.
func TestNonSupermodularREMSearch(t *testing.T) {
	g := graph.Path(6)
	s := 0
	cand := g.ComplementCandidates()
	lp0, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := linalg.EccentricityFromPinv(lp0, s)
	_ = base
	for i, a := range cand {
		cA := eccAfter(t, g, s, a)
		for j, b := range cand {
			if j == i {
				continue
			}
			cB := eccAfter(t, g, s, a, b)
			for k, e := range cand {
				if k == i || k == j {
					continue
				}
				cAe := eccAfter(t, g, s, a, e)
				cBe := eccAfter(t, g, s, a, b, e)
				if (cA-cAe)+1e-9 < (cB - cBe) {
					return // witness found: non-supermodular
				}
			}
		}
	}
	t.Fatal("no supermodularity violation found for REM on the 6-path")
}

// Monotonicity: f_s is non-increasing along any addition sequence (Rayleigh).
func TestMonotoneNonIncreasing(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 3)
	s := 7
	plan, err := Simple(g, REM, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := ExactTrajectory(g, s, plan.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 6 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] > traj[i-1]+1e-10 {
			t.Fatalf("c(s) increased at step %d: %g → %g", i, traj[i-1], traj[i])
		}
	}
}

func TestSimpleGreedyMatchesBruteForceK1(t *testing.T) {
	// For k=1 greedy IS optimal; cross-check against Exhaustive on both
	// problems.
	g := graph.Lollipop(5, 4)
	s := 1
	for _, p := range []Problem{REMD, REM} {
		plan, err := Simple(g, p, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Exhaustive(g, p, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := eccAfter(t, g, s, plan.Edges...)
		if !almostEq(got, opt, 1e-9) {
			t.Fatalf("%v: greedy %g vs optimal %g", p, got, opt)
		}
	}
}

func TestExhaustiveBeatsGreedyOrTies(t *testing.T) {
	g := graph.Path(7)
	s := 0
	for k := 0; k <= 3; k++ {
		for _, p := range []Problem{REMD, REM} {
			plan, err := Simple(g, p, s, k)
			if err != nil {
				t.Fatal(err)
			}
			optPlan, opt, err := Exhaustive(g, p, s, k)
			if err != nil {
				t.Fatal(err)
			}
			greedy := eccAfter(t, g, s, plan.Edges...)
			if opt > greedy+1e-9 {
				t.Fatalf("%v k=%d: OPT %g worse than greedy %g", p, k, opt, greedy)
			}
			if len(optPlan.Edges) != min(k, len(optPlan.Edges)) {
				t.Fatalf("opt plan size")
			}
			// Exhaustive's reported value must match replay.
			if got := eccAfter(t, g, s, optPlan.Edges...); !almostEq(got, opt, 1e-9) {
				t.Fatalf("%v k=%d: reported %g, replay %g", p, k, opt, got)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := Simple(g, REMD, -1, 1); err == nil {
		t.Fatal("negative source")
	}
	if _, err := Simple(g, REMD, 0, -1); err == nil {
		t.Fatal("negative k")
	}
	disc := graph.New(4)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Simple(disc, REMD, 0, 1); err == nil {
		t.Fatal("disconnected graph")
	}
}

func TestCandidateExhaustion(t *testing.T) {
	// Nearly complete graph: fewer candidates than k; algorithms stop early.
	g := graph.Complete(5)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	plan, err := Simple(g, REM, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 1 {
		t.Fatalf("expected 1 pick, got %v", plan.Edges)
	}
	if plan.Edges[0] != (graph.Edge{U: 0, V: 1}) {
		t.Fatalf("pick %v", plan.Edges[0])
	}
}

func TestResultApply(t *testing.T) {
	g := graph.Path(5)
	plan, err := Simple(g, REMD, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := plan.Apply(g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M()+2 {
		t.Fatalf("apply added %d edges", h.M()-g.M())
	}
	if g.M() != 4 {
		t.Fatal("original mutated")
	}
	h1, err := plan.Apply(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h1.M() != g.M()+1 {
		t.Fatal("prefix apply wrong")
	}
	// Applying onto a graph that already has the edge fails.
	if _, err := plan.Apply(h, -1); err == nil {
		t.Fatal("duplicate apply should fail")
	}
}

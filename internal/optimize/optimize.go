// Package optimize implements §VI–VII of the paper: minimizing the
// resistance eccentricity c(s) of a source node s by adding k edges.
//
// Two problems are studied:
//
//   - REMD (Problem 1): candidates Q1 = {(s,u) : (s,u) ∉ E} — new edges must
//     touch the source.
//   - REM (Problem 2): candidates Q2 = (V×V)\E — new edges may go anywhere.
//
// The objective f_s(G(P)) = c(s) in the augmented graph is monotone
// non-increasing (Rayleigh) but not supermodular (§VI-B), so greedy carries
// no (1−1/e) guarantee; the paper instead proposes heuristics:
//
//   - Simple (Algorithm 4): exact greedy, one candidate sweep per round.
//     Implemented with Sherman–Morrison pseudoinverse updates so each
//     candidate is scored in O(n) instead of O(n³) (DESIGN.md ablation 4).
//   - FarMinRecc (Algorithm 5) and CenMinRecc (Algorithm 6) for REMD.
//   - ChMinRecc (Algorithm 8) and MinRecc (Algorithm 9) for REM.
//   - Exhaustive OPT-REMD/OPT-REM and the DE-/PK-/PATH-/RAND- baselines of
//     §VIII-C live in exhaustive.go and baselines.go.
//
// All algorithms leave the caller's graph unmodified and report the chosen
// edges in pick order, so c(s) trajectories can be replayed.
package optimize

import (
	"fmt"
	"math"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

// Problem selects the candidate edge set.
type Problem int

const (
	// REMD is Problem 1: edges incident to the source only (candidate Q1).
	REMD Problem = iota
	// REM is Problem 2: arbitrary missing edges (candidate Q2).
	REM
)

// String implements fmt.Stringer.
func (p Problem) String() string {
	switch p {
	case REMD:
		return "REMD"
	case REM:
		return "REM"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Result reports an edge-addition schedule.
type Result struct {
	// Algorithm names the producing algorithm (e.g. "FarMinRecc").
	Algorithm string
	// Problem is the candidate-set regime the schedule was produced under.
	Problem Problem
	// Source is the target node s.
	Source int
	// Edges lists the k chosen edges in pick order. May be shorter than the
	// requested k if the candidate set was exhausted.
	Edges []graph.Edge
}

// Apply returns a copy of g augmented with the first k edges of the result
// (k = len(r.Edges) if k < 0 or too large).
func (r *Result) Apply(g *graph.Graph, k int) (*graph.Graph, error) {
	if k < 0 || k > len(r.Edges) {
		k = len(r.Edges)
	}
	out := g.Clone()
	for _, e := range r.Edges[:k] {
		if err := out.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("optimize: applying %v: %w", e, err)
		}
	}
	return out, nil
}

func validate(g *graph.Graph, s, k int) error {
	if s < 0 || s >= g.N() {
		return fmt.Errorf("optimize: source %d out of range (n=%d)", s, g.N())
	}
	if k < 0 {
		return fmt.Errorf("optimize: negative budget k=%d", k)
	}
	if !g.Connected() {
		return fmt.Errorf("optimize: graph must be connected")
	}
	return nil
}

// eccAfterEdge returns c(s) in G ∪ {(u,v)} in O(n), given the pseudoinverse
// lp of G's Laplacian, via the Sherman–Morrison identity
//
//	r'(s,j) = r(s,j) − ((L†b)_s − (L†b)_j)² / (1 + r(u,v)),  b = e_u − e_v.
func eccAfterEdge(lp *linalg.Dense, s, u, v int) float64 {
	n := lp.N
	lss := lp.At(s, s)
	rowS := lp.Row(s)
	rowU := lp.Row(u)
	rowV := lp.Row(v)
	ws := rowU[s] - rowV[s]
	denom := 1 + (rowU[u] - rowV[u]) - (rowU[v] - rowV[v]) // 1 + r(u,v)
	best := 0.0
	for j := 0; j < n; j++ {
		if j == s {
			continue
		}
		r := lss + lp.At(j, j) - 2*rowS[j]
		wj := rowU[j] - rowV[j]
		diff := ws - wj
		r -= diff * diff / denom
		if r > best {
			best = r
		}
	}
	return best
}

// Simple is Algorithm 4 (SIM-REMD / SIM-REM): the exact greedy. Each round
// scores every remaining candidate edge by the exact post-insertion c(s)
// (O(n) per candidate via Sherman–Morrison) and commits the best one
// (O(n²) pseudoinverse update). Total O(k·|Q|·n + k·n²) after one O(n³)
// factorization — versus the naive O(k·|Q|·n³) quoted in §VI-A.
func Simple(g *graph.Graph, p Problem, s, k int) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	lp, err := linalg.Pseudoinverse(work)
	if err != nil {
		return nil, fmt.Errorf("optimize: Simple: %w", err)
	}
	res := &Result{Algorithm: "Simple", Problem: p, Source: s}
	for i := 0; i < k; i++ {
		bestEcc := math.Inf(1)
		var bestEdge graph.Edge
		found := false
		forEachCandidate(work, p, s, func(u, v int) {
			c := eccAfterEdge(lp, s, u, v)
			if c < bestEcc {
				bestEcc = c
				bestEdge = graph.Edge{U: u, V: v}
				found = true
			}
		})
		if !found {
			break // candidate set exhausted
		}
		if err := work.AddEdge(bestEdge.U, bestEdge.V); err != nil {
			return nil, fmt.Errorf("optimize: Simple commit: %w", err)
		}
		linalg.AddEdgePinv(lp, bestEdge.U, bestEdge.V)
		res.Edges = append(res.Edges, bestEdge)
	}
	return res, nil
}

// forEachCandidate enumerates the current candidate set of the problem:
// Q1 = {(s,u) ∉ E} for REMD, Q2 = (V×V)\E for REM, against the *current*
// graph (previously committed edges are excluded automatically).
func forEachCandidate(g *graph.Graph, p Problem, s int, fn func(u, v int)) {
	n := g.N()
	switch p {
	case REMD:
		for u := 0; u < n; u++ {
			if u != s && !g.HasEdge(s, u) {
				e := graph.Edge{U: s, V: u}.Canon()
				fn(e.U, e.V)
			}
		}
	case REM:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) {
					fn(u, v)
				}
			}
		}
	}
}

// ExactTrajectory replays an edge schedule and returns the exact c(s) after
// each prefix: out[0] is the original graph's c(s), out[i] the value after
// the first i edges. O(n³ + k·n²).
func ExactTrajectory(g *graph.Graph, s int, edges []graph.Edge) ([]float64, error) {
	if err := validate(g, s, 0); err != nil {
		return nil, err
	}
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		return nil, fmt.Errorf("optimize: trajectory: %w", err)
	}
	out := make([]float64, 0, len(edges)+1)
	c, _ := linalg.EccentricityFromPinv(lp, s)
	out = append(out, c)
	for _, e := range edges {
		linalg.AddEdgePinv(lp, e.U, e.V)
		c, _ = linalg.EccentricityFromPinv(lp, s)
		out = append(out, c)
	}
	return out, nil
}

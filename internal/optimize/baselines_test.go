package optimize

import (
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/pagerank"
)

func TestDegreeBaselineREMD(t *testing.T) {
	// Lollipop: the path tip has the lowest degree; DE-REMD from a clique
	// node should wire it first.
	g := graph.Lollipop(5, 4)
	s := 0
	plan, err := Degree(g, REMD, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 2 || plan.Algorithm != "DE-REMD" {
		t.Fatalf("plan %+v", plan)
	}
	tip := 8 // last path node, degree 1
	first := plan.Edges[0]
	if first != (graph.Edge{U: 0, V: 8}) {
		t.Fatalf("first DE-REMD pick %v, want (0,%d)", first, tip)
	}
}

func TestDegreeBaselineREM(t *testing.T) {
	g := graph.Lollipop(5, 4)
	plan, err := Degree(g, REM, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 3 || plan.Algorithm != "DE-REM" {
		t.Fatalf("plan %+v", plan)
	}
	// Picks must be valid (new, distinct) when replayed.
	if _, err := plan.Apply(g, -1); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankBaseline(t *testing.T) {
	g := graph.Lollipop(6, 5)
	for _, p := range []Problem{REMD, REM} {
		plan, err := PageRank(g, p, 1, 2, pagerank.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Edges) != 2 {
			t.Fatalf("%v plan %+v", p, plan)
		}
		if _, err := plan.Apply(g, -1); err != nil {
			t.Fatal(err)
		}
		if p == REMD {
			for _, e := range plan.Edges {
				if e.U != 1 && e.V != 1 {
					t.Fatalf("REMD edge %v off-source", e)
				}
			}
		}
	}
}

func TestPathBaselineREMD(t *testing.T) {
	g := graph.Path(10)
	s := 0
	plan, err := Path(g, REMD, s, 1, PathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Hop-farthest from 0 is node 9.
	if plan.Edges[0] != (graph.Edge{U: 0, V: 9}) {
		t.Fatalf("PATH-REMD pick %v", plan.Edges[0])
	}
}

func TestPathBaselineREMExact(t *testing.T) {
	g := graph.Path(10)
	plan, err := Path(g, REM, 3, 1, PathOptions{ExactDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	// Diameter pair of a path is (0,9).
	if plan.Edges[0] != (graph.Edge{U: 0, V: 9}) {
		t.Fatalf("PATH-REM pick %v", plan.Edges[0])
	}
}

func TestPathBaselineDoubleSweep(t *testing.T) {
	g := graph.BarabasiAlbert(120, 2, 4)
	plan, err := Path(g, REM, 0, 3, PathOptions{ExactThreshold: 10}) // force heuristic
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) == 0 {
		t.Fatal("no picks")
	}
	if _, err := plan.Apply(g, -1); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBaseline(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 5)
	for _, p := range []Problem{REMD, REM} {
		plan, err := Random(g, p, 3, 4, 77)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Edges) != 4 {
			t.Fatalf("%v edges %v", p, plan.Edges)
		}
		if _, err := plan.Apply(g, -1); err != nil {
			t.Fatal(err)
		}
	}
	// Determinism in the seed.
	a, _ := Random(g, REM, 3, 4, 9)
	b, _ := Random(g, REM, 3, 4, 9)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("Random not deterministic per seed")
		}
	}
}

func TestRandomBaselineNearComplete(t *testing.T) {
	g := graph.Complete(6)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	plan, err := Random(g, REM, 0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 2 {
		t.Fatalf("should add exactly the 2 missing edges, got %v", plan.Edges)
	}
}

// All baselines must never *increase* c(s) (monotonicity of edge addition).
func TestBaselinesMonotone(t *testing.T) {
	g := graph.BarabasiAlbert(50, 2, 8)
	s := 20
	plans := []*Result{}
	for _, p := range []Problem{REMD, REM} {
		if pl, err := Degree(g, p, s, 3); err == nil {
			plans = append(plans, pl)
		} else {
			t.Fatal(err)
		}
		if pl, err := PageRank(g, p, s, 3, pagerank.Options{}); err == nil {
			plans = append(plans, pl)
		} else {
			t.Fatal(err)
		}
		if pl, err := Path(g, p, s, 3, PathOptions{}); err == nil {
			plans = append(plans, pl)
		} else {
			t.Fatal(err)
		}
	}
	for _, pl := range plans {
		traj, err := ExactTrajectory(g, s, pl.Edges)
		if err != nil {
			t.Fatalf("%s: %v", pl.Algorithm, err)
		}
		for i := 1; i < len(traj); i++ {
			if traj[i] > traj[i-1]+1e-10 {
				t.Fatalf("%s increased c(s) at step %d", pl.Algorithm, i)
			}
		}
	}
}

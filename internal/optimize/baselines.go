package optimize

import (
	"fmt"
	"math"
	"math/rand"

	"resistecc/internal/graph"
	"resistecc/internal/pagerank"
)

// This file implements the baseline edge-addition strategies of §VIII-C-1:
// DE-{REMD,REM} (lowest degree), PK-{REMD,REM} (lowest PageRank),
// PATH-{REMD,REM} (longest shortest-path distance), plus a RAND- pair used
// as an additional sanity baseline. Each repeats its local rule k times on
// the updated graph.

// Degree is DE-REMD / DE-REM: connect the lowest-degree node(s). For REMD
// the edge is (s, argmin degree); for REM it joins the two lowest-degree
// non-adjacent nodes.
func Degree(g *graph.Graph, p Problem, s, k int) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	name := "DE-REMD"
	if p == REM {
		name = "DE-REM"
	}
	res := &Result{Algorithm: name, Problem: p, Source: s}
	for i := 0; i < k; i++ {
		e, ok := pickByScore(work, p, s, func(u int) float64 { return float64(work.Degree(u)) })
		if !ok {
			break
		}
		if err := work.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("optimize: %s: %w", name, err)
		}
		res.Edges = append(res.Edges, e)
	}
	return res, nil
}

// PageRank is PK-REMD / PK-REM: connect the lowest-PageRank node(s),
// recomputing PageRank on the updated graph each round.
func PageRank(g *graph.Graph, p Problem, s, k int, opt pagerank.Options) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	name := "PK-REMD"
	if p == REM {
		name = "PK-REM"
	}
	res := &Result{Algorithm: name, Problem: p, Source: s}
	for i := 0; i < k; i++ {
		pr := pagerank.Compute(work, opt)
		e, ok := pickByScore(work, p, s, func(u int) float64 { return pr[u] })
		if !ok {
			break
		}
		if err := work.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("optimize: %s: %w", name, err)
		}
		res.Edges = append(res.Edges, e)
	}
	return res, nil
}

// pickByScore returns the admissible edge minimizing the node score:
// REMD: (s, argmin score(u)) over non-neighbours of s;
// REM: the pair (u, v) with the two smallest scores among pairs not in E
// (ties broken by scanning order; if the two global minima are adjacent,
// the next-best admissible combination is found by bounded search).
func pickByScore(g *graph.Graph, p Problem, s int, score func(int) float64) (graph.Edge, bool) {
	n := g.N()
	if p == REMD {
		best, arg := math.Inf(1), -1
		for u := 0; u < n; u++ {
			if u == s || g.HasEdge(s, u) {
				continue
			}
			if sc := score(u); sc < best {
				best, arg = sc, u
			}
		}
		if arg < 0 {
			return graph.Edge{}, false
		}
		return graph.Edge{U: s, V: arg}.Canon(), true
	}
	// REM: order nodes by score and take the first admissible pair among the
	// lowest-scored prefix (grown geometrically until a pair is found).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Partial selection sort over the prefix we actually need.
	limit := 8
	sorted := 0
	ensureSorted := func(upto int) {
		for ; sorted < upto && sorted < n; sorted++ {
			min := sorted
			for j := sorted + 1; j < n; j++ {
				if score(order[j]) < score(order[min]) {
					min = j
				}
			}
			order[sorted], order[min] = order[min], order[sorted]
		}
	}
	for {
		if limit > n {
			limit = n
		}
		ensureSorted(limit)
		for i := 0; i < sorted; i++ {
			for j := i + 1; j < sorted; j++ {
				u, v := order[i], order[j]
				if !g.HasEdge(u, v) {
					return graph.Edge{U: u, V: v}.Canon(), true
				}
			}
		}
		if limit == n {
			return graph.Edge{}, false
		}
		limit *= 2
	}
}

// PathOptions configures the PATH baselines.
type PathOptions struct {
	// ExactDiameter forces exact all-pairs BFS when searching the longest
	// shortest path for PATH-REM. Below ExactThreshold nodes exact search is
	// used regardless; above it a double-sweep heuristic approximates the
	// diameter pair (standard practice on large graphs).
	ExactDiameter bool
	// ExactThreshold defaults to 2048.
	ExactThreshold int
}

func (o PathOptions) exact(n int) bool {
	t := o.ExactThreshold
	if t <= 0 {
		t = 2048
	}
	return o.ExactDiameter || n <= t
}

// Path is PATH-REMD / PATH-REM: connect the endpoints of the longest
// shortest path. For REMD one endpoint is pinned to s (so the rule is
// "connect s to the hop-farthest node"); for REM the rule picks a
// (approximate) diameter pair of the updated graph.
func Path(g *graph.Graph, p Problem, s, k int, opt PathOptions) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	name := "PATH-REMD"
	if p == REM {
		name = "PATH-REM"
	}
	res := &Result{Algorithm: name, Problem: p, Source: s}
	for i := 0; i < k; i++ {
		var e graph.Edge
		ok := false
		if p == REMD {
			// Farthest-by-hops node not yet adjacent to s.
			dist := work.BFS(s)
			best := -1
			for u, d := range dist {
				if u == s || work.HasEdge(s, u) {
					continue
				}
				if d > best {
					best = d
					e = graph.Edge{U: s, V: u}.Canon()
					ok = true
				}
			}
		} else {
			e, ok = longestPathPair(work, opt)
		}
		if !ok {
			break
		}
		if err := work.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("optimize: %s: %w", name, err)
		}
		res.Edges = append(res.Edges, e)
	}
	return res, nil
}

// longestPathPair finds a non-adjacent node pair of maximum hop distance:
// exactly (all-pairs BFS) on small graphs, by double sweep otherwise.
func longestPathPair(g *graph.Graph, opt PathOptions) (graph.Edge, bool) {
	n := g.N()
	if opt.exact(n) {
		best, ok := graph.Edge{}, false
		bestD := 0
		for u := 0; u < n; u++ {
			dist := g.BFS(u)
			for v := u + 1; v < n; v++ {
				if dist[v] > bestD && !g.HasEdge(u, v) {
					bestD, best, ok = dist[v], graph.Edge{U: u, V: v}, true
				}
			}
		}
		return best, ok
	}
	// Double sweep: BFS from an arbitrary node to its farthest a, then from
	// a to its farthest b; (a,b) approximates the diameter pair.
	_, a := g.Eccentricity(0)
	distA := g.BFS(a)
	bestD, b := -1, -1
	for v, d := range distA {
		if v != a && d > bestD && !g.HasEdge(a, v) {
			bestD, b = d, v
		}
	}
	if b < 0 {
		return graph.Edge{}, false
	}
	return graph.Edge{U: a, V: b}.Canon(), true
}

// Random adds k uniformly random admissible edges — the weakest baseline.
func Random(g *graph.Graph, p Problem, s, k int, seed int64) (*Result, error) {
	if err := validate(g, s, k); err != nil {
		return nil, err
	}
	work := g.Clone()
	name := "RAND-REMD"
	if p == REM {
		name = "RAND-REM"
	}
	res := &Result{Algorithm: name, Problem: p, Source: s}
	rng := rand.New(rand.NewSource(seed))
	n := work.N()
	for i := 0; i < k; i++ {
		found := false
		for attempt := 0; attempt < 50*n; attempt++ {
			var u, v int
			if p == REMD {
				u, v = s, rng.Intn(n)
			} else {
				u, v = rng.Intn(n), rng.Intn(n)
			}
			if u == v || work.HasEdge(u, v) {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canon()
			if err := work.AddEdge(e.U, e.V); err != nil {
				return nil, fmt.Errorf("optimize: %s: %w", name, err)
			}
			res.Edges = append(res.Edges, e)
			found = true
			break
		}
		if !found {
			// Fall back to deterministic scan; graph may be nearly complete.
			e, ok := pickByScore(work, p, s, func(int) float64 { return 0 })
			if !ok {
				break
			}
			if err := work.AddEdge(e.U, e.V); err != nil {
				return nil, fmt.Errorf("optimize: %s: %w", name, err)
			}
			res.Edges = append(res.Edges, e)
		}
	}
	return res, nil
}

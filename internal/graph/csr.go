package graph

// CSR is an immutable compressed-sparse-row snapshot of a graph, used by the
// numerical kernels (Laplacian matvec, solvers, sketching) where pointer-free
// sequential memory access matters. Row u's neighbours are
// Col[Ptr[u]:Ptr[u+1]].
type CSR struct {
	Ptr []int32 // length n+1
	Col []int32 // length 2m
	N   int
	M   int
}

// ToCSR snapshots the graph's current adjacency structure.
func (g *Graph) ToCSR() *CSR {
	n := len(g.adj)
	c := &CSR{
		Ptr: make([]int32, n+1),
		Col: make([]int32, 0, 2*g.m),
		N:   n,
		M:   g.m,
	}
	for u := 0; u < n; u++ {
		c.Col = append(c.Col, g.adj[u]...)
		c.Ptr[u+1] = int32(len(c.Col))
	}
	return c
}

// Degree returns the degree of node u in the snapshot.
func (c *CSR) Degree(u int) int { return int(c.Ptr[u+1] - c.Ptr[u]) }

// Neighbors returns the neighbour slice of u (shared storage; do not modify).
func (c *CSR) Neighbors(u int) []int32 { return c.Col[c.Ptr[u]:c.Ptr[u+1]] }

// LapMul computes y = L·x where L = D − A is the graph Laplacian.
// len(x) and len(y) must equal N; y is fully overwritten.
func (c *CSR) LapMul(x, y []float64) {
	for u := 0; u < c.N; u++ {
		s := 0.0
		row := c.Col[c.Ptr[u]:c.Ptr[u+1]]
		for _, v := range row {
			s += x[v]
		}
		y[u] = float64(len(row))*x[u] - s
	}
}

// AdjMul computes y = A·x where A is the adjacency matrix.
func (c *CSR) AdjMul(x, y []float64) {
	for u := 0; u < c.N; u++ {
		s := 0.0
		for _, v := range c.Col[c.Ptr[u]:c.Ptr[u+1]] {
			s += x[v]
		}
		y[u] = s
	}
}

// IncidenceTMul computes y = Bᵀ·q, where B ∈ R^{m×n} is the signed
// edge–node incidence matrix (§III-B) with the arbitrary edge orientation
// u→v for u < v, and q ∈ R^m is indexed in the canonical edge order produced
// by EdgeOrder. y must have length N and is fully overwritten.
//
// This is the kernel of APPROXER: a random projection row q is pushed through
// Bᵀ before the Laplacian solve, avoiding materializing B.
func (c *CSR) IncidenceTMul(q, y []float64) {
	for i := range y {
		y[i] = 0
	}
	e := 0
	for u := 0; u < c.N; u++ {
		for _, v := range c.Col[c.Ptr[u]:c.Ptr[u+1]] {
			if int32(u) < v {
				// b_e = e_u − e_v
				y[u] += q[e]
				y[v] -= q[e]
				e++
			}
		}
	}
}

// EdgeOrder returns the canonical (u < v, sorted by u then v) edge list that
// IncidenceTMul's q vector is indexed against.
func (c *CSR) EdgeOrder() []Edge {
	edges := make([]Edge, 0, c.M)
	for u := 0; u < c.N; u++ {
		for _, v := range c.Col[c.Ptr[u]:c.Ptr[u+1]] {
			if int32(u) < v {
				edges = append(edges, Edge{u, int(v)})
			}
		}
	}
	return edges
}

package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList throws arbitrary byte streams at the edge-list parser and
// checks its contract: it either errors or returns a simple graph whose
// labels are consistent — never a panic, never a malformed graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n% also comment\n\n10 20 0.5 extra\n20 30\n")
	f.Add("5 5\n0 1\n1 0\n0 1\n") // self-loop + duplicate + reversed duplicate
	f.Add("0 1\r\n1 2\r\n")       // CRLF
	f.Add("9223372036854775807 0\n-3 7\n")
	f.Add("1\n")                      // too few fields
	f.Add("a b\n")                    // non-numeric
	f.Add("0 99999999999999999999\n") // overflows int64
	f.Add(strings.Repeat("#", 4096) + "\n0 1\n")

	f.Fuzz(func(t *testing.T, data string) {
		g, labels, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		if len(labels) != g.N() {
			t.Fatalf("labels length %d vs %d nodes", len(labels), g.N())
		}
		seen := make(map[int64]bool, len(labels))
		for _, l := range labels {
			if seen[l] {
				t.Fatalf("duplicate label %d", l)
			}
			seen[l] = true
		}
		for v := 0; v < g.N(); v++ {
			for _, nb := range g.Neighbors(v) {
				w := int(nb)
				if w == v {
					t.Fatalf("self-loop at node %d survived parsing", v)
				}
				if w < 0 || w >= g.N() {
					t.Fatalf("edge (%d,%d) out of range n=%d", v, w, g.N())
				}
			}
		}
		// A parsed graph must round-trip: write, re-read, same edge set size.
		// (Isolated nodes — labels seen only on dropped lines — are not
		// written, so only M is preserved.)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-reading written graph: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed edge count: %d vs %d", g2.M(), g.M())
		}
	})
}

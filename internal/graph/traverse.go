package graph

// BFS runs a breadth-first search from src and returns the hop distance to
// every node. Unreachable nodes get distance -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, len(g.adj))
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the classical (shortest-path) eccentricity of src:
// the maximum hop distance from src to any reachable node, along with the
// index of a farthest node. Used by the PATH-* baselines of §VIII-C.
func (g *Graph) Eccentricity(src int) (ecc, farthest int) {
	dist := g.BFS(src)
	ecc, farthest = 0, src
	for v, d := range dist {
		if d > ecc {
			ecc, farthest = d, v
		}
	}
	return ecc, farthest
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components as slices of node indices.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, int32(s))
		members := []int{s}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
					members = append(members, int(v))
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// LargestComponent extracts the largest connected component as a new graph
// with nodes relabelled 0..k-1. It returns the new graph and a mapping
// newToOld from new node index to the index in g. This mirrors the paper's
// preprocessing (§IV-B): only the LCC of each network is studied.
func (g *Graph) LargestComponent() (*Graph, []int) {
	comps := g.Components()
	if len(comps) == 0 {
		return New(0), nil
	}
	best := 0
	for i, c := range comps {
		if len(c) > len(comps[best]) {
			best = i
		}
	}
	members := comps[best]
	newToOld := append([]int(nil), members...)
	oldToNew := make(map[int]int32, len(members))
	for i, v := range members {
		oldToNew[v] = int32(i)
	}
	sub := New(len(members))
	for i, v := range members {
		for _, w := range g.adj[v] {
			j, ok := oldToNew[int(w)]
			if ok && int32(i) < j {
				sub.insertArc(i, int(j))
				sub.insertArc(int(j), i)
				sub.m++
			}
		}
	}
	return sub, newToOld
}

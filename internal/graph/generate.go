package graph

import (
	"fmt"
	"math/rand"
)

// This file hosts the deterministic generators used for (a) the closed-form
// example graphs of §IV-A (Figure 1) and the worked examples of §VI
// (Figures 3-6), and (b) the scale-free small-world synthetic proxies that
// stand in for the paper's KONECT/NetworkRepository datasets (see DESIGN.md,
// "Substitutions").

// Path returns the path (line) graph with n nodes: 0-1-2-...-(n-1).
// Figure 1(a) uses this family with 2n nodes.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(g, i, i+1)
	}
	return g
}

// Cycle returns the cycle graph with n >= 3 nodes (Figure 1(b)).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs n >= 3")
	}
	g := Path(n)
	mustAdd(g, n-1, 0)
	return g
}

// Star returns the star graph with n nodes: node 0 is the hub (Figure 1(c)).
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		mustAdd(g, 0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(g, u, v)
		}
	}
	return g
}

// Grid returns the rows×cols 2-D lattice.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Lollipop returns a complete graph K_k with a path of t extra nodes attached
// to node 0. A classic high-resistance-eccentricity shape: the path tip is
// the resistance-peripheral node.
func Lollipop(k, t int) *Graph {
	g := New(k + t)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			mustAdd(g, u, v)
		}
	}
	prev := 0
	for i := 0; i < t; i++ {
		mustAdd(g, prev, k+i)
		prev = k + i
	}
	return g
}

// Barbell returns two K_k cliques joined by a path of t intermediate nodes.
func Barbell(k, t int) *Graph {
	g := New(2*k + t)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			mustAdd(g, u, v)
			mustAdd(g, k+t+u, k+t+v)
		}
	}
	prev := 0
	for i := 0; i < t; i++ {
		mustAdd(g, prev, k+i)
		prev = k + i
	}
	mustAdd(g, prev, k+t)
	return g
}

// ErdosRenyi samples G(n, p) with the given seed and returns its largest
// connected component (the paper always works on LCCs).
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				mustAdd(g, u, v)
			}
		}
	}
	lcc, _ := g.LargestComponent()
	return lcc
}

// BarabasiAlbert grows a scale-free graph by preferential attachment: it
// starts from a small seed clique and attaches each new node to k distinct
// existing nodes chosen proportionally to degree. The result is connected by
// construction and has a power-law degree tail with exponent ≈ 3, matching
// the datasets of Table I.
func BarabasiAlbert(n, k int, seed int64) *Graph {
	if k < 1 {
		panic("graph: BarabasiAlbert needs k >= 1")
	}
	if n < k+1 {
		panic(fmt.Sprintf("graph: BarabasiAlbert needs n > k (n=%d, k=%d)", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Seed clique on k+1 nodes keeps early attachment well-defined.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			mustAdd(g, u, v)
		}
	}
	// targets is a degree-weighted multiset: node u appears deg(u) times.
	targets := make([]int32, 0, 2*k*n)
	for u := 0; u <= k; u++ {
		for i := 0; i < k; i++ {
			targets = append(targets, int32(u))
		}
	}
	chosen := make([]int32, 0, k)
	for u := k + 1; u < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			mustAdd(g, u, int(t))
			targets = append(targets, t, int32(u))
		}
	}
	return g
}

// PowerlawCluster is the Holme–Kim variant of preferential attachment: after
// each preferential link, with probability tri a triangle-closing link to a
// random neighbour of the previous target is attempted. It produces
// scale-free graphs with tunable clustering, closer to the social networks
// (Politician, Government, ...) in Table I than plain BA.
func PowerlawCluster(n, k int, tri float64, seed int64) *Graph {
	if k < 1 || n < k+1 {
		panic("graph: PowerlawCluster needs n > k >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			mustAdd(g, u, v)
		}
	}
	targets := make([]int32, 0, 2*k*n)
	for u := 0; u <= k; u++ {
		for i := 0; i < k; i++ {
			targets = append(targets, int32(u))
		}
	}
	for u := k + 1; u < n; u++ {
		added := 0
		last := int32(-1)
		for added < k {
			var t int32
			if last >= 0 && tri > 0 && rng.Float64() < tri && g.Degree(int(last)) > 0 {
				// Triangle step: link to a random neighbour of the last target.
				nbrs := g.adj[last]
				t = nbrs[rng.Intn(len(nbrs))]
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == u || g.HasEdge(u, int(t)) {
				// Fall back to a fresh preferential draw next round.
				last = -1
				t = targets[rng.Intn(len(targets))]
				if int(t) == u || g.HasEdge(u, int(t)) {
					continue
				}
			}
			mustAdd(g, u, int(t))
			targets = append(targets, t, int32(u))
			last = t
			added++
		}
	}
	return g
}

// ScaleFreeMixed grows a preferential-attachment graph where each new node
// attaches with a per-node random edge count drawn uniformly from
// [kmin, kmax] (expected (kmin+kmax)/2), with Holme–Kim triangle closure at
// probability tri. Unlike BarabasiAlbert/PowerlawCluster, whose minimum
// degree equals the attachment parameter, kmin = 1 yields the degree-1
// pendant periphery real networks have — the nodes responsible for the
// heavy right tail of the resistance eccentricity distribution (§IV-B).
func ScaleFreeMixed(n, kmin, kmax int, tri float64, seed int64) *Graph {
	if kmin < 1 || kmax < kmin {
		panic("graph: ScaleFreeMixed needs 1 <= kmin <= kmax")
	}
	if n < kmax+2 {
		panic(fmt.Sprintf("graph: ScaleFreeMixed needs n > kmax+1 (n=%d, kmax=%d)", n, kmax))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	seedN := kmax + 1
	for u := 0; u < seedN; u++ {
		for v := u + 1; v < seedN; v++ {
			mustAdd(g, u, v)
		}
	}
	targets := make([]int32, 0, (kmin+kmax)*n)
	for u := 0; u < seedN; u++ {
		for i := 0; i < kmax; i++ {
			targets = append(targets, int32(u))
		}
	}
	for u := seedN; u < n; u++ {
		k := kmin + rng.Intn(kmax-kmin+1)
		added := 0
		last := int32(-1)
		for added < k {
			var t int32
			if last >= 0 && tri > 0 && rng.Float64() < tri {
				nbrs := g.adj[last]
				t = nbrs[rng.Intn(len(nbrs))]
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == u || g.HasEdge(u, int(t)) {
				last = -1
				t = targets[rng.Intn(len(targets))]
				if int(t) == u || g.HasEdge(u, int(t)) {
					continue
				}
			}
			mustAdd(g, u, int(t))
			targets = append(targets, t, int32(u))
			last = t
			added++
		}
	}
	return g
}

// WattsStrogatz builds the small-world model: a ring lattice where each node
// connects to its k nearest neighbours (k even), with each edge rewired to a
// random endpoint with probability beta. The LCC is returned.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	if k%2 != 0 || k < 2 || k >= n {
		panic("graph: WattsStrogatz needs even 2 <= k < n")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if !g.HasEdge(u, v) {
				mustAdd(g, u, v)
			}
		}
	}
	for _, e := range g.Edges() {
		if rng.Float64() < beta {
			w := rng.Intn(n)
			if w != e.U && !g.HasEdge(e.U, w) {
				if err := g.RemoveEdge(e.U, e.V); err == nil {
					mustAdd(g, e.U, w)
				}
			}
		}
	}
	lcc, _ := g.LargestComponent()
	return lcc
}

// RandomConnected returns a connected G(n,p)-style graph by first threading a
// random spanning path (guaranteeing connectivity on exactly n nodes) and
// then sprinkling extra random edges until the requested edge count m is
// reached. Useful when experiments need an exact (n, m).
func RandomConnected(n, m int, seed int64) *Graph {
	if m < n-1 {
		panic("graph: RandomConnected needs m >= n-1")
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic("graph: RandomConnected m exceeds complete graph")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(g, perm[i], perm[i+1])
	}
	for g.m < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			mustAdd(g, u, v)
		}
	}
	return g
}

func mustAdd(g *Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

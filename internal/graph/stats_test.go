package graph

import (
	"math"
	"testing"
)

func TestLocalClustering(t *testing.T) {
	g := Complete(4)
	for u := 0; u < 4; u++ {
		if c := g.LocalClustering(u); c != 1 {
			t.Fatalf("K4 clustering(%d)=%g, want 1", u, c)
		}
	}
	s := Star(5)
	if c := s.LocalClustering(0); c != 0 {
		t.Fatalf("star hub clustering %g, want 0", c)
	}
	if c := s.LocalClustering(1); c != 0 {
		t.Fatalf("degree-1 node clustering %g, want 0", c)
	}
	// Triangle with a pendant: node 0 in triangle {0,1,2} plus pendant 3.
	tr := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	// Node 0 has neighbours {1,2,3}; only (1,2) adjacent: C = 2*1/(3*2) = 1/3.
	if c := tr.LocalClustering(0); math.Abs(c-1.0/3) > 1e-15 {
		t.Fatalf("clustering %g, want 1/3", c)
	}
}

func TestMeanClustering(t *testing.T) {
	if c := Complete(5).MeanClustering(); c != 1 {
		t.Fatalf("K5 mean clustering %g", c)
	}
	if c := Path(10).MeanClustering(); c != 0 {
		t.Fatalf("path mean clustering %g", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(6).DegreeHistogram()
	if h[1] != 5 || h[5] != 1 {
		t.Fatalf("star degree histogram %v", h)
	}
}

func TestPowerLawExponentOnBA(t *testing.T) {
	g := BarabasiAlbert(3000, 3, 17)
	gamma := g.PowerLawExponent()
	// BA's theoretical exponent is 3; the MLE with a heuristic cutoff should
	// land broadly in the scale-free band the paper reports (2 ≤ γ ≤ 4).
	if gamma < 1.8 || gamma > 4.5 {
		t.Fatalf("BA power-law exponent %.2f outside plausible band", gamma)
	}
}

func TestSummarize(t *testing.T) {
	g := Star(5)
	s := g.Summarize()
	if s.N != 5 || s.M != 4 || s.MaxDegree != 4 || s.MinDegree != 1 {
		t.Fatalf("stats %+v", s)
	}
	if math.Abs(s.AvgDegree-8.0/5) > 1e-15 {
		t.Fatalf("avg degree %g", s.AvgDegree)
	}
	fast := g.SummarizeFast()
	if fast.Clustering != 0 {
		t.Fatal("SummarizeFast should not compute clustering")
	}
	empty := New(0).Summarize()
	if empty.N != 0 {
		t.Fatal("empty stats")
	}
}

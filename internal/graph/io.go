package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list stream, the common
// interchange format of KONECT and NetworkRepository. Lines starting with
// '#' or '%' are comments. Node labels may be arbitrary non-negative
// integers; they are compacted to 0..n-1 in first-seen order. Duplicate
// edges, reversed duplicates and self-loops are silently dropped — the same
// preprocessing the paper applies (§IV-B) before taking the LCC.
//
// It returns the graph plus the original labels indexed by compact id.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]int)
	var labels []int64
	intern := func(raw int64) int {
		if id, ok := ids[raw]; ok {
			return id
		}
		id := len(labels)
		ids[raw] = id
		labels = append(labels, raw)
		return id
	}
	type pair struct{ u, v int }
	var pairs []pair
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: edge list line %d: need two fields, got %q", line, text)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		// Extra fields (weights, timestamps) are ignored: the paper converts
		// weighted/directed networks to simple undirected ones.
		pairs = append(pairs, pair{intern(a), intern(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	g := New(len(labels))
	for _, p := range pairs {
		if p.u == p.v || g.HasEdge(p.u, p.v) {
			continue
		}
		mustAdd(g, p.u, p.v)
	}
	return g, labels, nil
}

// LoadEdgeList reads an edge-list file from disk; see ReadEdgeList.
func LoadEdgeList(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList emits the graph as "u v" lines in canonical edge order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	g.EachEdge(func(u, v int) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file; see WriteEdgeList.
func (g *Graph) SaveEdgeList(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

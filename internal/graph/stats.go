package graph

import (
	"math"
	"sort"
)

// Stats summarizes the structural statistics reported in Table I of the
// paper for each dataset's largest connected component.
type Stats struct {
	N             int     // number of nodes
	M             int     // number of edges
	AvgDegree     float64 // d_avg = 2m/n
	MaxDegree     int
	MinDegree     int
	PowerLawGamma float64 // MLE exponent of the degree tail (Clauset et al.)
	Clustering    float64 // mean local clustering coefficient
}

// Summarize computes Stats for g. Clustering is exact (may cost
// O(Σ deg²) time); for huge graphs use SummarizeFast.
func (g *Graph) Summarize() Stats {
	s := g.SummarizeFast()
	s.Clustering = g.MeanClustering()
	return s
}

// SummarizeFast computes all Stats fields except Clustering (left zero).
func (g *Graph) SummarizeFast() Stats {
	s := Stats{N: g.N(), M: g.M(), AvgDegree: g.AverageDegree()}
	if s.N == 0 {
		return s
	}
	s.MinDegree = math.MaxInt
	for u := range g.adj {
		d := len(g.adj[u])
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
	}
	s.PowerLawGamma = g.PowerLawExponent()
	return s
}

// PowerLawExponent estimates the degree-distribution exponent γ with the
// discrete maximum-likelihood estimator of Clauset, Shalizi & Newman:
//
//	γ ≈ 1 + n_tail / Σ_{d_i >= dmin} ln(d_i / (dmin − 1/2)),
//
// where dmin is chosen as the mode-excluding lower cutoff (here: the median
// degree, clamped to >= 2), a cheap heuristic adequate for the Table I
// reporting column.
func (g *Graph) PowerLawExponent() float64 {
	degs := g.Degrees()
	if len(degs) == 0 {
		return 0
	}
	sorted := append([]int(nil), degs...)
	sort.Ints(sorted)
	dmin := sorted[len(sorted)/2]
	if dmin < 2 {
		dmin = 2
	}
	sum := 0.0
	count := 0
	for _, d := range degs {
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(count)/sum
}

// LocalClustering returns the local clustering coefficient of node u: the
// fraction of pairs of u's neighbours that are themselves adjacent.
// Nodes of degree < 2 have coefficient 0.
func (g *Graph) LocalClustering(u int) float64 {
	nbrs := g.adj[u]
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// MeanClustering returns the average local clustering coefficient.
func (g *Graph) MeanClustering() float64 {
	if g.N() == 0 {
		return 0
	}
	sum := 0.0
	for u := range g.adj {
		sum += g.LocalClustering(u)
	}
	return sum / float64(g.N())
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxD := 0
	for u := range g.adj {
		if len(g.adj[u]) > maxD {
			maxD = len(g.adj[u])
		}
	}
	counts := make([]int, maxD+1)
	for u := range g.adj {
		counts[len(g.adj[u])]++
	}
	return counts
}

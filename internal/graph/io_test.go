package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% konect-style comment
10 20
20 30 0.5
30 10
10 10
20 10
`
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3, 3", g.N(), g.M())
	}
	if labels[0] != 10 || labels[1] != 20 || labels[2] != 30 {
		t.Fatalf("labels %v", labels)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Fatal("single field should fail")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-integer should fail")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := BarabasiAlbert(60, 2, 9)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", h.N(), h.M(), g.N(), g.M())
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	g := Cycle(10)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.SaveEdgeList(path); err != nil {
		t.Fatal(err)
	}
	h, _, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 10 || h.M() != 10 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
	if _, _, err := LoadEdgeList(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestCSRView(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	c := g.ToCSR()
	if c.N != 4 || c.M != 4 {
		t.Fatalf("csr n=%d m=%d", c.N, c.M)
	}
	for u := 0; u < 4; u++ {
		if c.Degree(u) != g.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
	edges := c.EdgeOrder()
	if len(edges) != 4 {
		t.Fatalf("edge order %v", edges)
	}
	for _, e := range edges {
		if e.U >= e.V || !g.HasEdge(e.U, e.V) {
			t.Fatalf("bad canonical edge %v", e)
		}
	}
}

func TestCSRLapMul(t *testing.T) {
	g := Star(5)
	c := g.ToCSR()
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	c.LapMul(x, y)
	// L x at hub: 4*1 − (2+3+4+5) = −10; at leaf i: 1*x_i − 1.
	if y[0] != -10 {
		t.Fatalf("hub: %g", y[0])
	}
	for i := 1; i < 5; i++ {
		want := x[i] - 1
		if y[i] != want {
			t.Fatalf("leaf %d: %g want %g", i, y[i], want)
		}
	}
	// Row sums of L are zero: L·1 = 0.
	ones := []float64{1, 1, 1, 1, 1}
	c.LapMul(ones, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("L·1 ≠ 0 at %d: %g", i, v)
		}
	}
}

func TestCSRIncidence(t *testing.T) {
	g := Path(4) // edges (0,1),(1,2),(2,3) in canonical order
	c := g.ToCSR()
	q := []float64{1, 10, 100}
	y := make([]float64, 4)
	c.IncidenceTMul(q, y)
	want := []float64{1, 9, 90, -100} // Bᵀq with b_e = e_u − e_v
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Bᵀq[%d]=%g, want %g", i, y[i], want[i])
		}
	}
	// Bᵀq ⊥ 1 for any q.
	s := 0.0
	for _, v := range y {
		s += v
	}
	if s != 0 {
		t.Fatalf("Bᵀq not orthogonal to ones: sum %g", s)
	}
}

func TestCSRAdjMul(t *testing.T) {
	g := Cycle(4)
	c := g.ToCSR()
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	c.AdjMul(x, y)
	want := []float64{2 + 4, 1 + 3, 2 + 4, 1 + 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("A·x[%d]=%g want %g", i, y[i], want[i])
		}
	}
}

// Package graph provides the graph substrate used throughout resistecc:
// a compact undirected simple-graph representation with adjacency lists,
// traversal, connectivity and largest-connected-component extraction,
// deterministic generators for the synthetic networks used in the paper's
// experiments, edge-list I/O and structural statistics (degree distribution,
// clustering coefficient, power-law exponent).
//
// Graphs are connected, undirected and unweighted, matching §III-B of the
// paper. Nodes are labelled 0..n-1 (the paper uses 1..n; we follow Go
// convention and shift by one).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an undirected simple graph stored as adjacency lists.
//
// The zero value is an empty graph with no nodes; use New or a generator to
// construct a usable instance. Graph is not safe for concurrent mutation;
// concurrent reads are safe.
type Graph struct {
	adj [][]int32 // adj[u] lists the neighbours of u, sorted ascending
	m   int       // number of undirected edges
}

// Edge is an undirected edge between nodes U and V.
// Canonical form has U < V; Canon returns it.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// New returns an empty graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]int32, n)}
}

// FromEdges builds a graph with n nodes and the given edges.
// Self-loops and duplicate edges are rejected with an error, as the paper
// studies simple graphs only.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests,
// examples and generators with statically known-valid input.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbour list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	list := g.adj[u]
	if len(g.adj[v]) < len(list) {
		list, u, v = g.adj[v], v, u
	}
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

var (
	// ErrSelfLoop is returned when adding an edge (u,u).
	ErrSelfLoop = errors.New("graph: self-loop not allowed in a simple graph")
	// ErrDuplicateEdge is returned when adding an edge that already exists.
	ErrDuplicateEdge = errors.New("graph: edge already present")
	// ErrNodeRange is returned for out-of-range node indices.
	ErrNodeRange = errors.New("graph: node index out of range")
	// ErrEdgeNotFound is returned when removing an edge that is not present.
	ErrEdgeNotFound = errors.New("graph: edge not present")
	// ErrDisconnected is returned by operations that require a connected
	// graph (Laplacian solves, index builds) or would disconnect one
	// (lifecycle edge removal).
	ErrDisconnected = errors.New("graph: graph is (or would become) disconnected")
)

// AddEdge inserts the undirected edge (u,v).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrNodeRange, u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	g.insertArc(u, v)
	g.insertArc(v, u)
	g.m++
	return nil
}

func (g *Graph) insertArc(u, v int) {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = int32(v)
	g.adj[u] = list
}

// RemoveEdge deletes the undirected edge (u,v) if present.
func (g *Graph) RemoveEdge(u, v int) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d,%d)", ErrEdgeNotFound, u, v)
	}
	g.removeArc(u, v)
	g.removeArc(v, u)
	g.m--
	return nil
}

func (g *Graph) removeArc(u, v int) {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	copy(list[i:], list[i+1:])
	g.adj[u] = list[:len(list)-1]
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int32, len(g.adj)), m: g.m}
	for u, list := range g.adj {
		c.adj[u] = append([]int32(nil), list...)
	}
	return c
}

// Edges returns all undirected edges in canonical (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u, list := range g.adj {
		for _, v := range list {
			if int32(u) < v {
				edges = append(edges, Edge{u, int(v)})
			}
		}
	}
	return edges
}

// EachEdge calls fn once per undirected edge with u < v.
// Iteration stops early if fn returns false.
func (g *Graph) EachEdge(fn func(u, v int) bool) {
	for u, list := range g.adj {
		for _, v := range list {
			if int32(u) < v {
				if !fn(u, int(v)) {
					return
				}
			}
		}
	}
}

// Degrees returns the degree sequence d[0..n-1].
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.adj))
	for u := range g.adj {
		d[u] = len(g.adj[u])
	}
	return d
}

// AverageDegree returns 2m/n, the mean degree.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Validate checks internal invariants (sorted adjacency, symmetry, no
// self-loops, edge count). Used by tests and after deserialization.
func (g *Graph) Validate() error {
	arcs := 0
	for u, list := range g.adj {
		for i, v := range list {
			if int(v) < 0 || int(v) >= len(g.adj) {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", u, v)
			}
			if int(v) == u {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			if i > 0 && list[i-1] >= v {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", u)
			}
			if !g.HasEdge(int(v), u) {
				return fmt.Errorf("graph: asymmetric arc %d->%d", u, v)
			}
		}
		arcs += len(list)
	}
	if arcs != 2*g.m {
		return fmt.Errorf("graph: edge count mismatch: %d arcs, m=%d", arcs, g.m)
	}
	return nil
}

// ComplementCandidates returns the candidate set Q2 = (V×V)\E of Problem 2:
// all node pairs (u,v), u < v, that are not edges. Quadratic; intended for
// small graphs (exhaustive search, tests).
func (g *Graph) ComplementCandidates() []Edge {
	var out []Edge
	n := len(g.adj)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// SourceCandidates returns the candidate set Q1 = {(s,u) : (s,u) ∉ E} of
// Problem 1 for the given source node.
func (g *Graph) SourceCandidates(s int) []Edge {
	var out []Edge
	for u := 0; u < len(g.adj); u++ {
		if u != s && !g.HasEdge(s, u) {
			out = append(out, Edge{s, u}.Canon())
		}
	}
	return out
}

package graph

import (
	"testing"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d]=%d, want %d", i, d, i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable nodes should be -1, got %v", dist)
	}
}

func TestEccentricityHops(t *testing.T) {
	g := Path(7)
	ecc, far := g.Eccentricity(3)
	if ecc != 3 {
		t.Fatalf("ecc=%d, want 3", ecc)
	}
	if far != 0 && far != 6 {
		t.Fatalf("farthest=%d, want an endpoint", far)
	}
	ecc, far = g.Eccentricity(0)
	if ecc != 6 || far != 6 {
		t.Fatalf("from end: ecc=%d far=%d", ecc, far)
	}
}

func TestConnected(t *testing.T) {
	if !Path(10).Connected() {
		t.Fatal("path should be connected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Fatal("trivial graphs are connected")
	}
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	comps := g.Components()
	if len(comps) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("got %d components (%v), want 4", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 2 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(8)
	// Component A: 0-1-2-3 path; component B: 4-5; isolated: 6, 7.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lcc, mapping := g.LargestComponent()
	if lcc.N() != 4 || lcc.M() != 3 {
		t.Fatalf("LCC n=%d m=%d, want 4, 3", lcc.N(), lcc.M())
	}
	if err := lcc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !lcc.Connected() {
		t.Fatal("LCC must be connected")
	}
	if len(mapping) != 4 {
		t.Fatalf("mapping %v", mapping)
	}
	// The mapping must preserve adjacency.
	for u := 0; u < lcc.N(); u++ {
		for _, v := range lcc.Neighbors(u) {
			if !g.HasEdge(mapping[u], mapping[int(v)]) {
				t.Fatalf("edge (%d,%d) in LCC missing in original", mapping[u], mapping[int(v)])
			}
		}
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	lcc, mapping := New(0).LargestComponent()
	if lcc.N() != 0 || mapping != nil {
		t.Fatal("empty graph LCC should be empty")
	}
}

package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Fatalf("node %d degree %d, want 0", u, g.Degree(u))
		}
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) should be present both ways")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("edge (0,2) should be absent")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self-loop: got %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate: got %v, want ErrDuplicateEdge", err)
	}
	if err := g.AddEdge(0, 7); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("range: got %v, want ErrNodeRange", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("negative: got %v, want ErrNodeRange", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Path(4)
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 2) || g.M() != 2 {
		t.Fatal("edge (1,2) should be gone")
	}
	if err := g.RemoveEdge(1, 2); err == nil {
		t.Fatal("removing absent edge should fail")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := MustFromEdges(4, []Edge{{2, 1}, {3, 0}, {0, 1}})
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 3}, {1, 2}}
	if len(edges) != len(want) {
		t.Fatalf("got %v", edges)
	}
	for i, e := range want {
		if edges[i] != e {
			t.Fatalf("edges[%d]=%v, want %v", i, edges[i], e)
		}
	}
}

func TestEdgeCanon(t *testing.T) {
	if (Edge{3, 1}).Canon() != (Edge{1, 3}) {
		t.Fatal("Canon should order endpoints")
	}
	if (Edge{1, 3}).Canon() != (Edge{1, 3}) {
		t.Fatal("Canon should keep ordered endpoints")
	}
}

func TestClone(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("mutation of clone leaked into original")
	}
	if g.M() != 5 || c.M() != 6 {
		t.Fatalf("m: g=%d c=%d", g.M(), c.M())
	}
}

func TestEachEdgeEarlyStop(t *testing.T) {
	g := Complete(6)
	count := 0
	g.EachEdge(func(u, v int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop: visited %d, want 3", count)
	}
}

func TestCandidateSets(t *testing.T) {
	g := Path(4) // 0-1-2-3
	q1 := g.SourceCandidates(0)
	want1 := []Edge{{0, 2}, {0, 3}}
	if len(q1) != 2 || q1[0] != want1[0] || q1[1] != want1[1] {
		t.Fatalf("Q1=%v, want %v", q1, want1)
	}
	q2 := g.ComplementCandidates()
	// Path(4) misses (0,2),(0,3),(1,3): |Q2| = C(4,2) − 3 = 3.
	if len(q2) != 3 {
		t.Fatalf("|Q2|=%d, want 3 (%v)", len(q2), q2)
	}
	for _, e := range q2 {
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("candidate %v already an edge", e)
		}
	}
}

func TestDegreesAndAverage(t *testing.T) {
	g := Star(5)
	d := g.Degrees()
	if d[0] != 4 {
		t.Fatalf("hub degree %d, want 4", d[0])
	}
	for i := 1; i < 5; i++ {
		if d[i] != 1 {
			t.Fatalf("leaf %d degree %d, want 1", i, d[i])
		}
	}
	if got := g.AverageDegree(); got != 8.0/5.0 {
		t.Fatalf("avg degree %g, want %g", got, 8.0/5.0)
	}
}

// Property: after any sequence of valid insertions, Validate passes and
// HasEdge is consistent with the inserted set.
func TestQuickInsertConsistency(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		const n = 24
		g := New(n)
		inserted := map[Edge]bool{}
		for _, p := range pairs {
			u, v := int(p[0])%n, int(p[1])%n
			e := Edge{u, v}.Canon()
			err := g.AddEdge(u, v)
			switch {
			case u == v:
				if err == nil {
					return false
				}
			case inserted[e]:
				if err == nil {
					return false
				}
			default:
				if err != nil {
					return false
				}
				inserted[e] = true
			}
		}
		if g.Validate() != nil {
			return false
		}
		if g.M() != len(inserted) {
			return false
		}
		for e := range inserted {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveEdge(AddEdge(g)) restores exact structure.
func TestQuickAddRemoveRoundTrip(t *testing.T) {
	f := func(seed int64, u8, v8 uint8) bool {
		g := BarabasiAlbert(30, 2, seed%1000)
		u, v := int(u8)%30, int(v8)%30
		if u == v || g.HasEdge(u, v) {
			return true // vacuous
		}
		before := g.Edges()
		if g.AddEdge(u, v) != nil {
			return false
		}
		if g.RemoveEdge(u, v) != nil {
			return false
		}
		after := g.Edges()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"testing"
)

func TestPathShape(t *testing.T) {
	g := Path(6)
	if g.N() != 6 || g.M() != 5 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(5) != 1 || g.Degree(2) != 2 {
		t.Fatal("path degrees wrong")
	}
}

func TestCycleShape(t *testing.T) {
	g := Cycle(8)
	if g.N() != 8 || g.M() != 8 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < 8; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("degree(%d)=%d", u, g.Degree(u))
		}
	}
}

func TestStarShape(t *testing.T) {
	g := Star(7)
	if g.N() != 7 || g.M() != 6 || g.Degree(0) != 6 {
		t.Fatal("star shape wrong")
	}
}

func TestCompleteShape(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 m=%d, want 15", g.M())
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Fatalf("m=%d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid must be connected")
	}
}

func TestLollipopBarbell(t *testing.T) {
	l := Lollipop(5, 3)
	if l.N() != 8 || l.M() != 10+3 {
		t.Fatalf("lollipop n=%d m=%d", l.N(), l.M())
	}
	if !l.Connected() {
		t.Fatal("lollipop connected")
	}
	b := Barbell(4, 2)
	if b.N() != 10 || b.M() != 6+6+3 {
		t.Fatalf("barbell n=%d m=%d", b.N(), b.M())
	}
	if !b.Connected() {
		t.Fatal("barbell connected")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 42)
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.Connected() {
		t.Fatal("BA graphs are connected by construction")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// m = C(4,2) + 3*(n-4) = 6 + 3*496.
	want := 6 + 3*496
	if g.M() != want {
		t.Fatalf("m=%d, want %d", g.M(), want)
	}
	// Determinism.
	h := BarabasiAlbert(500, 3, 42)
	eg, eh := g.Edges(), h.Edges()
	for i := range eg {
		if eg[i] != eh[i] {
			t.Fatal("BA not deterministic for a fixed seed")
		}
	}
	// Heavy tail: the max degree should far exceed the mean.
	stats := g.SummarizeFast()
	if float64(stats.MaxDegree) < 3*stats.AvgDegree {
		t.Fatalf("max degree %d vs avg %.1f: no hub structure", stats.MaxDegree, stats.AvgDegree)
	}
}

func TestPowerlawCluster(t *testing.T) {
	g := PowerlawCluster(400, 4, 0.5, 7)
	if g.N() != 400 || !g.Connected() {
		t.Fatal("powerlaw-cluster should be connected with n nodes")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	plain := BarabasiAlbert(400, 4, 7)
	if g.MeanClustering() <= plain.MeanClustering() {
		t.Fatalf("triangle closure should raise clustering: HK=%.3f BA=%.3f",
			g.MeanClustering(), plain.MeanClustering())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(300, 6, 0.1, 3)
	if !g.Connected() {
		t.Fatal("WS LCC must be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() < 250 {
		t.Fatalf("rewiring destroyed too much: n=%d", g.N())
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(300, 0.02, 11)
	if !g.Connected() {
		t.Fatal("ER LCC must be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnected(t *testing.T) {
	g := RandomConnected(50, 120, 5)
	if g.N() != 50 || g.M() != 120 || !g.Connected() {
		t.Fatalf("n=%d m=%d connected=%v", g.N(), g.M(), g.Connected())
	}
	// Exact m at the complete-graph bound.
	h := RandomConnected(6, 15, 1)
	if h.M() != 15 {
		t.Fatalf("complete bound m=%d", h.M())
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Cycle(2) },
		func() { BarabasiAlbert(3, 3, 1) },
		func() { BarabasiAlbert(10, 0, 1) },
		func() { WattsStrogatz(10, 3, 0.1, 1) },
		func() { RandomConnected(5, 2, 1) },
		func() { RandomConnected(5, 11, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestScaleFreeMixed(t *testing.T) {
	g := ScaleFreeMixed(600, 1, 7, 0.3, 13)
	if g.N() != 600 || !g.Connected() {
		t.Fatal("mixed scale-free must be connected with n nodes")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pendant periphery must exist (the point of the generator).
	degOne := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) == 1 {
			degOne++
		}
	}
	if degOne == 0 {
		t.Fatal("no degree-1 nodes")
	}
	// Mean degree ≈ 2·(kmin+kmax)/2 = kmin+kmax.
	avg := g.AverageDegree()
	if avg < 5 || avg > 11 {
		t.Fatalf("average degree %.2f outside [5,11]", avg)
	}
	// Determinism.
	h := ScaleFreeMixed(600, 1, 7, 0.3, 13)
	if h.M() != g.M() {
		t.Fatal("not deterministic")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for kmin=0")
			}
		}()
		ScaleFreeMixed(10, 0, 3, 0, 1)
	}()
}

package ecc

import (
	"context"
	"errors"
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/sketch"
)

func batchTestIndexes(t *testing.T) (*Exact, *Approx, *Fast) {
	t.Helper()
	g := graph.BarabasiAlbert(150, 3, 9)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	skOpt := sketch.Options{Epsilon: 0.3, Dim: 32, Seed: 3}
	ap, err := NewApproxContext(context.Background(), g, skOpt)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFastContext(context.Background(), g, FastOptions{Sketch: skOpt})
	if err != nil {
		t.Fatal(err)
	}
	return ex, ap, f
}

// TestQueryBatchBitIdentical pins batched == serial for all three engines,
// including duplicate ids (answered from one kernel evaluation) and a reused
// buffer across batches of different sizes.
func TestQueryBatchBitIdentical(t *testing.T) {
	ex, ap, f := batchTestIndexes(t)
	buf := GetQueryBuf()
	defer buf.Release()
	batches := [][]int{
		{},
		{17},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{42, 42, 42},                          // all duplicates
		{5, 99, 5, 130, 99, 5, 0},             // interleaved duplicates
		{149, 0, 75, 3, 75, 149, 12, 61, 149}, // remainder-lane sizes
	}
	for _, q := range batches {
		for name, engine := range map[string]interface {
			QueryBatch([]int, *QueryBuf) []Value
			Eccentricity(int) Value
		}{"exact": ex, "approx": ap, "fast": f} {
			got := engine.QueryBatch(q, buf)
			if len(got) != len(q) {
				t.Fatalf("%s: batch %v returned %d values", name, q, len(got))
			}
			for i, v := range q {
				want := engine.Eccentricity(v)
				if got[i] != want {
					t.Fatalf("%s: batch %v position %d: got %+v, want %+v", name, q, i, got[i], want)
				}
			}
		}
	}
}

// TestQueryBatchParallelSpill crosses the minParallelSources threshold so
// the shared worker pool runs, and pins that sharded results remain
// bit-identical to per-node queries for both kernels (boundary and full
// scan). Run under -race this also pins the shard handoff.
func TestQueryBatchParallelSpill(t *testing.T) {
	_, ap, f := batchTestIndexes(t)
	q := make([]int, 220) // 150 uniques after dedup, well past the threshold
	for i := range q {
		q[i] = (i * 7) % 150
	}
	buf := GetQueryBuf()
	defer buf.Release()
	for name, engine := range map[string]interface {
		QueryBatch([]int, *QueryBuf) []Value
		Eccentricity(int) Value
	}{"approx": ap, "fast": f} {
		got := engine.QueryBatch(q, buf)
		for i, v := range q {
			if want := engine.Eccentricity(v); got[i] != want {
				t.Fatalf("%s position %d (node %d): got %+v, want %+v", name, i, v, got[i], want)
			}
		}
	}
}

// TestQueryMatchesQueryBatch pins the rewritten Query methods onto the same
// results as the batch engine and as each other.
func TestQueryMatchesQueryBatch(t *testing.T) {
	_, ap, f := batchTestIndexes(t)
	q := []int{3, 77, 3, 120, 0}
	buf := GetQueryBuf()
	defer buf.Release()
	for i, v := range f.Query(q) {
		if want := f.QueryBatch(q, buf)[i]; v != want {
			t.Fatalf("fast Query[%d] = %+v, QueryBatch = %+v", i, v, want)
		}
	}
	for i, v := range ap.Query(q) {
		if want := ap.QueryBatch(q, buf)[i]; v != want {
			t.Fatalf("approx Query[%d] = %+v, QueryBatch = %+v", i, v, want)
		}
	}
}

// TestDistributionMatchesSerial pins the blocked Distribution and its
// parallel variant against per-node scans.
func TestDistributionMatchesSerial(t *testing.T) {
	_, ap, f := batchTestIndexes(t)
	for v, c := range f.Distribution() {
		if want := f.Eccentricity(v).Ecc; c != want {
			t.Fatalf("fast Distribution[%d] = %v, want %v", v, c, want)
		}
	}
	for _, workers := range []int{1, 2, 3, 7} {
		dist := f.DistributionParallel(workers)
		for v, c := range dist {
			if want := f.Eccentricity(v).Ecc; c != want {
				t.Fatalf("workers=%d Distribution[%d] = %v, want %v", workers, v, c, want)
			}
		}
	}
	for v, c := range ap.Distribution() {
		if want := ap.Eccentricity(v).Ecc; c != want {
			t.Fatalf("approx Distribution[%d] = %v, want %v", v, c, want)
		}
	}
}

// TestQueryBufDedup exercises the packed-key dedup directly: ordering,
// permutation fan-out, and the single-node fast path.
func TestQueryBufDedup(t *testing.T) {
	var b QueryBuf
	q := []int{9, 2, 9, 9, 2, 14}
	b.grow(len(q))
	nu := b.dedup(q)
	if nu != 3 {
		t.Fatalf("dedup(%v) = %d uniques, want 3", q, nu)
	}
	wantUniq := []int{2, 9, 14}
	for i, v := range wantUniq {
		if b.uniq[i] != v {
			t.Fatalf("uniq = %v, want %v", b.uniq[:nu], wantUniq)
		}
	}
	for i, v := range q {
		if b.uniq[b.perm[i]] != v {
			t.Fatalf("perm[%d] maps to node %d, want %d", i, b.uniq[b.perm[i]], v)
		}
	}

	b.grow(1)
	if nu := b.dedup([]int{42}); nu != 1 || b.uniq[0] != 42 || b.perm[0] != 0 {
		t.Fatalf("single-node dedup: nu=%d uniq=%v perm=%v", nu, b.uniq[:1], b.perm[:1])
	}
}

// TestFastDiameterDegenerate pins the satellite fix: a boundary with fewer
// than two nodes must report ok=false instead of a fake (0, {0,0}).
func TestFastDiameterDegenerate(t *testing.T) {
	_, _, f := batchTestIndexes(t)
	deg := &Fast{Sk: f.Sk, Boundary: f.Boundary[:1]}
	if d, pair, ok := deg.Diameter(); ok {
		t.Fatalf("1-node boundary: ok=true (d=%v pair=%+v), want ok=false", d, pair)
	}
	deg.Boundary = nil
	if _, _, ok := deg.Diameter(); ok {
		t.Fatal("empty boundary: ok=true, want ok=false")
	}
	if _, _, ok := f.Diameter(); !ok {
		t.Fatal("real boundary: ok=false, want ok=true")
	}
}

// TestHullOptionsTheta pins the θ-resolution satellite fix: WithDim-style
// options (Dim set, Epsilon zero) must fail with ErrBadEpsilon instead of
// silently building a θ = 0 hull.
func TestHullOptionsTheta(t *testing.T) {
	if _, err := HullOptionsFor(FastOptions{Sketch: sketch.Options{Dim: 32}}); err == nil {
		t.Fatal("zero epsilon and zero theta: want error, got nil")
	} else if !errors.Is(err, sketch.ErrBadEpsilon) {
		t.Fatalf("error %v does not wrap ErrBadEpsilon", err)
	}
	hopt, err := HullOptionsFor(FastOptions{Sketch: sketch.Options{Epsilon: 0.24, Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if hopt.Theta != 0.02 {
		t.Fatalf("theta = %v, want eps/12 = 0.02", hopt.Theta)
	}
	if hopt.Seed != 7 {
		t.Fatalf("seed = %v, want sketch seed + 1 = 7", hopt.Seed)
	}
	// An explicit Theta needs no epsilon.
	if _, err := HullOptionsFor(FastOptions{Hull: hull.Options{Theta: 0.1}}); err != nil {
		t.Fatal(err)
	}
}

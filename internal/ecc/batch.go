package ecc

import (
	"runtime"
	"slices"
	"sync"

	"resistecc/internal/sketch"
)

// QueryBuf owns the scratch a batch query needs: the dedup index, the
// per-unique-source kernel outputs, and the result slice handed back to the
// caller. A buffer may be reused across any number of QueryBatch calls on
// any index; after the first few calls at a given batch size the whole path
// performs zero heap allocations. Buffers are not safe for concurrent use —
// one goroutine, one buffer. Use GetQueryBuf/Release to recycle buffers
// through a pool, or embed a QueryBuf in a long-lived worker.
type QueryBuf struct {
	keys []int64   // packed (node << 32 | position) pairs, sorted for dedup
	uniq []int     // distinct query nodes, ascending
	perm []int     // perm[i] = index into uniq for query position i
	ecc  []float64 // kernel output per unique node
	arg  []int     // kernel witness per unique node
	vals []Value   // result slice returned by QueryBatch

	// Scratch for the parallel spill path (nu >= minParallelSources): one
	// pre-sized job per shard plus the join point, so handing chunks to the
	// shared worker pool allocates nothing either.
	jobs []batchJob
	wg   sync.WaitGroup
}

var queryBufPool = sync.Pool{New: func() any { return new(QueryBuf) }}

// GetQueryBuf returns a pooled buffer. Pair with Release.
func GetQueryBuf() *QueryBuf { return queryBufPool.Get().(*QueryBuf) }

// Release returns the buffer to the pool. The slice returned by the last
// QueryBatch call on it becomes invalid.
func (b *QueryBuf) Release() { queryBufPool.Put(b) }

// grow ensures every scratch slice holds n elements, reallocating only when
// a larger batch than ever before arrives — the one place the batch path may
// allocate.
func (b *QueryBuf) grow(n int) {
	if cap(b.keys) < n {
		b.keys = make([]int64, n)
		b.uniq = make([]int, n)
		b.perm = make([]int, n)
		b.ecc = make([]float64, n)
		b.arg = make([]int, n)
		b.vals = make([]Value, n)
	}
	b.keys = b.keys[:n]
	b.uniq = b.uniq[:n]
	b.perm = b.perm[:n]
	b.ecc = b.ecc[:n]
	b.arg = b.arg[:n]
	b.vals = b.vals[:n]
}

// growJobs sizes the shard-job scratch; like grow, it is deliberately
// unmarked so its make calls stay out of the hotpath contract.
func (b *QueryBuf) growJobs(n int) {
	if cap(b.jobs) < n {
		b.jobs = make([]batchJob, n)
	}
	b.jobs = b.jobs[:n]
}

// dedup fills b.uniq with the distinct nodes of q (ascending) and b.perm
// with, per query position, the index of its node in uniq. Returns the
// number of distinct nodes. Nodes must be in [0, 2³¹) — the public layers
// validate ids before reaching here. Sorting packed (node, position) keys
// keeps this allocation-free; repeated ids in a batch are answered from one
// kernel evaluation.
//
//recclint:hotpath
func (b *QueryBuf) dedup(q []int) int {
	if len(q) == 1 {
		b.uniq[0], b.perm[0] = q[0], 0
		return 1
	}
	keys := b.keys[:len(q)]
	for i, v := range q {
		keys[i] = int64(v)<<32 | int64(uint32(i))
	}
	slices.Sort(keys)
	nu := 0
	prev := -1
	for _, k := range keys {
		v, pos := int(k>>32), int(uint32(k))
		if v != prev {
			b.uniq[nu] = v
			nu++
			prev = v
		}
		b.perm[pos] = nu - 1
	}
	return nu
}

// The blocked kernel alone cannot beat the serial scan by much on a modern
// core: both are bound by scalar floating-point throughput (the summation
// order that bit-identity pins cannot be vectorized or reassociated). Large
// batches therefore shard across a lazily-started, GOMAXPROCS-sized worker
// pool shared by all indexes. Shards are disjoint sub-ranges of the unique
// sources, each answered by the same kernel, so results stay bit-identical
// regardless of scheduling; jobs and the join point live in the QueryBuf, so
// the spill path allocates nothing in steady state either.

// minParallelSources is the unique-source count at which QueryBatch shards
// across the worker pool. Below it the per-shard work would not amortize the
// handoff; the whole batch runs on the calling goroutine.
const minParallelSources = 64

type batchJob struct {
	sk   *sketch.Sketch
	cand []int // boundary scan when all is false
	all  bool  // full n-node scan (APPROXQUERY)
	srcs []int
	ecc  []float64
	arg  []int
	wg   *sync.WaitGroup
}

var (
	batchWorkersOnce sync.Once
	batchJobs        chan *batchJob
)

// startBatchWorkers spawns the shared shard workers on first use. The
// workers are deliberately never torn down: there are GOMAXPROCS of them for
// the process lifetime, parked on channel receive when idle.
func startBatchWorkers() {
	workers := runtime.GOMAXPROCS(0)
	batchJobs = make(chan *batchJob, workers)
	for i := 0; i < workers; i++ {
		go batchWorker()
	}
}

// batchWorker drains the shared job channel for the process lifetime.
//
//recclint:detached process-lifetime shard worker parked on channel receive; torn down only at exit (see startBatchWorkers) and accounted for in testutil.DetachedMarks
func batchWorker() {
	for j := range batchJobs {
		if j.all {
			j.sk.EccentricityBatchAll(j.srcs, j.ecc, j.arg)
		} else {
			j.sk.EccentricityBatch(j.srcs, j.cand, j.ecc, j.arg)
		}
		j.wg.Done()
	}
}

// scanParallel runs the kernel over b.uniq[:nu] sharded across the worker
// pool. Chunks are rounded up to the 4-wide tile so only the final shard has
// remainder lanes; the first chunk runs inline on the caller, which also
// keeps progress when the pool is saturated by other batches.
//
//recclint:hotpath
func (b *QueryBuf) scanParallel(sk *sketch.Sketch, cand []int, all bool, nu int) {
	batchWorkersOnce.Do(startBatchWorkers)
	workers := runtime.GOMAXPROCS(0)
	chunk := (nu + workers - 1) / workers
	chunk = (chunk + 3) &^ 3
	nchunks := (nu + chunk - 1) / chunk
	b.growJobs(nchunks)
	b.wg.Add(nchunks - 1)
	for c := 1; c < nchunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > nu {
			hi = nu
		}
		j := &b.jobs[c]
		j.sk, j.cand, j.all = sk, cand, all
		j.srcs, j.ecc, j.arg = b.uniq[lo:hi], b.ecc[lo:hi], b.arg[lo:hi]
		j.wg = &b.wg
		batchJobs <- j
	}
	hi := chunk
	if hi > nu {
		hi = nu
	}
	if all {
		sk.EccentricityBatchAll(b.uniq[:hi], b.ecc[:hi], b.arg[:hi])
	} else {
		sk.EccentricityBatch(b.uniq[:hi], cand, b.ecc[:hi], b.arg[:hi])
	}
	b.wg.Wait()
}

// QueryBatch answers FASTQUERY for a whole batch through the blocked kernel:
// ids are deduplicated, one hull-boundary scan is amortized over all unique
// sources, and the per-position results are fanned back out in request
// order. Results are bit-identical to calling Eccentricity per element. The
// returned slice is owned by buf and valid until its next use. Callers must
// have validated ids against [0, n).
//
//recclint:hotpath
func (f *Fast) QueryBatch(q []int, buf *QueryBuf) []Value {
	buf.grow(len(q))
	if len(q) == 0 {
		return buf.vals[:0]
	}
	nu := buf.dedup(q)
	if nu >= minParallelSources {
		buf.scanParallel(f.Sk, f.Boundary, false, nu)
	} else {
		f.Sk.EccentricityBatch(buf.uniq[:nu], f.Boundary, buf.ecc[:nu], buf.arg[:nu])
	}
	return fanOut(q, buf)
}

// QueryBatch is the batched APPROXQUERY: like Fast.QueryBatch but scanning
// all n embeddings per unique source instead of the hull boundary.
//
//recclint:hotpath
func (a *Approx) QueryBatch(q []int, buf *QueryBuf) []Value {
	buf.grow(len(q))
	if len(q) == 0 {
		return buf.vals[:0]
	}
	nu := buf.dedup(q)
	if nu >= minParallelSources {
		buf.scanParallel(a.Sk, nil, true, nu)
	} else {
		a.Sk.EccentricityBatchAll(buf.uniq[:nu], buf.ecc[:nu], buf.arg[:nu])
	}
	return fanOut(q, buf)
}

// QueryBatch is the batched EXACTQUERY: dedup amortizes the O(n) pinv row
// scan over repeated ids; values are bit-identical to Eccentricity.
func (e *Exact) QueryBatch(q []int, buf *QueryBuf) []Value {
	buf.grow(len(q))
	if len(q) == 0 {
		return buf.vals[:0]
	}
	nu := buf.dedup(q)
	for i, v := range buf.uniq[:nu] {
		val := e.Eccentricity(v)
		buf.ecc[i], buf.arg[i] = val.Ecc, val.Farthest
	}
	return fanOut(q, buf)
}

// fanOut maps per-unique kernel outputs back to per-position Values.
//
//recclint:hotpath
func fanOut(q []int, buf *QueryBuf) []Value {
	out := buf.vals[:len(q)]
	for i, v := range q {
		j := buf.perm[i]
		out[i] = Value{Node: v, Ecc: buf.ecc[j], Farthest: buf.arg[j]}
	}
	return out
}

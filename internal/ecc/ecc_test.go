package ecc

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/sketch"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSimpleGraphsLine encodes Figure 1(a): the line graph with 2n nodes has
// c(v_i) = 2n−i for i ≤ n and i−1 for i > n (1-indexed), with exactly two
// resistance-central nodes.
func TestSimpleGraphsLine(t *testing.T) {
	const n = 5 // 2n = 10 nodes
	g := graph.Path(2 * n)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	for i1 := 1; i1 <= 2*n; i1++ { // paper's 1-indexed node i1
		want := float64(i1 - 1)
		if i1 <= n {
			want = float64(2*n - i1)
		}
		got := ex.Eccentricity(i1 - 1)
		if !almostEq(got.Ecc, want, 1e-9) {
			t.Fatalf("line c(v_%d)=%g, want %g", i1, got.Ecc, want)
		}
	}
	sum := Summarize(ex.Distribution())
	if !almostEq(sum.Radius, float64(n), 1e-9) || !almostEq(sum.Diameter, float64(2*n-1), 1e-9) {
		t.Fatalf("line φ=%g R=%g", sum.Radius, sum.Diameter)
	}
	if len(sum.Center) != 2 {
		t.Fatalf("line should have 2 central nodes, got %v", sum.Center)
	}
}

// TestSimpleGraphsCycle encodes Figure 1(b): the cycle with 2n nodes has
// c(v) = n/2 for every node; all nodes are central.
func TestSimpleGraphsCycle(t *testing.T) {
	const n = 6 // 2n = 12 nodes
	g := graph.Cycle(2 * n)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	dist := ex.Distribution()
	for v, c := range dist {
		if !almostEq(c, float64(n)/2, 1e-9) {
			t.Fatalf("cycle c(%d)=%g, want %g", v, c, float64(n)/2)
		}
	}
	sum := Summarize(dist)
	if len(sum.Center) != 2*n {
		t.Fatalf("all %d cycle nodes central, got %d", 2*n, len(sum.Center))
	}
	if !almostEq(sum.Radius, sum.Diameter, 1e-12) {
		t.Fatal("cycle has φ = R")
	}
}

// TestSimpleGraphsStar encodes Figure 1(c): hub c=1, leaves c=2; φ=1, R=2,
// one central node.
func TestSimpleGraphsStar(t *testing.T) {
	g := graph.Star(12)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	dist := ex.Distribution()
	if !almostEq(dist[0], 1, 1e-9) {
		t.Fatalf("hub c=%g", dist[0])
	}
	for v := 1; v < 12; v++ {
		if !almostEq(dist[v], 2, 1e-9) {
			t.Fatalf("leaf c=%g", dist[v])
		}
	}
	sum := Summarize(dist)
	if !almostEq(sum.Radius, 1, 1e-9) || !almostEq(sum.Diameter, 2, 1e-9) || len(sum.Center) != 1 || sum.Center[0] != 0 {
		t.Fatalf("star summary %+v", sum)
	}
}

func TestExactQueryBatch(t *testing.T) {
	g := graph.Lollipop(5, 3)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	vals := ex.Query([]int{0, 7})
	if len(vals) != 2 || vals[0].Node != 0 || vals[1].Node != 7 {
		t.Fatalf("query batch %v", vals)
	}
	// The path tip (7) has the largest eccentricity in a lollipop.
	if vals[1].Ecc <= vals[0].Ecc {
		t.Fatal("tip should have larger eccentricity than clique node")
	}
	if vals[0].Farthest != 7 {
		t.Fatalf("farthest from clique is the tip, got %d", vals[0].Farthest)
	}
}

func TestExactDisconnected(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExact(g); err == nil {
		t.Fatal("disconnected graph must fail")
	}
}

func TestApproxQueryTracksExact(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 11)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := NewApprox(g, sketch.Options{Epsilon: 0.3, Dim: 800, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	exD := ex.Distribution()
	apD := ap.Distribution()
	sigma, err := RelativeError(apD, exD)
	if err != nil {
		t.Fatal(err)
	}
	// At d=800 the per-pair JL noise is ≈ √(2/d) ≈ 5%, and the max in the
	// eccentricity adds an upward selection bias of a couple of sigmas.
	if sigma > 0.12 {
		t.Fatalf("APPROXQUERY mean relative error %.3f too large", sigma)
	}
	v := ap.Eccentricity(5)
	if v.Node != 5 || v.Ecc <= 0 {
		t.Fatalf("bad value %+v", v)
	}
	if got := ap.Query([]int{1, 2}); len(got) != 2 {
		t.Fatal("batch query")
	}
}

func TestFastQueryTheorem56(t *testing.T) {
	// Theorem 5.6: (1−ε)c(t) ≤ ĉ(t) ≤ (1+ε)c(t) for every node.
	g := graph.BarabasiAlbert(150, 3, 23)
	const eps = 0.3
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFast(g, FastOptions{Sketch: sketch.Options{Epsilon: eps, Dim: 300, Seed: 23}})
	if err != nil {
		t.Fatal(err)
	}
	if f.L() == 0 || f.L() > g.N() {
		t.Fatalf("hull size %d", f.L())
	}
	exD := ex.Distribution()
	fD := f.Distribution()
	for v := range exD {
		if fD[v] < (1-eps)*exD[v] || fD[v] > (1+eps)*exD[v] {
			t.Fatalf("node %d: ĉ=%g outside (1±ε)·c=%g", v, fD[v], exD[v])
		}
	}
}

// TestFastQueryPrunesLongPath: certified hull pruning requires the point-set
// diameter D to dominate local separations (θ·D above the vertex-to-face
// distances of core nodes), which is the large-network regime of §V-C.
// The 1200-node path has D = √1199 ≈ 35, so θ·D ≈ 0.87 exceeds the ≈ 0.71
// displacement of interior path nodes and the certified hull keeps only a
// subsampled boundary.
func TestFastQueryPrunesLongPath(t *testing.T) {
	n := 1200
	g := graph.Path(n)
	f, err := NewFast(g, FastOptions{Sketch: sketch.Options{Epsilon: 0.3, Dim: 96, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if f.L() >= n/2 {
		t.Fatalf("hull boundary %d of %d: no certified pruning", f.L(), n)
	}
	// Endpoint eccentricities stay accurate: c(0) = n−1.
	got := f.Eccentricity(0).Ecc
	if math.Abs(got-float64(n-1))/float64(n-1) > 0.3 {
		t.Fatalf("path endpoint ĉ=%g, want ≈%d", got, n-1)
	}
}

// TestFastQueryCappedHull exercises the practical capped mode used by the
// experiment harness on small graphs: directional extremes alone (uncapped
// certification skipped once the cap binds) still recover eccentricities to
// within the sketch noise on scale-free graphs.
func TestFastQueryCappedHull(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 23)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFast(g, FastOptions{
		Sketch: sketch.Options{Epsilon: 0.3, Dim: 300, Seed: 23},
		Hull:   hull.Options{Theta: 0.3 / 12, MaxVertices: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.L() > 32 {
		t.Fatalf("cap violated: l=%d", f.L())
	}
	exD := ex.Distribution()
	fD := f.Distribution()
	sigma, err := RelativeError(fD, exD)
	if err != nil {
		t.Fatal(err)
	}
	if sigma > 0.25 {
		t.Fatalf("capped-hull relative error %.3f", sigma)
	}
}

func TestFastQueryBatchAndDefaults(t *testing.T) {
	g := graph.Lollipop(8, 5)
	f, err := NewFast(g, FastOptions{
		Sketch: sketch.Options{Epsilon: 0.25, Dim: 128, Seed: 5},
		Hull:   hull.Options{Theta: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := f.Query([]int{0, 12})
	if len(vals) != 2 {
		t.Fatal("batch")
	}
	// Farthest from clique node 0 must be the path tip (node 12).
	if vals[0].Farthest != 12 {
		t.Fatalf("farthest=%d, want 12", vals[0].Farthest)
	}
}

func TestApproxRecc(t *testing.T) {
	g := graph.Path(20)
	c, err := ApproxRecc(context.Background(), g, 0, sketch.Options{Epsilon: 0.3, Dim: 256, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-19)/19 > 0.3 {
		t.Fatalf("ApproxRecc(path end)=%g, want ≈19", c)
	}
	if _, err := ApproxRecc(context.Background(), g, 0, sketch.Options{}); err == nil {
		t.Fatal("invalid sketch options must fail")
	}
}

func TestSummarizeShape(t *testing.T) {
	s := Summarize(nil)
	if s.Radius != 0 && !math.IsInf(s.Radius, 1) {
		t.Fatalf("empty summary %+v", s)
	}
	// Right-skewed sample has positive skewness.
	sample := []float64{1, 1, 1, 1, 1.1, 1.2, 5}
	s = Summarize(sample)
	if s.Skewness <= 0 {
		t.Fatalf("skewness %g, want > 0", s.Skewness)
	}
	if s.Radius != 1 || s.Diameter != 5 {
		t.Fatalf("summary %+v", s)
	}
}

func TestRelativeErrorEdgeCases(t *testing.T) {
	if _, err := RelativeError([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch")
	}
	if _, err := RelativeError([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero exact value")
	}
	sigma, err := RelativeError([]float64{1.1, 0.9}, []float64{1, 1})
	if err != nil || !almostEq(sigma, 0.1, 1e-12) {
		t.Fatalf("sigma %g err %v", sigma, err)
	}
	sigma, err = RelativeError(nil, nil)
	if err != nil || sigma != 0 {
		t.Fatal("empty distributions")
	}
}

// Property: on random scale-free graphs FASTQUERY's ĉ never exceeds
// APPROXQUERY's c̄ (the hull scan is a restriction) and recovers at least
// (1−ε/3) of it (Lemma 5.5).
func TestQuickFastLeqApprox(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(60, 2, seed)
		opt := sketch.Options{Epsilon: 0.3, Dim: 120, Seed: seed}
		fast, err := NewFast(g, FastOptions{Sketch: opt})
		if err != nil {
			return false
		}
		// Reuse the same sketch points: c̄ from a full scan of fast.Sk.
		for v := 0; v < g.N(); v += 7 {
			cbar, _ := fast.Sk.Eccentricity(v)
			chat := fast.Eccentricity(v).Ecc
			if chat > cbar+1e-12 {
				return false
			}
			if chat < (1-0.3/3)*cbar-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionParallelMatchesSerial(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 31)
	f, err := NewFast(g, FastOptions{
		Sketch: sketch.Options{Epsilon: 0.3, Dim: 64, Seed: 31},
		Hull:   hull.Options{MaxVertices: 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := f.Distribution()
	for _, workers := range []int{0, 1, 2, 7, 500} {
		par := f.DistributionParallel(workers)
		for v := range serial {
			if par[v] != serial[v] {
				t.Fatalf("workers=%d node %d: %g vs %g", workers, v, par[v], serial[v])
			}
		}
	}
}

func TestFastDiameter(t *testing.T) {
	g := graph.Path(40)
	f, err := NewFast(g, FastOptions{Sketch: sketch.Options{Epsilon: 0.3, Dim: 256, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d, pair, ok := f.Diameter()
	if !ok {
		t.Fatal("Diameter: no boundary pair on a 40-node path")
	}
	// True resistance diameter of P40 is 39, attained by the endpoints.
	if math.Abs(d-39)/39 > 0.3 {
		t.Fatalf("diameter %g, want ≈39", d)
	}
	if pair.U > 3 || pair.V < 36 {
		t.Fatalf("diameter pair %v should be near the endpoints", pair)
	}
}

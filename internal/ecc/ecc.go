// Package ecc implements the paper's primary contribution: exact and
// approximate query algorithms for resistance eccentricity.
//
//   - ExactQuery (Algorithm 1): dense pseudoinverse preprocessing in O(n³),
//     then O(n) per queried node. Ground truth.
//   - ApproxQuery (Algorithm 2): APPROXER sketch, then an O(n·d) scan per
//     queried node; Õ((m + |Q|·n)/ε²) total.
//   - FastQuery (Algorithm 3): APPROXER sketch + APPROXCH hull, then an
//     O(l·d) scan per queried node over the l hull-boundary embeddings;
//     Õ((m + n·l)/ε² + |Q|·l) total with the (1±ε) guarantee of Thm 5.6.
//   - ApproxRecc (Algorithm 7): single-node APPROXER query used inside the
//     optimization loops.
//
// The package also derives the distribution-level metrics of §III-C/§IV:
// resistance eccentricity distribution E(G), resistance radius φ(G),
// resistance diameter R(G) and the resistance center.
package ecc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/linalg"
	"resistecc/internal/sketch"
)

// Value is one query answer: the (approximate) resistance eccentricity of
// Node and a witness farthest node.
type Value struct {
	Node     int
	Ecc      float64
	Farthest int
}

// Exact holds the EXACTQUERY state: the dense pseudoinverse of the graph
// Laplacian. Building it costs O(n³) time and O(n²) memory; each query then
// costs O(n).
type Exact struct {
	lp *linalg.Dense
}

// NewExact runs the preprocessing step of EXACTQUERY (Algorithm 1, line 1).
func NewExact(g *graph.Graph) (*Exact, error) {
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		return nil, fmt.Errorf("ecc: exact preprocessing: %w", err)
	}
	return &Exact{lp: lp}, nil
}

// NewExactContext is NewExact gated on ctx: the dense O(n³) inversion is
// not interruptible, so cancellation is honoured only before it starts.
func NewExactContext(ctx context.Context, g *graph.Graph) (*Exact, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ecc: exact preprocessing cancelled: %w", err)
	}
	return NewExact(g)
}

// Pinv exposes the pseudoinverse for callers (the optimizer's exact greedy).
func (e *Exact) Pinv() *linalg.Dense { return e.lp }

// Resistance returns the exact r(u,v).
func (e *Exact) Resistance(u, v int) float64 { return linalg.Resistance(e.lp, u, v) }

// Eccentricity returns the exact c(v) and a farthest node.
func (e *Exact) Eccentricity(v int) Value {
	c, far := linalg.EccentricityFromPinv(e.lp, v)
	return Value{Node: v, Ecc: c, Farthest: far}
}

// Query answers EXACTQUERY(G, Q) for a query node set.
func (e *Exact) Query(q []int) []Value {
	out := make([]Value, len(q))
	for i, v := range q {
		out[i] = e.Eccentricity(v)
	}
	return out
}

// Distribution returns the exact E(G) = {c(v) : v ∈ V}.
func (e *Exact) Distribution() []float64 {
	out := make([]float64, e.lp.N)
	for v := 0; v < e.lp.N; v++ {
		out[v], _ = linalg.EccentricityFromPinv(e.lp, v)
	}
	return out
}

// Approx holds the APPROXQUERY state: an APPROXER sketch with no hull.
type Approx struct {
	Sk *sketch.Sketch
}

// NewApprox runs APPROXER (Algorithm 2, lines 1-2).
//
//recclint:ctxroot compatibility shim over NewApproxContext; callers that need cancellation use the Context variant
func NewApprox(g *graph.Graph, opt sketch.Options) (*Approx, error) {
	return NewApproxContext(context.Background(), g, opt)
}

// NewApproxContext is NewApprox with build cancellation.
func NewApproxContext(ctx context.Context, g *graph.Graph, opt sketch.Options) (*Approx, error) {
	sk, err := sketch.NewContext(ctx, g.ToCSR(), opt)
	if err != nil {
		return nil, fmt.Errorf("ecc: approx preprocessing: %w", err)
	}
	return &Approx{Sk: sk}, nil
}

// Eccentricity returns c̄(v) by scanning all n sketched points.
func (a *Approx) Eccentricity(v int) Value {
	c, far := a.Sk.Eccentricity(v)
	return Value{Node: v, Ecc: c, Farthest: far}
}

// Query answers APPROXQUERY(G, Q, ε). It runs on the batched kernel with a
// pooled scratch buffer and returns a freshly allocated slice; results are
// bit-identical to per-node Eccentricity calls.
func (a *Approx) Query(q []int) []Value {
	buf := GetQueryBuf()
	out := append([]Value(nil), a.QueryBatch(q, buf)...)
	buf.Release()
	return out
}

// Distribution returns the approximate E(G) by full scans (Õ(n²) total),
// blocked through the batch kernel.
func (a *Approx) Distribution() []float64 {
	n := a.Sk.N
	out := make([]float64, n)
	arg := make([]int, n)
	a.Sk.EccentricityBatchAll(identity(n), out, arg)
	return out
}

// FastOptions configures FASTQUERY.
type FastOptions struct {
	// Sketch configures APPROXER. Sketch.Epsilon is the overall ε; the hull
	// parameter defaults to θ = ε/12 per Algorithm 3.
	Sketch sketch.Options
	// Hull overrides APPROXCH options. Zero Theta means ε/12.
	Hull hull.Options
}

// Fast holds the FASTQUERY state: sketch plus hull-boundary node subset.
type Fast struct {
	Sk *sketch.Sketch
	// Boundary is Ŝ: the node ids whose embeddings lie on (an approximation
	// of) the convex-hull boundary of the embedded point set.
	Boundary []int
	// HullInfo reports diagnostics from APPROXCH.
	HullInfo *hull.Result
}

// NewFast runs the preprocessing of FASTQUERY (Algorithm 3, lines 1-4):
// the APPROXER sketch followed by APPROXCH on the embedded points.
//
//recclint:ctxroot compatibility shim over NewFastContext; callers that need cancellation use the Context variant
func NewFast(g *graph.Graph, opt FastOptions) (*Fast, error) {
	return NewFastContext(context.Background(), g, opt)
}

// NewFastContext is NewFast with build cancellation: the dominant sketch
// stage aborts between solver rows when ctx is cancelled, so background
// rebuilds (the lifecycle manager) can be torn down mid-flight.
func NewFastContext(ctx context.Context, g *graph.Graph, opt FastOptions) (*Fast, error) {
	hopt, err := hullOptions(opt)
	if err != nil {
		return nil, err
	}
	sk, err := sketch.NewContext(ctx, g.ToCSR(), opt.Sketch)
	if err != nil {
		return nil, fmt.Errorf("ecc: fast preprocessing (sketch): %w", err)
	}
	return NewFastFromSketch(sk, hopt)
}

// hullOptions resolves the APPROXCH parameters from FastOptions, applying
// the paper's θ = ε/12 default and a seed derived from the sketch seed so a
// rebuild of the same graph with the same options is bit-identical. When
// neither an explicit Theta nor a positive Epsilon is available (the
// WithDim-without-WithEpsilon misconfiguration), there is nothing sane to
// derive θ from, so it fails with sketch.ErrBadEpsilon instead of handing
// APPROXCH a degenerate θ = 0 hull.
func hullOptions(opt FastOptions) (hull.Options, error) {
	hopt := opt.Hull
	if hopt.Theta <= 0 {
		if opt.Sketch.Epsilon <= 0 {
			return hull.Options{}, fmt.Errorf("ecc: cannot derive hull θ = ε/12: %w", sketch.ErrBadEpsilon)
		}
		hopt.Theta = opt.Sketch.Epsilon / 12
	}
	if hopt.Seed == 0 {
		hopt.Seed = opt.Sketch.Seed + 1
	}
	return hopt, nil
}

// NewFastFromSketch assembles FASTQUERY state from an existing sketch by
// running APPROXCH on its embedded points. The lifecycle manager uses it to
// re-derive the hull boundary after an incremental embedding update without
// re-sketching. hopt must already be fully resolved (no zero Theta).
func NewFastFromSketch(sk *sketch.Sketch, hopt hull.Options) (*Fast, error) {
	hres, err := hull.Approx(sk.Points(), hopt)
	if err != nil {
		return nil, fmt.Errorf("ecc: fast preprocessing (hull): %w", err)
	}
	return &Fast{Sk: sk, Boundary: hres.Vertices, HullInfo: hres}, nil
}

// HullOptionsFor exposes the resolved hull options for a FastOptions, so
// callers rebuilding the hull incrementally use the exact parameters a full
// build would. It fails with sketch.ErrBadEpsilon when θ cannot be derived.
func HullOptionsFor(opt FastOptions) (hull.Options, error) { return hullOptions(opt) }

// L returns l = |Ŝ|, the number of hull-boundary nodes each query scans.
func (f *Fast) L() int { return len(f.Boundary) }

// Eccentricity returns ĉ(v) = max_{u ∈ Ŝ} r̃(v, u) (Algorithm 3, lines 6-7).
//
//recclint:hotpath
func (f *Fast) Eccentricity(v int) Value {
	c, far := f.Sk.EccentricityOver(v, f.Boundary)
	return Value{Node: v, Ecc: c, Farthest: far}
}

// Query answers FASTQUERY(G, Q, ε). It runs on the batched kernel with a
// pooled scratch buffer and returns a freshly allocated slice; results are
// bit-identical to per-node Eccentricity calls. Callers that control buffer
// lifetime (servers, tight loops) should use QueryBatch directly.
func (f *Fast) Query(q []int) []Value {
	buf := GetQueryBuf()
	out := append([]Value(nil), f.QueryBatch(q, buf)...)
	buf.Release()
	return out
}

// Diameter approximates the resistance diameter R(G) = max_{u,v} r(u,v)
// (Eq. 3) by scanning only hull-boundary pairs: the maximizing pair lies on
// the convex-hull boundary of the embedding, so O(l²) sketched distances
// suffice instead of O(n²). ok is false when no pair exists (a boundary of
// fewer than two nodes — single-node or otherwise degenerate hulls), which
// would otherwise be indistinguishable from a genuine answer (0, {0,0}).
func (f *Fast) Diameter() (diam float64, pair graph.Edge, ok bool) {
	for i := 0; i < len(f.Boundary); i++ {
		for j := i + 1; j < len(f.Boundary); j++ {
			u, v := f.Boundary[i], f.Boundary[j]
			if r := f.Sk.Resistance(u, v); !ok || r > diam {
				diam = r
				pair = graph.Edge{U: u, V: v}.Canon()
				ok = true
			}
		}
	}
	return diam, pair, ok
}

// Distribution returns the approximate E(G) in Õ((m+nl)/ε²) total time,
// blocked through the batch kernel.
func (f *Fast) Distribution() []float64 {
	n := f.Sk.N
	out := make([]float64, n)
	arg := make([]int, n)
	f.Sk.EccentricityBatch(identity(n), f.Boundary, out, arg)
	return out
}

// DistributionParallel computes Distribution with the given worker count
// (0 = GOMAXPROCS). Each worker runs the batch kernel over a disjoint source
// chunk, so the speedup is near-linear; results are bit-identical to the
// serial path.
func (f *Fast) DistributionParallel(workers int) []float64 {
	n := f.Sk.N
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return f.Distribution()
	}
	out := make([]float64, n)
	arg := make([]int, n)
	srcs := identity(n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.Sk.EccentricityBatch(srcs[lo:hi], f.Boundary, out[lo:hi], arg[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// identity returns [0, 1, …, n-1]: the source list for whole-graph batch
// scans.
func identity(n int) []int {
	srcs := make([]int, n)
	for i := range srcs {
		srcs[i] = i
	}
	return srcs
}

// ApproxRecc is Algorithm 7: a one-shot approximate resistance eccentricity
// of a single source, via a fresh APPROXER sketch. The optimization
// algorithms CHMINRECC/MINRECC call this on candidate-augmented graphs, once
// per candidate per round, so the ctx threads cancellation into each inner
// rebuild.
func ApproxRecc(ctx context.Context, g *graph.Graph, s int, opt sketch.Options) (float64, error) {
	sk, err := sketch.NewContext(ctx, g.ToCSR(), opt)
	if err != nil {
		return 0, fmt.Errorf("ecc: ApproxRecc: %w", err)
	}
	c, _ := sk.Eccentricity(s)
	return c, nil
}

// Summary aggregates a resistance eccentricity distribution into the
// graph-level metrics of §III-C.
type Summary struct {
	// Radius is φ(G) = min_v c(v) (Eq. 4).
	Radius float64
	// Diameter is R(G) = max_v c(v) (Eq. 3; R = max_v c(v) by §IV-A).
	Diameter float64
	// Center lists the resistance-central nodes: {u : c(u) = φ(G)} up to
	// CenterTol relative slack for approximate inputs.
	Center []int
	// Mean and Skewness describe the distribution shape (§IV-B analyses
	// asymmetry/right-skew).
	Mean     float64
	Skewness float64
}

// CenterTol is the relative tolerance used to collect resistance-central
// nodes from (possibly approximate) eccentricity values.
const CenterTol = 1e-9

// Summarize computes Summary from a distribution vector (index = node).
func Summarize(dist []float64) Summary {
	var s Summary
	if len(dist) == 0 {
		return s
	}
	s.Radius, s.Diameter = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, c := range dist {
		if c < s.Radius {
			s.Radius = c
		}
		if c > s.Diameter {
			s.Diameter = c
		}
		sum += c
	}
	s.Mean = sum / float64(len(dist))
	// Sample skewness g1 = m3 / m2^{3/2}.
	var m2, m3 float64
	for _, c := range dist {
		d := c - s.Mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= float64(len(dist))
	m3 /= float64(len(dist))
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
	}
	tol := CenterTol * math.Max(1, math.Abs(s.Radius))
	for v, c := range dist {
		if c-s.Radius <= tol {
			s.Center = append(s.Center, v)
		}
	}
	return s
}

// RelativeError computes σ of Eq. (8): the mean relative deviation of the
// approximate distribution from the exact one. Slices must align by node.
func RelativeError(approx, exact []float64) (float64, error) {
	if len(approx) != len(exact) {
		return 0, fmt.Errorf("ecc: distribution length mismatch: %d vs %d", len(approx), len(exact))
	}
	if len(exact) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, c := range exact {
		if c == 0 {
			return 0, fmt.Errorf("ecc: exact eccentricity of node %d is zero", i)
		}
		sum += math.Abs(approx[i]-c) / c
	}
	return sum / float64(len(exact)), nil
}

package ust

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
)

// validateTree checks that parent encodes a spanning tree of g rooted at
// root: n−1 tree edges, all in E, all nodes reach the root.
func validateTree(t *testing.T, g *graph.Graph, parent []int32, root int) {
	t.Helper()
	n := g.N()
	edges := 0
	for v, p := range parent {
		if v == root {
			if p != -1 {
				t.Fatalf("root has parent %d", p)
			}
			continue
		}
		if p < 0 {
			t.Fatalf("node %d has no parent", v)
		}
		if !g.HasEdge(v, int(p)) {
			t.Fatalf("tree edge (%d,%d) not in graph", v, p)
		}
		edges++
	}
	if edges != n-1 {
		t.Fatalf("%d tree edges, want %d", edges, n-1)
	}
	for v := range parent {
		// Walk to the root; must terminate within n steps.
		u, steps := v, 0
		for u != root {
			u = int(parent[u])
			steps++
			if steps > n {
				t.Fatalf("cycle: node %d never reaches root", v)
			}
		}
	}
}

func TestSampleIsSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{
		graph.Path(12), graph.Cycle(9), graph.Complete(7),
		graph.BarabasiAlbert(60, 2, 3), graph.Lollipop(5, 5),
	} {
		parent, err := Sample(g, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		validateTree(t, g, parent, 0)
	}
}

func TestSampleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Sample(graph.New(0), 0, rng); err == nil {
		t.Fatal("empty graph")
	}
	if _, err := Sample(graph.Path(3), 9, rng); err == nil {
		t.Fatal("root out of range")
	}
	d := graph.New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Sample(d, 0, rng); err == nil {
		t.Fatal("disconnected graph")
	}
}

// On a tree, the UST is the graph itself: every edge included always.
func TestEdgeResistancesOnTree(t *testing.T) {
	g := graph.Path(10)
	rs, err := EdgeResistances(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r != 1 {
			t.Fatalf("tree edge %d frequency %g, want 1", i, r)
		}
	}
}

// P[e ∈ UST] = r(e): the Monte-Carlo frequencies must match the exact
// pseudoinverse resistances.
func TestEdgeResistancesMatchExact(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 7)
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	const trees = 4000
	rs, err := EdgeResistances(g, trees, 11)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.ToCSR().EdgeOrder()
	for i, e := range edges {
		want := linalg.Resistance(lp, e.U, e.V)
		// Binomial std ≈ √(p(1−p)/T) ≤ 0.008; allow 5 sigma.
		if math.Abs(rs[i]-want) > 0.045 {
			t.Fatalf("edge %v: UST %g vs exact %g", e, rs[i], want)
		}
	}
	if _, err := EdgeResistances(g, 0, 1); err == nil {
		t.Fatal("zero trees should fail")
	}
}

// Foster's theorem via UST: the tree has exactly n−1 edges, so the
// frequency-sum over edges is exactly n−1 for every sample — the estimator
// satisfies Foster's identity deterministically.
func TestQuickFosterExactUnderUST(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(30, 2, seed)
		rs, err := EdgeResistances(g, 50, seed)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, r := range rs {
			sum += r
		}
		return math.Abs(sum-float64(g.N()-1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSpanningTreesClosedForms(t *testing.T) {
	// Cayley: K_n has n^{n−2} spanning trees.
	for n := 3; n <= 7; n++ {
		got, err := CountSpanningTrees(graph.Complete(n))
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(float64(n), float64(n-2))
		if math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("τ(K%d)=%g, want %g", n, got, want)
		}
	}
	// Cycle C_n has n spanning trees; trees have exactly 1.
	got, err := CountSpanningTrees(graph.Cycle(11))
	if err != nil || math.Abs(got-11) > 1e-9 {
		t.Fatalf("τ(C11)=%g err %v", got, err)
	}
	got, err = CountSpanningTrees(graph.Path(9))
	if err != nil || math.Abs(got-1) > 1e-9 {
		t.Fatalf("τ(P9)=%g err %v", got, err)
	}
	got, err = CountSpanningTrees(graph.New(1))
	if err != nil || got != 1 {
		t.Fatal("τ of a single node is 1")
	}
	if _, err := CountSpanningTrees(graph.New(0)); err == nil {
		t.Fatal("empty graph")
	}
	d := graph.New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	got, err = CountSpanningTrees(d)
	if err != nil || got != 0 {
		t.Fatal("disconnected graph has 0 spanning trees")
	}
}

// Deletion-contraction cross-check: τ(G) relates to edge resistance by
// r(e) = τ(G/e)·? — simpler: P[e ∈ UST] = r(e) also equals
// τ_with_e_contracted / τ(G). Verify via counts on a small graph.
func TestUSTInclusionViaMatrixTree(t *testing.T) {
	// K4 minus one edge: every edge's r(e) from the pseudoinverse must match
	// the ratio #trees containing e / #trees, enumerated via CountSpanningTrees
	// on the contraction.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}})
	total, err := CountSpanningTrees(g)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	// τ(G) for this graph is 8 (computable by hand: K4 has 16, each removed
	// edge kills 8).
	if math.Abs(total-8) > 1e-9 {
		t.Fatalf("τ=%g, want 8", total)
	}
	// Monte-Carlo frequencies against exact r(e).
	rs, err := EdgeResistances(g, 6000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range g.ToCSR().EdgeOrder() {
		want := linalg.Resistance(lp, e.U, e.V)
		if math.Abs(rs[i]-want) > 0.04 {
			t.Fatalf("edge %v: %g vs %g", e, rs[i], want)
		}
	}
}

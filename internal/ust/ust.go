// Package ust implements Wilson's algorithm for sampling uniform spanning
// trees via loop-erased random walks (the paper's reference [36], used by
// [35] to accelerate effective-resistance computation), and the classical
// estimator built on it:
//
//	P[e ∈ UST] = r(e)   for every edge e ∈ E,
//
// i.e. the spanning-edge centrality of an edge equals its effective
// resistance. Sampling T trees estimates all single-edge resistances
// simultaneously in O(T · mean commute time), giving a third, fully
// independent implementation of resistance distances (besides the dense
// pseudoinverse and the JL sketch) — used for cross-validation and as a
// standalone spanning-edge-centrality tool.
package ust

import (
	"fmt"
	"math/rand"

	"resistecc/internal/graph"
)

// Sample draws one uniform spanning tree of the connected graph g rooted at
// root, returning parent[v] = the parent of v in the tree (parent[root] =
// -1). Wilson's algorithm: repeatedly run a loop-erased random walk from an
// unvisited node until it hits the current tree.
func Sample(g *graph.Graph, root int, rng *rand.Rand) ([]int32, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("ust: empty graph")
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("ust: root %d out of range", root)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("ust: graph must be connected")
	}
	parent := make([]int32, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	inTree[root] = true
	// next[v] records the walk's most recent step out of v; loop erasure
	// falls out by retracing next pointers after the walk hits the tree.
	next := make([]int32, n)
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		// Random walk from start until it reaches the tree.
		u := start
		for !inTree[u] {
			nbrs := g.Neighbors(u)
			v := nbrs[rng.Intn(len(nbrs))]
			next[u] = v
			u = int(v)
		}
		// Retrace with loop erasure: follow next pointers, which encode the
		// loop-erased path because later visits overwrote earlier loops.
		u = start
		for !inTree[u] {
			inTree[u] = true
			parent[u] = next[u]
			u = int(next[u])
		}
	}
	return parent, nil
}

// EdgeResistances estimates r(e) for every edge e ∈ E by the UST inclusion
// frequency over `trees` samples. Returned values align with
// g.ToCSR().EdgeOrder(). Standard error per edge is ≤ 1/(2√trees).
func EdgeResistances(g *graph.Graph, trees int, seed int64) ([]float64, error) {
	if trees <= 0 {
		return nil, fmt.Errorf("ust: need a positive tree count")
	}
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	if !g.Connected() {
		return nil, fmt.Errorf("ust: graph must be connected")
	}
	csr := g.ToCSR()
	// Index canonical edges for O(1) lookup of (min,max) pairs.
	edgeIdx := make(map[[2]int32]int, csr.M)
	for i, e := range csr.EdgeOrder() {
		edgeIdx[[2]int32{int32(e.U), int32(e.V)}] = i
	}
	counts := make([]int, csr.M)
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trees; t++ {
		parent, err := Sample(g, rng.Intn(n), rng)
		if err != nil {
			return nil, err
		}
		for v, p := range parent {
			if p < 0 {
				continue
			}
			a, b := int32(v), p
			if a > b {
				a, b = b, a
			}
			idx, ok := edgeIdx[[2]int32{a, b}]
			if !ok {
				return nil, fmt.Errorf("ust: tree edge (%d,%d) not in graph", a, b)
			}
			counts[idx]++
		}
	}
	out := make([]float64, csr.M)
	for i, c := range counts {
		out[i] = float64(c) / float64(trees)
	}
	return out, nil
}

// SpanningEdgeCentrality is an alias of EdgeResistances under its
// graph-mining name (Mavroforakis et al., the paper's reference [34]).
func SpanningEdgeCentrality(g *graph.Graph, trees int, seed int64) ([]float64, error) {
	return EdgeResistances(g, trees, seed)
}

// CountSpanningTrees returns the exact number of spanning trees of small
// graphs via Kirchhoff's matrix-tree theorem (determinant of a Laplacian
// cofactor, computed by fraction-free Gaussian elimination in float64).
// Intended for validation on graphs with up to a few hundred nodes.
func CountSpanningTrees(g *graph.Graph) (float64, error) {
	n := g.N()
	if n == 0 {
		return 0, fmt.Errorf("ust: empty graph")
	}
	if n == 1 {
		return 1, nil
	}
	if !g.Connected() {
		return 0, nil
	}
	// Build the (n−1)×(n−1) cofactor deleting the last row/column.
	m := n - 1
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		a[i][i] = float64(g.Degree(i))
		for _, v := range g.Neighbors(i) {
			if int(v) < m {
				a[i][v] = -1
			}
		}
	}
	// LU with partial pivoting; determinant = product of pivots.
	det := 1.0
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if a[pivot][col] == 0 {
			return 0, nil
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			det = -det
		}
		det *= a[col][col]
		inv := 1 / a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	return det, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

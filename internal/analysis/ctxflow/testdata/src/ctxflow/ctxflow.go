// Fixture for the ctxflow analyzer: context.Background()/TODO() may appear
// only in main or under a justified //recclint:ctxroot directive; everything
// else must thread a caller's ctx.
package main

import (
	"context"
	"net/http"
)

// main is the process root: minting the root context here is the whole point.
func main() {
	ctx := context.Background() // no finding: main is the server layer
	_ = ctx
	todo := context.TODO() // want "context\.TODO\(\) below the server layer"
	_ = todo
	helperNoCtx()
}

// helperNoCtx has no way to receive cancellation; it must either grow a ctx
// parameter or declare itself a root.
func helperNoCtx() {
	ctx := context.Background() // want "context\.Background\(\) below the server layer: accept a context\.Context parameter or declare //recclint:ctxroot"
	_ = ctx
}

// threaded already receives ctx but ignores it.
func threaded(ctx context.Context) error {
	other := context.Background() // want "context\.Background\(\) ignores the ctx parameter already in scope"
	_ = other
	return ctx.Err()
}

// renamedParam uses a non-conventional name; the analyzer names it.
func renamedParam(reqCtx context.Context) {
	_ = context.Background() // want "ignores the reqCtx parameter already in scope"
}

// handler is an HTTP handler: r.Context() is the request-scoped root.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "in an HTTP handler; use r\.Context\(\)"
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// closureCapture: the literal inherits the enclosing function's ctx scope.
func closureCapture(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want "ignores the ctx parameter already in scope"
	}
}

// detachedWorker runs for the process lifetime, independent of any request.
//
//recclint:ctxroot worker lifetime is the process lifetime, detached from the spawning request
func detachedWorker() {
	ctx := context.Background() // no finding: justified root
	_ = ctx
}

// reasonless: directive without justification. // want "recclint:ctxroot needs a reason"
// The directive itself is the finding, and it does not exempt the body.
//
//recclint:ctxroot
func reasonless() {
	_ = context.Background() // want "below the server layer"
}

// suppressed shows a v1-style //recclint:ignore composing with the v2
// analyzer: the finding is silenced with a recorded justification.
func suppressed() {
	//recclint:ignore ctxflow one-shot migration tool; no caller can cancel it
	_ = context.Background()
}

// ctxrootWithTODO: the directive exempts Background only; TODO is always a
// placeholder and stays flagged.
//
//recclint:ctxroot detached maintenance loop
func ctxrootWithTODO() {
	_ = context.Background() // no finding
	_ = context.TODO()       // want "context\.TODO\(\)"
}

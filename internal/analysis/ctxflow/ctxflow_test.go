package ctxflow_test

import (
	"testing"

	"resistecc/internal/analysis/ctxflow"
	"resistecc/internal/analysis/framework"
)

func TestCtxflow(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, ctxflow.Analyzer, framework.FixturePath("ctxflow"))
}

// Package ctxflow implements the recclint check that cancellation reaches
// blocking work: below the server layer, no function may mint a fresh root
// context with context.Background() or context.TODO(). HTTP handlers have
// r.Context(); lifecycle entry points receive a ctx from the caller; library
// code must thread the parameter through. The only legitimate roots are
// main() itself and functions that declare one with a justified
// //recclint:ctxroot <reason> directive — a detached worker whose lifetime
// deliberately outlives the request that spawned it, a ctx-less compatibility
// shim, a shutdown deadline that must outlive the already-cancelled parent.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"resistecc/internal/analysis/framework"
)

const ctxrootDirective = "//recclint:ctxroot"

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background()/TODO() below the server layer; thread ctx or declare //recclint:ctxroot <reason>",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	root, hasReason := ctxroot(fd.Doc)
	if root && !hasReason {
		pass.Reportf(fd.Doc.Pos(), "recclint:ctxroot needs a reason: the directive must justify why %s may mint a root context", fd.Name.Name)
	}
	if fd.Body == nil {
		return
	}
	exempt := (root && hasReason) || isMainFunc(pass, fd)

	// scopes is the lexical stack of enclosing function signatures (the
	// declaration plus any literals), innermost last; ctx/request parameters
	// are searched innermost-first so the fix names the closest one in scope.
	scopes := []*ast.FuncType{fd.Type}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			scopes = append(scopes, n.Type)
			ast.Inspect(n.Body, walk)
			scopes = scopes[:len(scopes)-1]
			return false
		case *ast.CallExpr:
			name := contextRootCall(pass.TypesInfo, n)
			if name == "" {
				return true
			}
			if exempt && name == "Background" {
				return true
			}
			call := "context." + name + "()"
			if ctxName := paramOfType(pass.TypesInfo, scopes, isContextContext); ctxName != "" {
				pass.Report(framework.Diagnostic{
					Pos:     n.Pos(),
					Message: call + " ignores the " + ctxName + " parameter already in scope; thread it instead",
					Fixes: []framework.SuggestedFix{{
						Message: "use the in-scope " + ctxName,
						Edits:   []framework.TextEdit{{Pos: n.Pos(), End: n.End(), NewText: ctxName}},
					}},
				})
				return true
			}
			if reqName := paramOfType(pass.TypesInfo, scopes, isHTTPRequestPtr); reqName != "" {
				pass.Reportf(n.Pos(), "%s in an HTTP handler; use %s.Context() so client disconnects cancel the work", call, reqName)
				return true
			}
			pass.Reportf(n.Pos(), "%s below the server layer: accept a context.Context parameter or declare //recclint:ctxroot <reason> on %s", call, fd.Name.Name)
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// ctxroot reports whether doc carries the ctxroot directive, and whether it
// has the mandatory reason.
func ctxroot(doc *ast.CommentGroup) (present, hasReason bool) {
	if doc == nil {
		return false, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == ctxrootDirective {
			return true, false
		}
		if strings.HasPrefix(text, ctxrootDirective+" ") {
			return true, strings.TrimSpace(strings.TrimPrefix(text, ctxrootDirective)) != ""
		}
	}
	return false, false
}

func isMainFunc(pass *framework.Pass, fd *ast.FuncDecl) bool {
	return pass.Pkg.Name() == "main" && fd.Name.Name == "main" && fd.Recv == nil
}

// contextRootCall returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func contextRootCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return ""
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[pkgIdent].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}

// paramOfType returns the name of the innermost enclosing function parameter
// whose type satisfies match, skipping blank identifiers.
func paramOfType(info *types.Info, scopes []*ast.FuncType, match func(types.Type) bool) string {
	for i := len(scopes) - 1; i >= 0; i-- {
		ft := scopes[i]
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := info.Defs[name]
				if obj != nil && match(obj.Type()) {
					return name.Name
				}
			}
		}
	}
	return ""
}

func isContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

package syncerr

import (
	"testing"

	"resistecc/internal/analysis/framework"
)

func TestSyncerr(t *testing.T) {
	framework.TestAnalyzer(t, Analyzer, framework.FixturePath("syncerr"))
}

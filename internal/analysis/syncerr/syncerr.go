// Package syncerr guards the durability contract of the persist layer: an
// acknowledged write is only durable if every fsync/rename/close error on the
// write path was observed. A discarded (*os.File).Sync or os.Rename error is
// a silent durability hole — the WAL append or snapshot checkpoint reports
// success while the bytes may never reach the platter — so those are flagged
// unconditionally. (*os.File).Close is flagged when the handle was opened
// writable (os.Create, os.CreateTemp, os.OpenFile with a write flag, or an
// origin the analyzer cannot see), because close is where delayed write-back
// errors surface; two shapes are exempt:
//
//   - cleanup on a failure path — a Close inside an `if err != nil` block
//     whose operation already failed cannot lose acknowledged data;
//   - handles opened read-only in the same function via os.Open, where the
//     conventional `defer f.Close()` is harmless.
//
// Anything else needs a //recclint:ignore syncerr <reason> justification.
package syncerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "syncerr",
	Doc:  "check that Sync/Rename/write-path-Close errors are never discarded (crash durability)",
	Run:  run,
}

type openMode int

const (
	modeUnknown openMode = iota // not opened here: treated as writable
	modeRead
	modeWrite
)

func run(pass *framework.Pass) error {
	osPkg := importedPackage(pass.Pkg, "os")
	if osPkg == nil {
		return nil // no os usage, nothing to check
	}
	writeFlags := osFlagMask(osPkg)
	for _, f := range pass.Files {
		modes := collectOpenModes(pass, f, writeFlags)
		framework.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			kind, recv := classify(pass, call)
			if kind == "" {
				return
			}
			if !discarded(call, stack) {
				return
			}
			switch kind {
			case "Sync":
				pass.Reportf(call.Pos(),
					"error from (*os.File).Sync is discarded: an unchecked fsync is a silent durability hole")
			case "Rename":
				pass.Reportf(call.Pos(),
					"error from os.Rename is discarded: the atomic-replace step of a checkpoint must be checked")
			case "Close":
				if onFailurePath(pass, stack) {
					return
				}
				if recv != nil && modes[recv] == modeRead {
					return
				}
				pass.Reportf(call.Pos(),
					"error from (*os.File).Close is discarded on a write path: delayed write-back errors surface at close")
			}
		})
	}
	return nil
}

// classify identifies the durability-relevant call: "Sync"/"Close" on an
// *os.File receiver (recv is the root object of the receiver chain, nil if
// unresolvable) or a plain "Rename" for os.Rename.
func classify(pass *framework.Pass, call *ast.CallExpr) (kind string, recv types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if (sel.Sel.Name == "Sync" || sel.Sel.Name == "Close") && isOSFile(s.Recv()) {
			if id, ok := rootIdent(sel.X); ok {
				recv = pass.TypesInfo.Uses[id]
			}
			return sel.Sel.Name, recv
		}
		return "", nil
	}
	if x, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Rename" {
		if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "os" {
			return "Rename", nil
		}
	}
	return "", nil
}

func isOSFile(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// discarded reports whether the call's error result is thrown away: an
// expression statement, a defer/go statement, or an assignment to blank.
func discarded(call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
			return true
		case *ast.AssignStmt:
			for j, rhs := range p.Rhs {
				if rhs == ast.Expr(call) && j < len(p.Lhs) {
					if id, ok := p.Lhs[j].(*ast.Ident); ok && id.Name == "_" {
						return true
					}
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// onFailurePath reports whether the node sits in the body of an
// `if <err> != nil` block — cleanup after an operation that already failed.
func onFailurePath(pass *framework.Pass, stack []ast.Node) bool {
	for i := 0; i < len(stack)-1; i++ {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok || stack[i+1] != ast.Node(ifStmt.Body) {
			continue
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			continue
		}
		for _, side := range []ast.Expr{cond.X, cond.Y} {
			if t, ok := pass.TypesInfo.Types[side]; ok && t.Type != nil {
				if named, ok := t.Type.(*types.Named); ok && named.Obj().Name() == "error" {
					return true
				}
			}
		}
	}
	return false
}

// collectOpenModes maps local *os.File variables to how they were opened in
// this file: os.Open is read-only; os.Create/os.CreateTemp are writable;
// os.OpenFile follows its flag argument when it is constant.
func collectOpenModes(pass *framework.Pass, f *ast.File, writeFlags int64) map[types.Object]openMode {
	modes := make(map[types.Object]openMode)
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); !ok || pn.Imported().Path() != "os" {
			return true
		}
		var mode openMode
		switch sel.Sel.Name {
		case "Open":
			mode = modeRead
		case "Create", "CreateTemp":
			mode = modeWrite
		case "OpenFile":
			mode = modeWrite
			if len(call.Args) >= 2 {
				if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil {
					if v, exact := constant.Int64Val(tv.Value); exact && v&writeFlags == 0 {
						mode = modeRead
					}
				}
			}
		default:
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			var obj types.Object
			if assign.Tok == token.DEFINE {
				obj = pass.TypesInfo.Defs[id]
			} else {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				modes[obj] = mode
			}
		}
		return true
	})
	return modes
}

// osFlagMask reads O_WRONLY|O_RDWR|O_APPEND|O_CREATE|O_TRUNC from the
// type-checked os package, so the mask matches the target platform.
func osFlagMask(osPkg *types.Package) int64 {
	var mask int64
	for _, name := range []string{"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC"} {
		if c, ok := osPkg.Scope().Lookup(name).(*types.Const); ok {
			if v, exact := constant.Int64Val(c.Val()); exact {
				mask |= v
			}
		}
	}
	return mask
}

// importedPackage finds a direct or transitive import by path.
func importedPackage(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) *types.Package
	find = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if found := find(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return find(pkg)
}

// rootIdent unwraps an expression to its root identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return nil, false // field receiver: origin unknown
		default:
			return nil, false
		}
	}
}

// Package fixture exercises syncerr: discarded Sync/Rename/Close errors in
// every discard shape, the read-only and failure-path exemptions, and the
// OpenFile flag analysis.
package fixture

import (
	"fmt"
	"os"
)

func badSync(f *os.File) {
	f.Sync()       // want "Sync is discarded"
	_ = f.Sync()   // want "Sync is discarded"
	defer f.Sync() // want "Sync is discarded"
	go func() { _ = f }()
}

func goodSync(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	err := f.Sync()
	return err
}

func badRename(a, b string) {
	os.Rename(a, b) // want "Rename is discarded"
}

func goodRename(a, b string) error {
	if err := os.Rename(a, b); err != nil {
		return fmt.Errorf("rename: %w", err)
	}
	return os.Rename(b, a)
}

func badCreateDeferClose(p string) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	defer f.Close() // want "Close is discarded on a write path"
	_, err = fmt.Fprintln(f, "x")
	return err
}

func goodCreateClose(p string) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, "x"); err != nil {
		f.Close() // cleanup after a failed write: exempt
		return err
	}
	return f.Close()
}

func goodReadOnlyClose(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close() // read-only handle: exempt
	var b [8]byte
	_, err = f.Read(b[:])
	return err
}

func badOpenFileWrite(p string) error {
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "Close is discarded on a write path"
	_, err = f.WriteString("x")
	return err
}

func goodOpenFileRead(p string) error {
	f, err := os.OpenFile(p, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close() // read flags only: exempt
	var b [4]byte
	_, err = f.Read(b[:])
	return err
}

// badUnknownOrigin: a handle whose origin the analyzer cannot see is treated
// as writable.
func badUnknownOrigin(f *os.File) {
	f.Close() // want "Close is discarded on a write path"
}

func suppressedClose(f *os.File) {
	//recclint:ignore syncerr scratch file for a test; its contents are never read back
	f.Close()
}

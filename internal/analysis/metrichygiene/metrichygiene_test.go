package metrichygiene_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/metrichygiene"
)

func TestMetricHygiene(t *testing.T) {
	framework.TestAnalyzer(t, metrichygiene.Analyzer, framework.FixturePath("metrichygiene"))
}

// Package metrichygiene enforces the obs metrics registry conventions at
// every registration call site, program-wide:
//
//   - the metric name is a compile-time constant string — dynamically
//     constructed names ("backend_healthy_"+i) are unbounded cardinality and
//     break dashboards; varying dimensions belong in a label
//     (SetLabeledGaugeFunc), not the name;
//   - names are snake_case with a subsystem prefix: at least two [a-z0-9]+
//     segments, so every series sorts under its subsystem in the exposition;
//   - the call style matches the metric kind: SetCounterFunc names end in
//     _total (Prometheus counter convention), gauge registrations never do;
//   - each name has exactly one registration site in the whole program — two
//     packages fighting over one series is a bug even when only one runs per
//     process role.
//
// The obs package itself (the registry implementation) is exempt; it owns
// the built-in requests/latency/in-flight series.
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name:       "metrichygiene",
	Doc:        "obs metric registrations: constant snake_case names with a subsystem prefix, counter/gauge style, one site per name",
	RunProgram: runProgram,
}

// nameRe: snake_case with at least two segments (subsystem prefix + name).
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// registrarMethods maps obs.Registry method → whether it registers a counter.
var registrarMethods = map[string]bool{
	"SetGauge":            false,
	"SetGaugeFunc":        false,
	"SetLabeledGaugeFunc": false,
	"SetCounterFunc":      true,
}

type site struct {
	pos   token.Pos
	where token.Position
}

func runProgram(pass *framework.ProgramPass) error {
	// name → every static registration site, across all packages.
	sites := make(map[string][]site)

	for _, pkg := range pass.Pkgs {
		if definesRegistry(pkg.Types) {
			continue // the registry implementation owns its built-in series
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				isCounter, ok := registrarMethods[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || !isRegistryMethod(fn) {
					return true
				}
				nameArg := call.Args[0]
				tv, ok := pkg.TypesInfo.Types[nameArg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(nameArg.Pos(),
						"metric name is not a compile-time constant (cardinality guard): put the varying dimension in a label (SetLabeledGaugeFunc), not the name")
					return true
				}
				name := constant.StringVal(tv.Value)
				if !nameRe.MatchString(name) {
					pass.Reportf(nameArg.Pos(),
						"metric name %q is not snake_case with a subsystem prefix (want two or more [a-z0-9]+ segments)", name)
				} else if isCounter && !strings.HasSuffix(name, "_total") {
					pass.Reportf(nameArg.Pos(), "counter %q must end in _total", name)
				} else if !isCounter && strings.HasSuffix(name, "_total") {
					pass.Reportf(nameArg.Pos(), "gauge %q must not end in _total (counter-style name on a gauge registration)", name)
				}
				sites[name] = append(sites[name], site{
					pos:   nameArg.Pos(),
					where: pass.Fset.Position(nameArg.Pos()),
				})
				return true
			})
		}
	}

	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := sites[name]
		if len(ss) < 2 {
			continue
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
		first := ss[0].where
		for _, s := range ss[1:] {
			pass.Reportf(s.pos,
				"metric %q is already registered at %s:%d: each name must have exactly one registration site", name, first.Filename, first.Line)
		}
	}
	return nil
}

// definesRegistry reports whether pkg is the registry implementation (it
// declares the Registry type the registrar methods hang off).
func definesRegistry(pkg *types.Package) bool {
	if pkg == nil || pkg.Name() != "obs" {
		return false
	}
	obj := pkg.Scope().Lookup("Registry")
	_, ok := obj.(*types.TypeName)
	return ok
}

// isRegistryMethod reports whether fn is a method on obs.Registry.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

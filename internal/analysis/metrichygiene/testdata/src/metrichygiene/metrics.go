// Fixture for the metrichygiene analyzer: obs registry registrations must
// use constant snake_case names with a subsystem prefix, counter names end
// in _total, gauges never do, and each name has exactly one site.
package fixture

import (
	"strconv"

	"resistecc/internal/obs"
)

func one() float64 { return 1 }

func publish(reg *obs.Registry, backends int) {
	reg.SetGauge("index_nodes", 1)
	reg.SetGaugeFunc("index_generation", one)
	reg.SetCounterFunc("wal_records_total", one)
	for i := 0; i < backends; i++ {
		reg.SetLabeledGaugeFunc("router_backend_healthy", "backend", strconv.Itoa(i), one)
	}

	reg.SetGauge("sketchDim", 1)  // want "not snake_case with a subsystem prefix"
	reg.SetGauge("nodes", 1)      // want "not snake_case with a subsystem prefix"
	reg.SetGauge("index__bad", 1) // want "not snake_case with a subsystem prefix"

	reg.SetCounterFunc("wal_records", one) // want "counter \"wal_records\" must end in _total"
	reg.SetGaugeFunc("queue_total", one)   // want "gauge \"queue_total\" must not end in _total"
	reg.SetGauge("index_built_total", 1)   // want "gauge \"index_built_total\" must not end in _total"

	for i := 0; i < backends; i++ {
		reg.SetGaugeFunc("backend_healthy_"+strconv.Itoa(i), one) // want "not a compile-time constant"
	}
}

func publishAgain(reg *obs.Registry) {
	reg.SetGauge("index_nodes", 2) // want "metric \"index_nodes\" is already registered"
	//recclint:ignore metrichygiene exercising the suppression path
	reg.SetGauge("not_snake!", 1)
}

// Package fixture exercises floateq: computed-value comparisons are flagged,
// constant-sentinel checks and bit/epsilon comparisons are not.
package fixture

import "math"

const tol = 1e-9

func badEq(a, b float64) bool {
	return a == b // want "floating-point == between computed values"
}

func badNeq(a, b float64) bool {
	return a != b // want "floating-point != between computed values"
}

func badFloat32(a, b float32) bool {
	return a == b // want "floating-point == between computed values"
}

// sentinel checks against a compile-time constant are the idiomatic
// "option unset" shape and stay legal.
func sentinel(theta float64) bool {
	return theta == 0
}

func namedConstSentinel(x float64) bool {
	return x != tol
}

// bits is the sanctioned bit-identity comparison: uint64 operands.
func bits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// epsilon is the sanctioned tolerance comparison.
func epsilon(a, b float64) bool {
	return math.Abs(a-b) < tol
}

func ints(a, b int) bool { return a == b }

func badSwitch(x float64) int {
	switch x { // want "switch on a floating-point value"
	case 1:
		return 1
	default:
		return 0
	}
}

func goodSwitch(x float64) int {
	switch {
	case x < 0:
		return -1
	default:
		return 1
	}
}

func suppressed(a, b float64) bool {
	//recclint:ignore floateq the operands are copies of one bit pattern; equality is exact by construction
	return a == b
}

// Package floateq forbids == and != between floating-point expressions, and
// switch statements over floating-point values. The repository's durability
// contract says a warm restore answers *bit-identically* to the index that
// was checkpointed; tests and invariants that compare floats with == are
// ambiguous about -0 vs 0 and NaN and rot silently when a computation is
// reordered. Bit-identity comparisons must go through math.Float64bits (as
// the snapshot encoder does) and tolerance comparisons through an explicit
// epsilon.
//
// Comparisons where either operand is a compile-time constant are allowed:
// `if opt.Theta == 0` is the idiomatic "option unset" sentinel check, not a
// numeric comparison of two computed values. Everything else needs a
// //recclint:ignore floateq <reason> justification.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= between computed floating-point values (use math.Float64bits or an epsilon)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if !isFloat(pass, x.X) && !isFloat(pass, x.Y) {
					return true
				}
				if isConst(pass, x.X) || isConst(pass, x.Y) {
					return true
				}
				pass.Reportf(x.OpPos,
					"floating-point %s between computed values: compare math.Float64bits for bit identity or use an explicit epsilon", x.Op)
			case *ast.SwitchStmt:
				if x.Tag != nil && isFloat(pass, x.Tag) && !isConst(pass, x.Tag) {
					pass.Reportf(x.Switch,
						"switch on a floating-point value compares with ==: use explicit comparisons instead")
				}
			}
			return true
		})
	}
	return nil
}

func isFloat(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

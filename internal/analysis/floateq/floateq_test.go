package floateq

import (
	"testing"

	"resistecc/internal/analysis/framework"
)

func TestFloateq(t *testing.T) {
	framework.TestAnalyzer(t, Analyzer, framework.FixturePath("floateq"))
}

// Package compose proves the v1 directive surface still composes with the
// v2 dataflow analyzers: one //recclint:holds annotation satisfies both
// lockguard (v1, field guarding) and lockorder (v2, entry lock set); one
// //recclint:ignore line silences a v2 finding exactly like a v1 finding;
// //recclint:lockrank, ctxroot and hotpath coexist in one file. The whole
// suite must report zero findings here.
package compose

import (
	"context"
	"os"
	"sync"
)

// The intended global order: the outer pair lock before the inner one.
//
//recclint:lockrank compose.pair.mu < compose.pair.inner

type pair struct {
	mu    sync.Mutex
	inner sync.Mutex
	n     int // guarded by mu
}

// bump takes both locks in the declared order: clean for lockguard (mu held
// around the n access) and for lockorder (edge mu < inner matches the rank).
func (p *pair) bump() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inner.Lock()
	p.n++
	p.inner.Unlock()
}

// bumpHeld documents that callers already hold mu. The single v1 holds
// directive does double duty: lockguard accepts the unlocked n access, and
// lockorder seeds its entry set with compose.pair.mu, so acquiring inner
// here is checked against (and satisfies) the declared rank.
//
//recclint:holds mu
func (p *pair) bumpHeld() {
	p.inner.Lock()
	p.n++
	p.inner.Unlock()
}

// leaky demonstrates a v1-style suppression silencing a v2 analyzer: the
// file handle is deliberately leaked and the ignore line carries the why.
func leaky(path string) *os.File {
	//recclint:ignore mustclose fixture: the process-lifetime handle is closed by exit
	f, _ := os.Open(path)
	return f
}

// worker shows ctxroot composing in the same file: a detached root context
// below the server layer, justified in place.
//
//recclint:ctxroot fixture: the worker owns its lifetime, no caller to inherit from
func worker() context.Context {
	return context.Background()
}

// dot is hotpath-annotated and allocation-free, so hotpath stays silent.
//
//recclint:hotpath
func dot(a, b []float64) float64 {
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Package determinism polices the build/serialize paths whose outputs must
// be reproducible: a rebuild must be bit-identical to a cold build with the
// same seeds, and a snapshot encoding must be byte-identical for the same
// state. Files opt in with a standalone
//
//	//recclint:deterministic
//
// comment (internal/sketch and the persist snapshot/WAL encoders carry it).
// Inside a marked file the analyzer forbids the three stdlib trapdoors
// through which nondeterminism sneaks into serialized output:
//
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - the global math/rand source (rand.Intn and friends on the package);
//     explicitly seeded generators via rand.New(rand.NewSource(seed)) stay
//     legal — seeded randomness is how the sketch is *supposed* to work;
//   - ranging over a map, whose iteration order reshuffles per run.
//
// Violations that are genuinely harmless must say why with a
// //recclint:ignore determinism <reason> directive.
package determinism

import (
	"go/ast"
	"go/types"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand and map iteration in //recclint:deterministic files",
	Run:  run,
}

const directive = "//recclint:deterministic"

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared, non-reproducible source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true, "IntN": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if !framework.HasFileDirective(f, directive) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				pkgPath, ok := packageQualifier(pass, x)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "time" && bannedTimeFuncs[x.Sel.Name]:
					pass.Reportf(x.Pos(),
						"time.%s in a deterministic path: wall-clock values must not feed serialized or rebuilt state", x.Sel.Name)
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[x.Sel.Name]:
					pass.Reportf(x.Pos(),
						"rand.%s uses the global math/rand source: deterministic paths must use rand.New(rand.NewSource(seed))", x.Sel.Name)
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(x.For,
							"map iteration in a deterministic path reorders per run: collect and sort the keys first")
					}
				}
			}
			return true
		})
	}
	return nil
}

// packageQualifier resolves sel's X to an imported package path when the
// selector is a package-qualified reference.
func packageQualifier(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

package determinism

import (
	"testing"

	"resistecc/internal/analysis/framework"
)

func TestDeterminism(t *testing.T) {
	framework.TestAnalyzer(t, Analyzer, framework.FixturePath("determinism"))
}

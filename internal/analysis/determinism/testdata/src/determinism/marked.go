//recclint:deterministic — fixture: this file opts in to the determinism check.

// Package fixture exercises determinism inside a marked file.
package fixture

import (
	"math/rand"
	"time"
)

func badNow() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic path"
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in a deterministic path"
}

func badGlobalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the global math/rand source"
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle uses the global math/rand source"
}

// goodSeededRand is how the sketch actually draws randomness: an explicit
// seed makes the stream reproducible, so it stays legal.
func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// goodExplicitInstant: constructing a time from given components reads no
// clock.
func goodExplicitInstant(ns int64) time.Time {
	return time.Unix(0, ns)
}

func badMapRange(m map[string]int) int {
	s := 0
	for _, v := range m { // want "map iteration in a deterministic path"
		s += v
	}
	return s
}

func goodSliceRange(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

func suppressedMapRange(m map[string]bool) int {
	n := 0
	//recclint:ignore determinism cardinality only: the iteration order cannot reach the output
	for range m {
		n++
	}
	return n
}

package fixture

import (
	"math/rand"
	"time"
)

// unmarkedClock shows the analyzer is strictly opt-in: this file carries no
// //recclint:deterministic comment (the reference in this sentence is inside
// a doc comment, not standalone, and deliberately does not count), so the
// wall clock, the global rand source and map iteration all pass unflagged.
func unmarkedClock() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(3))
}

func unmarkedMapRange(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}

// Package atomicmix implements the recclint atomics-hygiene check. Mixing
// sync/atomic operations with plain loads and stores of the same word is a
// data race that the memory model gives no meaning to, and it usually enters
// a codebase gradually: one hot-path counter gets an atomic.AddUint64, the
// snapshot code keeps reading the field bare. The rules:
//
//   - A field touched by any sync/atomic call must be touched *only* through
//     sync/atomic: every plain read or write of the same field elsewhere in
//     the program is reported.
//   - Legacy call-style atomics (atomic.AddUint64(&s.n, 1)) on fields that
//     are consistently atomic are reported with an autofix migrating the
//     field to the typed atomics (atomic.Uint64) introduced in Go 1.19 —
//     typed fields make the race in rule 1 unrepresentable. The fix is
//     Minimal: it rewrites the declaration and each call site in place
//     without reformatting the file.
//   - A plain bool field written next to a `go` statement and read from
//     another function with no lock held and no `guarded by` annotation is a
//     cross-goroutine latch; the write is reported (make it atomic.Bool).
package atomicmix

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"resistecc/internal/analysis/dataflow"
	"resistecc/internal/analysis/framework"
)

// Analyzer is the atomicmix check.
var Analyzer = &framework.Analyzer{
	Name:       "atomicmix",
	Doc:        "sync/atomic hygiene: atomically accessed fields are never accessed plainly, legacy call-style atomics migrate to typed atomics (autofix), cross-goroutine bool latches become atomic.Bool",
	RunProgram: run,
}

// legacyType maps the type suffix of legacy atomic functions to the typed
// replacement and the underlying basic kind it applies to.
var legacyType = map[string]struct {
	typed string
	kind  types.BasicKind
}{
	"Int32":   {"atomic.Int32", types.Int32},
	"Int64":   {"atomic.Int64", types.Int64},
	"Uint32":  {"atomic.Uint32", types.Uint32},
	"Uint64":  {"atomic.Uint64", types.Uint64},
	"Uintptr": {"atomic.Uintptr", types.Uintptr},
}

// legacyOp maps legacy atomic function prefixes to the typed method name.
var legacyOp = map[string]string{
	"Load":           "Load",
	"Store":          "Store",
	"Add":            "Add",
	"Swap":           "Swap",
	"CompareAndSwap": "CompareAndSwap",
}

// legacyCall is one call-style sync/atomic operation on a keyable location.
type legacyCall struct {
	call   *ast.CallExpr
	pkg    *framework.Package
	op     string // typed method name
	suffix string // type suffix: Uint64, Int32...
	target ast.Expr
}

func run(pass *framework.ProgramPass) error {
	calls, atomicSpans := indexLegacyCalls(pass)
	reportPlainAccess(pass, calls, atomicSpans)
	reportMigrations(pass, calls, atomicSpans)
	reportLatches(pass)
	return nil
}

// splitLegacyName decomposes e.g. "AddUint64" into ("Add", "Uint64").
func splitLegacyName(name string) (op, suffix string, ok bool) {
	for p, method := range legacyOp {
		if strings.HasPrefix(name, p) {
			if _, known := legacyType[name[len(p):]]; known {
				return method, name[len(p):], true
			}
		}
	}
	return "", "", false
}

// indexLegacyCalls finds every legacy sync/atomic call whose pointer argument
// is &<keyable location>, keyed by location, and records the source span of
// each call so plain-access scanning can exclude the operand uses inside it.
func indexLegacyCalls(pass *framework.ProgramPass) (map[string][]legacyCall, map[string][][2]token.Pos) {
	calls := make(map[string][]legacyCall)
	spans := make(map[string][][2]token.Pos)
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pn, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					return true
				}
				if name, ok := info.Uses[pn].(*types.PkgName); !ok || name.Imported().Path() != "sync/atomic" {
					return true
				}
				op, suffix, ok := splitLegacyName(sel.Sel.Name)
				if !ok {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				key, ok := dataflow.ObjKey(info, addr.X)
				if !ok {
					return true
				}
				calls[key] = append(calls[key], legacyCall{call: call, pkg: pkg, op: op, suffix: suffix, target: addr.X})
				spans[key] = append(spans[key], [2]token.Pos{call.Pos(), call.End()})
				return true
			})
		}
	}
	return calls, spans
}

func inSpans(spans [][2]token.Pos, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// reportPlainAccess flags every use of an atomically accessed location that
// is not itself inside a legacy atomic call on that location. plainUses
// returns the offending positions so reportMigrations can tell consistently
// atomic fields (fixable) from mixed ones (not).
func reportPlainAccess(pass *framework.ProgramPass, calls map[string][]legacyCall, spans map[string][][2]token.Pos) {
	for key, uses := range plainUses(pass, calls, spans) {
		for _, pos := range uses {
			pass.Reportf(pos, "plain access of %s races with its sync/atomic accesses elsewhere; every access to an atomic word must go through sync/atomic", key)
		}
	}
}

// plainUses finds, for each atomically accessed key, the positions of
// accesses outside any atomic call. Declarations do not count as accesses.
func plainUses(pass *framework.ProgramPass, calls map[string][]legacyCall, spans map[string][][2]token.Pos) map[string][]token.Pos {
	out := make(map[string][]token.Pos)
	if len(calls) == 0 {
		return out
	}
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				switch e.(type) {
				case *ast.SelectorExpr, *ast.Ident:
				default:
					return true
				}
				// Only uses, not declarations: an Ident that is a Def (the
				// field or var declaration itself) is skipped below via ObjKey
				// + position checks.
				key, ok := dataflow.ObjKey(info, e)
				if !ok {
					return true
				}
				if _, tracked := calls[key]; !tracked {
					return true
				}
				if id, isIdent := e.(*ast.Ident); isIdent {
					if _, isDef := info.Defs[id]; isDef {
						return true
					}
				}
				if inSpans(spans[key], e.Pos()) {
					return true
				}
				out[key] = append(out[key], e.Pos())
				// A SelectorExpr's inner Ident would double-report; stop here.
				return false
			})
		}
	}
	for key := range out {
		sort.Slice(out[key], func(i, j int) bool { return out[key][i] < out[key][j] })
	}
	return out
}

// reportMigrations reports each consistently atomic field still using legacy
// call-style atomics, with a Minimal autofix to the typed atomic: the field
// declaration's type is rewritten and every call site becomes a method call.
func reportMigrations(pass *framework.ProgramPass, calls map[string][]legacyCall, spans map[string][][2]token.Pos) {
	mixed := plainUses(pass, calls, spans)
	fields := indexFields(pass)
	keys := make([]string, 0, len(calls))
	for k := range calls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if len(mixed[key]) > 0 {
			continue // rule 1 already reported; migrating now would break the plain sites
		}
		fld, ok := fields[key]
		if !ok || len(fld.field.Names) != 1 {
			continue // package vars and multi-name declarations: report-only is still wrong; skip
		}
		sites := calls[key]
		// Every call must use the same type suffix (it does if the program
		// compiles) and the declared type must be the matching basic kind.
		suffix := sites[0].suffix
		lt := legacyType[suffix]
		basic, ok := fld.typ.Underlying().(*types.Basic)
		if !ok || basic.Kind() != lt.kind {
			continue
		}
		if !importsAtomic(fld.file) {
			continue // the fix could not name atomic.Uint64 in that file
		}
		fix := framework.SuggestedFix{
			Message: "migrate " + key + " to " + lt.typed,
			Minimal: true,
			Edits: []framework.TextEdit{{
				Pos:     fld.field.Type.Pos(),
				End:     fld.field.Type.End(),
				NewText: lt.typed,
			}},
		}
		ok = true
		for _, c := range sites {
			edit, eok := rewriteCall(pass.Fset, c)
			if !eok {
				ok = false
				break
			}
			fix.Edits = append(fix.Edits, edit)
		}
		if !ok {
			continue
		}
		pass.Report(framework.Diagnostic{
			Pos: fld.field.Pos(),
			Message: key + " is accessed only through call-style sync/atomic; declare it " + lt.typed +
				" so a plain access cannot compile",
			Fixes: []framework.SuggestedFix{fix},
		})
	}
}

// rewriteCall renders atomic.AddUint64(&s.n, v) as s.n.Add(v).
func rewriteCall(fset *token.FileSet, c legacyCall) (framework.TextEdit, bool) {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, c.target); err != nil {
		return framework.TextEdit{}, false
	}
	buf.WriteString("." + c.op + "(")
	for i, arg := range c.call.Args[1:] {
		if i > 0 {
			buf.WriteString(", ")
		}
		if err := printer.Fprint(&buf, fset, arg); err != nil {
			return framework.TextEdit{}, false
		}
	}
	buf.WriteString(")")
	return framework.TextEdit{Pos: c.call.Pos(), End: c.call.End(), NewText: buf.String()}, true
}

// fieldDecl ties a canonical field key to its declaration site.
type fieldDecl struct {
	field   *ast.Field
	typ     types.Type
	file    *ast.File
	guarded bool // carries a "guarded by" annotation
}

// indexFields maps every single-struct field key in the program to its
// declaration, recording whether its doc or line comment declares a lock
// guard ("guarded by mu" — the idiom lockguard enforces).
func indexFields(pass *framework.ProgramPass) map[string]fieldDecl {
	out := make(map[string]fieldDecl)
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				tn, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					return true
				}
				named := dataflow.NamedOf(tn.Type())
				if named == nil {
					return true
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						v, ok := info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						out[dataflow.FieldKey(named, v)] = fieldDecl{
							field:   f,
							typ:     v.Type(),
							file:    file,
							guarded: guardedComment(f),
						}
					}
				}
				return true
			})
		}
	}
	return out
}

func guardedComment(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg != nil && strings.Contains(strings.ToLower(cg.Text()), "guarded by") {
			return true
		}
	}
	return false
}

func importsAtomic(file *ast.File) bool {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"sync/atomic"` {
			return true
		}
	}
	return false
}

// reportLatches flags plain writes to unguarded bool fields in functions
// that spawn goroutines, when another function reads the same field: the
// classic started/closed latch that needs atomic.Bool (or the lock the
// annotation would name).
func reportLatches(pass *framework.ProgramPass) {
	fields := indexFields(pass)

	// Which functions reference which field keys (reads or writes).
	readers := make(map[string]map[*ast.FuncDecl]bool)
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if key, ok := dataflow.ObjKey(info, sel); ok {
						if readers[key] == nil {
							readers[key] = make(map[*ast.FuncDecl]bool)
						}
						readers[key][fd] = true
					}
					return true
				})
			}
		}
	}
	for _, pkg := range pass.Pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !spawns(fd.Body) || locks(fd.Body) {
					continue
				}
				checkLatchWrites(pass, info, fd, fields, readers)
			}
		}
	}
}

func checkLatchWrites(pass *framework.ProgramPass, info *types.Info, fd *ast.FuncDecl,
	fields map[string]fieldDecl, readers map[string]map[*ast.FuncDecl]bool) {

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // the goroutine's own writes are a different story
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			key, ok := dataflow.ObjKey(info, sel)
			if !ok {
				continue
			}
			fld, ok := fields[key]
			if !ok || fld.guarded {
				continue
			}
			basic, ok := fld.typ.Underlying().(*types.Basic)
			if !ok || basic.Kind() != types.Bool {
				continue
			}
			others := 0
			for r := range readers[key] {
				if r != fd {
					others++
				}
			}
			if others == 0 {
				continue
			}
			pass.Reportf(lhs.Pos(),
				"%s is a cross-goroutine latch: written here beside a go statement and read in %d other function(s) with no lock and no guarded-by annotation; make it atomic.Bool or name its lock",
				key, others)
		}
		return true
	})
}

// spawns reports whether body contains a go statement.
func spawns(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// locks reports whether body calls a Lock or RLock method — a function that
// takes any lock is assumed to be guarding its writes (lockguard checks that
// the right one is held).
func locks(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}

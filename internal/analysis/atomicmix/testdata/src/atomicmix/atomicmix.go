// Package atomicmix is the analyzer fixture: each declaration pins one
// flagging or non-flagging behavior of the atomics-hygiene check.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// C mixes call-style atomic access with a bare read of the same word.
type C struct {
	hits uint64
}

func (c *C) Incr() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *C) Snapshot() uint64 {
	return c.hits // want "plain access of atomicmix.C.hits races"
}

// G is consistently atomic but stuck on call-style atomics; the finding
// carries the typed-atomics migration fix.
type G struct {
	n uint64 // want "accessed only through call-style sync/atomic"
}

func (g *G) Add(d uint64) uint64 {
	return atomic.AddUint64(&g.n, d)
}

func (g *G) Load() uint64 {
	return atomic.LoadUint64(&g.n)
}

// L flips a plain bool latch beside a spawn and reads it elsewhere.
type L struct {
	started bool
	done    chan struct{}
}

func (l *L) Start() {
	l.started = true // want "cross-goroutine latch"
	go func() {
		close(l.done)
	}()
}

func (l *L) Wait() {
	if l.started {
		<-l.done
	}
}

// M is fine: the guarded-by annotation names the lock; lockguard owns the
// discipline from there.
type M struct {
	mu      sync.Mutex
	running bool // guarded by mu
}

func (m *M) Start() {
	m.mu.Lock()
	m.running = true
	m.mu.Unlock()
	go func() {}()
}

func (m *M) Running() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// T is fine: typed atomics make the mixed-access race unrepresentable.
type T struct {
	ready atomic.Bool
}

func (t *T) Start() {
	t.ready.Store(true)
	go func() {}()
}

func (t *T) Ready() bool { return t.ready.Load() }

// P shows the generic escape hatch: an ignore directive with a
// justification silences the latch finding.
type P struct {
	on   bool
	done chan struct{}
}

func (p *P) Start() {
	//recclint:ignore atomicmix single-goroutine harness sets the flag before any reader exists
	p.on = true
	go func() { close(p.done) }()
}

func (p *P) On() bool { return p.on }

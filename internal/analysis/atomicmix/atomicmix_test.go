package atomicmix_test

import (
	"path/filepath"
	"strings"
	"testing"

	"resistecc/internal/analysis/atomicmix"
	"resistecc/internal/analysis/framework"
)

func TestAtomicmix(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, atomicmix.Analyzer, framework.FixturePath("atomicmix"))
}

// TestMigrationFix pins the shape of the typed-atomics autofix: it must be
// Minimal (no whole-file reformat on apply) and rewrite both the field
// declaration and every call site.
func TestMigrationFix(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	root, err := framework.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(framework.FixturePath("atomicmix"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := framework.LoadDir(root, abs)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := framework.RunAnalyzers([]*framework.Package{pkg}, []*framework.Analyzer{atomicmix.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var fix *framework.ResolvedFix
	for i := range findings {
		if strings.Contains(findings[i].Message, "accessed only through call-style") {
			if len(findings[i].Fixes) != 1 {
				t.Fatalf("migration finding carries %d fixes, want 1", len(findings[i].Fixes))
			}
			fix = &findings[i].Fixes[0]
		}
	}
	if fix == nil {
		t.Fatal("no migration finding with a fix")
	}
	if !fix.Minimal {
		t.Error("migration fix is not Minimal; applying it would reformat the whole file")
	}
	var texts []string
	for _, e := range fix.Edits {
		texts = append(texts, e.NewText)
	}
	joined := strings.Join(texts, "\n")
	for _, want := range []string{"atomic.Uint64", "g.n.Add(d)", "g.n.Load()"} {
		if !strings.Contains(joined, want) {
			t.Errorf("fix edits missing %q; got:\n%s", want, joined)
		}
	}
	if len(fix.Edits) != 3 {
		t.Errorf("got %d edits (decl + 2 call sites expected): %v", len(fix.Edits), texts)
	}
}

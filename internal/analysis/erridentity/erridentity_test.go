package erridentity_test

import (
	"testing"

	"resistecc/internal/analysis/erridentity"
	"resistecc/internal/analysis/framework"
)

func TestErrIdentity(t *testing.T) {
	framework.TestAnalyzer(t, erridentity.Analyzer, framework.FixturePath("erridentity"))
}

// Fixture for the erridentity analyzer: identity comparisons and type
// dispatch on error values must go through errors.Is / errors.As, except
// inside the package that defines the sentinel or the asserted type.
package fixture

import (
	"errors"
	"io"
	"os"
)

// ErrLocal is this package's own sentinel; identity checks against it are
// the definition-package exemption.
var ErrLocal = errors.New("local")

type parseError struct{ msg string }

func (e *parseError) Error() string { return e.msg }

func compare(err error) bool {
	if err == io.EOF { // want "error compared with ==: use errors.Is"
		return true
	}
	if io.EOF == err { // want "error compared with ==: use errors.Is"
		return true
	}
	if err != io.ErrUnexpectedEOF { // want "error compared with !=: use errors.Is"
		return false
	}
	if errors.Is(err, io.EOF) { // the sanctioned form
		return true
	}
	if err == nil { // nil success test is idiomatic
		return true
	}
	if err == ErrLocal { // definition-package exemption
		return true
	}
	var other error
	return err == other // want "error compared with ==: use errors.Is"
}

func dispatch(err error) string {
	switch err.(type) { // want "type switch on an error value: use errors.As"
	case *os.PathError:
		return "path"
	case nil:
		return ""
	default:
		return "other"
	}
}

func dispatchLocal(err error) string {
	switch err.(type) { // all case types local: allowed
	case *parseError:
		return "parse"
	default:
		return "other"
	}
}

func assert(err error) bool {
	if _, ok := err.(*os.PathError); ok { // want "type assertion on an error value: use errors.As"
		return true
	}
	if _, ok := err.(*parseError); ok { // local type: allowed
		return true
	}
	var as *os.PathError
	return errors.As(err, &as)
}

func suppressed(err error) bool {
	//recclint:ignore erridentity pointer identity of the exact sentinel is intended here
	return err == io.EOF
}

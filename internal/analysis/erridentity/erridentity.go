// Package erridentity forbids identity comparisons on error values: ==/!=
// between error-typed operands, type assertions and type switches over
// errors. The serving tier wraps errors liberally (%w through the persist,
// repl and trace layers), so identity checks rot the moment a call site adds
// context — `err == io.EOF` stops matching a wrapped EOF while errors.Is
// keeps working. The analyzer requires errors.Is / errors.As instead and
// autofixes the comparison form.
//
// Two exemptions keep the check sharp. Comparisons against nil are the
// idiomatic success test and always allowed. And the sentinel-definition
// package may compare against its own package-level sentinels with == —
// inside the package that owns the value nothing can have wrapped it yet.
// Likewise a type switch or assertion whose case types are all defined in
// the current package is allowed; asserting on someone else's error type is
// what errors.As is for. Everything else needs a
// //recclint:ignore erridentity <reason> justification.
package erridentity

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "erridentity",
	Doc:  "forbid ==/!= and type-switches on error values (use errors.Is / errors.As); autofixes the comparison form",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		// At most one finding per file may carry the add-the-errors-import
		// edit, or applying them together would insert the import twice.
		importEditUsed := false
		errorsName, haveImport := errorsImport(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if !isErrorType(pass, x.X) && !isErrorType(pass, x.Y) {
					return true
				}
				if isNil(pass, x.X) || isNil(pass, x.Y) {
					return true
				}
				// The package defining a sentinel may identity-compare it.
				if isLocalSentinel(pass, x.X) || isLocalSentinel(pass, x.Y) {
					return true
				}
				d := framework.Diagnostic{
					Pos:     x.OpPos,
					Message: "error compared with " + x.Op.String() + ": use errors.Is, which matches wrapped errors",
				}
				if fix, ok := rewriteFix(pass, f, x, errorsName, haveImport, &importEditUsed); ok {
					d.Fixes = []framework.SuggestedFix{fix}
				}
				pass.Report(d)
			case *ast.TypeSwitchStmt:
				operand, ok := typeSwitchOperand(x)
				if !ok || !isErrorType(pass, operand) {
					return true
				}
				if allCaseTypesLocal(pass, x) {
					return true
				}
				pass.Reportf(x.Switch, "type switch on an error value: use errors.As, which matches wrapped errors")
			case *ast.TypeAssertExpr:
				if x.Type == nil { // the x.(type) inside a type switch
					return true
				}
				if !isErrorType(pass, x.X) {
					return true
				}
				if isLocalType(pass, x.Type) {
					return true
				}
				pass.Reportf(x.Lparen, "type assertion on an error value: use errors.As, which matches wrapped errors")
			}
			return true
		})
	}
	return nil
}

// rewriteFix builds the errors.Is rewrite for cmp. The error operand goes
// first and the sentinel second (errors.Is unwraps its first argument), so a
// yoda `io.EOF == err` still becomes errors.Is(err, io.EOF). When the file
// does not import "errors" yet the fix also inserts the import — at most
// once per file — and gives up (comparison reported without a fix) when the
// import exists only dot- or blank-named.
func rewriteFix(pass *framework.Pass, f *ast.File, cmp *ast.BinaryExpr, errorsName string, haveImport bool, importEditUsed *bool) (framework.SuggestedFix, bool) {
	if haveImport && errorsName == "" {
		return framework.SuggestedFix{}, false
	}
	errOperand, sentinel := cmp.X, cmp.Y
	if !isPkgLevelErrVar(pass, sentinel) && isPkgLevelErrVar(pass, errOperand) {
		errOperand, sentinel = sentinel, errOperand
	}
	name := errorsName
	if !haveImport {
		name = "errors"
	}
	neg := ""
	if cmp.Op == token.NEQ {
		neg = "!"
	}
	text := neg + name + ".Is(" + exprText(pass.Fset, errOperand) + ", " + exprText(pass.Fset, sentinel) + ")"
	fix := framework.SuggestedFix{
		Message: "rewrite to " + name + ".Is",
		Edits:   []framework.TextEdit{{Pos: cmp.Pos(), End: cmp.End(), NewText: text}},
		Minimal: true,
	}
	if !haveImport {
		spec, ok := firstImportSpec(f)
		if !ok {
			return framework.SuggestedFix{}, false
		}
		if *importEditUsed {
			// Another finding in this file already inserts the import; this
			// fix can ride on the same file rewrite.
			return fix, true
		}
		*importEditUsed = true
		fix.Edits = append(fix.Edits, framework.TextEdit{Pos: spec.Pos(), End: spec.Pos(), NewText: "\"errors\"\n\t"})
		fix.Minimal = false // let ApplyFixes gofmt the import block
	}
	return fix, true
}

// errorsImport reports how the file refers to package errors: ("errors",
// true) for a plain import, (alias, true) for a named one, ("", true) for
// dot/blank imports the fix cannot use, ("", false) when absent.
func errorsImport(f *ast.File) (string, bool) {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"errors"` {
			continue
		}
		if imp.Name == nil {
			return "errors", true
		}
		if n := imp.Name.Name; n != "_" && n != "." {
			return n, true
		}
		return "", true
	}
	return "", false
}

// firstImportSpec returns the first spec of the file's first parenthesized
// import block; single-line imports are left to the human.
func firstImportSpec(f *ast.File) (ast.Spec, bool) {
	for _, d := range f.Decls {
		g, ok := d.(*ast.GenDecl)
		if !ok || g.Tok != token.IMPORT {
			continue
		}
		if g.Lparen.IsValid() && len(g.Specs) > 0 {
			return g.Specs[0], true
		}
		return nil, false
	}
	return nil, false
}

func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether e's static type is the error interface or an
// interface that embeds it. Concrete types are left alone: comparing two
// *parseError pointers is ordinary pointer identity, not sentinel matching.
func isErrorType(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
		return false
	}
	return types.Implements(tv.Type, errorIface)
}

func isNil(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isLocalSentinel reports whether e resolves to a package-level variable of
// the package under analysis.
func isLocalSentinel(pass *framework.Pass, e ast.Expr) bool {
	v, ok := pkgLevelVar(pass, e)
	return ok && v.Pkg() == pass.Pkg
}

// isPkgLevelErrVar reports whether e resolves to any package-level variable
// — the shape of an error sentinel, whichever package owns it.
func isPkgLevelErrVar(pass *framework.Pass, e ast.Expr) bool {
	_, ok := pkgLevelVar(pass, e)
	return ok
}

func pkgLevelVar(pass *framework.Pass, e ast.Expr) (*types.Var, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[x].(*types.Var)
		if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, true
		}
	case *ast.SelectorExpr:
		v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var)
		if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, true
		}
	}
	return nil, false
}

// typeSwitchOperand digs the switched expression out of either type-switch
// form: `switch err.(type)` and `switch e := err.(type)`.
func typeSwitchOperand(s *ast.TypeSwitchStmt) (ast.Expr, bool) {
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X, true
		}
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X, true
			}
		}
	}
	return nil, false
}

// allCaseTypesLocal reports whether every (non-nil) case type of the switch
// is defined in the package under analysis.
func allCaseTypesLocal(pass *framework.Pass, s *ast.TypeSwitchStmt) bool {
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, t := range cc.List {
			if isNil(pass, t) {
				continue
			}
			if !isLocalType(pass, t) {
				return false
			}
		}
	}
	return true
}

// isLocalType reports whether the type expression names (possibly through a
// pointer) a type defined in the package under analysis.
func isLocalType(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() == pass.Pkg
}

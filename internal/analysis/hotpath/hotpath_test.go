package hotpath_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, hotpath.Analyzer, framework.FixturePath("hotpath"))
}

// Package hotpath implements the recclint check that functions marked
// //recclint:hotpath stay allocation-free: no make/new/append, no slice, map
// or taken-address composite literals, no closures, no map iteration, no
// interface boxing, no string concatenation, no defer/go. These are the
// per-query code paths §V of the paper keeps at O(l) — the FASTQUERY hull
// scan, the sketch row distance, the solver preconditioner sweeps — where a
// single allocation per call turns into GC pressure at serving rates. The
// claim is empirically enforced too (TestQueryZeroAllocs); the analyzer
// catches the regression at review time, on every path, not just the one the
// benchmark drives.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resistecc/internal/analysis/framework"
)

const directive = "//recclint:hotpath"

// Analyzer is the hotpath check.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "no heap allocation, map iteration, or interface conversion in //recclint:hotpath functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd.Doc) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func isHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	results := fd.Type.Results
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocation in hot path")
			return false // the literal's body runs elsewhere; one finding is enough

		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine spawn in hot path")

		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path (frame and scheduling cost per call)")

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "heap allocation in hot path: address-taken composite literal")
					return false
				}
			}

		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "heap allocation in hot path: %s literal", typeKind(info.Types[n].Type))
			}

		case *ast.RangeStmt:
			if n.Body == nil {
				break
			}
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in hot path (hash-order walk, per-iteration overhead)")
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				pass.Reportf(n.Pos(), "heap allocation in hot path: string concatenation")
			}

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.Pos(), "heap allocation in hot path: string concatenation")
			}
			if n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					lt := info.Types[lhs].Type
					if lt != nil && types.IsInterface(lt) && boxes(info, n.Rhs[i]) {
						pass.Reportf(n.Rhs[i].Pos(), "interface conversion in hot path: %s stored into %s", typeName(info, n.Rhs[i]), lt)
					}
				}
			}

		case *ast.ReturnStmt:
			if results == nil {
				break
			}
			rts := resultTypes(info, results)
			if len(n.Results) != len(rts) {
				break // naked return or multi-value call passthrough
			}
			for i, e := range n.Results {
				if types.IsInterface(rts[i]) && !isErrorType(rts[i]) && boxes(info, e) {
					pass.Reportf(e.Pos(), "interface conversion in hot path: %s returned as %s", typeName(info, e), rts[i])
				}
			}

		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Built-in allocators.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "heap allocation in hot path: %s", b.Name())
			}
			return
		}
	}

	// Conversions: T(x) where T is an interface type boxes x.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "interface conversion in hot path: %s converted to %s", typeName(info, call.Args[0]), tv.Type)
		}
		return
	}

	// Ordinary calls: concrete arguments boxed into interface parameters
	// (including variadic ...any, the fmt trap).
	sig, ok := info.Types[fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = last // x... passes the slice through; no boxing
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && boxes(info, arg) {
			pass.Reportf(arg.Pos(), "interface conversion in hot path: %s passed as %s", typeName(info, arg), pt)
		}
	}
}

// boxes reports whether passing e into an interface slot performs a boxing
// conversion: its static type is concrete and it is not a nil literal.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false // already an interface value; no new allocation here
	}
	return true
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}

func typeName(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "value"
}

func resultTypes(info *types.Info, results *ast.FieldList) []types.Type {
	var out []types.Type
	for _, f := range results.List {
		t := info.Types[f.Type].Type
		reps := len(f.Names)
		if reps == 0 {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			out = append(out, t)
		}
	}
	return out
}

// Fixture for the hotpath analyzer: //recclint:hotpath functions must not
// allocate, iterate maps, or box into interfaces. Unmarked functions are
// never flagged.
package hotpath

import "fmt"

// Stat is a value type; value literals and field reads stay on the stack.
type Stat struct {
	Max float64
	Arg int
}

// distance is the shape of the real sketch row op: pure index arithmetic.
//
//recclint:hotpath
func distance(pu, pv []float64) float64 {
	r := 0.0
	for i, x := range pu {
		dx := x - pv[i]
		r += dx * dx
	}
	return r
}

// scan is the shape of the real hull scan: calls and struct value returns
// are fine.
//
//recclint:hotpath
func scan(pts [][]float64, cand []int) Stat {
	best := Stat{Arg: -1}
	for _, v := range cand {
		if r := distance(pts[0], pts[v]); r > best.Max {
			best = Stat{Max: r, Arg: v}
		}
	}
	return best
}

//recclint:hotpath
func allocators(n int) []int {
	xs := make([]int, n) // want "heap allocation in hot path: make"
	p := new(int)        // want "heap allocation in hot path: new"
	_ = p
	xs = append(xs, 1) // want "heap allocation in hot path: append"
	ys := []int{1, 2}  // want "heap allocation in hot path: slice literal"
	_ = ys
	m := map[int]int{} // want "heap allocation in hot path: map literal"
	_ = m
	s := &Stat{} // want "heap allocation in hot path: address-taken composite literal"
	_ = s
	return xs
}

//recclint:hotpath
func mapIter(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want "map iteration in hot path"
		s += v
	}
	return s
}

//recclint:hotpath
func boxing(x int, s Stat) {
	fmt.Println(x) // want "interface conversion in hot path: int passed as any"
	var i interface{}
	i = s // want "interface conversion in hot path: .*Stat stored into"
	_ = i
	_ = interface{}(x) // want "interface conversion in hot path: int converted to"
}

//recclint:hotpath
func strCat(a, b string) string {
	return a + b // want "heap allocation in hot path: string concatenation"
}

//recclint:hotpath
func closureAndDefer() {
	defer distance(nil, nil) // want "defer in hot path"
	f := func() {}           // want "closure allocation in hot path"
	f()
	go distance(nil, nil) // want "goroutine spawn in hot path"
}

// constStrings: constant folding means no runtime concatenation.
//
//recclint:hotpath
func constStrings() string {
	const a = "x" + "y" // no finding: folded at compile time
	return a
}

// interfacePassthrough: an interface value forwarded as an interface does
// not re-box, and nil never boxes.
//
//recclint:hotpath
func interfacePassthrough(err error) error {
	if err != nil {
		return err // no finding
	}
	return nil // no finding
}

// variadicForward: forwarding an existing []any with ... does not box.
//
//recclint:hotpath
func variadicForward(args []any) {
	fmt.Println(args...) // no finding
}

// unmarked allocates freely: the analyzer only constrains marked functions.
func unmarked(n int) []int {
	xs := make([]int, n)
	m := map[int]int{1: 2}
	for k := range m {
		xs = append(xs, k)
	}
	return xs
}

// suppressedAlloc: a justified //recclint:ignore composes with hotpath.
//
//recclint:hotpath
func suppressedAlloc(n int) []int {
	//recclint:ignore hotpath one-time warm-up allocation amortized across the scan
	return make([]int, n)
}

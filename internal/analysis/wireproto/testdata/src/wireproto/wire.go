// Fixture for the wireproto analyzer: paired encoders and decoders must
// touch the same byte layout, verify the encoder's CRC over the same span,
// and check the same magic and format-version constants.
package fixture

import (
	"hash/crc32"
	"math"
)

const (
	wireMagic   = "RECCFIX1"
	otherMagic  = "RECCOTH1"
	wireVersion = 1
)

var table = crc32.MakeTable(crc32.Castagnoli)

func putU32(b []byte, x uint32) {
	b[0], b[1], b[2], b[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
}

func putU64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}

// wenc/wdec are a local stream-style encoder/decoder pair.
type wenc struct{ b []byte }

func (e *wenc) u32(x uint32) {
	e.b = append(e.b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func (e *wenc) u64(x uint64) {
	for i := 0; i < 8; i++ {
		e.b = append(e.b, byte(x>>(8*i)))
	}
}

func (e *wenc) i64(x int64)   { e.u64(uint64(x)) }
func (e *wenc) f64(x float64) { e.u64(math.Float64bits(x)) }

type wdec struct {
	b   []byte
	off int
}

func (d *wdec) u32() uint32 {
	v := getU32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *wdec) u64() uint64 {
	v := getU64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *wdec) i64() int64   { return int64(d.u64()) }
func (d *wdec) f64() float64 { return math.Float64frombits(d.u64()) }

// hash64 is a chainable digest type for //recclint:wirelayout cases.
type hash64 uint64

func (h hash64) u64(x uint64) hash64 { return h ^ hash64(x) }
func (h hash64) i64(x int64) hash64  { return h.u64(uint64(x)) }
func (h hash64) f64(x float64) hash64 {
	return h.u64(math.Float64bits(x))
}
func (h hash64) str(s string) hash64 {
	for i := 0; i < len(s); i++ {
		h ^= hash64(s[i])
	}
	return h
}

// --- clean offset pair: magic, version, CRC, count-prefixed loop ---

func encodeFrame(vals []uint64) []byte {
	b := make([]byte, 20+8*len(vals))
	copy(b[0:8], wireMagic)
	putU32(b[8:12], wireVersion)
	putU32(b[12:16], uint32(len(vals)))
	putU32(b[16:20], crc32.Checksum(b[:16], table))
	for i, v := range vals {
		putU64(b[20+8*i:], v)
	}
	return b
}

func decodeFrame(b []byte) ([]uint64, bool) {
	if len(b) < 20 || string(b[0:8]) != wireMagic {
		return nil, false
	}
	if getU32(b[8:12]) != wireVersion {
		return nil, false
	}
	if crc32.Checksum(b[:16], table) != getU32(b[16:20]) {
		return nil, false
	}
	n := int(getU32(b[12:16]))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = getU64(b[20+8*i:])
	}
	return vals, true
}

// --- field width asymmetry ---

func encodeWidth(b []byte, x uint32, y uint64) {
	putU32(b[0:4], x)
	putU64(b[4:12], y)
}

func decodeWidth(b []byte) (uint64, uint64) {
	a := getU64(b[0:8])  // want "wire pair \"width\" field 0: encoder emits u32 \(4 bytes\) but decoder reads u64 \(8 bytes\)"
	c := getU32(b[8:12]) // want "wire pair \"width\" field 1: encoder emits u64 \(8 bytes\) but decoder reads u32 \(4 bytes\)"
	return a, uint64(c)
}

// --- same width, shifted span ---

func encodeShift(b []byte, x, y uint32) {
	putU32(b[0:4], x)
	putU32(b[4:8], y)
}

func decodeShift(b []byte) (uint32, uint32) {
	x := getU32(b[0:4])
	y := getU32(b[8:12]) // want "wire pair \"shift\" field 1: encoder writes bytes \[4,8\) but decoder reads \[8,12\)"
	return x, y
}

// --- stream-mode field order asymmetry ---

func encodeOrder(e *wenc, a int64, b float64) {
	e.i64(a)
	e.f64(b)
}

func decodeOrder(d *wdec) (int64, float64) {
	b := d.f64() // want "wire pair \"order\" field 0: encoder emits i64 but decoder reads f64"
	a := d.i64() // want "wire pair \"order\" field 1: encoder emits f64 but decoder reads i64"
	return a, b
}

// --- field count mismatch ---

func encodeCount(e *wenc, a, b, c uint32) {
	e.u32(a)
	e.u32(b)
	e.u32(c)
}

func decodeCount(d *wdec) uint32 { // want "wire pair \"count\": encoder encodeCount emits 3 fields, decoder decodeCount reads 2"
	x := d.u32()
	_ = d.u32()
	return x
}

// --- decoder skips the CRC ---

func encodeSealed(b []byte, x uint32, y uint64) {
	putU32(b[0:4], x)
	putU64(b[4:12], y)
	putU32(b[12:16], crc32.Checksum(b[:12], table))
}

func decodeSealed(b []byte) (uint32, uint64) { // want "wire pair \"sealed\": decoder decodeSealed does not verify the CRC the encoder writes"
	return getU32(b[0:4]), getU64(b[4:12])
}

// --- a field escapes the CRC-covered span ---

func encodeGap(b []byte, x uint32, y uint64, z uint32) {
	putU32(b[0:4], x)
	putU64(b[4:12], y)
	putU32(b[12:16], crc32.Checksum(b[:12], table))
	putU32(b[16:20], z) // want "wire pair \"gap\": field at bytes \[16,20\) is outside the CRC-covered span \[0,12\)"
}

func decodeGap(b []byte) (uint32, uint64, uint32) {
	if crc32.Checksum(b[:12], table) != getU32(b[12:16]) {
		return 0, 0, 0
	}
	return getU32(b[0:4]), getU64(b[4:12]), getU32(b[16:20])
}

// --- decoder never checks the format version ---

func encodeVer(h []byte, x uint32) {
	copy(h[0:8], wireMagic)
	putU32(h[8:12], wireVersion)
	putU32(h[12:16], x)
}

func decodeVer(b []byte) (uint32, bool) { // want "wire pair \"ver\": decoder decodeVer does not check the format version"
	if string(b[0:8]) != wireMagic {
		return 0, false
	}
	if getU32(b[8:12]) != 1 {
		return 0, false
	}
	return getU32(b[12:16]), true
}

// --- decoder never checks the magic ---

func encodeTag(h []byte, x uint32) {
	copy(h[0:8], wireMagic)
	putU32(h[8:12], x)
}

func decodeTag(b []byte) uint32 { // want "wire pair \"tag\": decoder decodeTag does not check the format magic \"RECCFIX1\""
	_ = string(b[0:8])
	return getU32(b[8:12])
}

// --- decoder checks the wrong magic constant ---

func encodeBadge(h []byte, x uint32) {
	copy(h[0:8], wireMagic)
	putU32(h[8:12], x)
}

func decodeBadge(b []byte) (uint32, bool) { // want "wire pair \"badge\": decoder decodeBadge checks a different magic constant than the \"RECCFIX1\" the encoder writes"
	if string(b[0:8]) != otherMagic {
		return 0, false
	}
	return getU32(b[8:12]), true
}

// --- loop fields without an integer count prefix ---

func encodeRun(e *wenc, vals []float64) {
	e.f64(0)
	for _, v := range vals {
		e.u64(uint64(v)) // want "wire pair \"run\": loop-emitted fields in encodeRun are not preceded by an integer count field"
	}
}

func decodeRun(d *wdec, n int) []uint64 {
	_ = d.f64()
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64()
	}
	return out
}

// --- loop structure mismatch ---

func encodeRepeat(e *wenc, vals []uint32) {
	e.u32(uint32(len(vals)))
	for _, v := range vals {
		e.u32(v)
	}
}

func decodeRepeat(d *wdec) (uint32, uint32) {
	n := d.u32()
	v := d.u32() // want "wire pair \"repeat\" field 1: the encoder handles it in a loop but the decoder does not"
	return n, v
}

// --- put/get width must match the slot ---

func encodeSlot(b []byte, x uint64) {
	putU64(b[0:4], x) // want "putU64 writes a 8-byte value in a 4-byte slot \[0,4\)"
}

func decodeSlot(b []byte) uint64 {
	return getU64(b[0:4]) // want "getU64 reads a 8-byte value in a 4-byte slot \[0,4\)"
}

// --- append/staging-buffer encoder against an offset decoder: clean ---

func appendItem(dst []byte, seq uint64, kind byte, n uint32) []byte {
	var scratch [8]byte
	putU64(scratch[:], seq)
	dst = append(dst, scratch[:]...)
	dst = append(dst, kind)
	putU32(scratch[:4], n)
	dst = append(dst, scratch[:4]...)
	putU32(scratch[:4], crc32.Checksum(dst, table))
	return append(dst, scratch[:4]...)
}

func decodeItem(b []byte) (uint64, byte, uint32, bool) {
	if crc32.Checksum(b[:13], table) != getU32(b[13:17]) {
		return 0, 0, 0, false
	}
	return getU64(b[0:8]), b[8], getU32(b[9:13]), true
}

// --- explicit pairing: clean ---

// buildHdr writes the fixture header.
//
//recclint:wirepair hdr
func buildHdr(h []byte) {
	copy(h[0:8], wireMagic)
	putU32(h[8:12], wireVersion)
}

// parseHdr checks the fixture header.
//
//recclint:wirepair hdr
func parseHdr(b []byte) bool {
	if string(b[0:8]) != wireMagic {
		return false
	}
	return getU32(b[8:12]) == wireVersion
}

// --- explicit pairing: missing partner ---

// encodeLonely carries a pair tag no other function shares.
//
//recclint:wirepair lonely
func encodeLonely(b []byte, x uint32) { // want "//recclint:wirepair \"lonely\" tags 1 functions, want exactly an encoder and a decoder"
	putU32(b[0:4], x)
}

// --- pinned layouts ---

// digestPair hashes id, name and score.
//
//recclint:wirelayout u64 str f64
func digestPair(id uint64, name string, score float64) uint64 {
	return uint64(hash64(0).u64(id).str(name).f64(score))
}

// digestList hashes each entry.
//
//recclint:wirelayout loop(i64 f64)
func digestList(ids []int64, scores []float64) uint64 {
	h := hash64(0)
	for i := range ids {
		h = h.i64(ids[i]).f64(scores[i])
	}
	return uint64(h)
}

// digestWrong declares str but hashes f64.
//
//recclint:wirelayout u64 str
func digestWrong(id uint64, score float64) uint64 { // want "layout of digestWrong is \"u64 f64\" but //recclint:wirelayout declares \"u64 str\""
	return uint64(hash64(0).u64(id).f64(score))
}

// digestBad has a malformed spec.
//
//recclint:wirelayout u64 nope
func digestBad(id uint64) uint64 { // want "bad //recclint:wirelayout spec \"u64 nope\": unknown kind \"nope\""
	return uint64(hash64(0).u64(id))
}

// --- suppression: a justified asymmetry stays quiet ---

func encodeQuiet(b []byte, x uint32) {
	putU32(b[0:4], x)
}

func decodeQuiet(b []byte) uint64 {
	//recclint:ignore wireproto legacy readers widen the field deliberately
	return getU64(b[0:8])
}

package wireproto

// The layout walker: a symbolic interpreter that reduces an encoder or
// decoder function body to the sequence of wire fields it touches. Two
// idioms are recognized:
//
//   - stream style: method calls named u8/u32/u64/i64/f64/str on a local
//     encoder/decoder/digest type (`e.u64(x)`, `d.f64()`), emitted in
//     evaluation order;
//   - offset style: putU32/putU64/getU32/getU64 helpers, indexed byte
//     stores and loads with constant offsets (`b[8] = op`), copy of a
//     magic string into a prefix, string(b[lo:hi]) magic comparisons, and
//     the append-with-staging-buffer pattern
//     (`putU64(scratch[:], x); dst = append(dst, scratch[:]...)`).
//
// CRC writes (a put whose value contains crc32.Checksum) and CRC
// verifications (a comparison of Checksum against a get) become a separate
// crc record rather than a field token, so a checksum never misaligns the
// field zip. Calls to other functions of the package (delegated
// sub-encodings like a WAL record inside a tail frame) are deliberately
// invisible on both sides, which keeps delegation symmetric.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"resistecc/internal/analysis/framework"
)

// tok is one wire field as seen from one side of a pair.
type tok struct {
	kind   string // u8, u16, u32, u64, i64, f64, str, bytes
	width  int    // bytes; -1 when variable (str)
	lo, hi int    // constant byte span within the buffer; -1 when unknown
	loop   bool   // emitted/consumed inside a loop (or a per-element callback)
	magic  bool   // carries the format magic
	stream bool   // stream-method token (kinds comparable) vs offset token
	root   string // buffer variable the field lives in, for grouping
	pos    token.Pos
}

func (t tok) sameField(o tok) bool {
	return t.kind == o.kind && t.width == o.width && t.lo == o.lo && t.hi == o.hi && t.loop == o.loop
}

// crcRec is a checksum write or verification.
type crcRec struct {
	lo, hi         int // the slot holding the checksum; -1 unknown
	spanLo, spanHi int // the covered span; -1 when variable
	root           string
	pos            token.Pos
}

// layout is everything the walker learned about one function.
type layout struct {
	name    string
	pos     token.Pos // function name position
	toks    []tok     // chosen group, const-sorted (see finish)
	crc     *crcRec
	magics  map[string]bool // magic string values referenced ("RECC...")
	version bool            // references a *Version* constant
	writes  int
	reads   int
}

var putGetRe = regexp.MustCompile(`^(put|get)([UIF])(8|16|32|64)$`)

var streamKinds = map[string]int{
	"u8": 1, "u16": 2, "u32": 4, "u64": 8, "i64": 8, "f64": 8, "str": -1,
}

type walker struct {
	pass    *framework.Pass
	toks    []tok
	crcs    []crcRec
	magics  map[string]bool
	version bool
	writes  int
	reads   int
	staging map[string]*pending
	reportf func(pos token.Pos, format string, args ...any)
}

// pending is the last put into a staging buffer, waiting for its append.
type pending struct {
	kind  string
	width int
	isCRC bool
	span  [2]int // checksum coverage when isCRC
}

// walkFunc reduces fd to a layout.
func walkFunc(pass *framework.Pass, fd *ast.FuncDecl) *layout {
	w := &walker{
		pass:    pass,
		magics:  map[string]bool{},
		staging: map[string]*pending{},
		reportf: pass.Reportf,
	}
	if fd.Body != nil {
		w.findStagingRoots(fd.Body)
		w.stmts(fd.Body.List, false)
	}
	return w.finish(fd)
}

// findStagingRoots pre-scans for `append(dst, src[...]...)` so that puts into
// src are held as pending instead of emitted directly.
func (w *walker) findStagingRoots(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Ellipsis == token.NoPos || len(call.Args) != 2 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if root := rootName(call.Args[1]); root != "" {
			w.staging[root] = nil
		}
		return true
	})
}

// finish groups tokens by buffer variable, picks the group that carries the
// magic (else the largest), sorts constant-offset tokens by position in the
// buffer — offset-style reads may legally happen in any order — and appends
// the variable-offset tokens in source order.
func (w *walker) finish(fd *ast.FuncDecl) *layout {
	groups := map[string][]tok{}
	order := []string{}
	for _, t := range w.toks {
		if _, seen := groups[t.root]; !seen {
			order = append(order, t.root)
		}
		groups[t.root] = append(groups[t.root], t)
	}
	best := ""
	for _, r := range order {
		if best == "" {
			best = r
		}
		for _, t := range groups[r] {
			if t.magic {
				best = r
			}
		}
	}
	if best != "" {
		for _, r := range order {
			hasMagic := false
			for _, t := range groups[best] {
				hasMagic = hasMagic || t.magic
			}
			if !hasMagic && len(groups[r]) > len(groups[best]) {
				best = r
			}
		}
	}
	var consts, vars []tok
	for _, t := range groups[best] {
		if t.lo >= 0 {
			consts = append(consts, t)
		} else {
			vars = append(vars, t)
		}
	}
	// Insertion sort by lo keeps it dependency-free and stable.
	for i := 1; i < len(consts); i++ {
		for j := i; j > 0 && consts[j-1].lo > consts[j].lo; j-- {
			consts[j-1], consts[j] = consts[j], consts[j-1]
		}
	}
	// Drop exact duplicates (a decoder may peek the same slot twice).
	var toks []tok
	for _, t := range consts {
		if n := len(toks); n > 0 && toks[n-1].sameField(t) {
			continue
		}
		toks = append(toks, t)
	}
	toks = append(toks, vars...)
	lay := &layout{
		name:    fd.Name.Name,
		pos:     fd.Name.Pos(),
		toks:    toks,
		magics:  w.magics,
		version: w.version,
		writes:  w.writes,
		reads:   w.reads,
	}
	for i := range w.crcs {
		if w.crcs[i].root == best {
			lay.crc = &w.crcs[i]
			break
		}
	}
	return lay
}

func (w *walker) stmts(list []ast.Stmt, loop bool) {
	for _, s := range list {
		w.stmt(s, loop)
	}
}

func (w *walker) stmt(s ast.Stmt, loop bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, loop)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, loop)
		}
		if s.Cond != nil {
			w.expr(s.Cond, true)
		}
		if s.Post != nil {
			w.stmt(s.Post, true)
		}
		w.stmt(s.Body, true)
	case *ast.RangeStmt:
		w.expr(s.X, loop)
		w.stmt(s.Body, true)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, loop)
		}
		w.expr(s.Cond, loop)
		mark := len(w.toks)
		w.stmt(s.Body, loop)
		bodyEnd := len(w.toks)
		if s.Else != nil {
			w.stmt(s.Else, loop)
			// When both branches emit the same field sequence (the
			// encode-a-flag-byte-either-way idiom), keep one copy.
			body, other := w.toks[mark:bodyEnd], w.toks[bodyEnd:]
			if len(body) == len(other) {
				same := true
				for i := range body {
					if !body[i].sameField(other[i]) {
						same = false
					}
				}
				if same {
					w.toks = w.toks[:bodyEnd]
				}
			}
		}
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			w.indexStore(l, loop)
		}
		for _, r := range s.Rhs {
			w.expr(r, loop)
		}
	case *ast.ExprStmt:
		w.expr(s.X, loop)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, loop)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, loop)
					}
				}
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, loop)
		}
		if s.Tag != nil {
			w.expr(s.Tag, loop)
		}
		w.stmt(s.Body, loop)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, loop)
		}
		w.stmts(s.Body, loop)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, loop)
	case *ast.GoStmt:
		w.expr(s.Call, loop)
	case *ast.DeferStmt:
		w.expr(s.Call, loop)
	}
}

// indexStore emits a width-1 write for `b[i] = x` with a constant index into
// a byte sequence.
func (w *walker) indexStore(l ast.Expr, loop bool) {
	ix, ok := l.(*ast.IndexExpr)
	if !ok || !w.isByteSeq(ix.X) {
		return
	}
	if i, ok := w.constInt(ix.Index); ok {
		w.emit(tok{kind: "u8", width: 1, lo: i, hi: i + 1, loop: loop,
			root: rootName(ix.X), pos: ix.Pos()})
		w.writes++
	}
}

func (w *walker) emit(t tok) { w.toks = append(w.toks, t) }

func (w *walker) expr(e ast.Expr, loop bool) {
	switch e := e.(type) {
	case *ast.Ident:
		w.noteConst(e)
	case *ast.CallExpr:
		w.call(e, loop)
	case *ast.BinaryExpr:
		if e.Op == token.EQL || e.Op == token.NEQ {
			if w.crcCompare(e, loop) || w.magicCompare(e, loop) {
				return
			}
		}
		w.expr(e.X, loop)
		w.expr(e.Y, loop)
	case *ast.IndexExpr:
		if w.isByteSeq(e.X) {
			if i, ok := w.constInt(e.Index); ok {
				w.emit(tok{kind: "u8", width: 1, lo: i, hi: i + 1, loop: loop,
					root: rootName(e.X), pos: e.Pos()})
				w.reads++
				return
			}
		}
		w.expr(e.X, loop)
		w.expr(e.Index, loop)
	case *ast.SliceExpr:
		w.expr(e.X, loop)
		if e.Low != nil {
			w.expr(e.Low, loop)
		}
		if e.High != nil {
			w.expr(e.High, loop)
		}
	case *ast.ParenExpr:
		w.expr(e.X, loop)
	case *ast.UnaryExpr:
		w.expr(e.X, loop)
	case *ast.StarExpr:
		w.expr(e.X, loop)
	case *ast.SelectorExpr:
		w.noteConst(e.Sel)
		w.expr(e.X, loop)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, loop)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Value, loop)
	case *ast.FuncLit:
		// A callback passed to an iterator runs once per element.
		w.stmts(e.Body.List, true)
	case *ast.TypeAssertExpr:
		w.expr(e.X, loop)
	}
}

// noteConst records magic ("RECC…" string constant) and format-version
// constant references anywhere in the function.
func (w *walker) noteConst(id *ast.Ident) {
	obj := w.pass.TypesInfo.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok {
		return
	}
	if c.Val().Kind() == constant.String {
		if v := constant.StringVal(c.Val()); strings.HasPrefix(v, "RECC") {
			w.magics[v] = true
		}
	}
	if strings.Contains(c.Name(), "Version") {
		w.version = true
	}
}

func (w *walker) call(call *ast.CallExpr, loop bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch {
		case fun.Name == "append":
			w.appendCall(call, loop)
			return
		case fun.Name == "copy" && len(call.Args) == 2:
			if w.copyCall(call, loop) {
				return
			}
		case fun.Name == "string" && len(call.Args) == 1:
			if root, lo, hi, ok := w.sliceSpan(call.Args[0]); ok {
				w.emit(tok{kind: "bytes", width: hi - lo, lo: lo, hi: hi,
					loop: loop, root: root, pos: call.Pos()})
				w.reads++
				return
			}
		default:
			if m := putGetRe.FindStringSubmatch(fun.Name); m != nil && len(call.Args) >= 1 {
				w.putGet(call, m, loop)
				return
			}
		}
	case *ast.SelectorExpr:
		if w.streamCall(call, fun, loop) {
			return
		}
		w.expr(fun.X, loop)
	}
	for _, a := range call.Args {
		w.expr(a, loop)
	}
}

// putGet handles putU32/getU64-style helpers: width from the name, span from
// a constant slice argument, CRC detection from the value.
func (w *walker) putGet(call *ast.CallExpr, m []string, loop bool) {
	kind := strings.ToLower(m[2]) + m[3]
	width := bitsToBytes(m[3])
	root, lo, hi, spanOK := w.sliceSpan(call.Args[0])
	if root == "" {
		root = rootName(call.Args[0])
	}
	if spanOK && hi-lo != width {
		verb := "writes"
		if m[1] == "get" {
			verb = "reads"
		}
		w.reportf(call.Pos(), "%s %s a %d-byte value in a %d-byte slot [%d,%d)",
			call.Fun.(*ast.Ident).Name, verb, width, hi-lo, lo, hi)
	}
	if !spanOK {
		lo, hi = -1, -1
	}
	if m[1] == "put" {
		w.writes++
		val := call.Args[len(call.Args)-1]
		if len(call.Args) >= 2 {
			val = call.Args[1]
		}
		if span, isCRC := checksumSpan(w, val); isCRC {
			if p, staged := w.staging[root]; staged || p != nil {
				w.staging[root] = &pending{kind: kind, width: width, isCRC: true, span: span}
				return
			}
			w.crcs = append(w.crcs, crcRec{lo: lo, hi: hi, spanLo: span[0], spanHi: span[1],
				root: root, pos: call.Pos()})
			return
		}
		if _, staged := w.staging[root]; staged {
			w.staging[root] = &pending{kind: kind, width: width}
			return
		}
		w.emit(tok{kind: kind, width: width, lo: lo, hi: hi, loop: loop, root: root, pos: call.Pos()})
		if len(call.Args) >= 2 {
			w.expr(call.Args[1], loop)
		}
		return
	}
	w.reads++
	w.emit(tok{kind: kind, width: width, lo: lo, hi: hi, loop: loop, root: root, pos: call.Pos()})
}

// appendCall handles the append idioms: flushing a staging buffer, a raw
// byte, or a magic string. Appends of anything else (a delegated
// sub-encoding) are invisible by design.
func (w *walker) appendCall(call *ast.CallExpr, loop bool) {
	if len(call.Args) < 2 {
		return
	}
	dst := rootName(call.Args[0])
	if call.Ellipsis != token.NoPos {
		src := call.Args[1]
		if root := rootName(src); root != "" {
			if p, staged := w.staging[root]; staged && p != nil {
				width := p.width
				if _, lo, hi, ok := w.sliceSpan(src); ok && hi > lo {
					width = hi - lo
				}
				w.writes++
				if p.isCRC {
					w.crcs = append(w.crcs, crcRec{lo: -1, hi: -1,
						spanLo: p.span[0], spanHi: p.span[1], root: dst, pos: call.Pos()})
					return
				}
				w.emit(tok{kind: p.kind, width: width, lo: -1, hi: -1, loop: loop,
					root: dst, pos: call.Pos()})
				return
			}
		}
		if v, ok := w.stringConst(src); ok && strings.HasPrefix(v, "RECC") {
			w.magics[v] = true
			w.emit(tok{kind: "bytes", width: len(v), lo: -1, hi: -1, loop: loop,
				magic: true, root: dst, pos: call.Pos()})
			w.writes++
		}
		return
	}
	for _, a := range call.Args[1:] {
		if t := w.pass.TypesInfo.TypeOf(a); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && (b.Kind() == types.Uint8 || b.Kind() == types.Byte) {
				w.emit(tok{kind: "u8", width: 1, lo: -1, hi: -1, loop: loop,
					root: dst, pos: a.Pos()})
				w.writes++
				continue
			}
		}
		w.expr(a, loop)
	}
}

// copyCall emits a magic token for `copy(buf[lo:hi], magicConst)`.
func (w *walker) copyCall(call *ast.CallExpr, loop bool) bool {
	v, ok := w.stringConst(call.Args[1])
	if !ok || !strings.HasPrefix(v, "RECC") {
		return false
	}
	w.magics[v] = true
	root, lo, hi, spanOK := w.sliceSpan(call.Args[0])
	if !spanOK {
		lo, hi = -1, -1
		root = rootName(call.Args[0])
	}
	width := hi - lo
	if width <= 0 {
		width = len(v)
	}
	w.emit(tok{kind: "bytes", width: width, lo: lo, hi: hi, loop: loop,
		magic: true, root: root, pos: call.Pos()})
	w.writes++
	return true
}

// streamCall emits a token for `e.u64(x)` / `d.f64()` methods declared in
// the package under analysis.
func (w *walker) streamCall(call *ast.CallExpr, sel *ast.SelectorExpr, loop bool) bool {
	width, isKind := streamKinds[sel.Sel.Name]
	if !isKind {
		return false
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() != w.pass.Pkg || fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	// The receiver chain evaluates before this call, so walk it first to
	// keep `d.i64(a).f64(b)` in wire order.
	w.expr(sel.X, loop)
	w.emit(tok{kind: sel.Sel.Name, width: width, lo: -1, hi: -1, loop: loop,
		stream: true, root: rootName(sel.X), pos: sel.Sel.Pos()})
	if len(call.Args) > 0 {
		w.writes++
		for _, a := range call.Args {
			w.expr(a, loop)
		}
	} else {
		w.reads++
	}
	return true
}

// crcCompare recognizes `crc32.Checksum(buf[span], tab) != getU32(buf[slot])`
// (either operand order) and records it as the decoder-side CRC.
func (w *walker) crcCompare(e *ast.BinaryExpr, loop bool) bool {
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		span, isCRC := checksumSpan(w, pair[0])
		get, ok := ast.Unparen(pair[1]).(*ast.CallExpr)
		if !isCRC || !ok {
			continue
		}
		id, ok := get.Fun.(*ast.Ident)
		if !ok {
			continue
		}
		m := putGetRe.FindStringSubmatch(id.Name)
		if m == nil || m[1] != "get" || len(get.Args) < 1 {
			continue
		}
		root, lo, hi, spanOK := w.sliceSpan(get.Args[0])
		if !spanOK {
			lo, hi = -1, -1
			root = rootName(get.Args[0])
		}
		w.reads++
		w.crcs = append(w.crcs, crcRec{lo: lo, hi: hi, spanLo: span[0], spanHi: span[1],
			root: root, pos: e.Pos()})
		return true
	}
	return false
}

// magicCompare recognizes `string(buf[lo:hi]) != magicConst`.
func (w *walker) magicCompare(e *ast.BinaryExpr, loop bool) bool {
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		conv, ok := ast.Unparen(pair[0]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := conv.Fun.(*ast.Ident); !ok || id.Name != "string" || len(conv.Args) != 1 {
			continue
		}
		v, isStr := w.stringConst(pair[1])
		if !isStr || !strings.HasPrefix(v, "RECC") {
			continue
		}
		w.magics[v] = true
		root, lo, hi, spanOK := w.sliceSpan(conv.Args[0])
		if !spanOK {
			lo, hi = -1, -1
			root = rootName(conv.Args[0])
		}
		width := hi - lo
		if width <= 0 {
			width = len(v)
		}
		w.emit(tok{kind: "bytes", width: width, lo: lo, hi: hi, loop: loop,
			magic: true, root: root, pos: e.Pos()})
		w.reads++
		return true
	}
	return false
}

// checksumSpan reports whether e contains a crc32.Checksum call and the
// constant span of its data argument ([-1,-1] when variable).
func checksumSpan(w *walker, e ast.Expr) ([2]int, bool) {
	span, found := [2]int{-1, -1}, false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Checksum" || len(call.Args) < 1 {
			return true
		}
		found = true
		if _, lo, hi, ok := w.sliceSpan(call.Args[0]); ok {
			span = [2]int{lo, hi}
		}
		return false
	})
	return span, found
}

// sliceSpan resolves `buf[lo:hi]` (and `buf[:hi]`, `buf[:]` over an array)
// to a constant byte span.
func (w *walker) sliceSpan(e ast.Expr) (root string, lo, hi int, ok bool) {
	sl, isSlice := ast.Unparen(e).(*ast.SliceExpr)
	if !isSlice || !w.isByteSeq(sl.X) {
		return "", 0, 0, false
	}
	root = rootName(sl.X)
	lo = 0
	if sl.Low != nil {
		if v, cok := w.constInt(sl.Low); cok {
			lo = v
		} else {
			return root, 0, 0, false
		}
	}
	if sl.High != nil {
		if v, cok := w.constInt(sl.High); cok {
			return root, lo, v, true
		}
		return root, 0, 0, false
	}
	// buf[lo:] — the bound is the array length when buf is an array.
	if t := w.pass.TypesInfo.TypeOf(sl.X); t != nil {
		u := t.Underlying()
		if p, isPtr := u.(*types.Pointer); isPtr {
			u = p.Elem().Underlying()
		}
		if arr, isArr := u.(*types.Array); isArr {
			return root, lo, int(arr.Len()), true
		}
	}
	return root, 0, 0, false
}

// constInt evaluates a constant integer expression.
func (w *walker) constInt(e ast.Expr) (int, bool) {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(v), true
}

// stringConst evaluates a constant string expression.
func (w *walker) stringConst(e ast.Expr) (string, bool) {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isByteSeq reports whether e is a []byte, [N]byte, or *[N]byte.
func (w *walker) isByteSeq(e ast.Expr) bool {
	t := w.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	var elem types.Type
	switch u := u.(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// rootName unwraps slices, indexes, stars and parens down to the base
// identifier of a buffer expression.
func rootName(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				e = sel.X
				continue
			}
			return ""
		default:
			return ""
		}
	}
}

func bitsToBytes(bits string) int {
	switch bits {
	case "8":
		return 1
	case "16":
		return 2
	case "32":
		return 4
	default:
		return 8
	}
}

package wireproto_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/wireproto"
)

func TestWireProto(t *testing.T) {
	framework.TestAnalyzer(t, wireproto.Analyzer, framework.FixturePath("wireproto"))
}

// Package wireproto pairs binary encoder and decoder functions and checks
// that the two sides of each wire format agree: same field sequence (width,
// order, loop structure), a CRC that is both written and verified over the
// same span with no fields outside it, and a decoder that checks the same
// magic and format-version constants the encoder writes.
//
// Pairing is by naming convention — encodeX/EncodeX/appendX with
// decodeX/DecodeX in the same package — or explicit, by tagging exactly two
// functions with `//recclint:wirepair <name>` in their doc comments (the
// walker then classifies which side writes and which reads). A function
// whose layout should be pinned without a partner (a response digest) takes
// `//recclint:wirelayout <spec>`, where the spec lists stream kinds with
// `loop(...)` for repeated groups, e.g. `u64 str f64` or `loop(i64 f64 i64)`.
package wireproto

import (
	"fmt"
	"go/ast"
	"strings"

	"resistecc/internal/analysis/framework"
)

// Analyzer detects wire-format asymmetries between paired encoders and
// decoders.
var Analyzer = &framework.Analyzer{
	Name: "wireproto",
	Doc: "wire-format symmetry: paired encoders and decoders must touch the same " +
		"byte layout, verify the CRC the other side writes over the same span, and " +
		"agree on magic and format-version checks; //recclint:wirepair pairs " +
		"functions explicitly, //recclint:wirelayout pins a layout without a partner",
	Run: run,
}

const (
	pairDirective   = "//recclint:wirepair"
	layoutDirective = "//recclint:wirelayout"
)

var encPrefixes = []string{"encode", "Encode", "append", "Append"}
var decPrefixes = []string{"decode", "Decode"}

func run(pass *framework.Pass) error {
	type tagged struct {
		fd   *ast.FuncDecl
		name string
	}
	var pairs []tagged
	autoEnc := map[string][]*ast.FuncDecl{}
	autoDec := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if spec := docDirectiveRest(fd.Doc, layoutDirective); spec != "" {
				checkLayoutSpec(pass, fd, spec)
			}
			if name := docDirectiveRest(fd.Doc, pairDirective); name != "" {
				pairs = append(pairs, tagged{fd, firstField(name)})
				continue
			}
			if fd.Recv != nil {
				continue
			}
			if key, ok := trimAnyPrefix(fd.Name.Name, encPrefixes); ok {
				autoEnc[key] = append(autoEnc[key], fd)
			} else if key, ok := trimAnyPrefix(fd.Name.Name, decPrefixes); ok {
				autoDec[key] = append(autoDec[key], fd)
			}
		}
	}

	// Explicitly tagged pairs: exactly two functions per tag, direction from
	// whether the body mostly writes or mostly reads.
	byTag := map[string][]*ast.FuncDecl{}
	var tags []string
	for _, t := range pairs {
		if _, seen := byTag[t.name]; !seen {
			tags = append(tags, t.name)
		}
		byTag[t.name] = append(byTag[t.name], t.fd)
	}
	for _, tag := range tags {
		fds := byTag[tag]
		if len(fds) != 2 {
			for _, fd := range fds {
				pass.Reportf(fd.Name.Pos(),
					"//recclint:wirepair %q tags %d functions, want exactly an encoder and a decoder",
					tag, len(fds))
			}
			continue
		}
		a, b := walkFunc(pass, fds[0]), walkFunc(pass, fds[1])
		aw, bw := a.writes-a.reads, b.writes-b.reads
		if (aw > 0) == (bw > 0) {
			pass.Reportf(fds[0].Name.Pos(),
				"//recclint:wirepair %q: cannot tell the encoder from the decoder", tag)
			continue
		}
		if aw > bw {
			comparePair(pass, tag, a, b)
		} else {
			comparePair(pass, tag, b, a)
		}
	}

	// Auto pairs by name; a key with several encoders or decoders is
	// ambiguous and skipped.
	for key, encs := range autoEnc {
		decs := autoDec[key]
		if len(encs) != 1 || len(decs) != 1 {
			continue
		}
		comparePair(pass, key,
			walkFunc(pass, encs[0]), walkFunc(pass, decs[0]))
	}
	return nil
}

// comparePair zips the encoder's emitted fields against the decoder's reads
// and checks the CRC, magic, and version invariants.
func comparePair(pass *framework.Pass, name string, enc, dec *layout) {
	// Magic: the decoder must compare against the same magic constant the
	// encoder writes.
	for v := range enc.magics {
		if len(dec.magics) == 0 {
			pass.Reportf(dec.pos, "wire pair %q: decoder %s does not check the format magic %q",
				name, dec.name, v)
		} else if !dec.magics[v] {
			pass.Reportf(dec.pos,
				"wire pair %q: decoder %s checks a different magic constant than the %q the encoder writes",
				name, dec.name, v)
		}
		break
	}
	if enc.version && !dec.version {
		pass.Reportf(dec.pos, "wire pair %q: decoder %s does not check the format version",
			name, dec.name)
	}

	// CRC discipline.
	switch {
	case enc.crc != nil && dec.crc == nil:
		pass.Reportf(dec.pos, "wire pair %q: decoder %s does not verify the CRC the encoder writes",
			name, dec.name)
	case enc.crc == nil && dec.crc != nil:
		pass.Reportf(dec.crc.pos, "wire pair %q: decoder %s verifies a CRC that encoder %s never writes",
			name, dec.name, enc.name)
	case enc.crc != nil && dec.crc != nil:
		e, d := enc.crc, dec.crc
		if e.spanLo >= 0 && d.spanLo >= 0 && (e.spanLo != d.spanLo || e.spanHi != d.spanHi) {
			pass.Reportf(d.pos, "wire pair %q: CRC covers [%d,%d) in the encoder but [%d,%d) in the decoder",
				name, e.spanLo, e.spanHi, d.spanLo, d.spanHi)
		}
		if e.lo >= 0 && d.lo >= 0 && (e.lo != d.lo || e.hi != d.hi) {
			pass.Reportf(d.pos, "wire pair %q: CRC is stored at [%d,%d) but verified from [%d,%d)",
				name, e.lo, e.hi, d.lo, d.hi)
		}
	}

	// Every constant-offset field the encoder writes must sit inside the
	// CRC-covered span (or be the CRC slot itself).
	if enc.crc != nil && enc.crc.spanLo >= 0 {
		c := enc.crc
		for _, t := range enc.toks {
			if t.lo < 0 {
				continue
			}
			inSpan := t.lo >= c.spanLo && t.hi <= c.spanHi
			inSlot := c.lo >= 0 && t.lo >= c.lo && t.hi <= c.hi
			if !inSpan && !inSlot {
				pass.Reportf(t.pos, "wire pair %q: field at bytes [%d,%d) is outside the CRC-covered span [%d,%d)",
					name, t.lo, t.hi, c.spanLo, c.spanHi)
			}
		}
	}

	// Loop-emitted fields need a count the decoder can read first.
	for i, t := range enc.toks {
		if !t.loop || (i > 0 && enc.toks[i-1].loop) {
			continue
		}
		if i == 0 || !isCountKind(enc.toks[i-1]) {
			pass.Reportf(t.pos, "wire pair %q: loop-emitted fields in %s are not preceded by an integer count field",
				name, enc.name)
		}
	}

	// Field zip.
	if len(enc.toks) != len(dec.toks) {
		pass.Reportf(dec.pos, "wire pair %q: encoder %s emits %d fields, decoder %s reads %d",
			name, enc.name, len(enc.toks), dec.name, len(dec.toks))
		return
	}
	for i := range enc.toks {
		e, d := enc.toks[i], dec.toks[i]
		switch {
		case e.width != d.width && e.width > 0 && d.width > 0:
			pass.Reportf(d.pos, "wire pair %q field %d: encoder emits %s (%d bytes) but decoder reads %s (%d bytes)",
				name, i, e.kind, e.width, d.kind, d.width)
		case e.stream && d.stream && e.kind != d.kind:
			pass.Reportf(d.pos, "wire pair %q field %d: encoder emits %s but decoder reads %s",
				name, i, e.kind, d.kind)
		case e.lo >= 0 && d.lo >= 0 && (e.lo != d.lo || e.hi != d.hi):
			pass.Reportf(d.pos, "wire pair %q field %d: encoder writes bytes [%d,%d) but decoder reads [%d,%d)",
				name, i, e.lo, e.hi, d.lo, d.hi)
		case e.loop != d.loop:
			side, other := "encoder", "decoder"
			if d.loop {
				side, other = "decoder", "encoder"
			}
			pass.Reportf(d.pos, "wire pair %q field %d: the %s handles it in a loop but the %s does not",
				name, i, side, other)
		}
	}
}

// specItem is one element of a //recclint:wirelayout spec.
type specItem struct {
	kind string
	loop bool
}

// checkLayoutSpec compares a function's stream-token layout against its
// declared spec.
func checkLayoutSpec(pass *framework.Pass, fd *ast.FuncDecl, spec string) {
	want, err := parseSpec(spec)
	if err != nil {
		pass.Reportf(fd.Name.Pos(), "bad //recclint:wirelayout spec %q: %v", spec, err)
		return
	}
	lay := walkFunc(pass, fd)
	got := make([]specItem, 0, len(lay.toks))
	for _, t := range lay.toks {
		got = append(got, specItem{kind: t.kind, loop: t.loop})
	}
	if !specEqual(got, want) {
		pass.Reportf(fd.Name.Pos(), "layout of %s is %q but //recclint:wirelayout declares %q",
			fd.Name.Name, renderSpec(got), renderSpec(want))
	}
}

// parseSpec parses "u64 str f64" / "u64 loop(i64 f64)" into items.
func parseSpec(s string) ([]specItem, error) {
	var items []specItem
	inLoop := false
	for _, f := range strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == '\t' }) {
		for f != "" {
			switch {
			case strings.HasPrefix(f, "loop("):
				if inLoop {
					return nil, fmt.Errorf("nested loop()")
				}
				inLoop = true
				f = f[len("loop("):]
			case strings.HasSuffix(f, ")"):
				f = strings.TrimSuffix(f, ")")
				if f != "" {
					if _, ok := streamKinds[f]; !ok {
						return nil, fmt.Errorf("unknown kind %q", f)
					}
					items = append(items, specItem{kind: f, loop: inLoop})
					f = ""
				}
				if !inLoop {
					return nil, fmt.Errorf("unbalanced )")
				}
				inLoop = false
			default:
				if _, ok := streamKinds[f]; !ok {
					return nil, fmt.Errorf("unknown kind %q", f)
				}
				items = append(items, specItem{kind: f, loop: inLoop})
				f = ""
			}
		}
	}
	if inLoop {
		return nil, fmt.Errorf("unclosed loop(")
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("empty spec")
	}
	return items, nil
}

func specEqual(a, b []specItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// renderSpec prints items with consecutive looped kinds grouped as loop(...).
func renderSpec(items []specItem) string {
	var b strings.Builder
	for i := 0; i < len(items); {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if !items[i].loop {
			b.WriteString(items[i].kind)
			i++
			continue
		}
		b.WriteString("loop(")
		for first := true; i < len(items) && items[i].loop; i++ {
			if !first {
				b.WriteByte(' ')
			}
			b.WriteString(items[i].kind)
			first = false
		}
		b.WriteString(")")
	}
	return b.String()
}

func isCountKind(t tok) bool {
	switch t.kind {
	case "u16", "u32", "u64", "i64":
		return true
	}
	return false
}

// docDirectiveRest returns everything after the directive on its comment
// line, trimmed; empty when the directive is absent.
func docDirectiveRest(doc *ast.CommentGroup, directive string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive {
			return ""
		}
		if strings.HasPrefix(text, directive+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, directive))
		}
	}
	return ""
}

func firstField(s string) string {
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return s
}

func trimAnyPrefix(name string, prefixes []string) (string, bool) {
	for _, p := range prefixes {
		if rest := strings.TrimPrefix(name, p); rest != name && rest != "" {
			return strings.ToLower(rest), true
		}
	}
	return "", false
}

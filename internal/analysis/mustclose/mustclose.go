// Package mustclose implements the recclint check that owned resources reach
// Close on every path. A value is tracked when a call assigns it to a local
// and its type owns an OS resource: *os.File, or any module type with a Close
// method (the WAL-backed persist.Store, resistecc.DynamicIndex, fixture
// types). The check is a forward dataflow over the function's CFG: each
// tracked local is open, closed, or escaped per path, and a local still open
// when the function can return is a leak — the error-path variants (open
// succeeds, the next step fails, the early return skips Close) are exactly
// the ones reviewers miss and goroutine-leak checkers cannot see.
//
// Ownership transfer ends tracking without a finding: returning the value,
// storing it into a field, sending it away, capturing it in a closure, or
// passing it to a function that keeps it. Direct callees in the loaded
// program get a one-level summary (closes / borrows / escapes its parameter);
// unresolvable callees are assumed to take ownership, so dynamic dispatch
// degrades to silence, not noise. A //recclint:transfers directive on a
// function declares "this sink owns its argument" explicitly.
//
// When a tracked value is provably never closed and never escapes anywhere
// in the function, the finding carries an autofix inserting `defer x.Close()`
// after the creation's error check — the one edit that is always safe.
package mustclose

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resistecc/internal/analysis/dataflow"
	"resistecc/internal/analysis/framework"
)

const transfersDirective = "//recclint:transfers"

// Analyzer is the mustclose check. It runs over the whole program so callee
// summaries resolve across package boundaries.
var Analyzer = &framework.Analyzer{
	Name:       "mustclose",
	Doc:        "os.File/Store/DynamicIndex values must reach Close or a //recclint:transfers sink on every path",
	RunProgram: runProgram,
}

// resState is the per-variable lattice, joined with max so a value open on
// any incoming path stays open at the join. A creation paired with an error
// result starts pending: the resource only provably exists once control takes
// the err == nil edge of the error check (or the value is used), which is
// what keeps the ubiquitous `if err != nil { return err }` shape clean.
// Pending at exit is not a finding — that is the failure path.
type resState uint8

const (
	stClosed resState = iota
	stEscaped
	stPending
	stOpen
)

// fact maps tracked locals to their state. Treated as immutable.
type fact map[*types.Var]resState

func (f fact) with(v *types.Var, s resState) fact {
	if cur, ok := f[v]; ok && cur == s {
		return f
	}
	out := make(fact, len(f)+1)
	for k, st := range f {
		out[k] = st
	}
	out[v] = s
	return out
}

func joinFacts(a, b fact) fact {
	out := make(fact, len(a)+len(b))
	for k, s := range a {
		out[k] = s
	}
	for k, s := range b {
		if cur, ok := out[k]; !ok || s > cur {
			out[k] = s
		}
	}
	return out
}

func equalFacts(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, s := range a {
		if bs, ok := b[k]; !ok || bs != s {
			return false
		}
	}
	return true
}

type paramMode uint8

const (
	pmBorrows paramMode = iota // callee only uses the value
	pmCloses                   // callee closes it on the paths that matter
	pmEscapes                  // callee keeps it: ownership transferred
)

type checker struct {
	pass      *framework.ProgramPass
	prog      *dataflow.Program
	summaries map[string]paramMode
}

func runProgram(pass *framework.ProgramPass) error {
	c := &checker{
		pass:      pass,
		prog:      dataflow.BuildProgram(pass.Pkgs),
		summaries: make(map[string]paramMode),
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkFunc(pkg, fd)
				}
			}
		}
	}
	return nil
}

// creation records where a tracked local was born, for reporting and fixes.
type creation struct {
	pos     token.Pos
	typ     string
	callee  string
	assign  *ast.AssignStmt
	withErr bool // an error result accompanies the resource
}

type funcState struct {
	c    *checker
	pkg  *framework.Package
	fd   *ast.FuncDecl
	info *types.Info

	created     map[*types.Var]*creation
	companions  map[types.Object]map[*types.Var]bool // err var -> resources it gates
	everClosed  map[*types.Var]bool
	everEscaped map[*types.Var]bool
	discards    map[token.Pos]string
}

func (c *checker) checkFunc(pkg *framework.Package, fd *ast.FuncDecl) {
	cfg := dataflow.Build(fd)
	if cfg == nil {
		return
	}
	fs := &funcState{
		c:           c,
		pkg:         pkg,
		fd:          fd,
		info:        pkg.TypesInfo,
		created:     make(map[*types.Var]*creation),
		companions:  make(map[types.Object]map[*types.Var]bool),
		everClosed:  make(map[*types.Var]bool),
		everEscaped: make(map[*types.Var]bool),
		discards:    make(map[token.Pos]string),
	}
	facts := dataflow.Forward(cfg, dataflow.Flow[fact]{
		Entry:    fact{},
		Join:     joinFacts,
		Equal:    equalFacts,
		Transfer: fs.transfer,
		Branch:   fs.branch,
	})
	for pos, callee := range fs.discards {
		c.pass.Reportf(pos, "result of %s has a Close method but is discarded; assign and close it", callee)
	}
	exit := facts[cfg.Exit]
	for v, st := range exit {
		if st != stOpen {
			continue
		}
		cr := fs.created[v]
		if cr == nil {
			continue
		}
		d := framework.Diagnostic{
			Pos: cr.pos,
			Message: fmt.Sprintf("%s returned by %s is not closed on every path; close it, defer the Close, or transfer ownership",
				cr.typ, cr.callee),
		}
		if !fs.everClosed[v] && !fs.everEscaped[v] {
			if fix := fs.deferCloseFix(v, cr); fix != nil {
				d.Fixes = []framework.SuggestedFix{*fix}
			}
		}
		c.pass.Report(d)
	}
}

// transfer applies one CFG statement to the fact. It also records events
// (creations, closes, escapes, discards) in the side tables; these are
// monotone booleans, so re-running during the fixed point is harmless.
func (fs *funcState) transfer(f fact, s ast.Stmt) fact {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Uses on the RHS first (y = x aliases; s.f = x escapes).
		for _, rhs := range s.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
				if v := fs.trackedVar(id); v != nil {
					// Copying to another local aliases it; storing anywhere
					// else publishes it. Both end tracking conservatively.
					f = fs.escape(f, v)
					continue
				}
			}
			f = fs.scanExpr(f, rhs)
		}
		// Then creations on the LHS.
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				f = fs.handleCreation(f, s, call)
			}
		}
		return f

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					f = fs.scanExpr(f, val)
				}
				if len(vs.Values) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
						f = fs.handleSpecCreation(f, vs, call)
					}
				}
			}
		}
		return f

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			// A discarded closeable result is an immediate leak.
			if name := fs.closeableResult(call); name != "" && fs.closeCallVar(call) == nil {
				fs.discards[call.Pos()] = name
			}
		}
		return fs.scanExpr(f, s.X)

	case *ast.DeferStmt:
		if v := fs.closeCallVar(s.Call); v != nil {
			fs.everClosed[v] = true
			return f.with(v, stClosed)
		}
		return fs.scanExpr(f, s.Call)

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if v := fs.trackedVar(id); v != nil {
					f = fs.escape(f, v)
					continue
				}
			}
			f = fs.scanExpr(f, e)
		}
		return f

	case *ast.SendStmt:
		if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok {
			if v := fs.trackedVar(id); v != nil {
				return fs.escape(f, v)
			}
		}
		return fs.scanExpr(f, s.Value)

	case *ast.GoStmt:
		// Anything reachable from a spawned goroutine escapes.
		return fs.scanExpr(f, s.Call)

	case *ast.RangeStmt:
		if s.X != nil {
			return fs.scanExpr(f, s.X)
		}
		return f

	case *ast.IncDecStmt:
		return fs.scanExpr(f, s.X)

	default:
		return f
	}
}

// branch refines the fact on each edge of a two-way branch whose condition
// compares a creation's companion error variable against nil: on the failure
// edge the resource was never created (drop to closed, silently); on the
// success edge it provably exists (pending becomes open).
func (fs *funcState) branch(f fact, last ast.Stmt, succ, nsuccs int) fact {
	if nsuccs != 2 {
		return f
	}
	es, ok := last.(*ast.ExprStmt)
	if !ok {
		return f
	}
	be, ok := ast.Unparen(es.X).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return f
	}
	var errID *ast.Ident
	switch {
	case fs.isNil(be.Y):
		errID, _ = ast.Unparen(be.X).(*ast.Ident)
	case fs.isNil(be.X):
		errID, _ = ast.Unparen(be.Y).(*ast.Ident)
	}
	if errID == nil {
		return f
	}
	comp := fs.companions[fs.info.ObjectOf(errID)]
	if comp == nil {
		return f
	}
	errEdge := 0 // err != nil: the condition-true edge is the failure path
	if be.Op == token.EQL {
		errEdge = 1
	}
	for v := range comp {
		if st, ok := f[v]; ok && st == stPending {
			if succ == errEdge {
				f = f.with(v, stClosed)
			} else {
				f = f.with(v, stOpen)
			}
		}
	}
	return f
}

func (fs *funcState) isNil(e ast.Expr) bool {
	tv, ok := fs.info.Types[e]
	return ok && tv.IsNil()
}

// promote moves a pending resource to open: any real use means the creation
// succeeded on this path.
func (fs *funcState) promote(f fact, v *types.Var) fact {
	if st, ok := f[v]; ok && st == stPending {
		return f.with(v, stOpen)
	}
	return f
}

// scanExpr walks one expression, applying closes, callee summaries, and
// escape rules to every tracked variable it mentions.
func (fs *funcState) scanExpr(f fact, e ast.Expr) fact {
	if e == nil {
		return f
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Captured resources escape into the closure.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v := fs.trackedVar(id); v != nil {
						f = fs.escape(f, v)
					}
				}
				return true
			})
			return false

		case *ast.CallExpr:
			if v := fs.closeCallVar(n); v != nil {
				fs.everClosed[v] = true
				f = f.with(v, stClosed)
				// Still scan arguments of Close (there are none normally).
				return false
			}
			// Receiver position borrows: x.Read(buf) does not move x.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v := fs.trackedVar(id); v != nil {
						f = fs.promote(f, v)
						for _, arg := range n.Args {
							f = fs.scanExpr(f, arg)
						}
						return false
					}
				}
			}
			switch ast.Unparen(n.Fun).(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				// e.g. an immediately-invoked func literal capturing resources
				f = fs.scanExpr(f, n.Fun)
			}
			f = fs.applyCallArgs(f, n)
			return false

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v := fs.trackedVar(id); v != nil {
						f = fs.escape(f, v)
						return false
					}
				}
			}

		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, ok := ast.Unparen(val).(*ast.Ident); ok {
					if v := fs.trackedVar(id); v != nil {
						f = fs.escape(f, v)
					}
				}
			}

		case *ast.BinaryExpr:
			// Nil comparisons observe without using; do not promote through
			// them (f != nil guards are not evidence the resource is live).
			if (n.Op == token.EQL || n.Op == token.NEQ) && (fs.isNil(n.X) || fs.isNil(n.Y)) {
				return false
			}

		case *ast.Ident:
			if v := fs.trackedVar(n); v != nil {
				f = fs.promote(f, v)
			}
		}
		return true
	})
	return f
}

// applyCallArgs resolves the callee and applies per-argument summaries.
func (fs *funcState) applyCallArgs(f fact, call *ast.CallExpr) fact {
	callee := fs.c.prog.ResolvedCallee(fs.info, call)
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			f = fs.scanExpr(f, arg)
			continue
		}
		v := fs.trackedVar(id)
		if v == nil {
			continue
		}
		mode := pmEscapes // unknown callee: assume it keeps the value
		if callee != nil {
			mode = fs.c.paramSummary(callee, i)
		}
		switch mode {
		case pmCloses:
			fs.everClosed[v] = true
			f = f.with(v, stClosed)
		case pmBorrows:
			f = fs.promote(f, v)
		default:
			f = fs.escape(f, v)
		}
	}
	return f
}

func (fs *funcState) escape(f fact, v *types.Var) fact {
	fs.everEscaped[v] = true
	if st, ok := f[v]; !ok || st == stOpen || st == stPending {
		return f.with(v, stEscaped)
	}
	return f // already closed or escaped; nothing changes
}

// trackedVar resolves an ident to a tracked local created in this function.
func (fs *funcState) trackedVar(id *ast.Ident) *types.Var {
	obj := fs.info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := fs.created[v]; !tracked {
		return nil
	}
	return v
}

// closeCallVar returns the tracked variable x for a call of the form
// x.Close(), else nil.
func (fs *funcState) closeCallVar(call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return fs.trackedVar(id)
}

// handleCreation tracks closeable results of call assigned to plain idents.
func (fs *funcState) handleCreation(f fact, s *ast.AssignStmt, call *ast.CallExpr) fact {
	comps := fs.resultComponents(call)
	if comps == nil {
		return f
	}
	// A named error companion gates the creation: until control passes its
	// nil check (or the value is used), the resource is only pending.
	var errObj types.Object
	for i, t := range comps {
		if t != nil && t.String() == "error" && i < len(s.Lhs) {
			if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				errObj = fs.info.ObjectOf(id)
			}
		}
	}
	for i, t := range comps {
		if i >= len(s.Lhs) || !fs.isCloseable(t) {
			continue
		}
		id, ok := s.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			fs.discards[call.Pos()] = calleeDesc(fs.info, call)
			continue
		}
		v, ok := fs.info.ObjectOf(id).(*types.Var)
		if !ok {
			continue
		}
		fs.created[v] = &creation{
			pos:     call.Pos(),
			typ:     typeDesc(t),
			callee:  calleeDesc(fs.info, call),
			assign:  s,
			withErr: errObj != nil,
		}
		state := stOpen
		if errObj != nil {
			state = stPending
			if fs.companions[errObj] == nil {
				fs.companions[errObj] = make(map[*types.Var]bool)
			}
			fs.companions[errObj][v] = true
		}
		f = f.with(v, state)
	}
	return f
}

func (fs *funcState) handleSpecCreation(f fact, vs *ast.ValueSpec, call *ast.CallExpr) fact {
	comps := fs.resultComponents(call)
	if comps == nil {
		return f
	}
	var errObj types.Object
	for i, t := range comps {
		if t != nil && t.String() == "error" && i < len(vs.Names) && vs.Names[i].Name != "_" {
			errObj = fs.info.ObjectOf(vs.Names[i])
		}
	}
	for i, t := range comps {
		if i >= len(vs.Names) || !fs.isCloseable(t) {
			continue
		}
		id := vs.Names[i]
		if id.Name == "_" {
			fs.discards[call.Pos()] = calleeDesc(fs.info, call)
			continue
		}
		v, ok := fs.info.ObjectOf(id).(*types.Var)
		if !ok {
			continue
		}
		fs.created[v] = &creation{
			pos:    call.Pos(),
			typ:    typeDesc(t),
			callee: calleeDesc(fs.info, call),
		}
		state := stOpen
		if errObj != nil {
			state = stPending
			if fs.companions[errObj] == nil {
				fs.companions[errObj] = make(map[*types.Var]bool)
			}
			fs.companions[errObj][v] = true
		}
		f = f.with(v, state)
	}
	return f
}

// resultComponents returns the call's result types when at least one of them
// is closeable, else nil.
func (fs *funcState) resultComponents(call *ast.CallExpr) []types.Type {
	tv, ok := fs.info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	var comps []types.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			comps = append(comps, tuple.At(i).Type())
		}
	} else {
		comps = []types.Type{tv.Type}
	}
	for _, t := range comps {
		if fs.isCloseable(t) {
			return comps
		}
	}
	return nil
}

// closeableResult describes the callee when the call's (sole or first)
// closeable result would be dropped.
func (fs *funcState) closeableResult(call *ast.CallExpr) string {
	if fs.resultComponents(call) == nil {
		return ""
	}
	return calleeDesc(fs.info, call)
}

// isCloseable reports whether t owns a resource the analyzer tracks:
// *os.File, or a named module/package-local type with a Close method.
func (fs *funcState) isCloseable(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path == "os" {
		return obj.Name() == "File"
	}
	inModule := strings.HasPrefix(path, "resistecc") || obj.Pkg() == fs.pkg.Types
	if !inModule {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, obj.Pkg(), "Close")
	fn, ok := m.(*types.Func)
	return ok && fn != nil
}

// paramSummary computes (and caches) how callee treats its i-th argument.
func (c *checker) paramSummary(callee *dataflow.FuncInfo, idx int) paramMode {
	key := fmt.Sprintf("%s#%d", callee.Obj.FullName(), idx)
	if m, ok := c.summaries[key]; ok {
		return m
	}
	mode := c.computeParamSummary(callee, idx)
	c.summaries[key] = mode
	return mode
}

func (c *checker) computeParamSummary(callee *dataflow.FuncInfo, idx int) paramMode {
	if hasTransfersDirective(callee.Decl.Doc, paramName(callee.Decl, idx)) {
		return pmEscapes
	}
	if callee.Decl.Body == nil {
		return pmEscapes
	}
	name := paramName(callee.Decl, idx)
	if name == "" || name == "_" {
		return pmBorrows // unnamed parameters cannot be used at all
	}
	var obj types.Object
	flat := 0
	for _, field := range callee.Decl.Type.Params.List {
		for _, n := range field.Names {
			if flat == idx {
				obj = callee.Pkg.TypesInfo.Defs[n]
			}
			flat++
		}
		if len(field.Names) == 0 {
			flat++
		}
	}
	if obj == nil {
		return pmEscapes
	}
	closes, escapes := false, false
	info := callee.Pkg.TypesInfo
	ast.Inspect(callee.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					escapes = true
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					if sel.Sel.Name == "Close" {
						closes = true
					}
					return false // receiver position otherwise borrows
				}
			}
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					escapes = true // passed on: beyond the one-level horizon
				}
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || info.ObjectOf(id) != obj {
					continue
				}
				if i < len(n.Lhs) {
					if _, plain := n.Lhs[i].(*ast.Ident); !plain {
						escapes = true // stored into a field/slot
					} else {
						escapes = true // aliased; conservative
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if id, ok := ast.Unparen(val).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				escapes = true
			}
		}
		return true
	})
	if escapes {
		return pmEscapes
	}
	if closes {
		return pmCloses
	}
	return pmBorrows
}

func paramName(fd *ast.FuncDecl, idx int) string {
	flat := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			if flat == idx {
				return ""
			}
			flat++
			continue
		}
		for _, n := range field.Names {
			if flat == idx {
				return n.Name
			}
			flat++
		}
	}
	return ""
}

// hasTransfersDirective reports a //recclint:transfers directive on doc,
// either bare (all parameters) or naming the given parameter.
func hasTransfersDirective(doc *ast.CommentGroup, param string) bool {
	if doc == nil {
		return false
	}
	for _, cmt := range doc.List {
		text := strings.TrimSpace(cmt.Text)
		if !strings.HasPrefix(text, transfersDirective) {
			continue
		}
		rest := strings.Fields(strings.TrimPrefix(text, transfersDirective))
		if len(rest) == 0 {
			return true
		}
		for _, r := range rest {
			if r == param {
				return true
			}
		}
	}
	return false
}

// deferCloseFix builds the `defer x.Close()` insertion for a pure leak. The
// edit lands after the creation's error check when one follows immediately,
// else right after the creation statement — and only when the creation sits
// directly in a statement list, so the insertion point is unambiguous.
func (fs *funcState) deferCloseFix(v *types.Var, cr *creation) *framework.SuggestedFix {
	if cr.assign == nil {
		return nil
	}
	var insertAfter ast.Stmt
	ast.Inspect(fs.fd.Body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range blk.List {
			if s != ast.Stmt(cr.assign) {
				continue
			}
			insertAfter = s
			if cr.withErr && i+1 < len(blk.List) {
				if ifs, ok := blk.List[i+1].(*ast.IfStmt); ok && ifs.Else == nil {
					insertAfter = ifs
				}
			}
			return false
		}
		return true
	})
	if insertAfter == nil {
		return nil
	}
	if cr.withErr {
		if _, ok := insertAfter.(*ast.IfStmt); !ok {
			// The error is checked somewhere non-adjacent; inserting a defer
			// before the check could Close an invalid handle. Not safe.
			return nil
		}
	}
	return &framework.SuggestedFix{
		Message: "defer " + v.Name() + ".Close() after the creation",
		Edits: []framework.TextEdit{{
			Pos:     insertAfter.End(),
			End:     insertAfter.End(),
			NewText: "\ndefer " + v.Name() + ".Close()",
		}},
	}
}

func calleeDesc(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

func typeDesc(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		if j := strings.LastIndex(s[:i], "*"); j >= 0 {
			return s[:j+1] + s[i+1:]
		}
		return s[i+1:]
	}
	return s
}

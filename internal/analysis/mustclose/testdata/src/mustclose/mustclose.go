// Fixture for the mustclose analyzer: resources created by calls must reach
// Close (or a transfer of ownership) on every path out of the function.
package mustclose

import "os"

// WAL is a package-local resource type: having a Close method makes call
// results of this type tracked, mirroring persist.Store and the real WAL.
type WAL struct{ f *os.File }

// Close releases the underlying handle.
func (w *WAL) Close() error { return w.f.Close() }

// Append borrows the receiver.
func (w *WAL) Append(rec []byte) error { return nil }

// NewWAL opens a WAL; the caller owns the result.
func NewWAL(path string) (*WAL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f}, nil
}

// holder keeps a file alive beyond the function that opened it.
type holder struct{ f *os.File }

// sink takes ownership of its argument by contract; the body intentionally
// hides the retention behind an interface the analyzer cannot see through.
//
//recclint:transfers f
func sink(f *os.File) {
	var keep interface{ store(*os.File) }
	if keep != nil {
		keep.store(f)
	}
}

// closeIt closes its argument: callers passing a file here are done with it.
func closeIt(f *os.File) error { return f.Close() }

// readAll only borrows its argument.
func readAll(f *os.File) int {
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	return n
}

// deferClose is the canonical clean shape.
func deferClose(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return readAll(f), nil
}

// closeAllPaths closes explicitly on every branch.
func closeAllPaths(path string, fast bool) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	if fast {
		n := readAll(f)
		f.Close()
		return n
	}
	f.Close()
	return 0
}

// returned transfers ownership to the caller.
func returned(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// stored publishes the file into a struct that outlives the call.
func stored(path string) *holder {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	return &holder{f: f}
}

// transferred hands the file to a declared ownership sink.
func transferred(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	sink(f)
}

// closedByHelper relies on the one-level callee summary seeing the Close.
func closedByHelper(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	closeIt(f)
}

// sentAway ships the file over a channel; the receiver owns it now.
func sentAway(path string, ch chan *os.File) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	ch <- f
}

// spawned captures the file in a goroutine that closes it.
func spawned(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	go func() {
		readAll(f)
		f.Close()
	}()
}

// errPathLeak closes on success but leaks when the second step fails: the
// early return skips the Close. This is the bug class the analyzer exists for.
func errPathLeak(path string) ([]byte, error) {
	f, err := os.Open(path) // want "os\.File returned by os\.Open is not closed on every path"
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 64)
	if _, err := f.Read(buf); err != nil {
		return nil, err // leak: f is still open here
	}
	f.Close()
	return buf, nil
}

// pureLeak never closes at all; this finding carries the defer-Close autofix.
func pureLeak(path string) int {
	f, err := os.Open(path) // want "os\.File returned by os\.Open is not closed on every path"
	if err != nil {
		return 0
	}
	return readAll(f)
}

// walLeak shows package-local resource types are tracked like os.File.
func walLeak(path string) error {
	w, err := NewWAL(path) // want "WAL returned by NewWAL is not closed on every path"
	if err != nil {
		return err
	}
	return w.Append(nil)
}

// branchOnlyClose closes on one arm only.
func branchOnlyClose(path string, cond bool) {
	f, err := os.Open(path) // want "os\.File returned by os\.Open is not closed on every path"
	if err != nil {
		return
	}
	if cond {
		f.Close()
	}
}

// discarded drops a closeable result on the floor.
func discarded(path string) {
	os.Create(path) // want "result of os\.Create has a Close method but is discarded"
}

// blanked is the same leak spelled with a blank identifier.
func blanked(path string) {
	f, _ := os.Open(path)              // no finding for f: tracked and closed below
	_, err := os.Create(path + ".bak") // want "result of os\.Create has a Close method but is discarded"
	_ = err
	f.Close()
}

// declLeak creates via a var declaration instead of :=.
func declLeak(path string) {
	var f, err = os.Open(path) // want "os\.File returned by os\.Open is not closed on every path"
	if err != nil {
		return
	}
	readAll(f)
}

// suppressedLeak records a justified exception via the v1 ignore directive.
func suppressedLeak(path string) *os.File {
	//recclint:ignore mustclose handle intentionally kept open for the process lifetime
	f, _ := os.Open(path)
	readAll(f)
	return nil
}

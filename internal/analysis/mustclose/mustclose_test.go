package mustclose_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/mustclose"
)

func TestMustclose(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, mustclose.Analyzer, framework.FixturePath("mustclose"))
}

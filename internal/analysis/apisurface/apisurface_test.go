package apisurface_test

import (
	"testing"

	"resistecc/internal/analysis/apisurface"
	"resistecc/internal/analysis/framework"
)

func TestAPISurface(t *testing.T) {
	framework.TestAnalyzer(t, apisurface.Analyzer, framework.FixturePath("apisurface"))
}

func TestAPISurfaceBrokenManifest(t *testing.T) {
	framework.TestAnalyzer(t, apisurface.Analyzer, framework.FixturePath("apisurfacebroken"))
}

// Package apisurface enforces the HTTP envelope and route-surface discipline
// of the serving tier. It activates only on packages that opt in — by
// declaring an envelope function (//recclint:envelope on its doc comment), by
// pinning a routes manifest (//recclint:routes <file> anywhere in a file), or
// by a bare //recclint:apisurface file directive — and then checks:
//
//   - no http.Error: every error response must carry the structured
//     {"error":{code,message}} envelope, which http.Error cannot produce;
//   - no naked WriteHeader on error statuses: only the envelope function may
//     write a 4xx/5xx header. Delegation through an embedded
//     http.ResponseWriter (x.ResponseWriter.WriteHeader(...)) is exempt —
//     that is how middleware wrappers forward, not how handlers respond;
//   - envelope call sites with a constant 4xx/5xx status must pass a body
//     whose type carries a field tagged json:"error", so non-2xx responses
//     are envelope-shaped by construction;
//   - the registered route surface matches the manifest: the set of
//     "METHOD /path" pattern constants in each registrar function equals the
//     manifest rows for that registrar's roles, manifest rows are
//     well-formed and duplicate-free, and every route marked
//     "generation": true names a handler that reaches a //recclint:genstamp
//     function (the X-Index-Generation stamp) through package-local calls.
package apisurface

import (
	"encoding/json"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "apisurface",
	Doc:  "HTTP surface discipline: enveloped error paths, no naked 4xx/5xx WriteHeader, route set matches the routes manifest, generation-stamped handlers",
	Run:  run,
}

const (
	surfaceDirective  = "//recclint:apisurface"
	routesDirective   = "//recclint:routes"
	envelopeDirective = "//recclint:envelope"
	genstampDirective = "//recclint:genstamp"
)

// patternRe matches the "METHOD /path" mux-registration literals the route
// collection keys on.
var patternRe = regexp.MustCompile(`^(GET|POST|PUT|DELETE|PATCH|HEAD) /`)

var validMethods = map[string]bool{
	"GET": true, "POST": true, "PUT": true, "DELETE": true, "PATCH": true, "HEAD": true,
}

func run(pass *framework.Pass) error {
	info := collect(pass)
	if !info.active {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, info, fd)
		}
	}
	if info.routesFile != "" {
		checkRoutes(pass, info)
	}
	return nil
}

// pkgInfo is everything collect gathers in one sweep over the package.
type pkgInfo struct {
	active     bool
	routesFile string    // absolute manifest path; "" when no routes directive
	routesPos  token.Pos // the directive comment, anchor for manifest errors

	envelope map[*types.Func]bool // //recclint:envelope functions
	genstamp map[*types.Func]bool // //recclint:genstamp functions
	decls    map[*types.Func]*ast.FuncDecl
	byKey    map[string]*types.Func        // "recvType.name" or "name" → func
	calls    map[*types.Func][]*types.Func // package-local static call graph
}

func collect(pass *framework.Pass) *pkgInfo {
	info := &pkgInfo{
		envelope: make(map[*types.Func]bool),
		genstamp: make(map[*types.Func]bool),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		byKey:    make(map[string]*types.Func),
	}
	for _, f := range pass.Files {
		if framework.HasFileDirective(f, surfaceDirective) {
			info.active = true
		}
		if arg, pos := fileDirectiveArg(f, routesDirective); arg != "" {
			info.active = true
			dir := filepath.Dir(pass.Fset.Position(f.Pos()).Filename)
			info.routesFile = filepath.Join(dir, arg)
			info.routesPos = pos
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info.decls[obj] = fd
			info.byKey[funcKey(fd)] = obj
			if hasDocDirective(fd.Doc, envelopeDirective) {
				info.envelope[obj] = true
				info.active = true
			}
			if hasDocDirective(fd.Doc, genstampDirective) {
				info.genstamp[obj] = true
			}
		}
	}
	if !info.active {
		return info
	}
	// Package-local static call graph, for genstamp reachability.
	info.calls = make(map[*types.Func][]*types.Func)
	for obj, fd := range info.decls {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
				info.calls[obj] = append(info.calls[obj], callee)
			}
			return true
		})
	}
	return info
}

// checkBody applies the per-statement rules (R1 http.Error, R2 WriteHeader,
// R3 envelope-shaped error bodies) to one function.
func checkBody(pass *framework.Pass, info *pkgInfo, fd *ast.FuncDecl) {
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	inEnvelope := obj != nil && info.envelope[obj]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		// R1: http.Error writes text/plain with no envelope.
		if callee.Pkg() != nil && callee.Pkg().Path() == "net/http" && callee.Name() == "Error" {
			pass.Reportf(call.Pos(),
				"http.Error bypasses the error envelope: use the package's //recclint:envelope helper")
			return true
		}
		// R2: WriteHeader outside the envelope layer.
		if callee.Name() == "WriteHeader" && len(call.Args) == 1 && !inEnvelope {
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				checkWriteHeader(pass, call)
			}
			return true
		}
		// R3: envelope calls with a constant error status need an
		// envelope-shaped body type.
		if callee.Pkg() == pass.Pkg && info.envelope[callee] {
			checkEnvelopeCall(pass, call, callee)
		}
		return true
	})
}

func checkWriteHeader(pass *framework.Pass, call *ast.CallExpr) {
	// x.ResponseWriter.WriteHeader(...) is a wrapper forwarding to its
	// embedded writer — the middleware idiom, not a response decision.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "ResponseWriter" {
			return
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		status, _ := constant.Int64Val(tv.Value)
		if status < 400 {
			return
		}
		pass.Reportf(call.Pos(),
			"naked WriteHeader(%d): error statuses must go through the //recclint:envelope helper", status)
		return
	}
	pass.Reportf(call.Pos(),
		"WriteHeader with a non-constant status outside the envelope layer: route the response through the //recclint:envelope helper")
}

func checkEnvelopeCall(pass *framework.Pass, call *ast.CallExpr, callee *types.Func) {
	statusIdx, bodyIdx := envelopeParams(callee)
	if statusIdx < 0 || bodyIdx < 0 || len(call.Args) <= bodyIdx || len(call.Args) <= statusIdx {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[statusIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	status, _ := constant.Int64Val(tv.Value)
	if status < 400 || status >= 600 {
		return
	}
	bt := pass.TypesInfo.Types[call.Args[bodyIdx]].Type
	if !carriesEnvelope(bt) {
		pass.Reportf(call.Args[bodyIdx].Pos(),
			"status %d body type %s does not carry the error envelope (no struct field tagged json:\"error\")",
			status, types.TypeString(bt, types.RelativeTo(pass.Pkg)))
	}
}

// envelopeParams locates the status (first int) and body (first non-variadic
// any) parameters of an envelope function. Either may be absent (-1): a
// helper like WriteError builds the envelope itself and has no body to check.
func envelopeParams(fn *types.Func) (statusIdx, bodyIdx int) {
	statusIdx, bodyIdx = -1, -1
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n--
	}
	for i := 0; i < n; i++ {
		t := params.At(i).Type()
		if b, ok := t.(*types.Basic); ok && b.Kind() == types.Int && statusIdx < 0 {
			statusIdx = i
		}
		if iface, ok := t.Underlying().(*types.Interface); ok && iface.Empty() && bodyIdx < 0 {
			bodyIdx = i
		}
	}
	return
}

// carriesEnvelope reports whether t (after pointer derefs) is a struct with a
// field whose json tag names "error" — the shape clients parse error details
// out of.
func carriesEnvelope(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if name, _, _ := strings.Cut(tag, ","); name == "error" {
			return true
		}
	}
	return false
}

// --- routes manifest ---

type routeRow struct {
	Method     string   `json:"method"`
	Path       string   `json:"path"`
	Roles      []string `json:"roles"`
	Handler    string   `json:"handler"`
	Generation bool     `json:"generation"`
}

type manifest struct {
	Registrars map[string][]string `json:"registrars"`
	Routes     []routeRow          `json:"routes"`
}

func checkRoutes(pass *framework.Pass, info *pkgInfo) {
	data, err := os.ReadFile(info.routesFile)
	if err != nil {
		pass.Reportf(info.routesPos, "routes manifest: %v", err)
		return
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		pass.Reportf(info.routesPos, "routes manifest %s: %v", filepath.Base(info.routesFile), err)
		return
	}
	if len(m.Registrars) == 0 {
		pass.Reportf(info.routesPos, "routes manifest %s declares no registrars", filepath.Base(info.routesFile))
		return
	}

	// Registrars must resolve to functions in this package; collect the role
	// universe while we're at it.
	knownRoles := make(map[string]bool)
	registrars := make([]string, 0, len(m.Registrars))
	for key := range m.Registrars {
		registrars = append(registrars, key)
	}
	sort.Strings(registrars)
	ok := true
	for _, key := range registrars {
		if _, found := info.byKey[key]; !found {
			pass.Reportf(info.routesPos,
				"routes manifest names registrar %q: no such function in this package", key)
			ok = false
		}
		for _, role := range m.Registrars[key] {
			knownRoles[role] = true
		}
	}

	// Row validation: shape, role universe, duplicates.
	seen := make(map[string]int) // "role METHOD path" → first row index
	for i, r := range m.Routes {
		switch {
		case !validMethods[r.Method]:
			pass.Reportf(info.routesPos, "routes manifest row %d: invalid method %q", i, r.Method)
			ok = false
		case !strings.HasPrefix(r.Path, "/"):
			pass.Reportf(info.routesPos, "routes manifest row %d: path %q does not start with /", i, r.Path)
			ok = false
		case len(r.Roles) == 0:
			pass.Reportf(info.routesPos, "routes manifest row %d: %s %s has no roles", i, r.Method, r.Path)
			ok = false
		}
		for _, role := range r.Roles {
			if !knownRoles[role] {
				pass.Reportf(info.routesPos,
					"routes manifest row %d: role %q does not belong to any registrar", i, role)
				ok = false
				continue
			}
			k := role + " " + r.Method + " " + r.Path
			if first, dup := seen[k]; dup {
				pass.Reportf(info.routesPos,
					"routes manifest row %d: duplicate route %s %s for role %q (first at row %d)",
					i, r.Method, r.Path, role, first)
				ok = false
			} else {
				seen[k] = i
			}
		}
	}
	if !ok {
		return // cross-checks against a broken manifest would only add noise
	}

	for _, key := range registrars {
		checkRegistrar(pass, info, key, m.Registrars[key], m.Routes)
	}
}

// checkRegistrar compares the "METHOD /path" constants registered inside one
// registrar function against the manifest rows for its roles, and walks
// generation-marked handlers to a genstamp function.
func checkRegistrar(pass *framework.Pass, info *pkgInfo, key string, roles []string, rows []routeRow) {
	fn := info.byKey[key]
	fd := info.decls[fn]
	if fd.Body == nil {
		return
	}
	roleSet := make(map[string]bool, len(roles))
	for _, r := range roles {
		roleSet[r] = true
	}
	mine := func(r routeRow) bool {
		for _, role := range r.Roles {
			if roleSet[role] {
				return true
			}
		}
		return false
	}

	// Registered side: every constant string in the body shaped like a mux
	// pattern. Derived (non-constant) patterns — the legacy aliases — are
	// deliberately invisible.
	registered := make(map[string]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[expr]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		if s := constant.StringVal(tv.Value); patternRe.MatchString(s) {
			if _, dup := registered[s]; !dup {
				registered[s] = expr.Pos()
			}
		}
		return true
	})

	expected := make(map[string]routeRow)
	for _, r := range rows {
		if mine(r) {
			expected[r.Method+" "+r.Path] = r
		}
	}

	var missing, extra []string
	for pat := range expected {
		if _, found := registered[pat]; !found {
			missing = append(missing, pat)
		}
	}
	for pat := range registered {
		if _, found := expected[pat]; !found {
			extra = append(extra, pat)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, pat := range missing {
		pass.Reportf(fd.Name.Pos(),
			"route %q is in the routes manifest but not registered by %s", pat, key)
	}
	for _, pat := range extra {
		pass.Reportf(registered[pat],
			"registered pattern %q is not in the routes manifest", pat)
	}

	// Generation discipline: the named handler must reach a genstamp function.
	recvType, _, _ := strings.Cut(key, ".")
	pats := make([]string, 0, len(expected))
	for pat := range expected {
		pats = append(pats, pat)
	}
	sort.Strings(pats)
	for _, pat := range pats {
		r := expected[pat]
		if r.Handler == "" {
			continue
		}
		h := info.byKey[recvType+"."+r.Handler]
		if h == nil {
			h = info.byKey[r.Handler]
		}
		if h == nil {
			pass.Reportf(fd.Name.Pos(),
				"routes manifest route %s %s names handler %q: no such function or method on %s",
				r.Method, r.Path, r.Handler, recvType)
			continue
		}
		if r.Generation && !reachesGenstamp(info, h) {
			pass.Reportf(info.decls[h].Name.Pos(),
				"route %s %s is marked generation:true but handler %s never reaches a //recclint:genstamp function",
				r.Method, r.Path, r.Handler)
		}
	}
}

// reachesGenstamp walks the package-local call graph from start.
func reachesGenstamp(info *pkgInfo, start *types.Func) bool {
	visited := map[*types.Func]bool{start: true}
	queue := []*types.Func{start}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if info.genstamp[fn] {
			return true
		}
		for _, callee := range info.calls[fn] {
			if !visited[callee] {
				visited[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return false
}

// --- helpers ---

// calleeFunc resolves the *types.Func a call statically dispatches to, or nil
// for indirect calls and conversions.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcKey names a declaration the way the manifest's registrars map does:
// "recvType.method" for methods, "name" for plain functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// fileDirectiveArg finds a "//recclint:<dir> <arg>" comment anywhere in f and
// returns its first argument with the comment's position.
func fileDirectiveArg(f *ast.File, directive string) (string, token.Pos) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directive+" ") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, directive))
			if len(fields) > 0 {
				return fields[0], c.Pos()
			}
		}
	}
	return "", token.NoPos
}

func hasDocDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

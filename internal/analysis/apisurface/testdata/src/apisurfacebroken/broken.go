// Fixture for apisurface manifest validation: the manifest names a registrar
// that does not exist in the package, so the cross-checks are skipped and
// only the manifest error is reported.
package fixture

//recclint:routes routes.json // want "routes manifest names registrar \"ghost.handler\": no such function in this package"

// Fixture for the apisurface analyzer: error responses go through the
// envelope helper, WriteHeader never writes a naked error status, constant
// error statuses carry an envelope-shaped body, and the registered route set
// matches routes.json.
package fixture

//recclint:routes routes.json

import (
	"encoding/json"
	"net/http"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type envelope struct {
	Error errorBody `json:"error"`
}

type plainBody struct {
	Status string `json:"status"`
}

// writeJSON is the envelope layer of this package.
//
//recclint:envelope
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status) // allowed: inside the envelope function
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err
	}
}

func bad(w http.ResponseWriter, status int) {
	http.Error(w, "nope", http.StatusBadRequest)  // want "http.Error bypasses the error envelope"
	w.WriteHeader(http.StatusInternalServerError) // want "naked WriteHeader\(500\)"
	w.WriteHeader(status)                         // want "non-constant status outside the envelope layer"
	w.WriteHeader(http.StatusNoContent)           // allowed: 2xx never needs the envelope
}

func respond(w http.ResponseWriter, code int) {
	writeJSON(w, http.StatusBadRequest, plainBody{Status: "bad"}) // want "does not carry the error envelope"
	writeJSON(w, http.StatusConflict, envelope{Error: errorBody{Code: "duplicate_edge", Message: "already present"}})
	writeJSON(w, http.StatusServiceUnavailable, &envelope{Error: errorBody{Code: "overloaded"}})
	writeJSON(w, http.StatusOK, plainBody{Status: "ok"})
	writeJSON(w, code, plainBody{Status: "dynamic"}) // allowed: non-constant status is unknowable statically
}

// statusWriter is the middleware wrapper idiom: forwarding through the
// embedded ResponseWriter is exempt.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// relay forwards an upstream status whose body the upstream already
// enveloped; the suppression records why that is safe.
func relay(w http.ResponseWriter, status int) {
	//recclint:ignore apisurface upstream already enveloped the body
	w.WriteHeader(status)
}

//recclint:genstamp
func stamp(w http.ResponseWriter) {
	w.Header().Set("X-Index-Generation", "1")
}

type srv struct{}

func (s *srv) handleThing(w http.ResponseWriter, _ *http.Request) {
	stamp(w)
	writeJSON(w, http.StatusOK, plainBody{Status: "ok"})
}

func (s *srv) handleNoStamp(w http.ResponseWriter, _ *http.Request) { // want "never reaches a //recclint:genstamp function"
	writeJSON(w, http.StatusOK, plainBody{Status: "ok"})
}

func (s *srv) handler(mux *http.ServeMux) { // want "route \"GET /v1/missing\" is in the routes manifest but not registered"
	mux.HandleFunc("GET /v1/thing", s.handleThing)
	mux.HandleFunc("GET /v1/nostamp", s.handleNoStamp)
	mux.HandleFunc("GET /v1/extra", s.handleThing) // want "registered pattern \"GET /v1/extra\" is not in the routes manifest"
}

package analysis

import (
	"testing"

	"resistecc/internal/analysis/framework"
)

// TestRepoIsClean runs the full recclint suite over every package in the
// module and requires zero findings. The invariants the analyzers encode —
// guarded fields locked, durability errors observed, no float ==, no
// nondeterminism in build/serialize paths — are not aspirational: the tree
// satisfies them at all times, and any exception carries an inline
// //recclint:ignore justification.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	root, err := framework.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := framework.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	findings, err := framework.RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f.String())
	}
}

// TestRegistry pins the shape of the analyzer registry: all sixteen checkers
// exist, names are unique (suppression directives key on them), and every
// analyzer documents itself and is runnable per-package or program-wide.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 16 {
		t.Fatalf("expected at least 16 analyzers, got %d", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunProgram == nil) {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{
		"apisurface", "atomicmix", "chandisc", "ctxflow",
		"determinism", "erridentity", "floateq", "goroutinelife",
		"hotpath", "lockguard", "lockorder", "metrichygiene",
		"mustclose", "syncerr", "wgbalance", "wireproto",
	} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
}

package analysis

import (
	"path/filepath"
	"testing"

	"resistecc/internal/analysis/framework"
)

// TestDirectivesCompose runs the FULL eight-analyzer suite over one fixture
// that layers every directive the framework understands — v1 //recclint:holds
// and "guarded by" annotations, v2 lockrank/ctxroot/hotpath, and an inline
// //recclint:ignore silencing a v2 dataflow finding — and requires zero
// findings. This pins the contract that v2 analyzers joined the existing
// directive surface instead of forking it.
func TestDirectivesCompose(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	root, err := framework.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", "compose")
	pkg, err := framework.LoadDir(root, dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := framework.RunAnalyzers([]*framework.Package{pkg}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("compose fixture should be clean, got: %s", f.String())
	}
}

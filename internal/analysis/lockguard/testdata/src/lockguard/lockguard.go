// Package fixture exercises lockguard: annotated fields, the three ways a
// function may hold the lock, and the diagnostics for unheld access and for
// annotations naming a mutex that does not exist.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

// locked takes the mutex before touching n: no finding.
func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// rlocked: a read lock also counts as holding.
func (c *counter) rlocked() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n + len(c.m)
}

// unlocked reads n with no lock anywhere in the body.
func (c *counter) unlocked() int {
	return c.n // want "counter.n is guarded by mu but the access does not hold it"
}

// bumpLocked relies on the Locked naming convention: callers hold mu.
func (c *counter) bumpLocked() {
	c.n++
}

// fresh owns the only reference, so no lock is needed yet.
//
//recclint:holds mu — the counter is not shared until fresh returns.
func fresh() *counter {
	c := &counter{m: make(map[string]int)}
	c.n = 1
	return c
}

// wrongInstance locks a's mutex but reads b's field: the base chains differ.
func wrongInstance(a, b *counter) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want "counter.n is guarded by mu but the access does not hold it"
}

// suppressed records why this unlocked read is safe.
func (c *counter) suppressed() int {
	//recclint:ignore lockguard single-goroutine test helper constructed and read on the same stack
	return c.n
}

type mislabeled struct {
	n int // guarded by lock // want "annotation names \"lock\", which is not a field of mislabeled"
}

func (m *mislabeled) get() int { return m.n }

// Package lockguard enforces the repository's mutex annotations: a struct
// field whose comment says "guarded by <mu>" may only be read or written in
// functions that demonstrably hold that mutex.
//
// A function counts as holding <mu> for an access base.field when any of:
//
//   - its body contains base.<mu>.Lock() or base.<mu>.RLock() on the same
//     base object chain (the common m.mu.Lock(); defer m.mu.Unlock() shape;
//     the check is function-scoped, not flow-sensitive — the race detector
//     and code review own the ordering, lockguard owns "did you even try");
//   - its name ends in "Locked", the repository's convention for helpers
//     whose callers hold the lock;
//   - its doc comment carries a //recclint:holds <mu> directive, for
//     constructors that own the only reference and for callers-hold helpers
//     whose names predate the Locked convention.
//
// This is the machine-checked form of the invariant the lifecycle manager,
// the observability registry and the persist store rely on: every comment of
// the form "guarded by mu" used to be prose, now it is load-bearing.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"resistecc/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "lockguard",
	Doc:  "check that fields annotated 'guarded by <mu>' are only accessed with the mutex held",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)`)

// guardedField records one annotated struct field.
type guardedField struct {
	structName string
	fieldName  string
	mu         string
}

const holdsDirective = "//recclint:holds"

func run(pass *framework.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuarded finds every "guarded by <mu>" field annotation and verifies
// the named mutex is a sibling field.
func collectGuarded(pass *framework.Pass) map[types.Object]guardedField {
	guarded := make(map[types.Object]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu := annotationMutex(field)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a field of %s", mu, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = guardedField{structName: ts.Name.Name, fieldName: name.Name, mu: mu}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// annotationMutex extracts the mutex name from a field's trailing or doc
// comment, if annotated.
func annotationMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockSite is one <base>.<mu>.Lock()/RLock() call found in a function body.
type lockSite struct {
	mu   string
	root types.Object
	path string // rendered field path of the base, "" for a bare root
	ok   bool   // base chain resolved
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, guarded map[types.Object]guardedField) {
	holdsAll := strings.HasSuffix(fd.Name.Name, "Locked")
	holds := docHolds(fd.Doc)

	var locks []lockSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr: // base.mu.Lock()
			root, path, resolved := chain(pass.TypesInfo, x.X)
			locks = append(locks, lockSite{mu: x.Sel.Name, root: root, path: path, ok: resolved})
		case *ast.Ident: // mu.Lock() on a local or package-level mutex
			locks = append(locks, lockSite{mu: x.Name, root: pass.TypesInfo.Uses[x], ok: true})
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		g, isGuarded := guarded[s.Obj()]
		if !isGuarded || holdsAll || holds[g.mu] {
			return true
		}
		root, path, resolved := chain(pass.TypesInfo, sel.X)
		for _, l := range locks {
			if l.mu != g.mu {
				continue
			}
			// Unresolvable chains on either side are treated as matching:
			// lockguard must never cry wolf on exotic bases, only on the
			// plain field accesses that make up the real code.
			if !resolved || !l.ok || (l.root == root && l.path == path) {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s but the access does not hold it (lock %s, rename with a Locked suffix, or annotate %s)",
			g.structName, g.fieldName, g.mu, g.mu, holdsDirective+" "+g.mu)
		return true
	})
}

// docHolds collects every //recclint:holds <mu> directive in a doc comment.
func docHolds(doc *ast.CommentGroup) map[string]bool {
	holds := make(map[string]bool)
	if doc == nil {
		return holds
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, holdsDirective) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, holdsDirective))
		if len(fields) > 0 {
			holds[fields[0]] = true
		}
	}
	return holds
}

// chain resolves an expression to (root object, dotted field path). It
// unwraps parens, derefs and address-ofs; anything else (calls, indexing) is
// unresolvable and reported as ok=false.
func chain(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x], "", true
	case *ast.SelectorExpr:
		root, path, ok := chain(info, x.X)
		if !ok {
			return nil, "", false
		}
		if path == "" {
			return root, x.Sel.Name, true
		}
		return root, fmt.Sprintf("%s.%s", path, x.Sel.Name), true
	case *ast.ParenExpr:
		return chain(info, x.X)
	case *ast.StarExpr:
		return chain(info, x.X)
	case *ast.UnaryExpr:
		return chain(info, x.X)
	}
	return nil, "", false
}

package lockguard

import (
	"testing"

	"resistecc/internal/analysis/framework"
)

func TestLockguard(t *testing.T) {
	framework.TestAnalyzer(t, Analyzer, framework.FixturePath("lockguard"))
}

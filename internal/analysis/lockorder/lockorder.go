// Package lockorder implements the recclint deadlock check: a global
// lock-acquisition-order graph built across every package the loader
// produced. Each function is run through a forward must-hold dataflow over
// its CFG (join = intersection: a lock counts as held at a confluence only
// when every path holds it), and acquiring lock B while holding lock A
// records the observed edge A -> B. Calls into functions whose source is in
// the program contribute one-level summary edges: the locks the callee
// acquires directly, observed at the call site. Any cycle in the combined
// graph of observed and declared edges is a potential deadlock — two
// goroutines taking the loop from opposite ends block each other forever,
// which is precisely the failure mode the RCU lifecycle exists to avoid.
//
// Intended order is declared per file with
//
//	//recclint:lockrank lifecycle.Manager.mu < persist.Store.mu
//
// and an observed edge contradicting the declared (transitive) order gets a
// targeted finding even before it closes a cycle. The v1 //recclint:holds
// directive composes: a method documented as running under its receiver's
// mutex seeds the entry lock set, so helpers called with locks held still
// contribute their edges.
//
// Lock identity is canonical and type-based — pkg.Type.field for a mutex
// field, pkg.var for a package-level mutex, pkg.Type.Mutex for an embedded
// one. Locks the analyzer cannot name (locals, mutexes reached through
// interfaces) do not participate: silence, not noise.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"resistecc/internal/analysis/dataflow"
	"resistecc/internal/analysis/framework"
)

const (
	rankDirective  = "//recclint:lockrank"
	holdsDirective = "//recclint:holds"
)

// Analyzer is the lockorder check. It runs over the whole program: lock
// cycles are global properties, never visible to one package alone.
var Analyzer = &framework.Analyzer{
	Name:       "lockorder",
	Doc:        "global lock-acquisition-order graph must stay acyclic; declare intended order with //recclint:lockrank",
	RunProgram: runProgram,
}

type edge struct{ from, to string }

type checker struct {
	pass      *framework.ProgramPass
	prog      *dataflow.Program
	observed  map[edge]token.Pos // lexically first acquisition site
	declared  map[edge]token.Pos // lockrank directive position
	summaries map[string][]string
}

func runProgram(pass *framework.ProgramPass) error {
	c := &checker{
		pass:      pass,
		prog:      dataflow.BuildProgram(pass.Pkgs),
		observed:  make(map[edge]token.Pos),
		declared:  make(map[edge]token.Pos),
		summaries: make(map[string][]string),
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			c.collectDeclared(file)
		}
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkFunc(pkg, fd)
				}
			}
		}
	}
	c.reportContradictions()
	c.reportCycles()
	return nil
}

// collectDeclared parses //recclint:lockrank directives anywhere in the file.
func (c *checker) collectDeclared(file *ast.File) {
	for _, cg := range file.Comments {
		for _, cmt := range cg.List {
			text := strings.TrimSpace(cmt.Text)
			if !strings.HasPrefix(text, rankDirective) {
				continue
			}
			parts := strings.Split(strings.TrimPrefix(text, rankDirective), "<")
			var names []string
			for _, p := range parts {
				if p = strings.TrimSpace(p); p != "" {
					names = append(names, p)
				}
			}
			if len(names) < 2 {
				c.pass.Reportf(cmt.Pos(), "recclint:lockrank needs at least two lock names: %s a < b", rankDirective)
				continue
			}
			for i := 0; i+1 < len(names); i++ {
				e := edge{names[i], names[i+1]}
				if _, ok := c.declared[e]; !ok {
					c.declared[e] = cmt.Pos()
				}
			}
		}
	}
}

type funcScope struct {
	c    *checker
	pkg  *framework.Package
	info *types.Info
}

func (c *checker) checkFunc(pkg *framework.Package, fd *ast.FuncDecl) {
	cfg := dataflow.Build(fd)
	if cfg == nil {
		return
	}
	fs := &funcScope{c: c, pkg: pkg, info: pkg.TypesInfo}
	entry := dataflow.LockSet{}
	if held := c.heldAtEntry(pkg, fd); held != "" {
		entry = entry.With(held)
	}
	dataflow.Forward(cfg, dataflow.Flow[dataflow.LockSet]{
		Entry:    entry,
		Join:     dataflow.JoinLockSets,
		Equal:    dataflow.EqualLockSets,
		Transfer: fs.transfer,
	})
}

// heldAtEntry resolves a //recclint:holds <mu> doc directive to the canonical
// name of the receiver's mutex field.
func (c *checker) heldAtEntry(pkg *framework.Package, fd *ast.FuncDecl) string {
	field := framework.FuncDirectiveArg(fd.Doc, holdsDirective)
	if field == "" || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pkg.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return qual(named) + "." + field
}

// transfer walks one CFG statement, recording acquisition edges and updating
// the must-hold set. Deferred unlocks keep the lock held until return, so a
// defer statement deliberately contributes nothing.
func (fs *funcScope) transfer(f dataflow.LockSet, s ast.Stmt) dataflow.LockSet {
	switch s := s.(type) {
	case *ast.DeferStmt:
		return f
	case *ast.RangeStmt:
		if s.Body == nil {
			// Synthetic CFG loop header: only the ranged expression is live
			// (walking the nil body would crash ast.Inspect).
			if s.X == nil {
				return f
			}
			hdr := &ast.ExprStmt{X: s.X}
			return fs.transfer(f, hdr)
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's locks are taken when it runs, not here
		case *ast.CallExpr:
			if name, op, ok := fs.lockOp(n); ok {
				switch op {
				case opAcquire:
					for _, held := range f.Names() {
						if held != name {
							fs.c.observe(held, name, n.Pos())
						}
					}
					f = f.With(name)
				case opRelease:
					f = f.Without(name)
				}
				return false
			}
			// One-level summary: locks the callee acquires directly become
			// edges from everything held at this call site.
			if len(f) > 0 {
				if callee := fs.c.prog.ResolvedCallee(fs.info, n); callee != nil {
					for _, acquired := range fs.c.acquires(callee) {
						for _, held := range f.Names() {
							if held != acquired {
								fs.c.observe(held, acquired, n.Pos())
							}
						}
					}
				}
			}
		}
		return true
	})
	return f
}

func (c *checker) observe(from, to string, pos token.Pos) {
	e := edge{from, to}
	if prev, ok := c.observed[e]; !ok || pos < prev {
		c.observed[e] = pos
	}
}

type lockOpKind int

const (
	opAcquire lockOpKind = iota
	opRelease
)

// lockOp recognizes a call as a sync mutex operation and names the lock.
func (fs *funcScope) lockOp(call *ast.CallExpr) (string, lockOpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return "", 0, false
	}
	selection, ok := fs.info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", 0, false
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", 0, false
	}
	name := fs.lockName(sel.X)
	if name == "" {
		return "", 0, false
	}
	return name, op, true
}

// lockName canonicalizes the expression the mutex method was selected from.
func (fs *funcScope) lockName(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		// base.mu: name by the *type* of base, so every instance of the
		// struct shares one graph node.
		t := fs.info.Types[x.X].Type
		if t == nil {
			return ""
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return qual(named) + "." + x.Sel.Name
		}
		return ""
	case *ast.Ident:
		obj, ok := fs.info.ObjectOf(x).(*types.Var)
		if !ok {
			return ""
		}
		t := obj.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
			// A plain sync.Mutex value: package-level vars are nameable,
			// locals are not (each instance is its own lock).
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return ""
		}
		// Receiver or variable with an embedded mutex: m.Lock().
		return qual(named) + ".Mutex"
	}
	return ""
}

func qual(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// acquires returns the canonical names of locks fn acquires directly,
// memoized; closures are excluded (they run later).
func (c *checker) acquires(fn *dataflow.FuncInfo) []string {
	key := fn.Obj.FullName()
	if names, ok := c.summaries[key]; ok {
		return names
	}
	c.summaries[key] = nil // break recursion cycles
	fs := &funcScope{c: c, pkg: fn.Pkg, info: fn.Pkg.TypesInfo}
	set := make(map[string]bool)
	if fn.Decl.Body != nil {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if name, op, ok := fs.lockOp(n); ok && op == opAcquire {
					set[name] = true
					return false
				}
			}
			return true
		})
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	c.summaries[key] = names
	return names
}

// reportContradictions flags observed edges that invert the declared
// transitive order, and removes them from the graph so the generic cycle
// report does not double-count them.
func (c *checker) reportContradictions() {
	reach := transitive(c.declared)
	for _, e := range sortedEdges(c.observed) {
		// Observed from->to means "from before to"; contradiction when the
		// declaration orders to before from.
		if reach[e.to][e.from] {
			c.pass.Reportf(c.observed[e],
				"acquiring %s while holding %s contradicts the declared lock order (%s %s < %s)",
				e.to, e.from, rankDirective, e.to, e.from)
			delete(c.observed, e)
		}
	}
}

// reportCycles finds strongly connected components of the combined graph and
// reports each once, at the lexically first edge inside it.
func (c *checker) reportCycles() {
	adj := make(map[string]map[string]token.Pos)
	add := func(e edge, pos token.Pos) {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]token.Pos)
		}
		if prev, ok := adj[e.from][e.to]; !ok || pos < prev {
			adj[e.from][e.to] = pos
		}
	}
	for e, pos := range c.declared {
		add(e, pos)
	}
	for e, pos := range c.observed {
		add(e, pos)
	}
	for _, scc := range sccs(adj) {
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var pos token.Pos
		selfLoop := false
		for _, from := range scc {
			for to, p := range adj[from] {
				if !inSCC[to] {
					continue
				}
				if from == to {
					selfLoop = true
				}
				if pos == token.NoPos || p < pos {
					pos = p
				}
			}
		}
		if len(scc) < 2 && !selfLoop {
			continue
		}
		sorted := append([]string(nil), scc...)
		sort.Strings(sorted)
		c.pass.Reportf(pos, "lock acquisition order cycle among %s (potential deadlock)",
			strings.Join(sorted, ", "))
	}
}

// transitive computes reachability over the declared edges.
func transitive(edges map[edge]token.Pos) map[string]map[string]bool {
	succ := make(map[string][]string)
	for e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	reach := make(map[string]map[string]bool)
	for from := range succ {
		seen := make(map[string]bool)
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range succ[n] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		reach[from] = seen
	}
	return reach
}

func sortedEdges(m map[edge]token.Pos) []edge {
	out := make([]edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// sccs returns the strongly connected components of adj (Kosaraju, with
// sorted iteration everywhere for deterministic output).
func sccs(adj map[string]map[string]token.Pos) [][]string {
	nodes := make(map[string]bool)
	rev := make(map[string][]string)
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
			rev[to] = append(rev[to], from)
		}
	}
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	seen := make(map[string]bool)
	var finish []string
	var dfs1 func(string)
	dfs1 = func(n string) {
		seen[n] = true
		var tos []string
		for to := range adj[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if !seen[to] {
				dfs1(to)
			}
		}
		finish = append(finish, n)
	}
	for _, n := range order {
		if !seen[n] {
			dfs1(n)
		}
	}

	comp := make(map[string]int)
	var out [][]string
	var dfs2 func(string, int)
	dfs2 = func(n string, id int) {
		comp[n] = id
		out[id] = append(out[id], n)
		tos := append([]string(nil), rev[n]...)
		sort.Strings(tos)
		for _, to := range tos {
			if _, ok := comp[to]; !ok {
				dfs2(to, id)
			}
		}
	}
	for i := len(finish) - 1; i >= 0; i-- {
		if _, ok := comp[finish[i]]; !ok {
			out = append(out, nil)
			dfs2(finish[i], len(out)-1)
		}
	}
	return out
}

// Fixture for the lockorder analyzer: the global acquisition-order graph
// must stay acyclic. Edges come from direct nesting, //recclint:holds entry
// sets, and one-level callee summaries; intended order is declared with
// //recclint:lockrank.
package lockorder

import "sync"

// A and B form the basic observed cycle.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab nests B under A; the deferred unlock keeps A held at the inner Lock.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock acquisition order cycle among lockorder\.A\.mu, lockorder\.B\.mu"
	b.mu.Unlock()
}

// ba nests A under B: the opposite order closes the cycle reported above.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D have a declared order the code respects: no finding.
//
//recclint:lockrank lockorder.C.mu < lockorder.D.mu
type C struct{ mu sync.Mutex }
type D struct{ mu sync.RWMutex }

func cd(c *C, d *D) {
	c.mu.Lock()
	d.mu.RLock()
	d.mu.RUnlock()
	c.mu.Unlock()
}

// E and F have a declared order the code inverts.
//
//recclint:lockrank lockorder.E.mu < lockorder.F.mu
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func fe(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want "acquiring lockorder\.E\.mu while holding lockorder\.F\.mu contradicts the declared lock order"
	e.mu.Unlock()
	f.mu.Unlock()
}

// H and I cycle through a //recclint:holds entry set: pokeI runs under
// h.mu by contract, so its inner Lock is a nested acquisition.
type H struct{ mu sync.Mutex }
type I struct{ mu sync.Mutex }

// pokeI is called with h.mu held.
//
//recclint:holds mu
func (h *H) pokeI(i *I) {
	i.mu.Lock() // want "lock acquisition order cycle among lockorder\.H\.mu, lockorder\.I\.mu"
	i.mu.Unlock()
}

func iThenH(h *H, i *I) {
	i.mu.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	i.mu.Unlock()
}

// J and K cycle through a one-level callee summary: lockK acquires K.mu, so
// calling it with J.mu held is a nested acquisition at the call site.
type J struct{ mu sync.Mutex }
type K struct{ mu sync.Mutex }

func lockK(k *K) {
	k.mu.Lock()
	k.mu.Unlock()
}

func jThenK(j *J, k *K) {
	j.mu.Lock()
	lockK(k) // want "lock acquisition order cycle among lockorder\.J\.mu, lockorder\.K\.mu"
	j.mu.Unlock()
}

func kThenJ(j *J, k *K) {
	k.mu.Lock()
	j.mu.Lock()
	j.mu.Unlock()
	k.mu.Unlock()
}

// M and N: the must-hold set is an intersection, so a lock taken on only one
// branch is not held after the join and records no edge — no false cycle
// with the N-before-M order below.
type M struct{ mu sync.Mutex }
type N struct{ mu sync.Mutex }

func maybeM(m *M, n *N, cond bool) {
	if cond {
		m.mu.Lock()
	}
	n.mu.Lock() // no finding: M.mu is not held on every path here
	n.mu.Unlock()
	if cond {
		m.mu.Unlock()
	}
}

func nThenM(m *M, n *N) {
	n.mu.Lock()
	m.mu.Lock()
	m.mu.Unlock()
	n.mu.Unlock()
}

// Embedded mutexes and package-level mutexes are nameable too; this single
// consistent order produces no finding.
var global sync.Mutex

type Embeds struct{ sync.Mutex }

func embedded(e *Embeds) {
	e.Lock()
	global.Lock()
	global.Unlock()
	e.Unlock()
}

// P and Q cycle, but the report site carries a justified suppression.
type P struct{ mu sync.Mutex }
type Q struct{ mu sync.Mutex }

func pq(p *P, q *Q) {
	p.mu.Lock()
	//recclint:ignore lockorder boot sequence runs single-threaded before serving starts
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}

func qp(p *P, q *Q) {
	q.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	q.mu.Unlock()
}

//recclint:lockrank solo // want "recclint:lockrank needs at least two lock names"

package lockorder_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, lockorder.Analyzer, framework.FixturePath("lockorder"))
}

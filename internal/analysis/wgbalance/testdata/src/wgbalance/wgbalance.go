// Package wgbalance is the analyzer fixture: each function pins one
// flagging or non-flagging behavior of the WaitGroup-balance check.
package wgbalance

import "sync"

// fanOut is the canonical loop-carried pairing: Add(1) before each spawn,
// Done deferred on every path. Nothing to report.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// twoWorkers is a balanced straight-line ledger: Add(2), two spawns.
func twoWorkers() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
	}()
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// missingAdd spawns a releasing goroutine with no Add at all: Wait can
// return before the goroutine runs.
func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want "no wg.Add precedes the spawn"
		defer wg.Done()
	}()
	wg.Wait()
}

// addAfterSpawn orders the Add behind the go statement, which races Wait.
func addAfterSpawn() {
	var wg sync.WaitGroup
	go func() { // want "no wg.Add precedes the spawn"
		defer wg.Done()
	}()
	wg.Add(1)
	wg.Wait()
}

// conditionalDone releases the group on one path only; the other path
// strands Wait forever.
func conditionalDone(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "Done is skipped on some path"
		if ok {
			wg.Done()
		}
	}()
	wg.Wait()
}

// overAdded counts two slots but spawns one releasing goroutine: Wait blocks
// forever on the phantom second Done.
func overAdded() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // want "ledger mismatch in overAdded: Add calls total 2 but 1"
		defer wg.Done()
	}()
	wg.Wait()
}

// jobQueue is fine: the worker releases per-job WaitGroups it pulls off the
// channel, not a group the spawner owns — no pairing to check.
type job struct {
	wg *sync.WaitGroup
}

func jobQueue(jobs chan *job) {
	go func() {
		for j := range jobs {
			j.wg.Done()
		}
	}()
}

// dynamicAdd is fine: a non-constant Add degrades the ledger check rather
// than guessing.
func dynamicAdd(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// suppressed shows the generic escape hatch: an ignore directive with a
// justification silences the finding.
func suppressed() {
	var wg sync.WaitGroup
	//recclint:ignore wgbalance fixture demonstrating an intentionally unpaired spawn
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Package wgbalance implements the recclint WaitGroup-balance check. The
// sync.WaitGroup contract has three clauses that the race detector only
// sees when a test happens to lose the race: Add must happen-before the
// spawn it accounts for (Add inside the goroutine races Wait), Done must run
// on *every* path of the spawned body (a missed Done deadlocks Wait
// forever), and the Add total must account for exactly the goroutines that
// will call Done. wgbalance checks all three statically at each spawn site:
//
//   - a goroutine releasing a captured WaitGroup must be preceded, in its
//     spawning function, by an Add on the same WaitGroup;
//   - the Done must be deferred or reached on every CFG path of the body;
//   - in straight-line code (no loops on either side) the Add constants
//     must sum to the number of spawned goroutines that release the group,
//     reported with the mismatch counts per spawn site.
//
// Loop-carried spawns pair an Add(1) with a spawn per iteration; counting
// across iterations is a dynamic property, so mixed loop shapes degrade to
// the first two checks only.
package wgbalance

import (
	"go/ast"
	"go/constant"
	"go/types"

	"resistecc/internal/analysis/dataflow"
	"resistecc/internal/analysis/framework"
)

// Analyzer is the wgbalance check.
var Analyzer = &framework.Analyzer{
	Name:       "wgbalance",
	Doc:        "WaitGroup discipline at spawn sites: Add happens-before the go statement, Done on every path of the body (deferred or terminal), Add totals match spawn counts",
	RunProgram: run,
}

func run(pass *framework.ProgramPass) error {
	prog := dataflow.BuildProgram(pass.Pkgs)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(pass, pkg, prog, fd)
			}
		}
	}
	return nil
}

// wgCall describes one Add/Done call on a canonical WaitGroup key.
type wgCall struct {
	key    string
	name   string // display form of the receiver for diagnostics
	call   *ast.CallExpr
	amount int64 // Add argument when constant, -1 otherwise; 1 for Done
	inLoop bool  // lexically inside a for/range of the inspected function
}

func checkFunc(pass *framework.ProgramPass, pkg *framework.Package, prog *dataflow.Program, fd *ast.FuncDecl) {
	info := pkg.TypesInfo
	sites := dataflow.Spawns(info, fd.Body)
	if len(sites) == 0 {
		return
	}
	adds := collectAdds(info, fd.Body, sites)

	// spawnsByKey counts, per WaitGroup, the spawn sites whose bodies release
	// it — the other half of the straight-line Add/Done ledger.
	type spawnRec struct {
		site   dataflow.SpawnSite
		inLoop bool
	}
	spawnsByKey := make(map[string][]spawnRec)

	names := make(map[string]string)
	for _, site := range sites {
		body, bodyInfo := spawnedBody(pkg, prog, site)
		if body == nil {
			continue
		}
		for _, done := range doneCalls(pass, bodyInfo, body) {
			key := done.key
			names[key] = done.name
			spawnsByKey[key] = append(spawnsByKey[key], spawnRec{site, inLoop(fd.Body, site.Go)})

			// Rule 1: an Add on the same WaitGroup must precede the spawn.
			preceded := false
			for _, a := range adds[key] {
				if a.call.Pos() < site.Go.Pos() {
					preceded = true
					break
				}
			}
			if !preceded {
				pass.Reportf(site.Go.Pos(),
					"goroutine releases %s but no %s.Add precedes the spawn in %s; Add must happen-before the go statement or Wait can return early",
					done.name, done.name, fd.Name.Name)
			}

			// Rule 2: Done on every path of the spawned body.
			if !doneOnEveryPath(bodyInfo, body, key) {
				pass.Reportf(site.Go.Pos(),
					"%s.Done is skipped on some path through the goroutine body; defer it so every exit releases the group",
					done.name)
			}
		}
	}

	// Rule 3: straight-line ledger. Only when every Add has a constant
	// amount and nothing sits in a loop is the count a static property.
	for key, spawns := range spawnsByKey {
		addList := adds[key]
		if len(addList) == 0 {
			continue // rule 1 already reported
		}
		static := true
		total := int64(0)
		for _, a := range addList {
			if a.inLoop || a.amount < 0 {
				static = false
				break
			}
			total += a.amount
		}
		for _, s := range spawns {
			if s.inLoop {
				static = false
			}
		}
		if !static || total == int64(len(spawns)) {
			continue
		}
		pass.Reportf(spawns[0].site.Go.Pos(),
			"%s ledger mismatch in %s: Add calls total %d but %d spawned goroutine(s) call Done; Wait will %s",
			names[key], fd.Name.Name, total, len(spawns),
			mismatchEffect(total, int64(len(spawns))))
	}
}

func mismatchEffect(added, spawned int64) string {
	if added > spawned {
		return "block forever"
	}
	return "return before the extra goroutines finish (and Done will panic the counter negative)"
}

// collectAdds indexes every wg.Add(n) in body (outside spawned bodies) by
// WaitGroup key.
func collectAdds(info *types.Info, body *ast.BlockStmt, sites []dataflow.SpawnSite) map[string][]wgCall {
	adds := make(map[string][]wgCall)
	ast.Inspect(body, func(n ast.Node) bool {
		// Don't descend into the spawned literals themselves: an Add inside
		// the goroutine is exactly what rule 1 exists to reject.
		for _, s := range sites {
			if s.Lit != nil && n == ast.Node(s.Lit) {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || len(call.Args) != 1 {
			return true
		}
		if !dataflow.IsNamed(info.TypeOf(sel.X), "sync", "WaitGroup") {
			return true
		}
		key, ok := dataflow.ObjKey(info, sel.X)
		if !ok {
			return true
		}
		amount := int64(-1)
		if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact {
				amount = v
			}
		}
		adds[key] = append(adds[key], wgCall{key: key, call: call, amount: amount, inLoop: inLoop(body, call)})
		return true
	})
	return adds
}

// doneCalls finds the WaitGroups the spawned body releases. Only groups
// captured from outside the body count: a Done on a value the goroutine
// pulled off a channel (a per-job wg) releases the job's group, not a group
// the spawner could have Added to.
func doneCalls(pass *framework.ProgramPass, bodyInfo *types.Info, body *ast.BlockStmt) []wgCall {
	var out []wgCall
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
			return true
		}
		if !dataflow.IsNamed(bodyInfo.TypeOf(sel.X), "sync", "WaitGroup") {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || !dataflow.CapturedBy(bodyInfo, body, root) {
			return true // a per-job wg pulled off a channel, not the spawner's
		}
		key, ok := dataflow.ObjKey(bodyInfo, sel.X)
		if !ok || seen[key] {
			return true
		}
		seen[key] = true
		out = append(out, wgCall{
			key:    key,
			name:   dataflow.DisplayName(bodyInfo, pass.Fset, sel.X),
			call:   call,
			amount: 1,
		})
		return true
	})
	return out
}

// doneOnEveryPath reports whether every CFG path through body reaches a
// Done on key — a top-level (or unconditional) defer counts for all paths.
func doneOnEveryPath(info *types.Info, body *ast.BlockStmt, key string) bool {
	isDone := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return false
		}
		if !dataflow.IsNamed(info.TypeOf(sel.X), "sync", "WaitGroup") {
			return false
		}
		k, ok := dataflow.ObjKey(info, sel.X)
		return ok && k == key
	}
	// Deferred Done at the top level of the body covers every path.
	for _, s := range body.List {
		if d, ok := s.(*ast.DeferStmt); ok && isDone(d.Call) {
			return true
		}
	}
	cfg := dataflow.BuildBody(body)
	stmtDone := func(s ast.Stmt) bool {
		found := false
		dataflow.InspectStmt(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			if isDone(n) {
				found = true
			}
			return true
		})
		return found
	}
	facts := dataflow.Forward(cfg, dataflow.Flow[bool]{
		Entry: false,
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(f bool, s ast.Stmt) bool {
			return f || stmtDone(s)
		},
	})
	done, reachable := facts[cfg.Exit]
	// An unreachable exit (the body never returns normally — infinite worker
	// loop) releases nothing, but also never strands Wait on a *taken* path;
	// treat the registered defers as authoritative there.
	if !reachable {
		for _, d := range cfg.Defers {
			if isDone(d.Call) {
				return true
			}
		}
		return true
	}
	if done {
		return true
	}
	for _, d := range cfg.Defers {
		if isDone(d.Call) {
			// A conditional defer: registered on some path. The must-analysis
			// above already folds executed statements; a defer anywhere in a
			// straight-line body was caught by the top-level scan. Treat a
			// branch-registered defer as covering only if it dominates...
			// conservatively accept it (degrade toward silence).
			return true
		}
	}
	return false
}

// inLoop reports whether node sits lexically inside a for/range statement
// within root.
func inLoop(root ast.Node, node ast.Node) bool {
	found := false
	framework.WalkStackNode(root, func(n ast.Node, stack []ast.Node) {
		if n != node || found {
			if n == node {
				return
			}
			return
		}
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				found = true
			}
		}
	})
	return found
}

// rootIdent walks a selector/deref chain to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// spawnedBody resolves the body a spawn site will run, with the types.Info
// that body was checked under.
func spawnedBody(pkg *framework.Package, prog *dataflow.Program, site dataflow.SpawnSite) (*ast.BlockStmt, *types.Info) {
	if site.Lit != nil {
		return site.Lit.Body, pkg.TypesInfo
	}
	if site.Callee != nil {
		if fi := prog.Func(site.Callee); fi != nil && fi.Decl.Body != nil {
			return fi.Decl.Body, fi.Pkg.TypesInfo
		}
	}
	return nil, nil
}

package wgbalance_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/wgbalance"
)

func TestWgbalance(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, wgbalance.Analyzer, framework.FixturePath("wgbalance"))
}

package goroutinelife_test

import (
	"testing"

	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/goroutinelife"
)

func TestGoroutinelife(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, goroutinelife.Analyzer, framework.FixturePath("goroutinelife"))
}

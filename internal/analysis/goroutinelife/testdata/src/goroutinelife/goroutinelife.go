// Package goroutinelife is the analyzer fixture: each function pins one
// flagging or non-flagging behavior of the goroutine-lifecycle check.
package goroutinelife

import (
	"context"
	"sync"
	"time"
)

// W owns a worker joined through a quit channel the owner closes.
type W struct {
	stop chan struct{}
	done chan struct{}
}

// Start is fine: the loop receives from stop, and Stop closes it.
func (w *W) Start() {
	go func() {
		defer close(w.done)
		for {
			select {
			case <-w.stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
}

// Stop closes the quit channel the worker selects on.
func (w *W) Stop() {
	close(w.stop)
	<-w.done
}

// watch is fine: the loop checks the captured context.
func watch(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
}

// fanOut is fine: each goroutine releases the spawner's WaitGroup.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_ = j
			}
		}()
	}
	wg.Wait()
}

// oneShot is fine: no loop, the body runs to completion.
func oneShot(ch chan int) {
	go func() { ch <- 1 }()
}

// drainJobs is fine: ranging a channel the program closes terminates when
// closeJobs runs.
var jobs = make(chan int)

func drainJobs() {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func closeJobs() { close(jobs) }

// leak spawns an unjoinable loop: nothing can ever stop it.
func leak() {
	go func() { // want "loops with no shutdown path"
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// spinner loops forever with no mechanism; spawnSpinner is the offender.
func spinner() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func spawnSpinner() {
	go spinner() // want "spinner loops with no shutdown path"
}

// spawnParked is fine: the directive with a reason declares the goroutine
// deliberately detached.
func spawnParked() {
	//recclint:detached metrics flusher parked for the process lifetime
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

// spawnBare carries the directive without a justification.
func spawnBare() {
	//recclint:detached
	go func() { // want "recclint:detached needs a reason"
		for {
			time.Sleep(time.Second)
		}
	}()
}

// pump is fine: a detached process-lifetime worker declared on its own doc
// comment, where every spawn site inherits the declaration.
//
//recclint:detached process-lifetime pump accounted for in DetachedMarks
func pump() {
	for {
		time.Sleep(time.Second)
	}
}

func spawnPump() {
	go pump()
}

// pumpBare declares detachment without saying why.
//
//recclint:detached
func pumpBare() { // want "recclint:detached needs a reason"
	for {
		time.Sleep(time.Second)
	}
}

func spawnPumpBare() {
	go pumpBare()
}

// suppressed shows the generic escape hatch: an ignore directive with a
// justification silences the finding.
func suppressed() {
	//recclint:ignore goroutinelife prototype scaffolding exercised only in examples
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

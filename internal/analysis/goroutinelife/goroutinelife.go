// Package goroutinelife implements the recclint check that every spawned
// goroutine is joined to a shutdown mechanism. A `go` statement hands a body
// to the scheduler with no further control: unless the body observes a
// cancellation signal, the goroutine outlives its spawner silently — the
// exact class of leak the runtime leak checker in internal/testutil only
// catches on paths a test happens to execute. The static contract: a spawned
// body with a loop must either check a captured context (ctx.Done/ctx.Err),
// receive from a quit/done channel that somebody in the program closes, or
// release a WaitGroup the spawner owns; loop-free bodies are run-to-
// completion and exempt. Deliberately unowned workers declare themselves
// with //recclint:detached <reason> — on the go statement or on the spawned
// function's doc comment — and internal/testutil.DetachedMarks must list
// them so the leak-checked suites stay honest (a cross-check test enforces
// the correspondence).
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resistecc/internal/analysis/dataflow"
	"resistecc/internal/analysis/framework"
)

// DetachedDirective marks a goroutine as deliberately unjoined. The reason
// is mandatory, like every other recclint directive.
const DetachedDirective = "//recclint:detached"

// Analyzer is the goroutinelife check.
var Analyzer = &framework.Analyzer{
	Name:       "goroutinelife",
	Doc:        "every goroutine with a loop joins a shutdown mechanism (checked ctx, closed quit channel, spawner-owned WaitGroup) or declares //recclint:detached <reason>",
	RunProgram: run,
}

func run(pass *framework.ProgramPass) error {
	prog := dataflow.BuildProgram(pass.Pkgs)
	closed := dataflow.ClosedKeys(pass.Pkgs)
	reportedDoc := make(map[token.Pos]bool) // dedupe per-callee doc diagnostics
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			detached := detachedLines(pass.Fset, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, site := range dataflow.Spawns(pkg.TypesInfo, fd.Body) {
					checkSite(pass, pkg, prog, closed, detached, reportedDoc, site)
				}
			}
		}
	}
	return nil
}

type directive struct {
	hasReason bool
	pos       token.Pos
}

// detachedLines maps each line carrying a detached directive to it.
func detachedLines(fset *token.FileSet, file *ast.File) map[int]directive {
	out := make(map[int]directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, DetachedDirective) {
				continue
			}
			rest := strings.TrimPrefix(text, DetachedDirective)
			if rest != "" && !strings.HasPrefix(rest, " ") {
				continue // e.g. //recclint:detachedfoo
			}
			out[fset.Position(c.Pos()).Line] = directive{
				hasReason: strings.TrimSpace(rest) != "",
				pos:       c.Pos(),
			}
		}
	}
	return out
}

// docDetached scans a function's doc comment for the directive.
func docDetached(doc *ast.CommentGroup) (present, hasReason bool) {
	if doc == nil {
		return false, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == DetachedDirective {
			return true, false
		}
		if strings.HasPrefix(text, DetachedDirective+" ") {
			return true, strings.TrimSpace(strings.TrimPrefix(text, DetachedDirective)) != ""
		}
	}
	return false, false
}

func checkSite(pass *framework.ProgramPass, pkg *framework.Package, prog *dataflow.Program,
	closed map[string]bool, detached map[int]directive, reportedDoc map[token.Pos]bool, site dataflow.SpawnSite) {

	// Directive on the go statement (same line or line above).
	goLine := pass.Fset.Position(site.Go.Pos()).Line
	for _, line := range []int{goLine, goLine - 1} {
		if d, ok := detached[line]; ok {
			if !d.hasReason {
				pass.Reportf(site.Go.Pos(), "recclint:detached needs a reason: the directive must say why this goroutine deliberately has no shutdown path")
			}
			return
		}
	}

	// Resolve the spawned body (and the types.Info it was checked under).
	var (
		body *ast.BlockStmt
		info *types.Info
	)
	switch {
	case site.Lit != nil:
		body, info = site.Lit.Body, pkg.TypesInfo
	case site.Callee != nil:
		fi := prog.Func(site.Callee)
		if fi == nil || fi.Decl.Body == nil {
			return // externally defined: nothing to check
		}
		// Directive on the spawned function's own doc comment: the natural
		// home for process-lifetime workers (`go batchWorker()`).
		if present, hasReason := docDetached(fi.Decl.Doc); present {
			if !hasReason && !reportedDoc[fi.Decl.Pos()] {
				reportedDoc[fi.Decl.Pos()] = true
				pass.Reportf(fi.Decl.Pos(), "recclint:detached needs a reason: the directive must say why %s deliberately has no shutdown path", fi.Decl.Name.Name)
			}
			return
		}
		body, info = fi.Decl.Body, fi.Pkg.TypesInfo
	default:
		return // dynamic target (interface method, func value): never guess
	}

	if verdict := joinMechanism(info, body, closed); verdict == "" {
		target := "goroutine"
		if site.Callee != nil {
			target = site.Callee.Name()
		}
		pass.Reportf(site.Go.Pos(),
			"%s loops with no shutdown path: no captured context is checked, no channel it receives from is ever closed, and no spawner-owned WaitGroup is released; join it to a lifecycle or declare //recclint:detached <reason>",
			target)
	}
}

// joinMechanism classifies how the spawned body can be told to stop. It
// returns "" when the body loops and none of the mechanisms is present.
func joinMechanism(info *types.Info, body *ast.BlockStmt, closed map[string]bool) string {
	var hasLoop, ctxChecked, quitRecv, wgReleased bool
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			// Ranging a channel terminates when the channel is closed.
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if key, ok := dataflow.ObjKey(info, n.X); ok && closed[key] {
						quitRecv = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, ok := dataflow.ObjKey(info, n.X); ok && closed[key] {
					quitRecv = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := info.TypeOf(sel.X)
			switch sel.Sel.Name {
			case "Done", "Err":
				if dataflow.IsNamed(recv, "context", "Context") {
					ctxChecked = true
				}
			}
			if sel.Sel.Name == "Done" && dataflow.IsNamed(recv, "sync", "WaitGroup") {
				// The WaitGroup must be the spawner's: a Done on a value the
				// goroutine pulled off a channel (a per-job wg) joins the job's
				// consumer, not this goroutine.
				if root := rootIdent(sel.X); root != nil && dataflow.CapturedBy(info, body, root) {
					wgReleased = true
				}
			}
		}
		return true
	})
	switch {
	case ctxChecked:
		return "context"
	case quitRecv:
		return "quit-channel"
	case wgReleased:
		return "waitgroup"
	case !hasLoop:
		return "run-to-completion"
	}
	return ""
}

// rootIdent walks a selector/deref chain to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		default:
			return nil
		}
	}
}

package framework

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output, the static-analysis interchange format GitHub's
// upload-sarif action ingests to annotate PR diffs. Only the small subset of
// the schema recclint needs is modeled; the output validates against the
// official schema (required properties: version, runs[].tool.driver.name,
// results[].message.text).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits findings as a SARIF 2.1.0 log. File paths are made
// relative to root (the module root) so the CI annotation matches the
// repository layout regardless of the runner's checkout directory.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make(map[string]string, len(analyzers)+1)
	for _, a := range analyzers {
		rules[a.Name] = a.Doc
	}
	// The runner emits "suppression" pseudo-findings for malformed ignore
	// directives; give them a rule so the log stays schema-valid.
	rules["suppression"] = "malformed //recclint:ignore directive"
	ids := make([]string, 0, len(rules))
	for id := range rules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	driver := sarifDriver{Name: "recclint"}
	for _, id := range ids {
		driver.Rules = append(driver.Rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: rules[id]}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

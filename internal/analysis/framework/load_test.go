package framework

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// TestLoadDirFixture proves the export-data import path works end to end:
// parse a testdata package, resolve its stdlib imports through `go list
// -export`, and type-check it with full types.Info.
func TestLoadDirFixture(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(FixturePath("loadcheck"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(root, dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Types.Name() != "loadcheck" {
		t.Fatalf("package name = %q, want loadcheck", pkg.Types.Name())
	}
	if len(pkg.TypesInfo.Defs) == 0 || len(pkg.TypesInfo.Selections) == 0 {
		t.Fatalf("types.Info not populated: %d defs, %d selections",
			len(pkg.TypesInfo.Defs), len(pkg.TypesInfo.Selections))
	}
	// The selection g.mu.Lock() must resolve to sync.Mutex's method.
	found := false
	for sel, s := range pkg.TypesInfo.Selections {
		if sel.Sel.Name == "Lock" && s.Obj().Pkg() != nil && s.Obj().Pkg().Path() == "sync" {
			found = true
		}
	}
	if !found {
		t.Fatal("sync.Mutex.Lock selection not resolved through export data")
	}
}

// TestLoadModulePackages loads real in-module packages (with in-module
// dependencies resolved from export data) the way cmd/recclint does.
func TestLoadModulePackages(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/sketch", "./internal/persist")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.Files) == 0 {
			t.Errorf("%s: no files", p.PkgPath)
		}
		for _, f := range p.Files {
			if f.Name == nil || !ast.IsExported(f.Name.Name) && f.Name.Name == "" {
				t.Errorf("%s: file without package name", p.PkgPath)
			}
		}
	}
}

package framework

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -json -deps args...` in dir and decodes the
// stream of package objects. -export makes the go tool emit (building if
// needed) export data for every listed package, which is what lets us
// type-check targets against compiled dependency summaries with zero
// third-party code.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json", "-deps"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export-data files `go list
// -export` produced, via the stdlib gc importer's lookup hook.
func exportImporter(fset *token.FileSet, exports map[string]string) (types.Importer, error) {
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists, parses and type-checks the packages matched by patterns
// (e.g. "./...") relative to dir. Test files are not loaded: recclint checks
// production invariants; the _test.go surface is exercised by the test suite
// itself. Dependencies are imported from export data, so only the matched
// packages are re-type-checked from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		exports[lp.ImportPath] = lp.Export
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp, err := exportImporter(fset, exports)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range targets {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := typeCheck(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir (every
// non-test .go file in it), resolving its imports via `go list -export` run
// from modRoot. The fixture harness uses it to load testdata packages that
// live outside any build target.
func LoadDir(modRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
		for _, spec := range af.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(modRoot, paths)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			exports[lp.ImportPath] = lp.Export
		}
	}
	imp, err := exportImporter(fset, exports)
	if err != nil {
		return nil, err
	}
	return typeCheckParsed(fset, dir, parsed, imp)
}

func typeCheck(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	return typeCheckParsed(fset, pkgPath, parsed, imp)
}

func typeCheckParsed(fset *token.FileSet, pkgPath string, parsed []*ast.File, imp types.Importer) (*Package, error) {
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     parsed,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCollectSuppressions(t *testing.T) {
	src := `package p

func f() {
	//recclint:ignore known the reason lives here
	_ = 1
	_ = 2
}
`
	fset, f := parseSrc(t, src)
	s, bad := collectSuppressions(fset, []*ast.File{f}, map[string]bool{"known": true})
	if len(bad) != 0 {
		t.Fatalf("unexpected bad directives: %v", bad)
	}
	pos := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if !s.suppressed("known", pos(4)) {
		t.Error("directive should suppress its own line")
	}
	if !s.suppressed("known", pos(5)) {
		t.Error("directive should suppress the line below")
	}
	if s.suppressed("known", pos(6)) {
		t.Error("directive must not reach two lines down")
	}
	if s.suppressed("other", pos(5)) {
		t.Error("directive must only suppress the named analyzer")
	}
}

func TestCollectSuppressionsMalformed(t *testing.T) {
	src := `package p

//recclint:ignore
var a = 1

//recclint:ignore known
var b = 2

//recclint:ignore nosuch because reasons
var c = 3
`
	fset, f := parseSrc(t, src)
	s, bad := collectSuppressions(fset, []*ast.File{f}, map[string]bool{"known": true})
	if len(s.byKey) != 0 {
		t.Errorf("malformed directives must not suppress anything, got %v", s.byKey)
	}
	if len(bad) != 3 {
		t.Fatalf("want 3 diagnostics, got %d: %v", len(bad), bad)
	}
	for _, want := range []string{
		"needs an analyzer name and a reason",
		"needs a reason",
		"unknown analyzer nosuch",
	} {
		found := false
		for _, d := range bad {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %q in %v", want, bad)
		}
	}
}

func TestHasFileDirective(t *testing.T) {
	src := `//recclint:deterministic — encoders must be byte-stable.

package p
`
	_, f := parseSrc(t, src)
	if !HasFileDirective(f, "//recclint:deterministic") {
		t.Error("directive with trailing prose should match")
	}
	if HasFileDirective(f, "//recclint:other") {
		t.Error("unrelated directive must not match")
	}

	src2 := `package p

// The //recclint:deterministic directive is only mentioned in prose here.
var x = 1
`
	_, f2 := parseSrc(t, src2)
	if HasFileDirective(f2, "//recclint:deterministic") {
		t.Error("a prose mention inside a longer comment must not count as the directive")
	}
}

package framework

import (
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
)

// resolveFixes turns position-based edits into file/offset edits.
func resolveFixes(fset *token.FileSet, fixes []SuggestedFix) []ResolvedFix {
	if len(fixes) == 0 {
		return nil
	}
	out := make([]ResolvedFix, 0, len(fixes))
	for _, fx := range fixes {
		rf := ResolvedFix{Message: fx.Message, Minimal: fx.Minimal}
		ok := true
		for _, e := range fx.Edits {
			start := fset.Position(e.Pos)
			end := start
			if e.End.IsValid() {
				end = fset.Position(e.End)
			}
			if start.Filename == "" || end.Filename != start.Filename || end.Offset < start.Offset {
				ok = false
				break
			}
			rf.Edits = append(rf.Edits, ResolvedEdit{
				Filename: start.Filename,
				Start:    start.Offset,
				End:      end.Offset,
				NewText:  e.NewText,
			})
		}
		if ok && len(rf.Edits) > 0 {
			out = append(out, rf)
		}
	}
	return out
}

// ApplyFixes applies every suggested fix carried by findings to the source
// files on disk, gofmt-formatting each rewritten file — except files whose
// every fix is Minimal, which are spliced byte-exactly and only parse-checked
// so untouched regions keep their original formatting. Overlapping edits
// within one file are rejected (the second fix is dropped with an error
// describing it) rather than applied blindly. Returns the sorted list of
// files changed.
func ApplyFixes(findings []Finding) (changed []string, err error) {
	type edit struct {
		ResolvedEdit
		from string // finding description, for conflict errors
	}
	byFile := make(map[string][]edit)
	// A file is reformatted whole only if some non-minimal fix touched it;
	// when every edit comes from Minimal fixes the splice is kept byte-exact
	// outside the edited spans.
	reformat := make(map[string]bool)
	for _, f := range findings {
		for _, fx := range f.Fixes {
			for _, e := range fx.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], edit{e, f.String()})
				if !fx.Minimal {
					reformat[e.Filename] = true
				}
			}
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		for i := 1; i < len(edits); i++ {
			if edits[i].Start < edits[i-1].End {
				return changed, fmt.Errorf("conflicting fixes in %s (from %s and %s); apply one and re-run",
					file, edits[i-1].from, edits[i].from)
			}
		}
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return changed, rerr
		}
		var out []byte
		last := 0
		for _, e := range edits {
			if e.Start < last || e.End > len(src) {
				return changed, fmt.Errorf("fix edit out of range in %s [%d:%d)", file, e.Start, e.End)
			}
			out = append(out, src[last:e.Start]...)
			out = append(out, e.NewText...)
			last = e.End
		}
		out = append(out, src[last:]...)
		formatted := out
		if reformat[file] {
			formatted, err = format.Source(out)
			if err != nil {
				return changed, fmt.Errorf("fix result for %s does not parse: %w", file, err)
			}
		} else if _, perr := parser.ParseFile(token.NewFileSet(), file, out, parser.ParseComments); perr != nil {
			return changed, fmt.Errorf("fix result for %s does not parse: %w", file, perr)
		}
		info, serr := os.Stat(file)
		mode := os.FileMode(0o644)
		if serr == nil {
			mode = info.Mode().Perm()
		}
		if werr := os.WriteFile(file, formatted, mode); werr != nil {
			return changed, werr
		}
		changed = append(changed, file)
	}
	return changed, nil
}

// FixableCount reports how many findings carry at least one suggested fix.
func FixableCount(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if len(f.Fixes) > 0 {
			n++
		}
	}
	return n
}

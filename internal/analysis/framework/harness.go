package framework

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: a testdata package is
// loaded and analyzed, and findings are matched against `// want "regexp"`
// comments. Every finding must be expected by a want comment on its line and
// every want comment must be matched by a finding — so fixtures pin both the
// flagging and the non-flagging behavior of an analyzer.

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// TestAnalyzer runs a over the fixture package in dir (relative to the
// calling test's directory, conventionally "testdata/src/<name>").
func TestAnalyzer(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(root, abs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[wantKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re, raw: m[1]})
				}
			}
		}
	}

	for _, f := range findings {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.raw)
			}
		}
	}
}

// ModuleRoot walks up from the working directory to the enclosing go.mod.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// FixturePath returns testdata/src/<name> for the conventional layout.
func FixturePath(name string) string {
	return filepath.Join("testdata", "src", strings.TrimSpace(name))
}

package framework

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A deliberately misformatted (but valid) source file: odd spacing and
// alignment that gofmt would rewrite. Minimal fixes must leave every byte
// outside their spans exactly as-is.
const misformatted = `package scratch

type  counter struct {
	n	uint64
}

func  bump(c *counter)  {
	c.n = c.n + 1
}
`

func writeScratch(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "scratch.go")
	if err := os.WriteFile(path, []byte(misformatted), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func findingWithFix(fix ResolvedFix) Finding {
	return Finding{Analyzer: "test", Message: "test fix", Fixes: []ResolvedFix{fix}}
}

// TestApplyFixesMinimalSpan: a Minimal fix splices its edit and leaves the
// file's misformatting untouched everywhere else.
func TestApplyFixesMinimalSpan(t *testing.T) {
	path := writeScratch(t)
	off := strings.Index(misformatted, "uint64")
	f := findingWithFix(ResolvedFix{
		Message: "retype",
		Minimal: true,
		Edits:   []ResolvedEdit{{Filename: path, Start: off, End: off + len("uint64"), NewText: "uint32"}},
	})
	changed, err := ApplyFixes([]Finding{f})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != path {
		t.Fatalf("changed = %v, want [%s]", changed, path)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Replace(misformatted, "uint64", "uint32", 1)
	if string(got) != want {
		t.Errorf("minimal fix reformatted beyond its span:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestApplyFixesMinimalParseCheck: a Minimal fix that breaks the syntax is
// rejected before touching the file.
func TestApplyFixesMinimalParseCheck(t *testing.T) {
	path := writeScratch(t)
	off := strings.Index(misformatted, "uint64")
	f := findingWithFix(ResolvedFix{
		Message: "break it",
		Minimal: true,
		Edits:   []ResolvedEdit{{Filename: path, Start: off, End: off + len("uint64"), NewText: "}{"}},
	})
	if _, err := ApplyFixes([]Finding{f}); err == nil {
		t.Fatal("expected a parse error from a syntax-breaking minimal fix")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != misformatted {
		t.Error("file was modified despite the fix failing its parse check")
	}
}

// TestApplyFixesNonMinimalReformats: the pre-existing behavior stands for
// ordinary fixes — the whole file is gofmt-formatted after the splice.
func TestApplyFixesNonMinimalReformats(t *testing.T) {
	path := writeScratch(t)
	off := strings.Index(misformatted, "uint64")
	f := findingWithFix(ResolvedFix{
		Message: "retype",
		Edits:   []ResolvedEdit{{Filename: path, Start: off, End: off + len("uint64"), NewText: "uint32"}},
	})
	if _, err := ApplyFixes([]Finding{f}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(got), "type  counter") {
		t.Error("non-minimal fix left the file unformatted; expected gofmt output")
	}
	if !strings.Contains(string(got), "uint32") {
		t.Error("edit not applied")
	}
}

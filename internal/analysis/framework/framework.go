// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that recclint's analyzers build on.
// The repository is deliberately stdlib-only (see DESIGN.md), so instead of
// importing x/tools we provide the same three concepts — Analyzer, Pass,
// Diagnostic — plus a package loader driven by `go list -export` and a tiny
// analysistest-style fixture harness. Analyzers written against this package
// look exactly like ordinary go/analysis passes and could be ported to the
// real framework by changing one import.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// An Analyzer describes one static check. Mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //recclint:ignore <name> suppression directives.
	Name string
	// Doc is the one-paragraph description shown by `recclint -list`.
	Doc string
	// Run applies the analyzer to one package. May be nil for whole-program
	// analyzers that only set RunProgram.
	Run func(*Pass) error
	// RunProgram, when set, runs once over every loaded package together.
	// Cross-package analyses (the lock-acquisition-order graph, call-graph
	// summaries) need the whole load unit; per-package Run cannot see it.
	RunProgram func(*ProgramPass) error
}

// A Pass presents one type-checked package to an Analyzer. Mirrors
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one finding.
	Report func(Diagnostic)
}

// Reportf is the printf-shaped Report helper every analyzer uses.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A ProgramPass presents every loaded package to a whole-program analyzer.
// The loader shares one token.FileSet across packages, so positions from any
// package resolve through Fset.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	// Report records one finding (in whichever package it belongs to).
	Report func(Diagnostic)
}

// Reportf is the printf-shaped Report helper.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A TextEdit replaces the source range [Pos, End) with NewText. End == Pos
// inserts. Mirrors analysis.TextEdit.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is a conservative, machine-applicable resolution for one
// diagnostic. Analyzers attach fixes only when the edit is trivially safe —
// semantics-preserving or strictly tightening (a missing defer Close, a
// context.Background() where ctx is in scope). `recclint -fix` applies them.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
	// Minimal marks a fix whose edits are already formatted in place. When
	// every fix applied to a file is minimal, ApplyFixes splices the edits and
	// parse-checks the result but skips the whole-file gofmt pass — so a fix
	// touching two lines cannot reformat an entire (possibly hand-formatted or
	// generated) file as a side effect.
	Minimal bool
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
	Fixes    []SuggestedFix
}

// A ResolvedEdit is a TextEdit resolved to a file and byte offsets.
type ResolvedEdit struct {
	Filename string
	Start    int
	End      int
	NewText  string
}

// A ResolvedFix is a SuggestedFix with position-resolved edits.
type ResolvedFix struct {
	Message string
	Edits   []ResolvedEdit
	Minimal bool
}

// Finding is a resolved diagnostic ready for printing or comparison.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []ResolvedFix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every package, resolves positions,
// applies //recclint:ignore suppressions (see suppress.go) and returns the
// surviving findings sorted by position. Malformed or unknown-analyzer
// suppression directives are themselves reported, so a suppression without a
// justification can never silence a finding.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return findings, err
}

// RunAnalyzersTimed is RunAnalyzers plus a per-analyzer wall-time breakdown:
// each analyzer's Run calls across all packages and its RunProgram pass sum
// into one duration, keyed by analyzer name. Loading and suppression
// collection are not attributed to any analyzer.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, map[string]time.Duration, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Suppressions key on file and line, so the per-package tables merge into
	// one global table that filters per-package and whole-program findings
	// alike.
	var findings []Finding
	elapsed := make(map[string]time.Duration, len(analyzers))
	supp := suppressions{byKey: make(map[suppression]bool)}
	for _, pkg := range pkgs {
		s, bad := collectSuppressions(pkg.Fset, pkg.Files, known)
		for k := range s.byKey {
			supp.byKey[k] = true
		}
		for _, b := range bad {
			findings = append(findings, Finding{Pos: pkg.Fset.Position(b.Pos), Analyzer: "suppression", Message: b.Message})
		}
	}
	resolve := func(fset *token.FileSet, a *Analyzer, diags []Diagnostic) {
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if supp.suppressed(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{
				Pos:      pos,
				Analyzer: a.Name,
				Message:  d.Message,
				Fixes:    resolveFixes(fset, d.Fixes),
			})
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: running %s: %w", pkg.PkgPath, a.Name, err)
			}
			resolve(pkg.Fset, a, diags)
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		for _, a := range analyzers {
			if a.RunProgram == nil {
				continue
			}
			pass := &ProgramPass{Analyzer: a, Fset: fset, Pkgs: pkgs}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			}
			start := time.Now()
			err := a.RunProgram(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("running %s over the program: %w", a.Name, err)
			}
			resolve(fset, a, diags)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, elapsed, nil
}

// WalkStack walks every node of f in source order, invoking fn with the node
// and the stack of its ancestors (outermost first, not including n itself).
// Analyzers use it where plain ast.Inspect loses the parent context.
func WalkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	WalkStackNode(f, fn)
}

// WalkStackNode is WalkStack rooted at an arbitrary node (a function body, a
// single statement) instead of a whole file.
func WalkStackNode(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

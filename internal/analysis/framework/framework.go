// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that recclint's analyzers build on.
// The repository is deliberately stdlib-only (see DESIGN.md), so instead of
// importing x/tools we provide the same three concepts — Analyzer, Pass,
// Diagnostic — plus a package loader driven by `go list -export` and a tiny
// analysistest-style fixture harness. Analyzers written against this package
// look exactly like ordinary go/analysis passes and could be ported to the
// real framework by changing one import.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. Mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //recclint:ignore <name> suppression directives.
	Name string
	// Doc is the one-paragraph description shown by `recclint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer. Mirrors
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one finding.
	Report func(Diagnostic)
}

// Reportf is the printf-shaped Report helper every analyzer uses.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
}

// Finding is a resolved diagnostic ready for printing or comparison.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every package, resolves positions,
// applies //recclint:ignore suppressions (see suppress.go) and returns the
// surviving findings sorted by position. Malformed or unknown-analyzer
// suppression directives are themselves reported, so a suppression without a
// justification can never silence a finding.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		supp, bad := collectSuppressions(pkg.Fset, pkg.Files, known)
		for _, b := range bad {
			findings = append(findings, Finding{Pos: pkg.Fset.Position(b.Pos), Analyzer: "suppression", Message: b.Message})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: running %s: %w", pkg.PkgPath, a.Name, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if supp.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// WalkStack walks every node of f in source order, invoking fn with the node
// and the stack of its ancestors (outermost first, not including n itself).
// Analyzers use it where plain ast.Inspect loses the parent context.
func WalkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

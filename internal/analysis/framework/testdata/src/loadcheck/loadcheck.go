// Package loadcheck is a loader smoke-test fixture: it imports the stdlib
// packages recclint fixtures lean on, so a regression in export-data
// resolution fails here with a clear message rather than inside an analyzer
// suite.
package loadcheck

import (
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return time.Now()
}

func open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives
//
//	//recclint:ignore <analyzer> <reason>
//
// silence one analyzer on the directive's own line or the line directly
// below it (so the directive can sit above the flagged statement or trail
// it). The reason is mandatory: a suppression exists to record *why* the
// invariant may be broken here, and the runner reports directives that omit
// it or name an analyzer that does not exist.
const ignorePrefix = "//recclint:ignore"

type suppression struct {
	analyzer string
	file     string
	line     int
}

type suppressions struct {
	byKey map[suppression]bool
}

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	if s.byKey[suppression{analyzer, pos.Filename, pos.Line}] {
		return true
	}
	// Directive on the line above the finding.
	return s.byKey[suppression{analyzer, pos.Filename, pos.Line - 1}]
}

// collectSuppressions scans every comment for ignore directives. Malformed
// directives come back as diagnostics under the "suppression" pseudo-analyzer.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressions, []Diagnostic) {
	s := suppressions{byKey: make(map[suppression]bool)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "recclint:ignore needs an analyzer name and a reason"})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "recclint:ignore " + fields[0] + " needs a reason: the directive must justify the exemption"})
				case !known[fields[0]]:
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "recclint:ignore names unknown analyzer " + fields[0]})
				default:
					pos := fset.Position(c.Pos())
					s.byKey[suppression{fields[0], pos.Filename, pos.Line}] = true
				}
			}
		}
	}
	return s, bad
}

// HasFileDirective reports whether any comment in f is exactly the given
// standalone directive (e.g. "//recclint:deterministic"). Used for file-scope
// opt-ins.
func HasFileDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if text := strings.TrimSpace(c.Text); text == directive ||
				strings.HasPrefix(text, directive+" ") {
				return true
			}
		}
	}
	return false
}

// FuncDirectiveArg scans a function's doc comment for a directive of the form
// "//<directive> <arg> ..." and returns the first argument. Empty when absent.
func FuncDirectiveArg(doc *ast.CommentGroup, directive string) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, directive) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, directive))
		if len(fields) > 0 {
			return fields[0]
		}
	}
	return ""
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resistecc/internal/testutil"
)

// TestDetachedMarksCorrespond enforces the two-way contract between the
// goroutinelife analyzer's //recclint:detached directives and the leak
// checker's DetachedMarks allowlist:
//
//   - every detached directive in tree source names a goroutine some
//     DetachedMarks entry matches, so a directive cannot silently exempt a
//     goroutine the leak-checked suites would then report (or worse, one
//     they would miss because a stale broad mark still covers it);
//   - every DetachedMarks entry corresponds to a live directive, so marks
//     cannot outlive the code they excused and rot into blanket exemptions.
func TestDetachedMarksCorrespond(t *testing.T) {
	root, err := moduleRootAndPath(t)
	if err != nil {
		t.Fatal(err)
	}
	directives := collectDetachedSites(t, root.dir, root.module)
	if len(directives) == 0 {
		t.Fatal("no //recclint:detached directives found; if the last one was removed, empty testutil.DetachedMarks too and update this test's expectations")
	}

	for _, d := range directives {
		matched := false
		for _, mark := range testutil.DetachedMarks {
			if strings.HasPrefix(d.qualified, mark) || strings.HasPrefix(mark, d.qualified) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: //recclint:detached on %s has no matching entry in testutil.DetachedMarks; the leak-checked suites would flag this goroutine",
				d.pos, d.qualified)
		}
	}
	for _, mark := range testutil.DetachedMarks {
		matched := false
		for _, d := range directives {
			if strings.HasPrefix(d.qualified, mark) || strings.HasPrefix(mark, d.qualified) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("testutil.DetachedMarks entry %q matches no //recclint:detached directive in the tree; remove the stale exemption", mark)
		}
	}
}

type detachedSite struct {
	qualified string // import-path-qualified function name, as a stack frame prints it
	pos       string
}

type rootInfo struct {
	dir    string
	module string
}

// moduleRootAndPath locates go.mod and reads the module path from it.
func moduleRootAndPath(t *testing.T) (rootInfo, error) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		return rootInfo{}, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return rootInfo{dir: dir, module: strings.TrimSpace(rest)}, nil
				}
			}
			t.Fatalf("go.mod in %s has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

// collectDetachedSites parses every non-test, non-fixture source file and
// returns the qualified name of each function carrying a detached directive
// — on its doc comment, or inside its body on a go statement.
func collectDetachedSites(t *testing.T, root, module string) []detachedSite {
	t.Helper()
	var sites []detachedSite
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		importPath := module
		if rel != "." {
			importPath = module + "/" + filepath.ToSlash(rel)
		}
		sites = append(sites, fileDetachedSites(fset, file, importPath)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sites
}

func fileDetachedSites(fset *token.FileSet, file *ast.File, importPath string) []detachedSite {
	var sites []detachedSite
	hasDirective := func(cg *ast.CommentGroup) bool {
		if cg == nil {
			return false
		}
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), "//recclint:detached") {
				return true
			}
		}
		return false
	}
	qualify := func(fd *ast.FuncDecl) string {
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			switch rt := fd.Recv.List[0].Type.(type) {
			case *ast.StarExpr:
				if id, ok := rt.X.(*ast.Ident); ok {
					return importPath + ".(*" + id.Name + ")." + name
				}
			case *ast.Ident:
				return importPath + "." + rt.Name + "." + name
			}
		}
		return importPath + "." + name
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if hasDirective(fd.Doc) {
			sites = append(sites, detachedSite{
				qualified: qualify(fd),
				pos:       fset.Position(fd.Pos()).String(),
			})
		}
		if fd.Body == nil {
			continue
		}
		// Line directives on go statements inside the body: the spawned
		// closure's stack frames carry the enclosing function's name.
		for _, cg := range file.Comments {
			if cg.Pos() < fd.Body.Pos() || cg.End() > fd.Body.End() || !hasDirective(cg) {
				continue
			}
			sites = append(sites, detachedSite{
				qualified: qualify(fd),
				pos:       fset.Position(cg.Pos()).String(),
			})
		}
	}
	return sites
}

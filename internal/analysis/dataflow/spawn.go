package dataflow

// Goroutine-spawn resolution and closure capture analysis: the shared
// substrate under the v3 concurrency analyzers. A `go` statement starts a
// body the spawner no longer controls; everything the analyzers reason
// about — which context cancels it, which channel tells it to quit, which
// WaitGroup the spawner waits on — flows through either the spawned
// callee's own declaration or the variables a function literal captures
// from the spawning scope. Both are resolved here, once, so goroutinelife,
// wgbalance and chandisc agree on what a spawn site is.

import (
	"go/ast"
	"go/types"
)

// A SpawnSite is one `go` statement resolved to the body that will run
// concurrently. Exactly one of Lit and Callee is set when the target is
// statically known: Lit for `go func(){...}()`, Callee for `go f()` /
// `go x.m()` on a concrete receiver. Both are nil for dynamic targets
// (interface methods, function values) — the engine never guesses.
type SpawnSite struct {
	// Go is the spawning statement.
	Go *ast.GoStmt
	// Lit is the spawned function literal, when the spawn is `go func(){}()`.
	Lit *ast.FuncLit
	// Callee is the statically resolved spawned function, when the spawn is
	// a direct call (`go worker()`, `go m.run()`).
	Callee *types.Func
}

// Body returns the statically known body of the spawned function: the
// literal's body, or the resolved callee's declaration body when prog holds
// its source. Nil when the target is dynamic or externally defined.
func (s SpawnSite) Body(prog *Program) *ast.BlockStmt {
	if s.Lit != nil {
		return s.Lit.Body
	}
	if s.Callee != nil {
		if fi := prog.Func(s.Callee); fi != nil && fi.Decl != nil {
			return fi.Decl.Body
		}
	}
	return nil
}

// Spawns collects every go statement lexically inside body (including those
// nested in function literals) and resolves each to its static target.
func Spawns(info *types.Info, body *ast.BlockStmt) []SpawnSite {
	var sites []SpawnSite
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		site := SpawnSite{Go: g}
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			site.Lit = fun
		default:
			site.Callee = Callee(info, g.Call)
		}
		sites = append(sites, site)
		return true
	})
	return sites
}

// Captures returns the variables a function body uses but does not declare:
// for a function literal these are the closure's captured variables (plus
// any package-level state it touches); for a declared function they are the
// receiver, parameters and globals. Identity is the types.Var object, so
// callers can compare captures against spawner-scope declarations. Results
// are in first-use order, deduplicated.
func Captures(info *types.Info, body ast.Node) []*types.Var {
	var (
		out  []*types.Var
		seen = map[*types.Var]bool{}
	)
	lo, hi := body.Pos(), body.End()
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the body ⇒ not captured. Position containment is
		// the right test here: the loader shares one FileSet, and a variable
		// declared lexically within [lo,hi) belongs to the body's own scopes.
		if v.Pos() >= lo && v.Pos() < hi {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// CapturedBy reports whether the identifier's variable is declared outside
// body — i.e. the spawned body borrowed it from the spawner (captured
// closure variable, method receiver, parameter or package-level state)
// rather than deriving it locally. The concurrency analyzers use this to
// distinguish a join on the spawner's WaitGroup from a Done on a value the
// goroutine pulled off a channel.
func CapturedBy(info *types.Info, body ast.Node, id *ast.Ident) bool {
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < body.Pos() || v.Pos() >= body.End()
}

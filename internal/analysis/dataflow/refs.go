package dataflow

// Canonical names for the storage locations the concurrency analyzers track
// across functions and packages: struct fields ("pkg.Type.field"),
// package-level variables ("pkg.var") and function-local variables
// ("local@offset"). types.Object identity does not survive the
// source-vs-export-data boundary between packages, so — as with the call
// graph — cross-package matching goes through names; local variables key on
// their declaration position, which is unique within the loader's shared
// FileSet.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObjKey canonicalizes an expression that names a storage location. The
// second result is false when the expression is not a trackable location
// (call results, composite expressions, index expressions...).
func ObjKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := useOrDef(info, e)
		if !ok {
			return "", false
		}
		return varKey(v), true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			f, ok := sel.Obj().(*types.Var)
			if !ok {
				return "", false
			}
			return fieldKey(f, sel.Recv()), true
		}
		// Package-qualified variable: pkg.Var.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return varKey(v), true
		}
	}
	return "", false
}

// FieldKey canonicalizes a field object given its owner type, for callers
// that walk struct declarations rather than access expressions. Keys use the
// package name, not the import path — same canonicalization as the lock
// names in lockorder — so they read naturally in diagnostics.
func FieldKey(owner *types.Named, f *types.Var) string {
	return fmt.Sprintf("%s.%s.%s", pkgName(f.Pkg()), owner.Obj().Name(), f.Name())
}

func fieldKey(f *types.Var, recv types.Type) string {
	if named := NamedOf(recv); named != nil {
		return FieldKey(named, f)
	}
	return fmt.Sprintf("%s._.%s", pkgName(f.Pkg()), f.Name())
}

func varKey(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return pkgName(v.Pkg()) + "." + v.Name()
	}
	return fmt.Sprintf("local@%d", v.Pos())
}

func pkgName(p *types.Package) string {
	if p == nil {
		return "_"
	}
	return p.Name()
}

func useOrDef(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Defs[id].(*types.Var)
	return v, ok
}

// DisplayName renders a storage-location expression for diagnostics. Field
// and package-level keys are already readable ("repl.Pool.stop"); locals key
// on their declaration offset, so the source expression is shown instead.
func DisplayName(info *types.Info, fset *token.FileSet, e ast.Expr) string {
	key, ok := ObjKey(info, e)
	if ok && !strings.HasPrefix(key, "local@") {
		return key
	}
	return renderExpr(fset, e)
}

// NamedOf unwraps pointers and aliases down to the named type, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly behind pointers) is the named type
// path.name — e.g. IsNamed(t, "context", "Context").
func IsNamed(t types.Type, path, name string) bool {
	named := NamedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

package dataflow

import (
	"go/ast"
	"go/types"

	"resistecc/internal/analysis/framework"
)

// FuncInfo is one function or method with source available in the loaded
// program: its declaration, the package it lives in, and its type object.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *framework.Package
}

// A Program indexes every function declaration across the packages a load
// produced, keyed by the types.Func full name (object identity does not
// survive the source-vs-export-data boundary between packages, names do).
type Program struct {
	Pkgs  []*framework.Package
	funcs map[string]*FuncInfo
}

// BuildProgram indexes pkgs. The framework loader shares one token.FileSet
// across packages, so positions from any FuncInfo resolve consistently.
func BuildProgram(pkgs []*framework.Package) *Program {
	p := &Program{Pkgs: pkgs, funcs: make(map[string]*FuncInfo)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.funcs[obj.FullName()] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
			}
		}
	}
	return p
}

// Func returns the FuncInfo for a types.Func, or nil when its source is not
// part of the program (stdlib, export-data-only dependencies).
func (p *Program) Func(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return p.funcs[fn.FullName()]
}

// Callee statically resolves a call expression to the types.Func it invokes:
// direct calls to package functions and methods on concrete receivers.
// Interface dispatch, function values, and built-ins resolve to nil — the
// engine never guesses dynamic targets.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil
			}
			return fn
		}
		// Package-qualified call: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ResolvedCallee is Callee followed by a Program lookup: the callee's source,
// when the program holds it.
func (p *Program) ResolvedCallee(info *types.Info, call *ast.CallExpr) *FuncInfo {
	return p.Func(Callee(info, call))
}

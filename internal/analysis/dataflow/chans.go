package dataflow

// Channel close-site indexing. Close discipline is a whole-program property:
// the goroutine that ranges over a channel lives in one package, the Stop
// method that closes it in another. CloseSites gives the concurrency
// analyzers one canonical index of every `close(ch)` in the load unit.

import (
	"go/ast"
	"go/token"
	"go/types"

	"resistecc/internal/analysis/framework"
)

// A CloseSite is one `close(ch)` call: the canonical key of the channel it
// closes and the function it appears in.
type CloseSite struct {
	// Key is the ObjKey of the closed channel expression.
	Key string
	// Fn is the enclosing function declaration ("" for closes at package
	// scope, which cannot occur in valid Go).
	Fn *ast.FuncDecl
	// Pos is the close call's position.
	Pos token.Pos
}

// CloseSites indexes every close() of a keyable channel across pkgs, in
// deterministic (file, position) order. Closes of unkeyable expressions
// (close(f()), close(m[k])) are skipped — the engine degrades toward "no
// finding" on anything it cannot name.
func CloseSites(pkgs []*framework.Package) []CloseSite {
	var sites []CloseSite
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						return true
					}
					if !IsBuiltin(pkg.TypesInfo, call, "close") {
						return true
					}
					if key, ok := ObjKey(pkg.TypesInfo, call.Args[0]); ok {
						sites = append(sites, CloseSite{Key: key, Fn: fd, Pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	return sites
}

// ClosedKeys is CloseSites reduced to a membership set.
func ClosedKeys(pkgs []*framework.Package) map[string]bool {
	keys := make(map[string]bool)
	for _, cs := range CloseSites(pkgs) {
		keys[cs.Key] = true
	}
	return keys
}

// IsBuiltin reports whether call invokes the named builtin (close, len...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Package dataflow is the function-body analysis engine under recclint's v2
// analyzers (lockorder, mustclose, ctxflow, hotpath). It builds intra-function
// control-flow graphs from go/ast, runs forward dataflow to a fixed point over
// small lattices (lock sets, resource states), and resolves static callees
// across every package the framework loader produced, so analyzers get
// one-level interprocedural summaries without any code generation or SSA.
//
// The engine is deliberately conservative: anything it cannot model precisely
// (interface dispatch, aliasing through closures, reflection) degrades toward
// "no finding", never toward a false positive — recclint gates CI, so every
// report must be actionable.
package dataflow

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A Block is one basic block: a maximal straight-line statement sequence.
// Conditions appear as synthetic ast.ExprStmt entries at the end of the block
// that branches on them, so analyzers see every expression exactly once.
type Block struct {
	ID    int
	Stmts []ast.Stmt
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry; Exit is a synthetic empty block reached by every return and by
// falling off the end of the body. Statements that cannot complete normally
// (panic, os.Exit, log.Fatal*) terminate their block with no successor, so
// "open at exit" style analyses do not count crash paths.
type CFG struct {
	Blocks []*Block
	Exit   *Block
	// Defers lists every defer statement in the body, in source order. The
	// engine approximates defer semantics as "runs at every exit reachable
	// after registration", which transfer functions model at the statement.
	Defers []*ast.DeferStmt
	// Spawns lists every go statement in the body, in source order. A spawn
	// is a control-flow edge into a concurrently executing body: the spawned
	// function starts at the statement but joins the spawner (if ever) only
	// through a channel, WaitGroup or context — which is exactly what the
	// concurrency analyzers (goroutinelife, wgbalance) check.
	Spawns []*ast.GoStmt
}

type loopScope struct {
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	cfg   *CFG
	cur   *Block
	loops []loopScope // innermost last; switch/select push break-only scopes

	labels       map[string]*labelInfo
	pendingLabel string // label naming the next loop/switch/select built
}

type labelInfo struct {
	start      *Block // block the labeled statement begins in (goto target)
	breakTo    *Block
	continueTo *Block
}

// InspectStmt is ast.Inspect made safe for statements coming out of a CFG
// block: range-loop headers appear there as shallow RangeStmt copies with a
// nil Body (see the builder), which plain ast.Inspect cannot walk. Transfer
// functions that re-inspect block statements must use this instead.
func InspectStmt(s ast.Stmt, fn func(ast.Node) bool) {
	if r, ok := s.(*ast.RangeStmt); ok && r.Body == nil {
		if !fn(r) {
			return
		}
		for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
			if e != nil {
				ast.Inspect(e, fn)
			}
		}
		return
	}
	ast.Inspect(s, fn)
}

// Build constructs the CFG of fn's body. Returns nil for bodiless functions
// (declarations without bodies, e.g. assembly stubs).
func Build(fn *ast.FuncDecl) *CFG {
	if fn == nil || fn.Body == nil {
		return nil
	}
	return BuildBody(fn.Body)
}

// BuildBody constructs the CFG of an arbitrary function body (used for both
// declared functions and function literals).
func BuildBody(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: make(map[string]*labelInfo),
	}
	entry := b.newBlock()
	b.cfg.Exit = &Block{ID: -1} // renumbered below
	b.cur = entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	b.cfg.Exit.ID = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump seals the current block with an edge to target and opens a fresh,
// unreachable block for any statements that follow the jump.
func (b *builder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

// terminate seals the current block with no successor (panic/os.Exit paths).
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{start: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

// takePendingLabel binds break/continue targets for a labeled loop or switch.
func (b *builder) takePendingLabel(breakTo, continueTo *Block) {
	if b.pendingLabel == "" {
		return
	}
	li := b.labels[b.pendingLabel]
	li.breakTo = breakTo
	li.continueTo = continueTo
	b.pendingLabel = ""
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// condStmt wraps a branch condition as a synthetic statement so transfer
// functions visit its sub-expressions.
func condStmt(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.edge(b.cur, li.start)
		b.cur = li.start
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, condStmt(s.Cond))
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, condStmt(s.Cond))
		}
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.takePendingLabel(after, post)
		b.loops = append(b.loops, loopScope{breakTo: after, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, post)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		// A shallow copy without the body stands in for the per-iteration
		// assignment, so analyzers see Key/Value/X exactly once.
		hdr := *s
		hdr.Body = nil
		head.Stmts = append(head.Stmts, &hdr)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.takePendingLabel(after, head)
		b.loops = append(b.loops, loopScope{breakTo: after, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Assign, s.Body, false)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.takePendingLabel(after, nil)
		b.loops = append(b.loops, loopScope{breakTo: after})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.cur.Stmts = append(b.cur.Stmts, comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		// A select with no cases blocks forever: after stays unreachable.
		b.cur = after

	case *ast.BranchStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.jump(b.labels[s.Label.Name].breakTo)
			} else {
				b.jump(b.innermostBreak())
			}
		case token.CONTINUE:
			if s.Label != nil {
				b.jump(b.labels[s.Label.Name].continueTo)
			} else {
				b.jump(b.innermostContinue())
			}
		case token.GOTO:
			b.jump(b.label(s.Label.Name).start)
		case token.FALLTHROUGH:
			// Handled by buildSwitch, which links the clause blocks; the
			// statement itself is recorded above for completeness.
		}

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.jump(b.cfg.Exit)

	case *ast.DeferStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.GoStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.cfg.Spawns = append(b.cfg.Spawns, s)

	default:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if terminates(s) {
			b.terminate()
		}
	}
}

// buildSwitch handles both expression and type switches. tagged reports
// whether fallthrough is legal (expression switches only).
func (b *builder) buildSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, tagged bool) {
	if init != nil {
		b.cur.Stmts = append(b.cur.Stmts, init)
	}
	if tag != nil {
		b.cur.Stmts = append(b.cur.Stmts, condStmt(tag))
	}
	if assign != nil {
		b.cur.Stmts = append(b.cur.Stmts, assign)
	}
	head := b.cur
	after := b.newBlock()
	b.takePendingLabel(after, nil)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.loops = append(b.loops, loopScope{breakTo: after})
	for i, c := range clauses {
		b.cur = blocks[i]
		falls := false
		for _, s := range c.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && tagged {
				falls = true
			}
			b.stmt(s)
		}
		if falls && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *builder) innermostBreak() *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].breakTo != nil {
			return b.loops[i].breakTo
		}
	}
	return b.cfg.Exit // malformed code; be lenient
}

func (b *builder) innermostContinue() *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].continueTo != nil {
			return b.loops[i].continueTo
		}
	}
	return b.cfg.Exit
}

// terminates reports whether s is a statement that never completes normally:
// a call to panic, os.Exit, or log.Fatal*/log.Panic*.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		return (pkg.Name == "os" && name == "Exit") ||
			(pkg.Name == "log" && (strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")))
	}
	return false
}

// Reachable returns the blocks reachable from the entry, in a deterministic
// order (by block ID). Jump targets leave dead blocks behind; analyses skip
// them so unreachable code cannot produce findings.
func (c *CFG) Reachable() []*Block {
	seen := make(map[*Block]bool, len(c.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(c.Blocks) > 0 {
		walk(c.Blocks[0])
	}
	var out []*Block
	for _, b := range c.Blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the CFG for golden tests: one line per reachable block,
// statements abbreviated, successors by ID.
func (c *CFG) String(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range c.Reachable() {
		if b == c.Exit {
			fmt.Fprintf(&sb, "b%d: exit\n", b.ID)
			continue
		}
		parts := make([]string, len(b.Stmts))
		for i, s := range b.Stmts {
			parts[i] = renderStmt(fset, s)
		}
		fmt.Fprintf(&sb, "b%d: [%s] ->", b.ID, strings.Join(parts, "; "))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.ID)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderStmt(fset *token.FileSet, s ast.Stmt) string {
	if r, ok := s.(*ast.RangeStmt); ok && r.Body == nil {
		return "range " + renderExpr(fset, r.X)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, s); err != nil {
		return fmt.Sprintf("<%T>", s)
	}
	line := strings.Join(strings.Fields(buf.String()), " ")
	if len(line) > 60 {
		line = line[:57] + "..."
	}
	return line
}

func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%T>", e)
	}
	return buf.String()
}

package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFor parses src (a file body with one function f) and builds f's CFG.
func buildFor(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			c := Build(fd)
			if c == nil {
				t.Fatal("Build returned nil for a function with a body")
			}
			return c, fset
		}
	}
	t.Fatal("no func f in source")
	return nil, nil
}

func checkGolden(t *testing.T, got, want string) {
	t.Helper()
	got = strings.TrimSpace(got)
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCFGIf(t *testing.T) {
	c, fset := buildFor(t, `
func f(x int) int {
	y := 0
	if x > 0 {
		y = 1
	} else {
		y = 2
	}
	return y
}`)
	checkGolden(t, c.String(fset), `
b0: [y := 0; x > 0] -> b2 b3
b1: [return y] -> b5
b2: [y = 1] -> b1
b3: [y = 2] -> b1
b5: exit`)
}

func TestCFGForBreakContinue(t *testing.T) {
	c, fset := buildFor(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		if i == 7 {
			break
		}
	}
}`)
	s := c.String(fset)
	// The loop head tests the condition and branches to body or after.
	if !strings.Contains(s, "i < n") {
		t.Errorf("missing loop condition in:\n%s", s)
	}
	// continue must reach the post block (i++), break must skip it.
	post := -1
	for _, b := range c.Blocks {
		for _, st := range b.Stmts {
			if renderStmt(fset, st) == "i++" {
				post = b.ID
			}
		}
	}
	if post < 0 {
		t.Fatalf("no post block in:\n%s", s)
	}
	foundContinue := false
	for _, b := range c.Blocks {
		for _, st := range b.Stmts {
			if renderStmt(fset, st) == "continue" {
				foundContinue = true
				ok := false
				for _, succ := range b.Succs {
					if succ.ID == post {
						ok = true
					}
				}
				if !ok {
					t.Errorf("continue block b%d does not target post b%d:\n%s", b.ID, post, s)
				}
			}
		}
	}
	if !foundContinue {
		t.Errorf("continue statement not recorded in any block:\n%s", s)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c, fset := buildFor(t, `
func f(x int) int {
	y := 0
	switch x {
	case 1:
		y = 1
		fallthrough
	case 2:
		y = 2
	default:
		y = 3
	}
	return y
}`)
	s := c.String(fset)
	// Find the case-1 block and the case-2 block; fallthrough must link them.
	var c1, c2 *Block
	for _, b := range c.Blocks {
		for _, st := range b.Stmts {
			switch renderStmt(fset, st) {
			case "y = 1":
				c1 = b
			case "y = 2":
				c2 = b
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatalf("case blocks not found in:\n%s", s)
	}
	linked := false
	for _, succ := range c1.Succs {
		if succ == c2 {
			linked = true
		}
	}
	if !linked {
		t.Errorf("fallthrough does not link case 1 (b%d) to case 2 (b%d):\n%s", c1.ID, c2.ID, s)
	}
}

func TestCFGSelect(t *testing.T) {
	c, fset := buildFor(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`)
	s := c.String(fset)
	if !strings.Contains(s, "v := <-a") || !strings.Contains(s, "<-b") {
		t.Errorf("select comm statements missing from:\n%s", s)
	}
	// Entry must branch to both comm clauses.
	if len(c.Blocks[0].Succs) != 2 {
		t.Errorf("select head has %d successors, want 2:\n%s", len(c.Blocks[0].Succs), s)
	}
}

func TestCFGDefer(t *testing.T) {
	c, fset := buildFor(t, `
func f() error {
	x := open()
	defer x.Close()
	if bad() {
		return errFail
	}
	return nil
}`)
	if len(c.Defers) != 1 {
		t.Fatalf("recorded %d defers, want 1", len(c.Defers))
	}
	s := c.String(fset)
	if !strings.Contains(s, "defer x.Close()") {
		t.Errorf("defer statement missing from blocks:\n%s", s)
	}
	// Both returns reach exit.
	exitPreds := 0
	for _, b := range c.Blocks {
		for _, succ := range b.Succs {
			if succ == c.Exit {
				exitPreds++
			}
		}
	}
	if exitPreds < 2 {
		t.Errorf("exit has %d predecessors, want >= 2:\n%s", exitPreds, s)
	}
}

func TestCFGGoto(t *testing.T) {
	c, fset := buildFor(t, `
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`)
	s := c.String(fset)
	// The goto block must loop back to the labeled block (which holds the if
	// condition), making the label block its own ancestor.
	var labelBlk, gotoBlk *Block
	for _, b := range c.Blocks {
		for _, st := range b.Stmts {
			r := renderStmt(fset, st)
			if r == "i < n" {
				labelBlk = b
			}
			if r == "goto loop" {
				gotoBlk = b
			}
		}
	}
	if labelBlk == nil || gotoBlk == nil {
		t.Fatalf("label or goto block missing in:\n%s", s)
	}
	found := false
	for _, succ := range gotoBlk.Succs {
		if succ == labelBlk {
			found = true
		}
	}
	if !found {
		t.Errorf("goto block b%d does not target label block b%d:\n%s", gotoBlk.ID, labelBlk.ID, s)
	}
}

func TestCFGRange(t *testing.T) {
	c, fset := buildFor(t, `
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	s := c.String(fset)
	if !strings.Contains(s, "range xs") {
		t.Errorf("range header missing from:\n%s", s)
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	c, _ := buildFor(t, `
func f(x int) {
	if x < 0 {
		panic("negative")
	}
	use(x)
}`)
	// The panic block must have no successors: crash paths do not reach exit.
	for _, b := range c.Blocks {
		for _, st := range b.Stmts {
			if es, ok := st.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						if len(b.Succs) != 0 {
							t.Errorf("panic block b%d has successors %v", b.ID, b.Succs)
						}
					}
				}
			}
		}
	}
}

func TestForwardReachesFixedPoint(t *testing.T) {
	// Count-insensitive "may be set" analysis over a loop: the fact is a
	// set of assigned variable names; join is union. The loop body assigns y,
	// so y must be in the fact at exit even though the entry fact is empty.
	c, _ := buildFor(t, `
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		y := i
		use(y)
	}
	use(x)
}`)
	type fact = LockSet // reuse the set type
	res := Forward(c, Flow[fact]{
		Entry: fact{},
		Join: func(a, b fact) fact { // union join for a may-analysis
			out := make(fact, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: EqualLockSets,
		Transfer: func(f fact, s ast.Stmt) fact {
			if as, ok := s.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						f = f.With(id.Name)
					}
				}
			}
			return f
		},
	})
	exit := res[c.Exit]
	if !exit["x"] || !exit["y"] || !exit["i"] {
		t.Errorf("exit fact = %v, want x, y, i all present", exit.Names())
	}
}

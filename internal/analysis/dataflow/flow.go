package dataflow

import (
	"go/ast"
	"sort"
)

// A Flow describes one forward dataflow problem over a CFG. F is the fact
// type; facts must be treated as immutable by Transfer (copy-on-write), so
// the solver can cache block-entry facts safely.
type Flow[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges the facts of two incoming edges.
	Join func(a, b F) F
	// Equal reports fact equality; the fixed point terminates on it.
	Equal func(a, b F) bool
	// Transfer applies one statement to a fact.
	Transfer func(f F, s ast.Stmt) F
	// Branch, when non-nil, refines a block's out-fact per successor edge.
	// It receives the block's final statement (branch conditions appear as
	// synthetic ExprStmts there), the successor index, and the successor
	// count; for a two-way branch, index 0 is the condition-true edge. This
	// is how mustclose models `if err != nil`: the resource exists on the
	// success edge and not on the failure edge.
	Branch func(f F, last ast.Stmt, succ, nsuccs int) F
}

// Forward runs the problem to a fixed point and returns the entry fact of
// every reachable block. Analyzers that need statement-granularity facts
// (e.g. the lock set at an acquisition site) replay Transfer over a block's
// statements starting from its entry fact.
func Forward[F any](c *CFG, fl Flow[F]) map[*Block]F {
	in := make(map[*Block]F, len(c.Blocks))
	if len(c.Blocks) == 0 {
		return in
	}
	entry := c.Blocks[0]
	in[entry] = fl.Entry
	work := []*Block{entry}
	// The loop is monotone on a finite lattice, but guard against a
	// non-converging Join/Equal pair with a generous iteration cap.
	for steps := 0; len(work) > 0 && steps < 64*len(c.Blocks)*(len(c.Blocks)+2); steps++ {
		b := work[0]
		work = work[1:]
		out := in[b]
		for _, s := range b.Stmts {
			out = fl.Transfer(out, s)
		}
		for i, succ := range b.Succs {
			next := out
			if fl.Branch != nil && len(b.Stmts) > 0 {
				next = fl.Branch(next, b.Stmts[len(b.Stmts)-1], i, len(b.Succs))
			}
			cur, seen := in[succ]
			if seen {
				next = fl.Join(cur, next)
			}
			if !seen || !fl.Equal(cur, next) {
				in[succ] = next
				work = append(work, succ)
			}
		}
	}
	return in
}

// LockSet is the must-hold lock lattice: the set of locks held on every path
// reaching a program point. Keys are canonical lock names (see the lockorder
// analyzer). Sets are immutable: With/Without copy.
type LockSet map[string]bool

// With returns s ∪ {name}.
func (s LockSet) With(name string) LockSet {
	if s[name] {
		return s
	}
	out := make(LockSet, len(s)+1)
	for k := range s {
		out[k] = true
	}
	out[name] = true
	return out
}

// Without returns s \ {name}.
func (s LockSet) Without(name string) LockSet {
	if !s[name] {
		return s
	}
	out := make(LockSet, len(s))
	for k := range s {
		if k != name {
			out[k] = true
		}
	}
	return out
}

// Names returns the held locks in sorted order.
func (s LockSet) Names() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// JoinLockSets intersects two must-hold sets: a lock is held at a join point
// only if it is held on both incoming paths.
func JoinLockSets(a, b LockSet) LockSet {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make(LockSet, len(a))
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// EqualLockSets reports set equality.
func EqualLockSets(a, b LockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

package dataflow

import (
	"go/ast"
	"testing"
)

func TestLockSetWithWithout(t *testing.T) {
	var s LockSet
	a := s.With("p.T.mu")
	if !a["p.T.mu"] || len(s) != 0 {
		t.Errorf("With mutated the receiver or failed: s=%v a=%v", s, a)
	}
	b := a.With("p.T.mu")
	if len(b) != 1 {
		t.Errorf("idempotent With changed the set: %v", b.Names())
	}
	c := a.Without("p.T.mu")
	if len(c) != 0 || !a["p.T.mu"] {
		t.Errorf("Without mutated the receiver or failed: a=%v c=%v", a, c)
	}
	if d := a.Without("other"); len(d) != 1 {
		t.Errorf("Without of absent element changed the set: %v", d.Names())
	}
}

func TestJoinLockSetsIsIntersection(t *testing.T) {
	ab := LockSet{}.With("a").With("b")
	bc := LockSet{}.With("b").With("c")
	cases := []struct {
		name string
		x, y LockSet
		want []string
	}{
		{"overlap", ab, bc, []string{"b"}},
		{"identical", ab, ab, []string{"a", "b"}},
		{"disjoint", LockSet{}.With("a"), LockSet{}.With("c"), nil},
		{"empty-left", LockSet{}, ab, nil},
		{"empty-right", ab, LockSet{}, nil},
		{"nil-nil", nil, nil, nil},
	}
	for _, tc := range cases {
		got := JoinLockSets(tc.x, tc.y).Names()
		if len(got) != len(tc.want) {
			t.Errorf("%s: join = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: join = %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

func TestJoinLockSetsCommutative(t *testing.T) {
	x := LockSet{}.With("a").With("b").With("c")
	y := LockSet{}.With("b").With("c").With("d")
	if !EqualLockSets(JoinLockSets(x, y), JoinLockSets(y, x)) {
		t.Error("join is not commutative")
	}
}

func TestEqualLockSets(t *testing.T) {
	a := LockSet{}.With("x")
	b := LockSet{}.With("x")
	if !EqualLockSets(a, b) {
		t.Error("equal sets reported unequal")
	}
	if EqualLockSets(a, a.With("y")) {
		t.Error("unequal sets reported equal")
	}
	if !EqualLockSets(nil, LockSet{}) {
		t.Error("nil and empty must be equal")
	}
}

// TestLockSetJoinAtBranch runs the real must-hold analysis shape over a CFG:
// a lock acquired on only one branch is not held after the join; a lock
// acquired before the branch is held throughout.
func TestLockSetJoinAtBranch(t *testing.T) {
	c, fset := buildFor(t, `
func f(x int) {
	outerLock()
	if x > 0 {
		innerLock()
		use(x)
	}
	probe()
}`)
	facts := Forward(c, Flow[LockSet]{
		Entry: LockSet{},
		Join:  JoinLockSets,
		Equal: EqualLockSets,
		Transfer: func(f LockSet, s ast.Stmt) LockSet {
			switch renderStmt(fset, s) {
			case "outerLock()":
				return f.With("outer")
			case "innerLock()":
				return f.With("inner")
			}
			return f
		},
	})
	// Find the block containing probe(): its entry fact must hold outer only.
	for _, b := range c.Blocks {
		for _, s := range b.Stmts {
			if renderStmt(fset, s) == "probe()" {
				f := facts[b]
				if !f["outer"] {
					t.Errorf("outer lock lost at join: %v", f.Names())
				}
				if f["inner"] {
					t.Errorf("branch-only lock survived the join: %v", f.Names())
				}
				return
			}
		}
	}
	t.Fatal("probe() block not found")
}

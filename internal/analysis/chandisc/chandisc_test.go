package chandisc_test

import (
	"testing"

	"resistecc/internal/analysis/chandisc"
	"resistecc/internal/analysis/framework"
)

func TestChandisc(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	framework.TestAnalyzer(t, chandisc.Analyzer, framework.FixturePath("chandisc"))
}

// Package chandisc implements the recclint channel-discipline check. The
// rules are the ownership discipline the repo's serving tier relies on:
//
//   - One owner closes: a channel stored in a struct field or package
//     variable is closed from exactly one function. Two closers is a
//     latent double-close panic.
//   - No close races with its own guard: the select-then-close idiom
//     (`select { case <-ch: default: close(ch) }`) is a TOCTOU — two
//     concurrent callers can both reach the default clause and the second
//     close panics. Idempotent close goes through sync.Once.
//   - No send or re-close after close on any path: a mustclose-style
//     must-closed dataflow lattice over each function's CFG catches
//     `close(ch); ch <- v` however much control flow sits in between.
//   - Ranging a channel requires a closer: `for range ch` on a local
//     channel nothing in the program ever closes blocks forever.
//
// Everything the engine cannot name (close(f()), channels that escape into
// dynamic call sites) degrades toward silence, never toward a false
// positive.
package chandisc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"resistecc/internal/analysis/dataflow"
	"resistecc/internal/analysis/framework"
)

// Analyzer is the chandisc check.
var Analyzer = &framework.Analyzer{
	Name:       "chandisc",
	Doc:        "channel close discipline: one owning closer, no racy select-then-close, no send after close on any path, range only over channels something closes",
	RunProgram: run,
}

func run(pass *framework.ProgramPass) error {
	sites := dataflow.CloseSites(pass.Pkgs)
	closedAnywhere := make(map[string]bool, len(sites))
	for _, cs := range sites {
		closedAnywhere[cs.Key] = true
	}
	reportMultipleClosers(pass, sites)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkRacyCloseGuard(pass, pkg, fd)
				checkClosePaths(pass, pkg, fd)
				checkRangeNeverClosed(pass, pkg, fd, closedAnywhere)
			}
		}
	}
	return nil
}

// reportMultipleClosers flags shared channels (fields, package variables)
// closed from more than one function. Locals are exempt: a local channel
// closed twice is a path property, handled by checkClosePaths.
func reportMultipleClosers(pass *framework.ProgramPass, sites []dataflow.CloseSite) {
	type closer struct {
		fn  string
		pos token.Pos
	}
	byKey := make(map[string][]closer)
	for _, cs := range sites {
		if strings.HasPrefix(cs.Key, "local@") || cs.Fn == nil {
			continue
		}
		byKey[cs.Key] = append(byKey[cs.Key], closer{cs.Fn.Name.Name, cs.Pos})
	}
	for key, closers := range byKey {
		fns := make(map[string]bool)
		for _, c := range closers {
			fns[c.fn] = true
		}
		if len(fns) < 2 {
			continue
		}
		names := make([]string, 0, len(fns))
		for fn := range fns {
			names = append(names, fn)
		}
		sort.Strings(names)
		sort.Slice(closers, func(i, j int) bool { return closers[i].pos < closers[j].pos })
		for _, c := range closers {
			pass.Reportf(c.pos, "channel %s is closed in %d functions (%s); a shared channel needs exactly one owning closer",
				key, len(names), strings.Join(names, ", "))
		}
	}
}

// checkRacyCloseGuard flags a close guarded by a receive on the same channel
// in a sibling clause of one select.
func checkRacyCloseGuard(pass *framework.ProgramPass, pkg *framework.Package, fd *ast.FuncDecl) {
	info := pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		// Keys received by each clause, indexed by clause.
		recvKeys := make([]map[string]bool, len(sel.Body.List))
		for i, cl := range sel.Body.List {
			comm := cl.(*ast.CommClause)
			recvKeys[i] = make(map[string]bool)
			if comm.Comm == nil {
				continue
			}
			ast.Inspect(comm.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if key, ok := dataflow.ObjKey(info, u.X); ok {
						recvKeys[i][key] = true
					}
				}
				return true
			})
		}
		for i, cl := range sel.Body.List {
			comm := cl.(*ast.CommClause)
			for _, s := range comm.Body {
				ast.Inspect(s, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 || !dataflow.IsBuiltin(info, call, "close") {
						return true
					}
					key, ok := dataflow.ObjKey(info, call.Args[0])
					if !ok {
						return true
					}
					for j, keys := range recvKeys {
						if j != i && keys[key] {
							pass.Reportf(call.Pos(),
								"racy idempotent close of %s: between the sibling case's receive and this close, a concurrent caller can close first and this close panics; serialize through sync.Once",
								dataflow.DisplayName(info, pass.Fset, call.Args[0]))
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// closeFact is the must-closed lattice: the set of channel keys closed on
// every path into a point. Join is set intersection.
type closeFact map[string]bool

func joinClose(a, b closeFact) closeFact {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make(closeFact, len(a))
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equalClose(a, b closeFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// checkClosePaths runs the must-closed analysis over fd's CFG and reports
// closes-after-close and sends-after-close. Deferred closes are ignored for
// state (they run at exit), and the check replays transfer functions over
// the converged block-entry facts so each site reports at most once.
func checkClosePaths(pass *framework.ProgramPass, pkg *framework.Package, fd *ast.FuncDecl) {
	info := pkg.TypesInfo
	cfg := dataflow.Build(fd)
	if cfg == nil {
		return
	}
	transfer := func(f closeFact, s ast.Stmt, report bool) closeFact {
		if _, isDefer := s.(*ast.DeferStmt); isDefer {
			return f
		}
		// A close nested in a function literal or go/defer statement executes
		// at some other time; skip those subtrees entirely — they are
		// conservative no-ops for the must-closed state.
		dataflow.InspectStmt(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				if key, ok := dataflow.ObjKey(info, n.Chan); ok && f[key] {
					if report {
						pass.Reportf(n.Pos(), "send on %s after it is closed on every path reaching here; sending on a closed channel panics",
							dataflow.DisplayName(info, pass.Fset, n.Chan))
					}
				}
			case *ast.CallExpr:
				if len(n.Args) == 1 && dataflow.IsBuiltin(info, n, "close") {
					if key, ok := dataflow.ObjKey(info, n.Args[0]); ok {
						if f[key] && report {
							pass.Reportf(n.Pos(), "%s is already closed on every path reaching this second close; closing a closed channel panics",
								dataflow.DisplayName(info, pass.Fset, n.Args[0]))
						}
						f = withKey(f, key)
					}
				}
			}
			return true
		})
		return f
	}
	facts := dataflow.Forward(cfg, dataflow.Flow[closeFact]{
		Entry:    closeFact{},
		Join:     joinClose,
		Equal:    equalClose,
		Transfer: func(f closeFact, s ast.Stmt) closeFact { return transfer(f, s, false) },
	})
	seen := make(map[*dataflow.Block]bool)
	for _, b := range cfg.Reachable() {
		if seen[b] {
			continue
		}
		seen[b] = true
		f, ok := facts[b]
		if !ok {
			continue
		}
		for _, s := range b.Stmts {
			f = transfer(f, s, true)
		}
	}
}

func withKey(f closeFact, key string) closeFact {
	if f[key] {
		return f
	}
	out := make(closeFact, len(f)+1)
	for k := range f {
		out[k] = true
	}
	out[key] = true
	return out
}

// checkRangeNeverClosed flags `for range ch` over a function-local channel
// that nothing in the program closes and that never escapes the function —
// the loop can only end by blocking forever.
func checkRangeNeverClosed(pass *framework.ProgramPass, pkg *framework.Package, fd *ast.FuncDecl, closedAnywhere map[string]bool) {
	info := pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		id, ok := ast.Unparen(rng.X).(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true // fields and globals: goroutinelife owns parked workers
		}
		key, ok := dataflow.ObjKey(info, rng.X)
		if !ok || closedAnywhere[key] {
			return true
		}
		if escapes(info, fd, v) {
			return true
		}
		pass.Reportf(rng.Pos(), "ranging over %s blocks forever: nothing closes it and it never escapes %s; close it when the producer is done",
			v.Name(), fd.Name.Name)
		return true
	})
}

// escapes reports whether the local channel v is used anywhere beyond the
// operations the analysis models (make/assign, send, receive, range, close,
// len/cap). Passing it to a call, returning it, storing it in a structure or
// capturing its address all count as escapes.
func escapes(info *types.Info, fd *ast.FuncDecl, v *types.Var) bool {
	escaped := false
	framework.WalkStackNode(fd.Body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || escaped {
			return
		}
		if info.Uses[id] != v && info.Defs[id] != v {
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SendStmt:
			if parent.Chan == ast.Expr(id) {
				return
			}
			escaped = true
		case *ast.UnaryExpr:
			if parent.Op == token.ARROW {
				return
			}
			escaped = true
		case *ast.RangeStmt:
			if parent.X == ast.Expr(id) {
				return
			}
			escaped = true
		case *ast.CallExpr:
			if dataflow.IsBuiltin(info, parent, "close") ||
				dataflow.IsBuiltin(info, parent, "len") || dataflow.IsBuiltin(info, parent, "cap") {
				return
			}
			escaped = true
		case *ast.AssignStmt:
			// Appearing on the LHS (the make) is fine; as an RHS value it
			// aliases into another variable — escape.
			for _, lhs := range parent.Lhs {
				if lhs == ast.Expr(id) {
					return
				}
			}
			escaped = true
		case *ast.ValueSpec:
			return
		default:
			escaped = true
		}
	})
	return escaped
}

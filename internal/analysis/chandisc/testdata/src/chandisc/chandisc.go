// Package chandisc is the analyzer fixture: each declaration pins one
// flagging or non-flagging behavior of the channel-discipline check.
package chandisc

import "sync"

// S's stop channel has two competing closers — a latent double-close panic.
type S struct {
	stop chan struct{}
}

func (s *S) Stop() {
	close(s.stop) // want "closed in 2 functions"
}

func (s *S) Shutdown() {
	close(s.stop) // want "closed in 2 functions"
}

// R guards its close with a receive on the same channel in a sibling select
// clause — the classic TOCTOU.
type R struct {
	stop chan struct{}
}

func (r *R) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop) // want "racy idempotent close"
	}
}

// O is the fixed idiom: idempotent close serialized through sync.Once.
type O struct {
	once sync.Once
	stop chan struct{}
}

func (o *O) Stop() {
	o.once.Do(func() { close(o.stop) })
}

// doubleClose closes the same local twice on the only path.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "already closed on every path"
}

// sendAfterClose sends on a channel that is closed on every path to the send.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch after it is closed"
}

// branchClose is fine: the close and the send are on different paths.
func branchClose(flush bool) {
	ch := make(chan int, 1)
	if flush {
		close(ch)
	} else {
		ch <- 1
	}
}

// drainClosed is fine: the ranged local is closed by the producer.
func drainClosed() {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	for v := range ch {
		_ = v
	}
}

// rangeForever ranges a local channel nothing ever closes.
func rangeForever() {
	ch := make(chan int)
	for v := range ch { // want "ranging over ch blocks forever"
		_ = v
	}
}

// rangeEscaped is fine: the channel escapes into a call, so a closer may
// exist beyond the engine's sight.
func rangeEscaped() {
	ch := make(chan int)
	hand(ch)
	for v := range ch {
		_ = v
	}
}

func hand(ch chan int) { _ = ch }

// suppressed shows the generic escape hatch: an ignore directive with a
// justification silences the finding.
func suppressed() {
	ch := make(chan int)
	//recclint:ignore chandisc fixture demonstrating a deliberately parked drain
	for v := range ch {
		_ = v
	}
}

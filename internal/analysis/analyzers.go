// Package analysis is the recclint registry: the repo-specific static
// checks that machine-enforce invariants which otherwise live only in
// comments — mutex guards on lifecycle state, fsync-before-ack durability in
// the persist layer, bit-identity float comparisons, and deterministic
// build/serialize paths. cmd/recclint runs the full suite; `make lint` and
// the CI lint job gate every change on it.
package analysis

import (
	"resistecc/internal/analysis/determinism"
	"resistecc/internal/analysis/floateq"
	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/lockguard"
	"resistecc/internal/analysis/syncerr"
)

// All returns every registered analyzer, in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		determinism.Analyzer,
		floateq.Analyzer,
		lockguard.Analyzer,
		syncerr.Analyzer,
	}
}

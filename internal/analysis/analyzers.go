// Package analysis is the recclint registry: the repo-specific static
// checks that machine-enforce invariants which otherwise live only in
// comments — mutex guards on lifecycle state, fsync-before-ack durability in
// the persist layer, bit-identity float comparisons, and deterministic
// build/serialize paths. The v2 analyzers add dataflow-backed checks on top
// (see internal/analysis/dataflow): deadlock-free lock acquisition order,
// resources closed on every path, contexts threaded instead of minted, and
// allocation-free hot paths. The v3 analyzers extend the same substrate with
// goroutine-spawn edges and closure capture for whole-program concurrency
// checks: goroutine lifecycle, channel close discipline, WaitGroup balance,
// and sync/atomic hygiene. The v4 analyzers guard the protocol and API
// surface: wire-format symmetry between paired encoders and decoders,
// HTTP error-envelope and routes-manifest discipline, metrics registration
// hygiene, and sentinel-error identity. cmd/recclint runs the full suite;
// `make lint` and the CI lint job gate every change on it.
package analysis

import (
	"resistecc/internal/analysis/apisurface"
	"resistecc/internal/analysis/atomicmix"
	"resistecc/internal/analysis/chandisc"
	"resistecc/internal/analysis/ctxflow"
	"resistecc/internal/analysis/determinism"
	"resistecc/internal/analysis/erridentity"
	"resistecc/internal/analysis/floateq"
	"resistecc/internal/analysis/framework"
	"resistecc/internal/analysis/goroutinelife"
	"resistecc/internal/analysis/hotpath"
	"resistecc/internal/analysis/lockguard"
	"resistecc/internal/analysis/lockorder"
	"resistecc/internal/analysis/metrichygiene"
	"resistecc/internal/analysis/mustclose"
	"resistecc/internal/analysis/syncerr"
	"resistecc/internal/analysis/wgbalance"
	"resistecc/internal/analysis/wireproto"
)

// All returns every registered analyzer, in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		apisurface.Analyzer,
		atomicmix.Analyzer,
		chandisc.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		erridentity.Analyzer,
		floateq.Analyzer,
		goroutinelife.Analyzer,
		hotpath.Analyzer,
		lockguard.Analyzer,
		lockorder.Analyzer,
		metrichygiene.Analyzer,
		mustclose.Analyzer,
		syncerr.Analyzer,
		wgbalance.Analyzer,
		wireproto.Analyzer,
	}
}

// Package hull implements APPROXCH (Lemma 5.3 of the paper, after
// Awasthi–Kalantari–Zhang's robust vertex enumeration): given n points in
// R^d and an error parameter θ ∈ (0,1), it returns a small subset Ŝ such
// that every input point lies within θ·D(S) of conv(Ŝ), where D(S) is the
// point-set diameter.
//
// The construction is AVTA-style:
//
//  1. Seeding — extreme points along the approximate-diameter axis and a
//     batch of random directions. The argmax of a linear functional is
//     always a true hull vertex, so seeds are exact extreme points.
//  2. Greedy refinement — repeatedly find the point farthest from the
//     current conv(Ŝ) (distance computed by Frank–Wolfe, a.k.a. the
//     triangle algorithm, with certified upper/lower bounds) and insert it,
//     until every point is certified within θ·D̂.
//
// Distances to a growing hull are non-increasing, so once a point is
// certified covered it is never re-examined; the total work matches the
// O(n·l·(d + θ⁻²)) of Lemma 5.3 with l = |Ŝ|.
//
// FASTQUERY uses Ŝ to restrict farthest-point queries: the node farthest
// from any query point lies on the hull boundary, so scanning Ŝ (size l ≪ n)
// replaces scanning all n embeddings (Lemma 5.4/5.5).
package hull

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Options configures APPROXCH.
type Options struct {
	// Theta is the coverage parameter θ ∈ (0,1); FASTQUERY passes ε/12.
	Theta float64
	// Seed drives the random seeding directions.
	Seed int64
	// Directions is the number of random seeding directions; zero means
	// min(2d+8, 64). More directions trade seeding time for fewer (more
	// expensive) refinement rounds.
	Directions int
	// MaxVertices caps |Ŝ|; zero means no cap. When the cap binds, the
	// θ-coverage guarantee may be violated; Result.Certified reports it.
	MaxVertices int
	// MaxFWIters caps Frank–Wolfe iterations per distance query; zero means
	// ⌈1/θ²⌉ clamped to [16, 4096], matching the θ⁻² term of Lemma 5.3.
	MaxFWIters int
	// BatchInsert caps how many uncovered vertices a refinement round may
	// insert at once (mutually separated by > 2θ·D̂, so none could have
	// covered another). Zero means 16; 1 recovers the textbook one-at-a-time
	// greedy. Batching only ever grows Ŝ ⊆ S, never weakens coverage.
	BatchInsert int
	// SkipRefine disables stage 2 (pure directional sampling). Used by the
	// hull ablation bench; leaves Certified false.
	SkipRefine bool
}

// Result is the output of Approx.
type Result struct {
	// Vertices lists the indices (into the input point set) of Ŝ.
	Vertices []int
	// Diameter is the estimated point-set diameter D̂ ≤ D(S) used for the
	// coverage threshold (a lower bound makes the threshold conservative).
	Diameter float64
	// Certified reports whether every point was certified within θ·D̂ of
	// conv(Ŝ) when refinement finished (false if MaxVertices bound first or
	// SkipRefine was set).
	Certified bool
	// Rounds is the number of greedy refinement insertions performed.
	Rounds int
}

// Approx runs APPROXCH(S, θ) on pts, where pts[i] is the i-th point in R^d.
// All points must share one dimension d >= 1.
func Approx(pts [][]float64, opt Options) (*Result, error) {
	n := len(pts)
	if n == 0 {
		return &Result{Certified: true}, nil
	}
	d := len(pts[0])
	if d == 0 {
		return nil, fmt.Errorf("hull: zero-dimensional points")
	}
	if opt.Theta <= 0 || opt.Theta >= 1 {
		return nil, fmt.Errorf("hull: theta must be in (0,1), got %g", opt.Theta)
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("hull: point %d has dim %d, want %d", i, len(p), d)
		}
	}

	res := &Result{}
	in := make([]bool, n) // membership of Ŝ
	var hullIdx []int
	addVertex := func(i int) {
		if !in[i] {
			in[i] = true
			hullIdx = append(hullIdx, i)
		}
	}

	// --- Stage 0: approximate diameter by double sweep. ---
	a := argmaxDist(pts, pts[0])
	b := argmaxDist(pts, pts[a])
	res.Diameter = math.Sqrt(distSq(pts[a], pts[b]))
	addVertex(a)
	addVertex(b)
	if res.Diameter == 0 {
		// All points coincide; a single representative covers everything.
		res.Vertices = hullIdx[:1]
		res.Certified = true
		return res, nil
	}

	// --- Stage 1: directional extreme seeding. ---
	dirs := opt.Directions
	if dirs <= 0 {
		dirs = 2*d + 8
		if dirs > 64 {
			dirs = 64
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	dir := make([]float64, d)
	for t := 0; t < dirs; t++ {
		for j := range dir {
			dir[j] = rng.NormFloat64()
		}
		addVertex(argmaxDot(pts, dir))
		if opt.MaxVertices > 0 && len(hullIdx) >= opt.MaxVertices {
			break
		}
	}

	if opt.SkipRefine {
		res.Vertices = hullIdx
		return res, nil
	}

	// --- Stage 2: certified greedy refinement. ---
	threshold := opt.Theta * res.Diameter
	maxFW := opt.MaxFWIters
	if maxFW <= 0 {
		maxFW = int(math.Ceil(1 / (opt.Theta * opt.Theta)))
		if maxFW < 16 {
			maxFW = 16
		}
		if maxFW > 4096 {
			maxFW = 4096
		}
	}
	fw := newFW(d)
	covered := make([]bool, n)
	batchCap := opt.BatchInsert
	if batchCap <= 0 {
		batchCap = 16
	}
	type scored struct {
		idx int
		ub  float64
	}
	var uncovered []scored
	for opt.MaxVertices <= 0 || len(hullIdx) < opt.MaxVertices {
		uncovered = uncovered[:0]
		for i := 0; i < n; i++ {
			if covered[i] || in[i] {
				continue
			}
			ub, _ := fw.distToHull(pts, hullIdx, pts[i], threshold, maxFW)
			if ub <= threshold {
				covered[i] = true
				continue
			}
			uncovered = append(uncovered, scored{i, ub})
		}
		if len(uncovered) == 0 {
			res.Certified = true
			break
		}
		// Insert a spaced batch: points within 2θ·D̂ of an accepted one may
		// become covered by it, so only mutually distant candidates go in
		// together. Candidates are taken in decreasing distance-to-hull.
		sort.Slice(uncovered, func(a, b int) bool { return uncovered[a].ub > uncovered[b].ub })
		var accepted []int
		for _, cand := range uncovered {
			if len(accepted) >= batchCap {
				break
			}
			if opt.MaxVertices > 0 && len(hullIdx)+len(accepted) >= opt.MaxVertices {
				break
			}
			ok := true
			for _, a := range accepted {
				if distSq(pts[cand.idx], pts[a]) <= 4*threshold*threshold {
					ok = false
					break
				}
			}
			if ok {
				accepted = append(accepted, cand.idx)
			}
		}
		for _, a := range accepted {
			addVertex(a)
		}
		res.Rounds++
	}
	res.Vertices = hullIdx
	return res, nil
}

//recclint:hotpath
func argmaxDist(pts [][]float64, from []float64) int {
	best, arg := -1.0, 0
	for i, p := range pts {
		if d := distSq(p, from); d > best {
			best, arg = d, i
		}
	}
	return arg
}

//recclint:hotpath
func argmaxDot(pts [][]float64, dir []float64) int {
	best, arg := math.Inf(-1), 0
	for i, p := range pts {
		s := 0.0
		for j, v := range dir {
			s += v * p[j]
		}
		if s > best {
			best, arg = s, i
		}
	}
	return arg
}

//recclint:hotpath
func distSq(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// fw holds Frank–Wolfe scratch buffers.
type fw struct {
	y    []float64
	grad []float64
}

func newFW(d int) *fw {
	return &fw{y: make([]float64, d), grad: make([]float64, d)}
}

// distToHull estimates dist(p, conv({pts[i] : i ∈ hullIdx})) by Frank–Wolfe
// on f(y) = ‖y − p‖². It returns a certified upper bound (distance from p to
// the final feasible iterate) and a lower bound from the Frank–Wolfe duality
// gap. Early exit: as soon as the upper bound drops to earlyStop (the point
// is covered) or the lower bound exceeds earlyStop (certified uncovered; the
// upper bound then still orders candidates usefully).
func (f *fw) distToHull(pts [][]float64, hullIdx []int, p []float64, earlyStop float64, maxIters int) (ub, lb float64) {
	d := len(p)
	// Start at the hull vertex closest to p.
	bestD, bestI := math.Inf(1), hullIdx[0]
	for _, i := range hullIdx {
		if dd := distSq(pts[i], p); dd < bestD {
			bestD, bestI = dd, i
		}
	}
	copy(f.y, pts[bestI])
	fy := bestD
	ub = math.Sqrt(fy)
	if ub <= earlyStop {
		return ub, 0
	}
	for it := 0; it < maxIters; it++ {
		// grad = 2(y − p); linear minimization over vertices.
		for j := 0; j < d; j++ {
			f.grad[j] = f.y[j] - p[j]
		}
		bestDot, bestS := math.Inf(1), -1
		for _, i := range hullIdx {
			s := 0.0
			q := pts[i]
			for j := 0; j < d; j++ {
				s += f.grad[j] * q[j]
			}
			if s < bestDot {
				bestDot, bestS = s, i
			}
		}
		// Duality gap g = ⟨grad, y − s⟩ bounds f(y) − f*; with grad halved
		// above the true gap is 2·(⟨grad,y⟩ − bestDot).
		gy := 0.0
		for j := 0; j < d; j++ {
			gy += f.grad[j] * f.y[j]
		}
		gap := 2 * (gy - bestDot)
		if fLow := fy - gap; fLow > 0 {
			lb = math.Sqrt(fLow)
		} else {
			lb = 0
		}
		if lb > earlyStop || gap <= 1e-15 {
			return ub, lb
		}
		// Exact line search toward vertex bestS: γ* = ⟨p−y, s−y⟩/‖s−y‖².
		s := pts[bestS]
		num, den := 0.0, 0.0
		for j := 0; j < d; j++ {
			sy := s[j] - f.y[j]
			num += (p[j] - f.y[j]) * sy
			den += sy * sy
		}
		if den == 0 {
			return ub, lb
		}
		gamma := num / den
		if gamma <= 0 {
			return ub, lb // stationary: s does not improve
		}
		if gamma > 1 {
			gamma = 1
		}
		for j := 0; j < d; j++ {
			f.y[j] += gamma * (s[j] - f.y[j])
		}
		fy = distSq(f.y, p)
		if u := math.Sqrt(fy); u < ub {
			ub = u
		}
		if ub <= earlyStop {
			return ub, lb
		}
	}
	return ub, lb
}

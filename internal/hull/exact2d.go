package hull

import "sort"

// Exact2D computes the exact convex hull vertex indices of a 2-D point set
// with Andrew's monotone chain (O(n log n)). It exists as ground truth for
// validating Approx in low dimension: every certified APPROXCH output in 2-D
// must (a) contain only points of S and (b) cover the true hull vertices
// within θ·D. Collinear boundary points are excluded (strict turns only).
//
// Points must all have dimension ≥ 2; only the first two coordinates are
// used. Returns indices in counter-clockwise order starting from the
// lexicographically smallest point. Degenerate inputs (n < 3 or all
// collinear) return all distinct extreme indices.
func Exact2D(pts [][]float64) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa[0] < pb[0] {
			return true
		}
		if pb[0] < pa[0] {
			return false
		}
		return pa[1] < pb[1]
	})
	if n == 1 {
		return []int{idx[0]}
	}
	cross := func(o, a, b []float64) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	// Lower hull.
	var lower []int
	for _, i := range idx {
		for len(lower) >= 2 && cross(pts[lower[len(lower)-2]], pts[lower[len(lower)-1]], pts[i]) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, i)
	}
	// Upper hull.
	var upper []int
	for k := n - 1; k >= 0; k-- {
		i := idx[k]
		for len(upper) >= 2 && cross(pts[upper[len(upper)-2]], pts[upper[len(upper)-1]], pts[i]) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, i)
	}
	// Concatenate, dropping each chain's last point (it repeats).
	out := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(out) == 0 {
		return []int{idx[0]}
	}
	return out
}

package hull

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOptionsValidation(t *testing.T) {
	pts := [][]float64{{0, 0}}
	if _, err := Approx(pts, Options{Theta: 0}); err == nil {
		t.Fatal("theta 0 must fail")
	}
	if _, err := Approx(pts, Options{Theta: 1}); err == nil {
		t.Fatal("theta 1 must fail")
	}
	if _, err := Approx([][]float64{{}}, Options{Theta: 0.1}); err == nil {
		t.Fatal("zero-dim points must fail")
	}
	if _, err := Approx([][]float64{{1, 2}, {1}}, Options{Theta: 0.1}); err == nil {
		t.Fatal("ragged dims must fail")
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	res, err := Approx(nil, Options{Theta: 0.1})
	if err != nil || !res.Certified || len(res.Vertices) != 0 {
		t.Fatalf("empty: %+v err %v", res, err)
	}
	// All-coincident points: one representative, certified.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err = Approx(pts, Options{Theta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified || len(res.Vertices) != 1 {
		t.Fatalf("coincident: %+v", res)
	}
}

// In 2-D, a square with interior points: the four corners must be found and
// no interior point may appear in Ŝ (corners are the only extreme points
// far from the hull of the others).
func TestSquareCorners(t *testing.T) {
	pts := [][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, // corners
		{0.5, 0.5}, {0.3, 0.4}, {0.6, 0.2}, {0.5, 0.1}, // interior
	}
	res, err := Approx(pts, Options{Theta: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatal("should certify")
	}
	got := map[int]bool{}
	for _, v := range res.Vertices {
		got[v] = true
	}
	for corner := 0; corner < 4; corner++ {
		if !got[corner] {
			t.Fatalf("corner %d missing from hull %v", corner, res.Vertices)
		}
	}
	for interior := 4; interior < 8; interior++ {
		if got[interior] {
			t.Fatalf("interior point %d wrongly on hull (vertices %v)", interior, res.Vertices)
		}
	}
}

// Farthest-point recovery: for points on a circle, the farthest point from
// any query must be (nearly) recovered by scanning Ŝ only.
func TestFarthestViaHull(t *testing.T) {
	const n = 200
	pts := make([][]float64, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / n
		pts[i] = []float64{math.Cos(a), math.Sin(a)}
	}
	theta := 0.02
	res, err := Approx(pts, Options{Theta: theta, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatal("circle should certify")
	}
	if len(res.Vertices) == n {
		t.Fatal("hull should prune at this theta")
	}
	for q := 0; q < n; q += 17 {
		// Exact farthest distance.
		exact := 0.0
		for j := range pts {
			if d := math.Sqrt(distSq(pts[q], pts[j])); d > exact {
				exact = d
			}
		}
		best := 0.0
		for _, j := range res.Vertices {
			if d := math.Sqrt(distSq(pts[q], pts[j])); d > best {
				best = d
			}
		}
		// Lemma 5.4: d(s,u) ≥ (1 − θD/d(s,v))·d(s,v) ≥ exact − θ·D.
		if best < exact-theta*res.Diameter-1e-12 {
			t.Fatalf("query %d: hull farthest %g, exact %g", q, best, exact)
		}
		if best > exact+1e-12 {
			t.Fatalf("hull farthest exceeded exact: %g > %g", best, exact)
		}
	}
}

// Property: in random gaussian clouds, every point is within θ·D̂ of the
// certified hull (the Lemma 5.3 coverage property), verified by Frank–Wolfe
// against the returned vertex set.
func TestQuickCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 60, 5
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			pts[i] = p
		}
		theta := 0.1
		res, err := Approx(pts, Options{Theta: theta, Seed: seed})
		if err != nil || !res.Certified {
			return false
		}
		fw := newFW(d)
		for i := range pts {
			// Frank–Wolfe's upper bound converges slowly, so the sound
			// re-verification is through the certified *lower* bound: if the
			// true distance were above θ·D̂, the dual gap would eventually
			// certify lb > θ·D̂.
			ub, lb := fw.distToHull(pts, res.Vertices, pts[i], 0, 4000)
			if lb > theta*res.Diameter+1e-9 || ub < lb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxVerticesCap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	res, err := Approx(pts, Options{Theta: 0.01, Seed: 5, MaxVertices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) > 4 {
		t.Fatalf("cap violated: %d vertices", len(res.Vertices))
	}
}

func TestSkipRefine(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {0.2, 0.2}}
	res, err := Approx(pts, Options{Theta: 0.1, Seed: 2, SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatal("SkipRefine must not certify")
	}
	if len(res.Vertices) == 0 {
		t.Fatal("seeding should produce vertices")
	}
}

func TestFrankWolfeDistance(t *testing.T) {
	// Hull = segment [(0,0), (2,0)]; point (1,1) is at distance 1.
	pts := [][]float64{{0, 0}, {2, 0}, {1, 1}}
	fw := newFW(2)
	ub, lb := fw.distToHull(pts, []int{0, 1}, pts[2], 0, 500)
	if math.Abs(ub-1) > 1e-6 {
		t.Fatalf("FW ub=%g, want 1", ub)
	}
	if lb > ub+1e-12 {
		t.Fatalf("lb %g exceeds ub %g", lb, ub)
	}
	// Point inside the hull: distance 0.
	ub, _ = fw.distToHull(pts, []int{0, 1}, []float64{1, 0}, 0, 500)
	if ub > 1e-6 {
		t.Fatalf("interior point distance %g", ub)
	}
}

package hull

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExact2DSquare(t *testing.T) {
	pts := [][]float64{
		{0, 0}, {1, 0}, {1, 1}, {0, 1}, // corners
		{0.5, 0.5}, {0.25, 0.75}, // interior
		{0.5, 0}, // collinear boundary point (excluded: strict turns)
	}
	hull := Exact2D(pts)
	got := map[int]bool{}
	for _, i := range hull {
		got[i] = true
	}
	for corner := 0; corner < 4; corner++ {
		if !got[corner] {
			t.Fatalf("corner %d missing: %v", corner, hull)
		}
	}
	for _, inner := range []int{4, 5, 6} {
		if got[inner] {
			t.Fatalf("non-vertex %d included: %v", inner, hull)
		}
	}
}

func TestExact2DDegenerate(t *testing.T) {
	if h := Exact2D(nil); h != nil {
		t.Fatal("empty")
	}
	if h := Exact2D([][]float64{{3, 4}}); len(h) != 1 || h[0] != 0 {
		t.Fatalf("single point: %v", h)
	}
	// Two points.
	if h := Exact2D([][]float64{{0, 0}, {1, 1}}); len(h) != 2 {
		t.Fatalf("two points: %v", h)
	}
	// Collinear points: only the two extremes survive strict turns.
	h := Exact2D([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 {
		t.Fatalf("collinear: %v", h)
	}
}

// Property: in 2-D, every vertex Approx returns is a point of S, and the
// exact hull vertices of the Approx output cover the exact hull of S within
// θ·D (the Lemma 5.3 coverage property checked against exact geometry).
func TestQuickApproxVsExact2D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + int(uint(seed)%40)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		theta := 0.05
		res, err := Approx(pts, Options{Theta: theta, Seed: seed})
		if err != nil || !res.Certified {
			return false
		}
		// Every exact hull vertex must be within θ·D of conv(Ŝ): verify by
		// exact point-to-polygon distance via Frank–Wolfe on the small set.
		exact := Exact2D(pts)
		fw := newFW(2)
		for _, v := range exact {
			ub, _ := fw.distToHull(pts, res.Vertices, pts[v], theta*res.Diameter, 4000)
			if ub > theta*res.Diameter+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// In 2-D with a generous hull budget, Approx typically recovers the exact
// vertex set of a clean convex polygon.
func TestApproxRecoversPolygonVertices(t *testing.T) {
	const k = 9
	pts := make([][]float64, 0, k+20)
	for i := 0; i < k; i++ {
		a := 2 * math.Pi * float64(i) / k
		pts = append(pts, []float64{2 * math.Cos(a), 2 * math.Sin(a)})
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		r := rng.Float64() * 0.8
		a := rng.Float64() * 2 * math.Pi
		pts = append(pts, []float64{r * math.Cos(a), r * math.Sin(a)})
	}
	res, err := Approx(pts, Options{Theta: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, v := range res.Vertices {
		got[v] = true
	}
	for i := 0; i < k; i++ {
		if !got[i] {
			t.Fatalf("polygon vertex %d missing from %v", i, res.Vertices)
		}
	}
	for i := k; i < len(pts); i++ {
		if got[i] {
			t.Fatalf("interior point %d on hull", i)
		}
	}
	exact := Exact2D(pts)
	if len(exact) != k {
		t.Fatalf("exact hull has %d vertices, want %d", len(exact), k)
	}
}

func TestBatchInsertOne(t *testing.T) {
	// BatchInsert=1 recovers the textbook one-at-a-time greedy and must
	// still certify.
	rng := rand.New(rand.NewSource(9))
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	res, err := Approx(pts, Options{Theta: 0.1, Seed: 9, BatchInsert: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatal("one-at-a-time refinement must certify")
	}
}

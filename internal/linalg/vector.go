package linalg

import "math"

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) { copy(dst, src) }

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// ProjectOutOnes removes the component of x along the all-ones vector:
// x ← x − mean(x)·1. Laplacian systems are solvable only for right-hand
// sides orthogonal to 1, and solutions are defined up to a 1-shift; fixing
// mean zero selects the pseudoinverse solution.
func ProjectOutOnes(x []float64) {
	if len(x) == 0 {
		return
	}
	mean := Sum(x) / float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

// DistSq returns the squared Euclidean distance between x and y.
func DistSq(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	d := NewDense(3)
	d.Set(0, 1, 2)
	d.Add(0, 1, 3)
	if d.At(0, 1) != 5 {
		t.Fatalf("At(0,1)=%g", d.At(0, 1))
	}
	c := d.Clone()
	c.Set(0, 1, 9)
	if d.At(0, 1) != 5 {
		t.Fatal("clone aliased")
	}
	row := d.Row(0)
	if row[1] != 5 {
		t.Fatal("Row view wrong")
	}
}

func TestMulVec(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 3)
	d.Set(1, 1, 4)
	y := make([]float64, 2)
	d.MulVec([]float64{1, 1}, y)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("y=%v", y)
	}
}

func TestInvertIdentity(t *testing.T) {
	d := NewDense(4)
	for i := 0; i < 4; i++ {
		d.Set(i, i, 2)
	}
	if err := d.Invert(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !almostEq(d.At(i, i), 0.5, 1e-14) {
			t.Fatalf("inverse diag %g", d.At(i, i))
		}
	}
}

func TestInvertSingular(t *testing.T) {
	d := NewDense(2) // zero matrix
	if err := d.Invert(); err == nil {
		t.Fatal("zero matrix should be singular")
	}
}

// Property: for random well-conditioned matrices, A·A⁻¹ ≈ I.
func TestQuickInvertRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(seed%5+5)%5
		a := NewDense(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance → invertible
		}
		inv := a.Clone()
		if err := inv.Invert(); err != nil {
			return false
		}
		// Check A·inv ≈ I.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a.At(i, k) * inv.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(s, want, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix A = MᵀM + I.
	rng := rand.New(rand.NewSource(3))
	n := 6
	m := NewDense(n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m.At(k, i) * m.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, 1)
	}
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	SolveCholesky(l, b, x)
	ax := make([]float64, n)
	a.MulVec(x, ax)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-9) {
			t.Fatalf("Ax[%d]=%g, b=%g", i, ax[i], b[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	if _, err := a.Cholesky(); err == nil {
		t.Fatal("negative-definite matrix should fail Cholesky")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("norm %g", Norm2(x))
	}
	if Dot(x, []float64{1, 2}) != 11 {
		t.Fatal("dot")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("axpy %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Fatal("scale")
	}
	z := []float64{1, 2, 3}
	ProjectOutOnes(z)
	if !almostEq(Sum(z), 0, 1e-15) {
		t.Fatalf("projection sum %g", Sum(z))
	}
	if DistSq([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("distsq")
	}
	ProjectOutOnes(nil) // must not panic
}

package linalg

import (
	"fmt"

	"resistecc/internal/graph"
)

// LaplacianDense materializes the dense Laplacian L = D − A of g.
func LaplacianDense(g *graph.Graph) *Dense {
	n := g.N()
	l := NewDense(n)
	for u := 0; u < n; u++ {
		l.Set(u, u, float64(g.Degree(u)))
		for _, v := range g.Neighbors(u) {
			l.Set(u, int(v), -1)
		}
	}
	return l
}

// Pseudoinverse computes the Moore–Penrose pseudoinverse of the Laplacian of
// a connected graph using the identity of §III-B:
//
//	L† = (L + J/n)⁻¹ − J/n,
//
// where J is the all-ones matrix. O(n³) time, O(n²) memory — this is the
// preprocessing step of EXACTQUERY (Algorithm 1, line 1).
func Pseudoinverse(g *graph.Graph) (*Dense, error) {
	n := g.N()
	if n == 0 {
		return NewDense(0), nil
	}
	if !g.Connected() {
		return nil, fmt.Errorf("linalg: pseudoinverse requires a connected graph: %w", graph.ErrDisconnected)
	}
	l := LaplacianDense(g)
	inv := 1 / float64(n)
	for i := range l.Data {
		l.Data[i] += inv
	}
	if err := l.Invert(); err != nil {
		return nil, fmt.Errorf("linalg: inverting L + J/n: %w", err)
	}
	for i := range l.Data {
		l.Data[i] -= inv
	}
	return l, nil
}

// Resistance returns the effective resistance r(u,v) read off a precomputed
// pseudoinverse: r(u,v) = L†_uu + L†_vv − 2 L†_uv (Eq. 1).
func Resistance(lp *Dense, u, v int) float64 {
	return lp.At(u, u) + lp.At(v, v) - 2*lp.At(u, v)
}

// AddEdgePinv updates the pseudoinverse in place for the insertion of edge
// (u,v) via the Sherman–Morrison formula. With b = e_u − e_v and w = L†b,
//
//	(L + bbᵀ)† = L† − w wᵀ / (1 + bᵀ L† b),
//
// valid because b ⊥ 1 keeps the null space unchanged. O(n²) per edge — this
// is what makes the SIMPLE greedy (Algorithm 4) and exhaustive OPT baselines
// run in practice (see DESIGN.md ablation 4).
//
// The denominator 1 + r(u,v) is always >= 1, so the update is
// unconditionally stable. Inserting an edge that is already present is a
// caller bug but remains mathematically well-defined (it models a parallel
// unit resistor).
func AddEdgePinv(lp *Dense, u, v int) {
	n := lp.N
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = lp.At(i, u) - lp.At(i, v)
	}
	denom := 1 + (w[u] - w[v]) // 1 + bᵀL†b = 1 + r(u,v)
	scale := 1 / denom
	for i := 0; i < n; i++ {
		wi := w[i] * scale
		if wi == 0 {
			continue
		}
		row := lp.Row(i)
		for j := 0; j < n; j++ {
			row[j] -= wi * w[j]
		}
	}
}

// ResistanceAfterEdge returns r(s,t) in the graph G ∪ {(u,v)} without
// mutating lp, again by Sherman–Morrison:
//
//	r'(s,t) = r(s,t) − ( (L†b)_s − (L†b)_t )² / (1 + r(u,v)).
//
// O(1) given lp — the workhorse of candidate scoring in exact greedies.
func ResistanceAfterEdge(lp *Dense, s, t, u, v int) float64 {
	r := Resistance(lp, s, t)
	ws := lp.At(s, u) - lp.At(s, v)
	wt := lp.At(t, u) - lp.At(t, v)
	denom := 1 + Resistance(lp, u, v)
	diff := ws - wt
	return r - diff*diff/denom
}

// EccentricityFromPinv returns c(s) = max_j r(s,j) and the farthest node,
// the query step of EXACTQUERY (Algorithm 1, line 3). O(n).
func EccentricityFromPinv(lp *Dense, s int) (c float64, farthest int) {
	lss := lp.At(s, s)
	row := lp.Row(s)
	farthest = s
	for j := 0; j < lp.N; j++ {
		if j == s {
			continue
		}
		r := lss + lp.At(j, j) - 2*row[j]
		if r > c {
			c, farthest = r, j
		}
	}
	return c, farthest
}

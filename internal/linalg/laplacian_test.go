package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
)

func TestLaplacianDense(t *testing.T) {
	g := graph.Star(4)
	l := LaplacianDense(g)
	if l.At(0, 0) != 3 || l.At(1, 1) != 1 || l.At(0, 1) != -1 || l.At(1, 2) != 0 {
		t.Fatalf("Laplacian wrong: %+v", l)
	}
	// Row sums zero.
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 4; j++ {
			s += l.At(i, j)
		}
		if s != 0 {
			t.Fatalf("row %d sum %g", i, s)
		}
	}
}

func TestPseudoinverseProperties(t *testing.T) {
	g := graph.Cycle(7)
	lp, err := Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	l := LaplacianDense(g)
	n := g.N()
	// L·L†·L = L (Moore–Penrose), checked entrywise through products.
	tmp := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += l.At(i, k) * lp.At(k, j)
			}
			tmp.Set(i, j, s)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += tmp.At(i, k) * l.At(k, j)
			}
			if !almostEq(s, l.At(i, j), 1e-9) {
				t.Fatalf("LL†L != L at (%d,%d): %g vs %g", i, j, s, l.At(i, j))
			}
		}
	}
	// L† rows sum to zero (null space of L).
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += lp.At(i, j)
		}
		if !almostEq(s, 0, 1e-10) {
			t.Fatalf("L† row %d sum %g", i, s)
		}
	}
}

func TestPseudoinverseDisconnected(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Pseudoinverse(g); err == nil {
		t.Fatal("disconnected graph must be rejected")
	}
}

func TestResistanceClosedForms(t *testing.T) {
	// Path: r(i,j) = |i−j|.
	p := graph.Path(6)
	lp, err := Pseudoinverse(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := math.Abs(float64(i - j))
			if !almostEq(Resistance(lp, i, j), want, 1e-9) {
				t.Fatalf("path r(%d,%d)=%g, want %g", i, j, Resistance(lp, i, j), want)
			}
		}
	}
	// Cycle of length L: r(u,v) = k(L−k)/L for hop distance k.
	const L = 9
	c := graph.Cycle(L)
	lpc, err := Pseudoinverse(c)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < L; k++ {
		want := float64(k*(L-k)) / L
		if !almostEq(Resistance(lpc, 0, k), want, 1e-9) {
			t.Fatalf("cycle r(0,%d)=%g, want %g", k, Resistance(lpc, 0, k), want)
		}
	}
	// Complete graph: r = 2/n for all pairs.
	kn := graph.Complete(8)
	lpk, err := Pseudoinverse(kn)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Resistance(lpk, 2, 5), 0.25, 1e-9) {
		t.Fatalf("K8 r=%g, want 0.25", Resistance(lpk, 2, 5))
	}
	// Star: hub-leaf 1, leaf-leaf 2.
	st := graph.Star(10)
	lps, err := Pseudoinverse(st)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Resistance(lps, 0, 3), 1, 1e-9) || !almostEq(Resistance(lps, 2, 7), 2, 1e-9) {
		t.Fatal("star resistances wrong")
	}
}

// Foster's theorem: Σ_{(u,v) ∈ E} r(u,v) = n − 1 for any connected graph.
func TestQuickFoster(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.BarabasiAlbert(40, 2, seed)
		lp, err := Pseudoinverse(g)
		if err != nil {
			return false
		}
		sum := 0.0
		g.EachEdge(func(u, v int) bool {
			sum += Resistance(lp, u, v)
			return true
		})
		return almostEq(sum, float64(g.N()-1), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Resistance distance is a metric: triangle inequality on random graphs.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64, a, b, c uint8) bool {
		g := graph.BarabasiAlbert(25, 2, seed)
		lp, err := Pseudoinverse(g)
		if err != nil {
			return false
		}
		x, y, z := int(a)%25, int(b)%25, int(c)%25
		rxy := Resistance(lp, x, y)
		ryz := Resistance(lp, y, z)
		rxz := Resistance(lp, x, z)
		return rxz <= rxy+ryz+1e-9 && rxy >= -1e-12 && almostEq(rxy, Resistance(lp, y, x), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePinvMatchesRecompute(t *testing.T) {
	g := graph.Path(8)
	lp, err := Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	AddEdgePinv(lp, 0, 7) // close the cycle
	cyc := graph.Cycle(8)
	want, err := Pseudoinverse(cyc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if !almostEq(lp.At(i, j), want.At(i, j), 1e-9) {
				t.Fatalf("updated L†(%d,%d)=%g, want %g", i, j, lp.At(i, j), want.At(i, j))
			}
		}
	}
}

// Property: Sherman–Morrison update equals recomputation for random edges.
func TestQuickShermanMorrison(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(20, 2, seed)
		u, v := int(a)%20, int(b)%20
		if u == v || g.HasEdge(u, v) {
			return true
		}
		lp, err := Pseudoinverse(g)
		if err != nil {
			return false
		}
		AddEdgePinv(lp, u, v)
		if err := g.AddEdge(u, v); err != nil {
			return false
		}
		want, err := Pseudoinverse(g)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			for j := 0; j < 20; j++ {
				if !almostEq(lp.At(i, j), want.At(i, j), 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResistanceAfterEdge(t *testing.T) {
	g := graph.Path(6)
	lp, err := Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3: adding (0,5) to the 6-path gives the 6-cycle: r(2,0)=2·4/6.
	got := ResistanceAfterEdge(lp, 2, 0, 0, 5)
	if !almostEq(got, 8.0/6, 1e-9) {
		t.Fatalf("r'(2,0)=%g, want %g", got, 8.0/6)
	}
	// Consistency against a full update.
	AddEdgePinv(lp, 0, 5)
	if !almostEq(got, Resistance(lp, 2, 0), 1e-9) {
		t.Fatal("ResistanceAfterEdge inconsistent with AddEdgePinv")
	}
}

// Rayleigh monotonicity: adding an edge never increases any resistance.
func TestQuickRayleighMonotonicity(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(18, 2, seed)
		u, v := int(a)%18, int(b)%18
		if u == v || g.HasEdge(u, v) {
			return true
		}
		lp, err := Pseudoinverse(g)
		if err != nil {
			return false
		}
		before := NewDense(18)
		for i := 0; i < 18; i++ {
			for j := 0; j < 18; j++ {
				before.Set(i, j, Resistance(lp, i, j))
			}
		}
		AddEdgePinv(lp, u, v)
		for i := 0; i < 18; i++ {
			for j := 0; j < 18; j++ {
				if Resistance(lp, i, j) > before.At(i, j)+1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEccentricityFromPinv(t *testing.T) {
	// Figure 1(a): path with 2n nodes (0-indexed node i has
	// c = max(i, 2n−1−i)).
	const twoN = 8
	g := graph.Path(twoN)
	lp, err := Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < twoN; i++ {
		c, far := EccentricityFromPinv(lp, i)
		want := math.Max(float64(i), float64(twoN-1-i))
		if !almostEq(c, want, 1e-9) {
			t.Fatalf("path c(%d)=%g, want %g", i, c, want)
		}
		if far != 0 && far != twoN-1 {
			t.Fatalf("farthest from %d should be an endpoint, got %d", i, far)
		}
	}
}

// Package linalg provides the small dense linear-algebra substrate needed by
// the exact algorithms of the paper: dense symmetric matrices, Gauss–Jordan
// inversion, Cholesky factorization, the Laplacian pseudoinverse
// L† = (L + J/n)⁻¹ − J/n (§III-B), and Sherman–Morrison rank-1 updates of L†
// under edge insertion (used to make the SIMPLE greedy and the exhaustive
// OPT baselines tractable).
//
// Everything here is O(n²) memory and O(n³) time by design — it is the
// paper's EXACTQUERY substrate and the ground truth against which the
// near-linear algorithms are validated.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a dense row-major n×n real matrix.
type Dense struct {
	N    int
	Data []float64 // row-major, len N*N
}

// NewDense allocates a zero n×n matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.N+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.N+j] = v }

// Add increments element (i, j) by v.
func (d *Dense) Add(i, j int, v float64) { d.Data[i*d.N+j] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{N: d.N, Data: append([]float64(nil), d.Data...)}
}

// Row returns row i as a shared slice.
func (d *Dense) Row(i int) []float64 { return d.Data[i*d.N : (i+1)*d.N] }

// MulVec computes y = D·x.
func (d *Dense) MulVec(x, y []float64) {
	for i := 0; i < d.N; i++ {
		row := d.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// ErrSingular reports a numerically singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Invert replaces d with its inverse via Gauss–Jordan elimination with
// partial pivoting. O(n³).
func (d *Dense) Invert() error {
	n := d.N
	// Augment with identity, eliminate in place.
	inv := NewDense(n)
	for i := 0; i < n; i++ {
		inv.Set(i, i, 1)
	}
	a := d.Data
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-14 {
			return fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		if pivot != col {
			swapRows(a, n, pivot, col)
			swapRows(inv.Data, n, pivot, col)
		}
		p := a[col*n+col]
		invP := 1 / p
		for j := 0; j < n; j++ {
			a[col*n+j] *= invP
			inv.Data[col*n+j] *= invP
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
				inv.Data[r*n+j] -= f * inv.Data[col*n+j]
			}
		}
	}
	copy(d.Data, inv.Data)
	return nil
}

func swapRows(a []float64, n, r1, r2 int) {
	row1 := a[r1*n : (r1+1)*n]
	row2 := a[r2*n : (r2+1)*n]
	for j := range row1 {
		row1[j], row2[j] = row2[j], row1[j]
	}
}

// Cholesky computes the lower-triangular factor L with d = L·Lᵀ, for
// symmetric positive-definite d. Returns ErrSingular when a pivot is
// non-positive.
func (d *Dense) Cholesky() (*Dense, error) {
	n := d.N
	l := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := d.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("%w: non-positive pivot at %d (%g)", ErrSingular, i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves (L·Lᵀ)x = b given the lower factor L, writing x.
func SolveCholesky(l *Dense, b, x []float64) {
	n := l.N
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

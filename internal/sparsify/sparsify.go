// Package sparsify implements Spielman–Srivastava spectral sparsification by
// effective resistances (the paper's reference [1], and its conclusion's
// "graph sparsification methods could enhance the speed of our algorithms"
// future-work pointer): sample q edges with probabilities proportional to
// their effective resistances and reweight, producing a weighted graph H
// with
//
//	(1−ε)·xᵀL_G x ≤ xᵀL_H x ≤ (1+ε)·xᵀL_G x   for all x, w.h.p.,
//
// when q = O(n log n / ε²). Spectral closeness preserves all effective
// resistances (and hence resistance eccentricities) within (1±ε), so
// downstream solves can run on H's ~q edges instead of G's m.
package sparsify

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"resistecc/internal/graph"
	"resistecc/internal/sketch"
	"resistecc/internal/solver"
)

// Options configures Sparsify.
type Options struct {
	// Epsilon is the spectral-approximation target ∈ (0,1).
	Epsilon float64
	// Samples overrides the number q of edge samples; zero uses
	// ⌈9 n ln n / ε²⌉ (the SS bound with a practical constant).
	Samples int
	// Seed drives both the resistance sketch and the sampling.
	Seed int64
	// Sketch configures the effective-resistance estimates; zero Dim uses
	// 64 (leverage scores only steer sampling, so low precision suffices —
	// oversampling absorbs the estimation error).
	Sketch sketch.Options
}

// Result is the sparsifier output.
type Result struct {
	// H is the weighted sparsifier.
	H *solver.WeightedCSR
	// SampledEdges is the number of distinct edges in H.
	SampledEdges int
	// Samples is the number q of draws taken.
	Samples int
}

// Sparsify builds a spectral sparsifier of the connected unweighted graph g.
// ctx cancels the leverage-score sketch build.
func Sparsify(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if opt.Epsilon <= 0 || opt.Epsilon >= 1 {
		return nil, fmt.Errorf("sparsify: epsilon must be in (0,1), got %g", opt.Epsilon)
	}
	n, m := g.N(), g.M()
	if n == 0 {
		return nil, fmt.Errorf("sparsify: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("sparsify: graph must be connected")
	}
	q := opt.Samples
	if q <= 0 {
		q = int(math.Ceil(9 * float64(n) * math.Log(float64(n)) / (opt.Epsilon * opt.Epsilon)))
	}

	// Effective-resistance (leverage-score) estimates from the JL sketch.
	skOpt := opt.Sketch
	if skOpt.Epsilon <= 0 {
		skOpt.Epsilon = 0.5
	}
	if skOpt.Dim <= 0 {
		skOpt.Dim = 64
	}
	if skOpt.Seed == 0 {
		skOpt.Seed = opt.Seed
	}
	csr := g.ToCSR()
	sk, err := sketch.NewContext(ctx, csr, skOpt)
	if err != nil {
		return nil, fmt.Errorf("sparsify: resistance sketch: %w", err)
	}
	edges := csr.EdgeOrder()
	probs := make([]float64, m)
	total := 0.0
	for i, e := range edges {
		// Leverage score of an unweighted edge is r(e) ∈ (0,1]; clamp the
		// sketch noise into that range.
		r := sk.Resistance(e.U, e.V)
		if r < 1e-9 {
			r = 1e-9
		}
		if r > 1 {
			r = 1
		}
		probs[i] = r
		total += r
	}
	// Cumulative distribution for O(log m) sampling.
	cum := make([]float64, m)
	acc := 0.0
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}

	rng := rand.New(rand.NewSource(opt.Seed + 12345))
	weights := make(map[int]float64, q)
	for s := 0; s < q; s++ {
		x := rng.Float64() * total
		// Binary search the cumulative array.
		lo, hi := 0, m-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		p := probs[lo] / total
		weights[lo] += 1 / (float64(q) * p)
	}
	outEdges := make([]graph.Edge, 0, len(weights))
	outW := make([]float64, 0, len(weights))
	for i, w := range weights {
		outEdges = append(outEdges, edges[i])
		outW = append(outW, w)
	}
	h, err := solver.NewWeightedCSR(n, outEdges, outW)
	if err != nil {
		return nil, fmt.Errorf("sparsify: assembling H: %w", err)
	}
	return &Result{H: h, SampledEdges: h.M, Samples: q}, nil
}

// QuadraticForm computes xᵀL_H x for diagnostics and tests.
func QuadraticForm(h *solver.WeightedCSR, x []float64) float64 {
	edges, ws := h.Edges()
	s := 0.0
	for i, e := range edges {
		d := x[e.U] - x[e.V]
		s += ws[i] * d * d
	}
	return s
}

// QuadraticFormUnweighted computes xᵀL_G x for the original graph.
func QuadraticFormUnweighted(g *graph.Graph, x []float64) float64 {
	s := 0.0
	g.EachEdge(func(u, v int) bool {
		d := x[u] - x[v]
		s += d * d
		return true
	})
	return s
}

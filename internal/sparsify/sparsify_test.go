package sparsify

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/solver"
)

func TestOptionsValidation(t *testing.T) {
	g := graph.Complete(5)
	if _, err := Sparsify(context.Background(), g, Options{Epsilon: 0}); err == nil {
		t.Fatal("epsilon 0")
	}
	if _, err := Sparsify(context.Background(), graph.New(0), Options{Epsilon: 0.5}); err == nil {
		t.Fatal("empty graph")
	}
	d := graph.New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Sparsify(context.Background(), d, Options{Epsilon: 0.5}); err == nil {
		t.Fatal("disconnected graph")
	}
}

func TestSparsifierReducesEdges(t *testing.T) {
	// A dense graph: K_80 has 3160 edges; the sparsifier keeps far fewer
	// distinct ones at ε = 0.5 with a modest sample budget.
	g := graph.Complete(80)
	res, err := Sparsify(context.Background(), g, Options{Epsilon: 0.5, Samples: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledEdges >= g.M() {
		t.Fatalf("no sparsification: %d of %d edges", res.SampledEdges, g.M())
	}
	if res.Samples != 4000 {
		t.Fatalf("samples %d", res.Samples)
	}
}

func TestQuadraticFormPreserved(t *testing.T) {
	g := graph.BarabasiAlbert(150, 6, 3)
	res, err := Sparsify(context.Background(), g, Options{Epsilon: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		qg := QuadraticFormUnweighted(g, x)
		qh := QuadraticForm(res.H, x)
		if qh < (1-0.45)*qg || qh > (1+0.45)*qg {
			t.Fatalf("trial %d: xᵀL_Hx=%g vs xᵀL_Gx=%g", trial, qh, qg)
		}
	}
}

func TestSparsifierPreservesResistances(t *testing.T) {
	g := graph.BarabasiAlbert(120, 5, 9)
	res, err := Sparsify(context.Background(), g, Options{Epsilon: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := solver.NewWeightedLap(res.H, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 60}, {10, 110}, {3, 77}, {50, 51}} {
		want := linalg.Resistance(lp, pair[0], pair[1])
		got, err := wl.Resistance(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if got < (1-0.45)*want || got > (1+0.45)*want {
			t.Fatalf("r(%d,%d): sparsifier %g vs exact %g", pair[0], pair[1], got, want)
		}
	}
}

func TestWeightedCSRAssembly(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}}
	ws := []float64{1, 2, 3}
	h, err := solver.NewWeightedCSR(3, edges, ws)
	if err != nil {
		t.Fatal(err)
	}
	if h.M != 2 {
		t.Fatalf("duplicate edges should merge: M=%d", h.M)
	}
	es, wout := h.Edges()
	if len(es) != 2 || es[0] != (graph.Edge{U: 0, V: 1}) || wout[0] != 3 {
		t.Fatalf("edges %v weights %v", es, wout)
	}
	// Validation errors.
	if _, err := solver.NewWeightedCSR(3, []graph.Edge{{U: 0, V: 0}}, []float64{1}); err == nil {
		t.Fatal("self loop")
	}
	if _, err := solver.NewWeightedCSR(3, []graph.Edge{{U: 0, V: 9}}, []float64{1}); err == nil {
		t.Fatal("range")
	}
	if _, err := solver.NewWeightedCSR(3, []graph.Edge{{U: 0, V: 1}}, []float64{-1}); err == nil {
		t.Fatal("negative weight")
	}
	if _, err := solver.NewWeightedCSR(3, []graph.Edge{{U: 0, V: 1}}, nil); err == nil {
		t.Fatal("length mismatch")
	}
}

func TestWeightedLapMatchesUnweighted(t *testing.T) {
	// With all weights 1 the weighted solver must agree with the dense
	// pseudoinverse of the unweighted graph.
	g := graph.Cycle(10)
	edges := g.Edges()
	ws := make([]float64, len(edges))
	for i := range ws {
		ws[i] = 1
	}
	h, err := solver.NewWeightedCSR(10, edges, ws)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := solver.NewWeightedLap(h, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wl.Resistance(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.Resistance(lp, 0, 5)
	if math.Abs(got-want) > 1e-7 {
		t.Fatalf("weighted %g vs unweighted %g", got, want)
	}
}

func TestWeightedLapSeriesParallel(t *testing.T) {
	// Two parallel weighted paths between 0 and 3:
	// 0-1-3 with weights (2, 2) → branch resistance 1/2+1/2 = 1
	// 0-2-3 with weights (1, 1) → branch resistance 2
	// Parallel: (1·2)/(1+2) = 2/3.
	h, err := solver.NewWeightedCSR(4,
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 3}, {U: 0, V: 2}, {U: 2, V: 3}},
		[]float64{2, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := solver.NewWeightedLap(h, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := wl.Resistance(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-8 {
		t.Fatalf("series-parallel r=%g, want 2/3", got)
	}
}

func TestWeightedLapIsolated(t *testing.T) {
	h, err := solver.NewWeightedCSR(3, []graph.Edge{{U: 0, V: 1}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.NewWeightedLap(h, solver.Options{}); err == nil {
		t.Fatal("isolated node must be rejected")
	}
}

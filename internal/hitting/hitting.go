// Package hitting computes expected hitting times of the simple random walk
// — the directed half of the commute-time identity C(u,v) = H(u,v) + H(v,u)
// = 2m·r(u,v) that underlies every resistance quantity in this library.
//
// For a fixed target v, the hitting times h(u) = H(u,v) satisfy the
// Laplacian system
//
//	(L h)(u) = d_u  for u ≠ v,   h(v) = 0,
//
// equivalently L h = d − 2m·e_v up to the null-space shift fixed by
// h(v) = 0 (the right-hand side sums to zero, so the system is consistent).
// One Laplacian solve therefore yields hitting times from *all* sources to
// one target — Õ(m) per target with the CG substrate.
package hitting

import (
	"fmt"
	"math/rand"

	"resistecc/internal/graph"
	"resistecc/internal/solver"
)

// ToTarget returns h[u] = H(u, target) for every source u (h[target] = 0),
// with one Laplacian solve.
func ToTarget(g *graph.Graph, target int, opt solver.Options) ([]float64, error) {
	n := g.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("hitting: target %d out of range (n=%d)", target, n)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("hitting: graph must be connected")
	}
	if n == 1 {
		return []float64{0}, nil
	}
	lap, err := solver.NewLap(g.ToCSR(), opt)
	if err != nil {
		return nil, err
	}
	b := make([]float64, n)
	for u := 0; u < n; u++ {
		b[u] = float64(g.Degree(u))
	}
	b[target] -= 2 * float64(g.M())
	h := make([]float64, n)
	if _, err := lap.Solve(b, h); err != nil {
		return nil, fmt.Errorf("hitting: solve for target %d: %w", target, err)
	}
	// Fix the null-space shift: h(target) = 0.
	shift := h[target]
	for i := range h {
		h[i] -= shift
		if h[i] < 0 {
			h[i] = 0 // round-off guard; hitting times are non-negative
		}
	}
	return h, nil
}

// Between returns H(u, v) with one solve.
func Between(g *graph.Graph, u, v int, opt solver.Options) (float64, error) {
	if u < 0 || u >= g.N() {
		return 0, fmt.Errorf("hitting: source %d out of range", u)
	}
	h, err := ToTarget(g, v, opt)
	if err != nil {
		return 0, err
	}
	return h[u], nil
}

// MonteCarlo estimates H(u, v) by direct walk simulation (`walks` trials),
// the implementation-independent cross-check.
func MonteCarlo(g *graph.Graph, u, v, walks int, seed int64) (float64, error) {
	if !g.Connected() {
		return 0, fmt.Errorf("hitting: graph must be connected")
	}
	n := g.N()
	if u < 0 || v < 0 || u >= n || v >= n {
		return 0, fmt.Errorf("hitting: nodes out of range")
	}
	if walks <= 0 {
		return 0, fmt.Errorf("hitting: need a positive walk count")
	}
	if u == v {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for w := 0; w < walks; w++ {
		cur, steps := u, 0
		for cur != v {
			nbrs := g.Neighbors(cur)
			cur = int(nbrs[rng.Intn(len(nbrs))])
			steps++
		}
		total += float64(steps)
	}
	return total / float64(walks), nil
}

package hitting

import (
	"math"
	"testing"
	"testing/quick"

	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/solver"
)

func TestPathEndpointHitting(t *testing.T) {
	// On the path 0-…-(n−1), H(0, n−1) = (n−1)².
	for _, n := range []int{2, 5, 12} {
		g := graph.Path(n)
		h, err := Between(g, 0, n-1, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := float64((n - 1) * (n - 1))
		if math.Abs(h-want) > 1e-6*want+1e-8 {
			t.Fatalf("H(0,%d) on P%d = %g, want %g", n-1, n, h, want)
		}
	}
}

func TestCompleteGraphHitting(t *testing.T) {
	// On K_n, H(u,v) = n−1 for u ≠ v.
	g := graph.Complete(9)
	h, err := ToTarget(g, 3, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 9; u++ {
		want := 8.0
		if u == 3 {
			want = 0
		}
		if math.Abs(h[u]-want) > 1e-7 {
			t.Fatalf("H(%d,3)=%g, want %g", u, h[u], want)
		}
	}
}

func TestStarHitting(t *testing.T) {
	// Star with hub 0, n−1 leaves: H(leaf, hub) = 1 + (stays 0 after...)
	// From a leaf, one step reaches the hub: H(leaf, hub) = 1.
	// H(hub, leaf) = 2(n−1) − 1.
	n := 8
	g := graph.Star(n)
	toHub, err := ToTarget(g, 0, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for leaf := 1; leaf < n; leaf++ {
		if math.Abs(toHub[leaf]-1) > 1e-8 {
			t.Fatalf("H(leaf,hub)=%g, want 1", toHub[leaf])
		}
	}
	toLeaf, err := ToTarget(g, 1, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(2*(n-1) - 1)
	if math.Abs(toLeaf[0]-want) > 1e-7 {
		t.Fatalf("H(hub,leaf)=%g, want %g", toLeaf[0], want)
	}
}

// The commute identity H(u,v) + H(v,u) = 2m·r(u,v) on random graphs.
func TestQuickCommuteIdentity(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := graph.BarabasiAlbert(30, 2, seed)
		u, v := int(a)%30, int(b)%30
		if u == v {
			return true
		}
		huv, err := Between(g, u, v, solver.Options{})
		if err != nil {
			return false
		}
		hvu, err := Between(g, v, u, solver.Options{})
		if err != nil {
			return false
		}
		lp, err := linalg.Pseudoinverse(g)
		if err != nil {
			return false
		}
		want := 2 * float64(g.M()) * linalg.Resistance(lp, u, v)
		return math.Abs(huv+hvu-want) < 1e-5*want+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloAgreesWithSolve(t *testing.T) {
	g := graph.Lollipop(5, 3)
	exact, err := Between(g, 7, 0, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(g, 7, 0, 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(mc-exact) / exact; rel > 0.1 {
		t.Fatalf("MC %g vs exact %g (rel %.3f)", mc, exact, rel)
	}
}

func TestErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := ToTarget(g, 9, solver.Options{}); err == nil {
		t.Fatal("target range")
	}
	if _, err := Between(g, -1, 0, solver.Options{}); err == nil {
		t.Fatal("source range")
	}
	d := graph.New(3)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ToTarget(d, 0, solver.Options{}); err == nil {
		t.Fatal("disconnected")
	}
	if _, err := MonteCarlo(d, 0, 1, 10, 1); err == nil {
		t.Fatal("disconnected MC")
	}
	if _, err := MonteCarlo(g, 0, 1, 0, 1); err == nil {
		t.Fatal("zero walks")
	}
	if _, err := MonteCarlo(g, 0, 9, 10, 1); err == nil {
		t.Fatal("MC range")
	}
	if h, err := MonteCarlo(g, 2, 2, 10, 1); err != nil || h != 0 {
		t.Fatal("self hitting")
	}
	single, err := ToTarget(graph.New(1), 0, solver.Options{})
	if err != nil || single[0] != 0 {
		t.Fatal("single node")
	}
}

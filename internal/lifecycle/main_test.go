package lifecycle

import (
	"os"
	"testing"

	"resistecc/internal/testutil"
)

// TestMain fails the suite if any test leaks a manager goroutine (mutation
// worker, rebuild worker): every Manager opened by a test must be Closed.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaksMain(m))
}

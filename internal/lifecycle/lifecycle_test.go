package lifecycle

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/sketch"
)

func testConfig() Config {
	return Config{
		Sketch: sketch.Options{Epsilon: 0.3, Dim: 64, Seed: 21},
	}
}

func newManager(t *testing.T, g *graph.Graph, cfg Config) *Manager {
	t.Helper()
	m, err := New(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// sameIndex asserts two Fast indexes are bit-identical: same boundary and
// same sketched resistances on a pair sample.
func sameIndex(t *testing.T, got, want *ecc.Fast, n int) {
	t.Helper()
	if len(got.Boundary) != len(want.Boundary) {
		t.Fatalf("boundary size %d, want %d", len(got.Boundary), len(want.Boundary))
	}
	for i, v := range want.Boundary {
		if got.Boundary[i] != v {
			t.Fatalf("boundary[%d] = %d, want %d", i, got.Boundary[i], v)
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v += 3 {
			if g, w := got.Sk.Resistance(u, v), want.Sk.Resistance(u, v); g != w {
				t.Fatalf("resistance(%d,%d) = %g, want %g (not bit-identical)", u, v, g, w)
			}
		}
	}
}

func TestIncrementalAddPublishesNewGeneration(t *testing.T) {
	g := graph.Cycle(24)
	m := newManager(t, g, testConfig())
	s0 := m.Current()
	if s0.Gen != 1 {
		t.Fatalf("initial generation %d, want 1", s0.Gen)
	}
	res, err := m.AddEdge(context.Background(), 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeIncremental {
		t.Fatalf("mode %q, want incremental", res.Mode)
	}
	if res.Gen != 2 {
		t.Fatalf("generation %d, want 2", res.Gen)
	}
	if res.Drift <= 0 {
		t.Fatalf("drift %g, want > 0", res.Drift)
	}
	s1 := m.Current()
	if s1.Gen != 2 || s1.M != g.M()+1 {
		t.Fatalf("snapshot gen=%d m=%d, want 2, %d", s1.Gen, s1.M, g.M()+1)
	}
	// The old snapshot is untouched (RCU): still answers with the old edge
	// count and its own sketch.
	if s0.M != g.M() {
		t.Fatalf("old snapshot mutated: m=%d", s0.M)
	}
}

func TestMutationValidation(t *testing.T) {
	g := graph.Path(10)
	m := newManager(t, g, testConfig())
	ctx := context.Background()
	if _, err := m.AddEdge(ctx, 0, 99); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("out of range: %v", err)
	}
	if _, err := m.AddEdge(ctx, 3, 3); !errors.Is(err, graph.ErrSelfLoop) {
		t.Fatalf("self loop: %v", err)
	}
	if _, err := m.AddEdge(ctx, 0, 1); !errors.Is(err, graph.ErrDuplicateEdge) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := m.RemoveEdge(ctx, 0, 5); !errors.Is(err, graph.ErrEdgeNotFound) {
		t.Fatalf("missing edge: %v", err)
	}
	// Every path edge is a bridge: removal must be refused structurally.
	if _, err := m.RemoveEdge(ctx, 4, 5); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("bridge removal: %v", err)
	}
	// Nothing above may have changed the graph or generation.
	if st := m.Stats(); st.Generation != 1 || st.GraphM != g.M() {
		t.Fatalf("stats after rejected mutations: gen=%d m=%d", st.Generation, st.GraphM)
	}
}

// TestStaleRemovalSchedulesRebuild: removing a cycle edge keeps the graph
// connected but its resistance (n-1)/n ≈ 0.975 is past the Sherman–Morrison
// safety limit, so the mutation lands in stale mode and the background
// rebuild repairs the index to exactly a cold build.
func TestStaleRemovalSchedulesRebuild(t *testing.T) {
	g := graph.Cycle(40)
	cfg := testConfig()
	m := newManager(t, g, cfg)
	res, err := m.RemoveEdge(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeStale || !res.RebuildScheduled {
		t.Fatalf("mode=%q scheduled=%v, want stale + scheduled", res.Mode, res.RebuildScheduled)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rebuilds < 1 || st.Stale || st.Drift != 0 || st.Deletions != 0 {
		t.Fatalf("post-rebuild stats: %+v", st)
	}
	want := g.Clone()
	if err := want.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	cold, err := ecc.NewFast(want, ecc.FastOptions{Sketch: cfg.Sketch, Hull: cfg.Hull})
	if err != nil {
		t.Fatal(err)
	}
	sameIndex(t, m.Current().Fast, cold, want.N())
}

// TestDriftThresholdTriggersRebuild: with a tiny ε_drift every incremental
// update trips the rebuild, and the settled index matches a cold build of
// the final graph bit for bit.
func TestDriftThresholdTriggersRebuild(t *testing.T) {
	g := graph.Cycle(24)
	cfg := testConfig()
	cfg.DriftThreshold = 1e-9
	m := newManager(t, g, cfg)
	res, err := m.AddEdge(context.Background(), 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeIncremental || !res.RebuildScheduled {
		t.Fatalf("mode=%q scheduled=%v, want incremental + scheduled", res.Mode, res.RebuildScheduled)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rebuilds < 1 || st.Drift != 0 {
		t.Fatalf("post-rebuild stats: %+v", st)
	}
	want := g.Clone()
	if err := want.AddEdge(0, 12); err != nil {
		t.Fatal(err)
	}
	cold, err := ecc.NewFast(want, ecc.FastOptions{Sketch: cfg.Sketch, Hull: cfg.Hull})
	if err != nil {
		t.Fatal(err)
	}
	sameIndex(t, m.Current().Fast, cold, want.N())
	if gen := m.Current().Gen; gen < 3 {
		t.Fatalf("generation %d after incremental + rebuild, want >= 3", gen)
	}
}

// TestIncrementalAccuracy: without any rebuild, the served eccentricities
// stay within ε + drift of the exact values of the mutated graph.
func TestIncrementalAccuracy(t *testing.T) {
	g := graph.BarabasiAlbert(48, 3, 17)
	cfg := Config{Sketch: sketch.Options{Epsilon: 0.3, Dim: 512, Seed: 31}, DriftThreshold: 100}
	m := newManager(t, g, cfg)
	ctx := context.Background()
	work := g.Clone()
	added := 0
	for u := 0; u < work.N() && added < 4; u++ {
		v := (u + work.N()/2) % work.N()
		if u == v || work.HasEdge(u, v) {
			continue
		}
		if _, err := m.AddEdge(ctx, u, v); err != nil {
			t.Fatal(err)
		}
		if err := work.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		added++
	}
	st := m.Stats()
	if st.Updates != added || st.Rebuilds != 0 {
		t.Fatalf("updates=%d rebuilds=%d, want %d, 0", st.Updates, st.Rebuilds, added)
	}
	exact, err := ecc.NewExact(work)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Current()
	// Use the sketch's full scan (no hull pruning) to isolate update error.
	for v := 0; v < work.N(); v += 5 {
		want := exact.Eccentricity(v).Ecc
		got, _ := snap.Fast.Sk.Eccentricity(v)
		tol := (0.25 + st.Drift) * want // ε_emp at d=512 is well under 0.25
		if math.Abs(got-want) > tol {
			t.Fatalf("node %d: |%g-%g| > %g (drift=%g)", v, got, want, tol, st.Drift)
		}
	}
}

// TestConcurrentQueriesDuringSwaps hammers Current()+query from many
// goroutines while mutations and rebuilds churn generations. Run under
// -race this is the swap-safety test; in any mode it asserts per-reader
// generation monotonicity and that every snapshot is internally consistent.
func TestConcurrentQueriesDuringSwaps(t *testing.T) {
	g := graph.Cycle(32)
	cfg := testConfig()
	cfg.DriftThreshold = 0.05 // force frequent background rebuilds
	m := newManager(t, g, cfg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			lastGen := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.Current()
				if snap.Gen < lastGen {
					errCh <- errors.New("generation went backwards")
					return
				}
				lastGen = snap.Gen
				val := snap.Fast.Eccentricity((seed + i) % snap.N)
				if val.Ecc <= 0 || val.Farthest < 0 || val.Farthest >= snap.N {
					errCh <- errors.New("inconsistent snapshot answer")
					return
				}
			}
		}(r)
	}

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		u := i % 32
		v := (u + 16) % 32
		if _, err := m.AddEdge(ctx, u, v); err != nil && !errors.Is(err, graph.ErrDuplicateEdge) {
			t.Fatal(err)
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := m.WaitIdle(wctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestStaleSkipsIncremental: once the index is stale the master graph is
// ahead of the served sketch, so further mutations must not run the
// incremental update (its precondition is violated); they land graph-only in
// ModeStale and the rebuild reflects all of them.
func TestStaleSkipsIncremental(t *testing.T) {
	g := graph.Cycle(24)
	cfg := testConfig()
	m := newManager(t, g, cfg)
	// Force the state a failed incremental update leaves behind, without
	// arming the rebuild yet, so the next mutation deterministically sees
	// stale=true.
	m.mu.Lock()
	m.stale = true
	m.mu.Unlock()
	res, err := m.AddEdge(context.Background(), 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeStale || !res.RebuildScheduled {
		t.Fatalf("mode=%q scheduled=%v, want stale + scheduled", res.Mode, res.RebuildScheduled)
	}
	if res.Gen != 1 {
		t.Fatalf("stale mutation published generation %d, want 1 (unchanged)", res.Gen)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Stale || st.Rebuilds < 1 {
		t.Fatalf("post-rebuild stats: %+v", st)
	}
	want := g.Clone()
	if err := want.AddEdge(0, 12); err != nil {
		t.Fatal(err)
	}
	cold, err := ecc.NewFast(want, ecc.FastOptions{Sketch: cfg.Sketch, Hull: cfg.Hull})
	if err != nil {
		t.Fatal(err)
	}
	sameIndex(t, m.Current().Fast, cold, want.N())
}

// TestRebuildWinsCommitRace: a rebuild that swaps in while a mutation's
// solve is running (possible because apply drops the lock for the solve)
// must not be overwritten by that mutation's rank-1 result — the rank-1
// snapshot builds on the superseded base. The mutation falls back to
// ModeStale and the rescheduled rebuild picks it up.
func TestRebuildWinsCommitRace(t *testing.T) {
	g := graph.Cycle(24)
	cfg := testConfig()
	m := newManager(t, g, cfg)
	m.testHookAfterSolve = func() {
		m.TriggerRebuild()
		deadline := time.Now().Add(30 * time.Second)
		for m.Stats().Rebuilds < 1 {
			if time.Now().After(deadline) {
				t.Error("rebuild did not commit inside the solve window")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	res, err := m.AddEdge(context.Background(), 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeStale || !res.RebuildScheduled {
		t.Fatalf("mode=%q scheduled=%v, want stale + scheduled after losing the race", res.Mode, res.RebuildScheduled)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Stale || st.Rebuilds < 2 {
		t.Fatalf("post-race stats: %+v", st)
	}
	want := g.Clone()
	if err := want.AddEdge(0, 12); err != nil {
		t.Fatal(err)
	}
	cold, err := ecc.NewFast(want, ecc.FastOptions{Sketch: cfg.Sketch, Hull: cfg.Hull})
	if err != nil {
		t.Fatal(err)
	}
	sameIndex(t, m.Current().Fast, cold, want.N())
}

// TestMaxDeletionsTriggersAtThreshold: the rebuild fires once the deletion
// count reaches MaxDeletions, matching the documented "after this many edge
// removals" (not MaxDeletions+1).
func TestMaxDeletionsTriggersAtThreshold(t *testing.T) {
	g := graph.Complete(8)
	cfg := testConfig()
	cfg.MaxDeletions = 2
	cfg.DriftThreshold = 100 // keep drift out of the trigger
	m := newManager(t, g, cfg)
	ctx := context.Background()
	res, err := m.RemoveEdge(ctx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeIncremental || res.RebuildScheduled {
		t.Fatalf("first removal: mode=%q scheduled=%v, want incremental + unscheduled", res.Mode, res.RebuildScheduled)
	}
	res, err = m.RemoveEdge(ctx, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RebuildScheduled {
		t.Fatalf("second removal with MaxDeletions=2 did not schedule a rebuild: %+v", res)
	}
}

func TestClosedManagerRejectsMutations(t *testing.T) {
	g := graph.Cycle(12)
	m, err := New(context.Background(), g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Current()
	m.Close()
	if _, err := m.AddEdge(context.Background(), 0, 6); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after close: %v", err)
	}
	// Snapshots outlive the manager.
	if v := snap.Fast.Eccentricity(0); v.Ecc <= 0 {
		t.Fatal("snapshot unusable after close")
	}
}

func TestNewRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(context.Background(), g, testConfig()); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("disconnected input: %v", err)
	}
}

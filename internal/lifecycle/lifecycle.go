// Package lifecycle owns the dynamic-serving core of the repository: a
// generation-numbered FASTQUERY index behind an RCU-style atomic pointer, a
// serialized mutation queue (AddEdge/RemoveEdge) that applies cheap
// Sherman–Morrison embedding updates in place of full rebuilds, and a
// cancellable background rebuild that re-sketches from scratch once the
// accumulated drift or the deletion count crosses a threshold.
//
// The paper's optimization half (§VI–VII) is all about changing the graph —
// FARMINRECC/MINRECC add edges and re-score — while FASTQUERY's index is a
// build-once artifact. This package closes that gap for serving: mutations
// land without downtime, queries always hit a complete immutable snapshot
// (never a half-updated one), and the generation number lets clients observe
// index progression (reccd surfaces it as X-Index-Generation).
//
// Consistency model:
//
//   - Readers call Current() and query the returned Snapshot; snapshots are
//     immutable after publication, so no locks are taken on the query path.
//   - Mutations are serialized through one worker goroutine. Each successful
//     incremental mutation publishes a new snapshot with Gen+1. A mutation
//     whose embedding update is unsafe (bridge-like removal, solver failure)
//     is still applied to the master graph but leaves the served index
//     stale and forces a rebuild ("stale" mode).
//   - The background rebuild re-sketches the master graph with the original
//     options (same seeds), so a quiesced manager serves exactly what a cold
//     build of the current graph would. Rebuilds that lose a race with new
//     mutations are discarded and rerun (coalescing), never swapped in over
//     fresher data.
//   - Accumulated drift is the sum of per-update relative-error bounds (see
//     internal/sketch/update.go); serving error is bounded by ε + drift
//     between rebuilds.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/sketch"
)

// ErrClosed is returned by mutations issued after Close.
var ErrClosed = errors.New("lifecycle: manager closed")

// ErrStale is returned by CheckpointState while the served index lags the
// master graph (a rebuild is pending): checkpointing then would persist an
// index inconsistent with its graph. Wait for the rebuild and retry.
var ErrStale = errors.New("lifecycle: index is stale; rebuild pending")

// Journal observes committed state for durability (internal/persist wires a
// WAL + snapshot store through it). AppendMutation runs on the mutation
// worker after each commit with the post-mutation sequence number;
// Checkpoint runs after every rebuild swap with a state that exactly
// reflects Seq. Neither touches the lock-free query path, but both run on
// the serialized workers, so implementations should not dawdle (an appended
// WAL record, one snapshot write). Errors are counted in
// Stats.JournalFailures and otherwise ignored — durability trouble must not
// take down serving.
type Journal interface {
	AppendMutation(seq uint64, add bool, u, v int) error
	Checkpoint(cs CheckpointState) error
}

// CheckpointState is a consistent cut of a manager: Graph is the master
// graph after exactly Seq mutations and Fast is the index reflecting that
// same graph. Graph ownership transfers to the receiver (the manager hands
// over a private clone); Fast is the usual immutable published index.
type CheckpointState struct {
	Seq   uint64
	Gen   uint64
	Graph *graph.Graph
	Fast  *ecc.Fast
}

// Config configures a Manager. Sketch.Epsilon is required.
type Config struct {
	// Sketch configures APPROXER for the initial build, every full rebuild,
	// and the per-update Laplacian solves.
	Sketch sketch.Options
	// Hull configures APPROXCH; zero Theta means ε/12 as in FASTQUERY.
	Hull hull.Options
	// DriftThreshold is ε_drift: a full rebuild is scheduled once the sum of
	// incremental-update error contributions exceeds it. Zero means 0.5.
	DriftThreshold float64
	// MaxDeletions schedules a rebuild after this many edge removals since
	// the last full build, regardless of drift. Zero means 16.
	MaxDeletions int
	// QueueSize is the mutation queue capacity; enqueueing blocks (with the
	// caller's context as the way out) when full. Zero means 64.
	QueueSize int
	// Follower disables local rebuild scheduling: the manager's state then
	// changes only through applied mutations, so it is a pure deterministic
	// function of the base state (a restored snapshot) and the mutation
	// sequence. Replication replicas rely on this for bit-identical
	// convergence with the writer — a locally-timed rebuild would diverge.
	// A follower that goes stale stays stale until its owner swaps in a
	// fresh base (re-fetching the writer's snapshot); WaitIdle accordingly
	// treats a drained-but-stale follower as idle.
	Follower bool
}

func (c Config) withDefaults() Config {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.5
	}
	if c.MaxDeletions <= 0 {
		c.MaxDeletions = 16
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	return c
}

// Snapshot is one immutable generation of the served index. N and M describe
// the graph this index reflects (for stale generations they lag the master
// graph until the rebuild lands).
type Snapshot struct {
	Gen  uint64
	Fast *ecc.Fast
	N, M int
}

// Mode reports how a mutation reached the served index.
type Mode string

const (
	// ModeIncremental: the embedding was updated in O(solve + n·d) and a new
	// generation was published immediately.
	ModeIncremental Mode = "incremental"
	// ModeStale: the mutation was applied to the master graph but the served
	// index does not reflect it — the incremental update was unavailable
	// (bridge-like removal, solver failure), skipped because the index was
	// already stale, or discarded after a concurrent rebuild superseded its
	// base snapshot. The index stays stale until the scheduled rebuild
	// swaps in.
	ModeStale Mode = "stale"
)

// ApplyResult describes the outcome of one accepted mutation.
type ApplyResult struct {
	// Gen is the generation serving the mutation (unchanged for ModeStale).
	Gen uint64
	// Mode is ModeIncremental or ModeStale.
	Mode Mode
	// Drift is the accumulated drift bound after this mutation.
	Drift float64
	// RebuildScheduled reports whether this mutation tripped (or found
	// already tripped) the rebuild trigger.
	RebuildScheduled bool
}

// Stats is a point-in-time view of the manager for health and metrics.
type Stats struct {
	Generation         uint64
	QueueDepth         int
	Drift              float64
	Updates            int
	Deletions          int
	Stale              bool
	Rebuilds           uint64
	RebuildFailures    uint64
	RebuildScheduled   bool
	RebuildInProgress  bool
	LastRebuildSeconds float64
	// JournalFailures counts attached-journal calls (AppendMutation or
	// Checkpoint) that returned an error. Serving continues regardless; a
	// non-zero value means durability is degraded.
	JournalFailures uint64
	// GraphN/GraphM describe the master graph (including not-yet-rebuilt
	// stale mutations); IndexN/IndexM the graph the served index reflects.
	GraphN, GraphM int
	IndexN, IndexM int
}

type mutation struct {
	add  bool
	u, v int
	resp chan mutResult
}

type mutResult struct {
	res ApplyResult
	err error
}

// Manager owns the index lifecycle. Construct with New; callers may query
// (Current) from any goroutine and mutate (AddEdge/RemoveEdge) from any
// goroutine; mutations are serialized internally.
type Manager struct {
	cfg  Config
	fopt ecc.FastOptions
	hopt hull.Options

	cur     atomic.Pointer[Snapshot]
	queue   chan mutation
	pending atomic.Int64 // enqueued but unanswered mutations

	// The durable layer's store lock nests strictly inside the manager
	// lock: persistence hooks run from worker goroutines that already
	// hold (or have released) mu, and the store never calls back up.
	//recclint:lockrank lifecycle.Manager.mu < persist.Store.mu
	mu                sync.Mutex
	latest            *graph.Graph  // guarded by mu; master graph: mutation worker + rebuild clone
	mutSeq            uint64        // guarded by mu; bumps on every applied mutation
	rebuildEpoch      uint64        // guarded by mu; bumps every time a rebuild swaps a snapshot in
	deletions         int           // guarded by mu
	stale             bool          // guarded by mu
	rebuildScheduled  bool          // guarded by mu
	rebuildInProgress bool          // guarded by mu
	rebuilds          uint64        // guarded by mu
	rebuildFailures   uint64        // guarded by mu
	lastRebuildDur    time.Duration // guarded by mu
	journal           Journal       // guarded by mu
	journalFailures   uint64        // guarded by mu

	trigger chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// testHookAfterSolve, when set, runs on the mutation worker between the
	// unlocked solve and the commit — the window a concurrent rebuild can
	// swap a snapshot into. Tests use it to exercise that race.
	testHookAfterSolve func()
}

// New builds the generation-1 index over g (which must be connected — serve
// the largest connected component, the paper's standard preprocessing) and
// starts the mutation and rebuild workers. The manager keeps its own copy of
// g. ctx bounds only the initial build; use Close to stop the manager.
func New(ctx context.Context, g *graph.Graph, cfg Config) (*Manager, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("lifecycle: index requires a connected graph: %w", graph.ErrDisconnected)
	}
	cfg = cfg.withDefaults()
	fopt := ecc.FastOptions{Sketch: cfg.Sketch, Hull: cfg.Hull}
	hopt, err := ecc.HullOptionsFor(fopt)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: initial build: %w", err)
	}
	fast, err := ecc.NewFastContext(ctx, g, fopt)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: initial build: %w", err)
	}
	return start(g.Clone(), fast, 1, 0, cfg, fopt, hopt), nil
}

// Restored names the persisted position a manager resumes from.
type Restored struct {
	// Gen is the generation the restored index is published as; zero means 1.
	Gen uint64
	// Seq is the mutation sequence the restored state reflects. New
	// mutations continue the numbering from here, so a WAL that was cut at
	// Seq stays contiguous across the restart.
	Seq uint64
}

// NewFromState starts a manager directly from previously built state — a
// graph plus the FASTQUERY index reflecting it — skipping the cold build
// entirely. internal/persist uses it for warm restarts from a snapshot; the
// caller owns proving that fast was built from g with cfg's options (the
// persist layer checks stored build params and graph fingerprints before
// calling this). The manager clones g.
func NewFromState(g *graph.Graph, fast *ecc.Fast, rs Restored, cfg Config) (*Manager, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("lifecycle: index requires a connected graph: %w", graph.ErrDisconnected)
	}
	if fast == nil || fast.Sk == nil || fast.Sk.N != g.N() {
		return nil, fmt.Errorf("lifecycle: restored index does not match graph (n=%d)", g.N())
	}
	cfg = cfg.withDefaults()
	fopt := ecc.FastOptions{Sketch: cfg.Sketch, Hull: cfg.Hull}
	hopt, err := ecc.HullOptionsFor(fopt)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: restored build options: %w", err)
	}
	gen := rs.Gen
	if gen == 0 {
		gen = 1
	}
	return start(g.Clone(), fast, gen, rs.Seq, cfg, fopt, hopt), nil
}

// start takes ownership of g, publishes the initial snapshot and launches
// the workers. Common tail of New and NewFromState.
//
//recclint:ctxroot the workers outlive every caller; their lifetime is bounded by Manager.Close, not a request context
func start(g *graph.Graph, fast *ecc.Fast, gen, seq uint64, cfg Config, fopt ecc.FastOptions, hopt hull.Options) *Manager {
	bctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		fopt:    fopt,
		hopt:    hopt,
		queue:   make(chan mutation, cfg.QueueSize),
		latest:  g,
		mutSeq:  seq,
		trigger: make(chan struct{}, 1),
		ctx:     bctx,
		cancel:  cancel,
	}
	m.cur.Store(&Snapshot{Gen: gen, Fast: fast, N: g.N(), M: g.M()})
	m.wg.Add(2)
	go m.mutationWorker()
	go m.rebuildWorker()
	return m
}

// AttachJournal registers j to observe committed mutations and rebuild
// swaps from now on. Attach only after any WAL replay has drained
// (WaitIdle), so replayed mutations are not logged twice. A nil j detaches.
func (m *Manager) AttachJournal(j Journal) {
	m.mu.Lock()
	m.journal = j
	m.mu.Unlock()
}

// CheckpointState returns a consistent cut for an on-demand checkpoint: a
// clone of the master graph plus the served index, valid only while the two
// agree (ErrStale otherwise — trigger or await the rebuild and retry).
func (m *Manager) CheckpointState() (CheckpointState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stale {
		return CheckpointState{}, ErrStale
	}
	snap := m.cur.Load()
	return CheckpointState{
		Seq:   m.mutSeq,
		Gen:   snap.Gen,
		Graph: m.latest.Clone(),
		Fast:  snap.Fast,
	}, nil
}

// Current returns the snapshot queries should use. Never nil.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// AddEdge inserts (u,v), updating the served index incrementally when safe.
func (m *Manager) AddEdge(ctx context.Context, u, v int) (ApplyResult, error) {
	return m.mutate(ctx, mutation{add: true, u: u, v: v})
}

// RemoveEdge deletes (u,v). Removals that would disconnect the graph are
// rejected with ErrDisconnected (the index only serves connected graphs).
func (m *Manager) RemoveEdge(ctx context.Context, u, v int) (ApplyResult, error) {
	return m.mutate(ctx, mutation{add: false, u: u, v: v})
}

// mutate enqueues and waits. If ctx expires after enqueueing, the mutation
// may still be applied by the worker — callers observing a ctx error should
// treat the outcome as unknown, not as a rollback.
func (m *Manager) mutate(ctx context.Context, mut mutation) (ApplyResult, error) {
	mut.resp = make(chan mutResult, 1)
	m.pending.Add(1)
	select {
	case m.queue <- mut:
	case <-ctx.Done():
		m.pending.Add(-1)
		return ApplyResult{}, ctx.Err()
	case <-m.ctx.Done():
		m.pending.Add(-1)
		return ApplyResult{}, ErrClosed
	}
	select {
	case r := <-mut.resp:
		return r.res, r.err
	case <-ctx.Done():
		return ApplyResult{}, ctx.Err()
	case <-m.ctx.Done():
		return ApplyResult{}, ErrClosed
	}
}

// TriggerRebuild schedules a background full rebuild regardless of drift.
// A no-op in follower mode (followers never rebuild locally).
func (m *Manager) TriggerRebuild() {
	if m.cfg.Follower {
		return
	}
	m.mu.Lock()
	m.scheduleRebuildLocked()
	m.mu.Unlock()
}

// RebuildAndWait schedules a rebuild and blocks until the manager settles,
// returning the generation that was serving when the rebuild was requested.
// It is the deterministic re-execution entry point: trace replay needs the
// rebuild fully absorbed before the next operation runs, and needs the
// pre-rebuild generation because that is what the recording server stamped
// on its acceptance.
func (m *Manager) RebuildAndWait(ctx context.Context) (uint64, error) {
	gen := m.Current().Gen
	m.TriggerRebuild()
	if err := m.WaitIdle(ctx); err != nil {
		return gen, err
	}
	return gen, nil
}

// Seq returns the number of mutations applied since the manager's base
// state (the restored sequence for NewFromState managers, zero for New).
// Replication uses it as the WAL tailing position.
func (m *Manager) Seq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mutSeq
}

// WaitIdle blocks until the mutation queue is drained and no rebuild is
// scheduled or running — the point at which Current() serves exactly a cold
// build of the master graph (unless drift-free incremental generations are
// still within threshold, which is also a settled state).
func (m *Manager) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		m.mu.Lock()
		idle := m.pending.Load() == 0 && !m.rebuildScheduled && !m.rebuildInProgress &&
			(!m.stale || m.cfg.Follower)
		m.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-m.ctx.Done():
			return ErrClosed
		case <-tick.C:
		}
	}
}

// Stats reports lifecycle gauges for /healthz and /metrics.
func (m *Manager) Stats() Stats {
	snap := m.cur.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Generation:         snap.Gen,
		QueueDepth:         int(m.pending.Load()),
		Drift:              snap.Fast.Sk.Drift,
		Updates:            snap.Fast.Sk.Updates,
		Deletions:          m.deletions,
		Stale:              m.stale,
		Rebuilds:           m.rebuilds,
		RebuildFailures:    m.rebuildFailures,
		RebuildScheduled:   m.rebuildScheduled,
		RebuildInProgress:  m.rebuildInProgress,
		LastRebuildSeconds: m.lastRebuildDur.Seconds(),
		JournalFailures:    m.journalFailures,
		GraphN:             m.latest.N(),
		GraphM:             m.latest.M(),
		IndexN:             snap.N,
		IndexM:             snap.M,
	}
}

// Close stops both workers and cancels any in-flight rebuild. Queries
// against already-obtained snapshots keep working; mutations fail with
// ErrClosed.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

func (m *Manager) mutationWorker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case mut := <-m.queue:
			res, err := m.apply(mut)
			mut.resp <- mutResult{res, err}
			m.pending.Add(-1)
		}
	}
}

// apply validates and executes one mutation. The worker is the sole mutator
// of m.latest; the lock is dropped during the expensive solve + hull pass
// and retaken to commit, which is safe because no other mutation can
// interleave.
func (m *Manager) apply(mut mutation) (ApplyResult, error) {
	u, v := mut.u, mut.v

	m.mu.Lock()
	n := m.latest.N()
	if u < 0 || v < 0 || u >= n || v >= n {
		m.mu.Unlock()
		return ApplyResult{}, fmt.Errorf("%w: (%d,%d) with n=%d", graph.ErrNodeRange, u, v, n)
	}
	if u == v {
		m.mu.Unlock()
		return ApplyResult{}, fmt.Errorf("%w: node %d", graph.ErrSelfLoop, u)
	}
	if mut.add {
		if m.latest.HasEdge(u, v) {
			m.mu.Unlock()
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d)", graph.ErrDuplicateEdge, u, v)
		}
	} else {
		if !m.latest.HasEdge(u, v) {
			m.mu.Unlock()
			return ApplyResult{}, fmt.Errorf("%w: (%d,%d)", graph.ErrEdgeNotFound, u, v)
		}
		// Structural safety: removing a bridge would disconnect the graph,
		// which the index cannot serve. Check exactly with a BFS on the
		// temporarily-removed edge (O(n+m), cheap next to the solve).
		if err := m.latest.RemoveEdge(u, v); err != nil {
			m.mu.Unlock()
			return ApplyResult{}, err
		}
		connected := m.latest.Connected()
		if err := m.latest.AddEdge(u, v); err != nil {
			m.mu.Unlock()
			return ApplyResult{}, fmt.Errorf("lifecycle: restoring probed edge (%d,%d): %w", u, v, err)
		}
		if !connected {
			m.mu.Unlock()
			return ApplyResult{}, fmt.Errorf("lifecycle: removing (%d,%d) would disconnect the graph: %w",
				u, v, graph.ErrDisconnected)
		}
	}
	// While the index is stale the master graph is already ahead of the
	// served sketch, so the incremental precondition ("csr is the graph the
	// sketch was built on") cannot hold — skip the solve and apply the
	// mutation graph-only; the pending rebuild picks it up.
	stale := m.stale
	epoch := m.rebuildEpoch
	var csr *graph.CSR
	var base *Snapshot
	if !stale {
		// Pre-mutation CSR snapshot for the Sherman–Morrison solve.
		csr = m.latest.ToCSR()
		base = m.cur.Load()
	}
	m.mu.Unlock()

	// Expensive part, outside the lock: one Laplacian solve, an O(n·d)
	// embedding pass, and an APPROXCH re-derivation of the hull boundary.
	var newFast *ecc.Fast
	if !stale {
		var newSk *sketch.Sketch
		var err error
		if mut.add {
			newSk, _, err = base.Fast.Sk.AddEdgeUpdate(csr, u, v, m.cfg.Sketch.Solver)
		} else {
			newSk, _, err = base.Fast.Sk.RemoveEdgeUpdate(csr, u, v, m.cfg.Sketch.Solver)
		}
		if err == nil {
			newFast, err = ecc.NewFastFromSketch(newSk, m.hopt)
		}
		// err != nil here means the incremental path is unavailable
		// (bridge-like removal, solver trouble); the mutation still lands on
		// the master graph and the rebuild repairs the index ("stale" mode).
	}
	if m.testHookAfterSolve != nil {
		m.testHookAfterSolve()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	var commitErr error
	if mut.add {
		commitErr = m.latest.AddEdge(u, v)
	} else {
		commitErr = m.latest.RemoveEdge(u, v)
	}
	if commitErr != nil {
		return ApplyResult{}, fmt.Errorf("lifecycle: committing (%d,%d): %w", u, v, commitErr)
	}
	m.mutSeq++
	if m.journal != nil {
		// Log the committed mutation before publishing: once the caller sees
		// the result, the record is on its way to disk. Failures only degrade
		// durability (counted; recovery's gap check refuses a holed WAL).
		if jerr := m.journal.AppendMutation(m.mutSeq, mut.add, u, v); jerr != nil {
			m.journalFailures++
		}
	}
	if !mut.add {
		m.deletions++
	}
	if newFast != nil && m.rebuildEpoch != epoch {
		// A rebuild swapped a snapshot in while the solve ran (its mutSeq
		// check passed because this mutation had not committed yet). The
		// rank-1 result builds on the snapshot that rebuild replaced;
		// publishing it would overwrite the fresh index with superseded data
		// — and silently reinstate any staleness the rebuild just repaired.
		// Discard it and fall back to stale mode; the rebuild scheduled
		// below picks this mutation up.
		newFast = nil
	}
	res := ApplyResult{}
	if newFast != nil {
		next := &Snapshot{
			Gen:  m.cur.Load().Gen + 1,
			Fast: newFast,
			N:    m.latest.N(),
			M:    m.latest.M(),
		}
		m.cur.Store(next)
		res.Gen = next.Gen
		res.Mode = ModeIncremental
		res.Drift = newFast.Sk.Drift
	} else {
		m.stale = true
		res.Gen = m.cur.Load().Gen
		res.Mode = ModeStale
		res.Drift = m.cur.Load().Fast.Sk.Drift
	}
	if !m.cfg.Follower &&
		(m.stale || m.deletions >= m.cfg.MaxDeletions || res.Drift > m.cfg.DriftThreshold) {
		m.scheduleRebuildLocked()
	}
	res.RebuildScheduled = m.rebuildScheduled
	return res, nil
}

// scheduleRebuildLocked arms the rebuild trigger (idempotent). Callers hold mu.
func (m *Manager) scheduleRebuildLocked() {
	if m.rebuildScheduled {
		return
	}
	m.rebuildScheduled = true
	select {
	case m.trigger <- struct{}{}:
	default:
	}
}

func (m *Manager) rebuildWorker() {
	defer m.wg.Done()
	failStreak := 0
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-m.trigger:
		}
		// Rebuild until the result reflects the latest graph: a rebuild that
		// loses a race with concurrent mutations is discarded and rerun, so
		// a full build is never swapped in over fresher incremental data.
		for {
			m.mu.Lock()
			seq := m.mutSeq
			gclone := m.latest.Clone()
			m.rebuildInProgress = true
			m.mu.Unlock()

			start := time.Now()
			fast, err := ecc.NewFastContext(m.ctx, gclone, m.fopt)
			dur := time.Since(start)

			m.mu.Lock()
			m.rebuildInProgress = false
			if err != nil {
				if m.ctx.Err() != nil {
					m.mu.Unlock()
					return
				}
				m.rebuildFailures++
				failStreak++
				// Leave rebuildScheduled armed and retry with backoff:
				// clearing it would strand a stale index (and a lying
				// WaitIdle) until some future mutation re-trips the trigger.
				m.mu.Unlock()
				select {
				case <-m.ctx.Done():
					return
				case <-time.After(rebuildBackoff(failStreak)):
				}
				continue
			}
			failStreak = 0
			if m.mutSeq != seq {
				m.mu.Unlock()
				continue
			}
			next := &Snapshot{
				Gen:  m.cur.Load().Gen + 1,
				Fast: fast,
				N:    gclone.N(),
				M:    gclone.M(),
			}
			m.cur.Store(next)
			m.rebuildEpoch++
			m.rebuilds++
			m.lastRebuildDur = dur
			m.deletions = 0
			m.stale = false
			m.rebuildScheduled = false
			j := m.journal
			m.mu.Unlock()
			if j != nil {
				// Checkpoint the freshly swapped index outside the lock:
				// gclone is the exact graph fast was built from (the mutSeq
				// race check above proved nothing moved), and after the swap
				// nothing else references it, so the journal takes ownership.
				// The snapshot write may fsync megabytes; queries and
				// mutations must not wait on it.
				if jerr := j.Checkpoint(CheckpointState{Seq: seq, Gen: next.Gen, Graph: gclone, Fast: fast}); jerr != nil {
					m.mu.Lock()
					m.journalFailures++
					m.mu.Unlock()
				}
			}
			break
		}
	}
}

// rebuildBackoff is the delay before the streak-th consecutive retry of a
// failed rebuild: 10ms doubling to a 1.28s cap.
func rebuildBackoff(streak int) time.Duration {
	if streak > 8 {
		streak = 8
	}
	return time.Duration(1<<uint(streak-1)) * 10 * time.Millisecond
}

// An external test package, so the deliberately leaked goroutine's frames
// read internal/testutil_test.* and cannot collide with the checker's own
// benign marks.
package testutil_test

import (
	"strings"
	"testing"
	"time"

	"resistecc/internal/testutil"
)

func TestVerifyNoLeaksDetectsABlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()

	err := testutil.VerifyNoLeaks(50 * time.Millisecond)
	if err == nil {
		close(release)
		t.Fatal("expected the blocked goroutine to be reported as a leak")
	}
	if !strings.Contains(err.Error(), "leaked goroutine") {
		t.Errorf("error does not describe the leak: %v", err)
	}

	close(release)
	<-done
	if err := testutil.VerifyNoLeaks(2 * time.Second); err != nil {
		t.Errorf("leak persisted after the goroutine exited: %v", err)
	}
}

func TestVerifyNoLeaksCleanByDefault(t *testing.T) {
	if err := testutil.VerifyNoLeaks(2 * time.Second); err != nil {
		t.Errorf("clean suite reported a leak: %v", err)
	}
}

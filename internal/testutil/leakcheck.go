// Package testutil holds test-only infrastructure shared across the repo's
// test suites. Its centerpiece is a stdlib-only goroutine-leak checker: the
// lifecycle manager and the reccd server both own background goroutines
// (rebuild workers, mutation workers, HTTP serving), and a test that forgets
// to Close one leaks workers that outlive the test and poison later timing-
// or race-sensitive tests in the same binary.
package testutil

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// benignMarks identify goroutine stacks that are expected to be alive after
// all tests finish: the test driver itself, this checker, and the runtime's
// signal plumbing. A stack containing any mark is not a leak.
var benignMarks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests",
	"internal/testutil.VerifyNoLeaks",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"created by runtime",
}

// DetachedMarks identify goroutines the codebase deliberately never joins to
// a lifecycle — every function carrying a //recclint:detached directive (the
// goroutinelife analyzer's escape hatch) must appear here, qualified enough
// to match its stack frames unambiguously. The correspondence is enforced
// both ways by a cross-check test in internal/analysis, so a directive
// cannot silently rot into an unaccounted leak.
var DetachedMarks = []string{
	"resistecc/internal/ecc.batchWorker",
}

// VerifyNoLeaks reports an error if goroutines other than the benign set are
// still running. Goroutine shutdown is asynchronous — Close returns before
// the worker's final return instruction retires — so the check polls with
// backoff until the dump is clean or the deadline passes, and the error
// carries the surviving stacks.
func VerifyNoLeaks(within time.Duration) error {
	deadline := time.Now().Add(within)
	pause := time.Millisecond
	for {
		leaks := leakedStacks()
		if len(leaks) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d leaked goroutine(s) after %v:\n\n%s",
				len(leaks), within, strings.Join(leaks, "\n\n"))
		}
		time.Sleep(pause)
		if pause < 100*time.Millisecond {
			pause *= 2
		}
	}
}

// VerifyNoLeaksMain wraps a test suite for use in TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.VerifyNoLeaksMain(m)) }
//
// It runs the suite and then fails the binary if goroutines leaked. Idle
// HTTP keep-alive connections are closed first: their readLoop goroutines
// are pool bookkeeping, not a leak in the code under test.
func VerifyNoLeaksMain(m *testing.M) int {
	code := m.Run()
	if code != 0 {
		return code
	}
	http.DefaultClient.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	if err := VerifyNoLeaks(2 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "testutil: %v\n", err)
		return 1
	}
	return code
}

// leakedStacks returns the stack of every live goroutine not matched by
// benignMarks.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaks []string
	for _, g := range strings.Split(strings.TrimSpace(string(buf)), "\n\n") {
		if g == "" || isBenign(g) {
			continue
		}
		leaks = append(leaks, g)
	}
	return leaks
}

func isBenign(stack string) bool {
	for _, mark := range benignMarks {
		if strings.Contains(stack, mark) {
			return true
		}
	}
	for _, mark := range DetachedMarks {
		if strings.Contains(stack, mark) {
			return true
		}
	}
	return false
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ErrorBody is the machine-readable payload of one API error: a stable,
// grep-able code plus a human-oriented message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the error envelope every non-2xx response of the serving
// tier carries: {"error":{"code":…,"message":…}}. Handlers that build error
// responses by hand (rather than through WriteError) should embed this shape
// so the apisurface analyzer can see the envelope in the body's type.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// WriteError emits status with the canonical error envelope. It is the one
// sanctioned origination point for error statuses in envelope-checked
// packages: the apisurface analyzer treats functions carrying the
// //recclint:envelope directive as the envelope layer and flags naked
// WriteHeader/http.Error calls everywhere else.
//
//recclint:envelope
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	// The envelope is two flat strings; an encode failure here means the
	// connection is gone, which the caller cannot act on.
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInstrumentCountsAndClasses(t *testing.T) {
	reg := NewRegistry("t")
	ok := reg.InstrumentFunc("ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi"))
	})
	bad := reg.InstrumentFunc("bad", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	for i := 0; i < 3; i++ {
		ok.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
	}
	bad.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/bad", nil))

	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		`t_requests_total{endpoint="ok",class="2xx"} 3`,
		`t_requests_total{endpoint="bad",class="4xx"} 1`,
		`t_request_seconds_count{endpoint="ok"} 3`,
		`t_request_seconds_bucket{endpoint="ok",le="+Inf"} 3`,
		"t_rejected_total 0",
		"t_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	reg := NewRegistry("t")
	cell := reg.endpoint("e")
	cell.observe(200, 50*time.Microsecond) // below first bound
	cell.observe(200, 2*time.Millisecond)  // in the 2.5ms bucket
	cell.observe(200, time.Minute)         // +Inf

	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	out := buf.String()
	// Cumulative counts must be monotone: first bucket 1, the 0.0025 bucket 2,
	// +Inf 3.
	for _, want := range []string{
		`t_request_seconds_bucket{endpoint="e",le="0.0001"} 1`,
		`t_request_seconds_bucket{endpoint="e",le="0.0025"} 2`,
		`t_request_seconds_bucket{endpoint="e",le="10"} 2`,
		`t_request_seconds_bucket{endpoint="e",le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	var cum []uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `t_request_seconds_bucket{endpoint="e"`) {
			var n uint64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n)
			cum = append(cum, n)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not monotone: %v", cum)
		}
	}
}

func TestInstrumentConcurrent(t *testing.T) {
	reg := NewRegistry("t")
	h := reg.InstrumentFunc("e", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), fmt.Sprintf(`t_requests_total{endpoint="e",class="2xx"} %d`, n)) {
		t.Fatalf("lost counts under concurrency:\n%s", buf.String())
	}
}

func TestGauges(t *testing.T) {
	reg := NewRegistry("t")
	reg.SetGauge("index_sketch_dim", 64)
	reg.SetGauge("index_hull_size", 17)
	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	for _, want := range []string{"t_index_sketch_dim 64", "t_index_hull_size 17"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing gauge %q:\n%s", want, buf.String())
		}
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if RequestIDFrom(r.Context()) == "" {
			t.Error("request id missing from context")
		}
		http.Error(w, "gone", http.StatusNotFound)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x?y=1", nil))
	id := rec.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header")
	}
	line := buf.String()
	for _, want := range []string{"id=" + id, "method=GET", `path="/x?y=1"`, "status=404"} {
		if !strings.Contains(line, want) {
			t.Fatalf("access line missing %q: %s", want, line)
		}
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := nextRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
}

func TestLimitInFlight(t *testing.T) {
	reg := NewRegistry("t")
	release := make(chan struct{})
	started := make(chan struct{})
	h := reg.LimitInFlight(1, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	done := make(chan int)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		done <- rec.Code
	}()
	<-started
	// Second request while the first is in flight: shed with 503.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request got %d", code)
	}
	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "t_rejected_total 1") {
		t.Fatalf("rejection not counted:\n%s", buf.String())
	}
}

func TestLimitDisabled(t *testing.T) {
	reg := NewRegistry("t")
	base := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})
	if got := reg.LimitInFlight(0, base); fmt.Sprintf("%T", got) != fmt.Sprintf("%T", base) {
		t.Fatalf("limit 0 should return the handler unchanged, got %T", got)
	}
}

func TestGaugeFuncLiveAndShadowing(t *testing.T) {
	reg := NewRegistry("t")
	reg.SetGauge("index_generation", 1)
	val := 0.0
	reg.SetGaugeFunc("index_generation", func() float64 { return val })
	reg.SetGaugeFunc("queue_depth", func() float64 { return 3 })

	val = 7
	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	out := buf.String()
	// The live fn shadows the static gauge of the same name and is
	// re-evaluated at every exposition.
	for _, want := range []string{"t_index_generation 7", "t_queue_depth 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	val = 9
	buf.Reset()
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "t_index_generation 9") {
		t.Fatalf("gauge fn not re-evaluated:\n%s", buf.String())
	}
	// Unregister: static value becomes visible again.
	reg.SetGaugeFunc("index_generation", nil)
	buf.Reset()
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "t_index_generation 1") {
		t.Fatalf("static gauge not restored after unregister:\n%s", buf.String())
	}
}

func TestLimitInFlightWithCustomReject(t *testing.T) {
	reg := NewRegistry("t")
	release := make(chan struct{})
	started := make(chan struct{})
	reject := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"busy"}}`))
	})
	h := reg.LimitInFlightWith(1, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
	}), reject)
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-started
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	close(release)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"code":"overloaded"`) {
		t.Fatalf("custom reject body not used: %s", rec.Body.String())
	}
	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "t_rejected_total 1") {
		t.Fatalf("rejection not counted:\n%s", buf.String())
	}
}

func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusConflict, "duplicate_edge", "edge (%d,%d) already present", 3, 4)
	if rec.Code != http.StatusConflict {
		t.Fatalf("status = %d, want 409", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("body not an envelope: %v (%s)", err, rec.Body.String())
	}
	if env.Error.Code != "duplicate_edge" || env.Error.Message != "edge (3,4) already present" {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestLimitInFlightDefaultRejectEnvelope(t *testing.T) {
	reg := NewRegistry("t")
	release := make(chan struct{})
	started := make(chan struct{})
	h := reg.LimitInFlight(1, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
	}))
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	<-started
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	close(release)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected 503, got %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("default reject body is not the envelope: %v (%s)", err, rec.Body.String())
	}
	if env.Error.Code != "overloaded" || env.Error.Message == "" {
		t.Fatalf("envelope = %+v", env)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
}

func TestLabeledGaugeFunc(t *testing.T) {
	reg := NewRegistry("t")
	vals := map[string]float64{"a": 1, "b": 0}
	reg.SetLabeledGaugeFunc("backend_healthy", "backend", "b", func() float64 { return vals["b"] })
	reg.SetLabeledGaugeFunc("backend_healthy", "backend", "a", func() float64 { return vals["a"] })

	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	out := buf.String()
	if n := strings.Count(out, "# TYPE t_backend_healthy gauge"); n != 1 {
		t.Fatalf("TYPE line emitted %d times:\n%s", n, out)
	}
	aLine := `t_backend_healthy{backend="a"} 1`
	bLine := `t_backend_healthy{backend="b"} 0`
	ai, bi := strings.Index(out, aLine), strings.Index(out, bLine)
	if ai < 0 || bi < 0 {
		t.Fatalf("missing labeled series:\n%s", out)
	}
	if ai > bi {
		t.Fatalf("series not sorted by label value:\n%s", out)
	}

	// Live: re-sampled at every exposition.
	vals["b"] = 1
	buf.Reset()
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), `t_backend_healthy{backend="b"} 1`) {
		t.Fatalf("labeled gauge not re-evaluated:\n%s", buf.String())
	}

	// Unregistering the last series drops the name entirely.
	reg.SetLabeledGaugeFunc("backend_healthy", "backend", "a", nil)
	reg.SetLabeledGaugeFunc("backend_healthy", "backend", "b", nil)
	buf.Reset()
	reg.WriteMetrics(&buf)
	if strings.Contains(buf.String(), "backend_healthy") {
		t.Fatalf("labeled gauge still exposed after unregister:\n%s", buf.String())
	}
}

func TestLabeledGaugeLabelKeyFixed(t *testing.T) {
	reg := NewRegistry("t")
	reg.SetLabeledGaugeFunc("backend_healthy", "backend", "a", func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("second label key for the same name should panic")
		}
	}()
	reg.SetLabeledGaugeFunc("backend_healthy", "upstream", "a", func() float64 { return 1 })
}

func TestCounterFunc(t *testing.T) {
	reg := NewRegistry("t")
	val := 2.0
	reg.SetCounterFunc("checkpoints_total", func() float64 { return val })

	var buf bytes.Buffer
	reg.WriteMetrics(&buf)
	out := buf.String()
	if !strings.Contains(out, "# TYPE t_checkpoints_total counter") {
		t.Fatalf("counter not typed as counter:\n%s", out)
	}
	if !strings.Contains(out, "t_checkpoints_total 2") {
		t.Fatalf("counter value missing:\n%s", out)
	}

	// Re-sampled at every exposition.
	val = 5
	buf.Reset()
	reg.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "t_checkpoints_total 5") {
		t.Fatalf("counter fn not re-evaluated:\n%s", buf.String())
	}

	// Unregister removes the series.
	reg.SetCounterFunc("checkpoints_total", nil)
	buf.Reset()
	reg.WriteMetrics(&buf)
	if strings.Contains(buf.String(), "checkpoints_total") {
		t.Fatalf("counter still exposed after unregister:\n%s", buf.String())
	}
}

// Package obs is the observability substrate for the reccd query service:
// per-endpoint request counters and latency histograms with lock-free hot
// paths, a Prometheus-text-format exposition handler, structured access
// logging with request ids, and an in-flight concurrency limiter. It is
// stdlib-only by design — the service must not pull a metrics dependency
// into a library repo — and generic enough for any net/http server.
//
// The hot path (one request) touches only atomics: a status-class counter,
// a histogram bucket, and two accumulator adds. Registration and exposition
// take a mutex, which only guards map shape, never counts.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// bucketBounds are the latency histogram upper bounds in seconds,
// log-spaced from 100µs to 10s — resistance queries span sub-millisecond
// hull scans to multi-second cold /summary distribution sweeps.
var bucketBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointMetrics holds one endpoint's counters. All fields are atomics so
// concurrent requests never contend on a lock.
type endpointMetrics struct {
	// classes counts responses by status class; index = status/100 (1..5).
	classes [6]atomic.Uint64
	// buckets is the cumulative-style histogram storage (stored per-bucket,
	// accumulated at exposition time); buckets[len(bucketBounds)] is +Inf.
	buckets [17]atomic.Uint64
	// count and sumNanos feed the histogram _count and _sum series.
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func (e *endpointMetrics) observe(status int, d time.Duration) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	e.classes[class].Add(1)
	sec := d.Seconds()
	i := sort.SearchFloat64s(bucketBounds, sec)
	e.buckets[i].Add(1)
	e.count.Add(1)
	e.sumNanos.Add(int64(d))
}

// Registry aggregates metrics for one server. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	namespace string

	mu         sync.Mutex
	endpoints  map[string]*endpointMetrics // guarded by mu
	gauges     map[string]float64          // guarded by mu
	gaugeFns   map[string]func() float64   // guarded by mu
	counterFns map[string]func() float64   // guarded by mu
	labeled    map[string]*labeledGauge    // guarded by mu

	// rejected counts requests shed by the in-flight limiter.
	rejected atomic.Uint64
	// inFlight tracks currently-executing instrumented requests.
	inFlight atomic.Int64
}

// NewRegistry returns a registry whose metric names are prefixed
// "<namespace>_" (e.g. namespace "reccd" → reccd_requests_total).
func NewRegistry(namespace string) *Registry {
	return &Registry{
		namespace:  namespace,
		endpoints:  make(map[string]*endpointMetrics),
		gauges:     make(map[string]float64),
		gaugeFns:   make(map[string]func() float64),
		counterFns: make(map[string]func() float64),
		labeled:    make(map[string]*labeledGauge),
	}
}

// SetGauge publishes a static gauge (index build statistics, config values).
// Intended for startup-time facts; safe for concurrent use.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// SetGaugeFunc registers a live gauge: fn is called at every exposition, so
// the scraped value tracks moving state (index generation, queue depth,
// drift) without the producer pushing updates. fn must be safe for
// concurrent use and must not block; it is invoked outside the registry
// lock. A nil fn unregisters the gauge.
func (r *Registry) SetGaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	if fn == nil {
		delete(r.gaugeFns, name)
	} else {
		r.gaugeFns[name] = fn
	}
	r.mu.Unlock()
}

// SetCounterFunc registers a live counter: like SetGaugeFunc, but the series
// is exposed with TYPE counter. fn must report a monotonically non-decreasing
// value (checkpoints completed, WAL records written); the producer owns the
// monotonicity, the registry only samples. A nil fn unregisters the counter.
func (r *Registry) SetCounterFunc(name string, fn func() float64) {
	r.mu.Lock()
	if fn == nil {
		delete(r.counterFns, name)
	} else {
		r.counterFns[name] = fn
	}
	r.mu.Unlock()
}

// labeledGauge holds all series of one labeled gauge name. Every series
// shares the single label key fixed at first registration.
type labeledGauge struct {
	label string
	fns   map[string]func() float64 // label value → sampler; the owning Registry's mu synchronizes access
}

// SetLabeledGaugeFunc registers one series of a labeled live gauge,
// exposed as <ns>_<name>{<label>="<value>"}. All series under one name must
// use the same label key (registering a second key for the same name
// panics — it is a wiring bug, not a runtime condition). The metric name
// stays a compile-time constant; only the label value varies, which is how
// per-backend series keep the metrichygiene cardinality guard happy. A nil
// fn unregisters the series.
func (r *Registry) SetLabeledGaugeFunc(name, label, value string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lg, ok := r.labeled[name]
	if !ok {
		lg = &labeledGauge{label: label, fns: make(map[string]func() float64)}
		r.labeled[name] = lg
	} else if lg.label != label {
		panic(fmt.Sprintf("obs: labeled gauge %s registered with label %q, then %q", name, lg.label, label))
	}
	if fn == nil {
		delete(lg.fns, value)
		if len(lg.fns) == 0 {
			delete(r.labeled, name)
		}
		return
	}
	lg.fns[value] = fn
}

// endpoint returns (creating if needed) the metrics cell for name.
func (r *Registry) endpoint(name string) *endpointMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.endpoints[name]
	if !ok {
		e = &endpointMetrics{}
		r.endpoints[name] = e
	}
	return e
}

// Instrument wraps h so that every request is counted under the endpoint
// name with its status class and latency. The cell is resolved once at wrap
// time, so the per-request cost is atomics only.
func (r *Registry) Instrument(name string, h http.Handler) http.Handler {
	cell := r.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, req)
		cell.observe(sw.status, time.Since(start))
		r.inFlight.Add(-1)
	})
}

// InstrumentFunc is Instrument for a HandlerFunc.
func (r *Registry) InstrumentFunc(name string, h http.HandlerFunc) http.Handler {
	return r.Instrument(name, h)
}

// ServeHTTP implements GET /metrics in the Prometheus text exposition
// format (version 0.0.4). Output order is deterministic.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteMetrics(w)
}

// WriteMetrics writes the full exposition to w.
func (r *Registry) WriteMetrics(w io.Writer) {
	ns := r.namespace

	r.mu.Lock()
	names := make([]string, 0, len(r.endpoints))
	for name := range r.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	cells := make([]*endpointMetrics, len(names))
	for i, name := range names {
		cells[i] = r.endpoints[name]
	}
	gnames := make([]string, 0, len(r.gauges)+len(r.gaugeFns))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
		if _, static := r.gauges[name]; !static {
			gnames = append(gnames, name)
		}
	}
	sort.Strings(gnames)
	gvals := make([]float64, len(gnames))
	for i, name := range gnames {
		gvals[i] = r.gauges[name]
	}
	cnames := make([]string, 0, len(r.counterFns))
	cfns := make([]func() float64, 0, len(r.counterFns))
	for name := range r.counterFns {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		cfns = append(cfns, r.counterFns[name])
	}
	type labeledSeries struct {
		name, label string
		values      []string
		fns         []func() float64
	}
	lseries := make([]labeledSeries, 0, len(r.labeled))
	for name, lg := range r.labeled {
		s := labeledSeries{name: name, label: lg.label}
		for v := range lg.fns {
			s.values = append(s.values, v)
		}
		sort.Strings(s.values)
		for _, v := range s.values {
			s.fns = append(s.fns, lg.fns[v])
		}
		lseries = append(lseries, s)
	}
	sort.Slice(lseries, func(i, j int) bool { return lseries[i].name < lseries[j].name })
	r.mu.Unlock()

	// Live gauges are sampled outside the lock (the fn may itself take locks)
	// and shadow any static gauge of the same name.
	for i, name := range gnames {
		if fn, ok := fns[name]; ok {
			gvals[i] = fn()
		}
	}

	fmt.Fprintf(w, "# HELP %s_requests_total Requests served, by endpoint and status class.\n", ns)
	fmt.Fprintf(w, "# TYPE %s_requests_total counter\n", ns)
	for i, name := range names {
		for class := 1; class <= 5; class++ {
			if n := cells[i].classes[class].Load(); n > 0 {
				fmt.Fprintf(w, "%s_requests_total{endpoint=%q,class=\"%dxx\"} %d\n", ns, name, class, n)
			}
		}
	}

	fmt.Fprintf(w, "# HELP %s_request_seconds Request latency, by endpoint.\n", ns)
	fmt.Fprintf(w, "# TYPE %s_request_seconds histogram\n", ns)
	for i, name := range names {
		cum := uint64(0)
		for b, bound := range bucketBounds {
			cum += cells[i].buckets[b].Load()
			fmt.Fprintf(w, "%s_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ns, name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += cells[i].buckets[len(bucketBounds)].Load()
		fmt.Fprintf(w, "%s_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ns, name, cum)
		fmt.Fprintf(w, "%s_request_seconds_sum{endpoint=%q} %g\n",
			ns, name, time.Duration(cells[i].sumNanos.Load()).Seconds())
		fmt.Fprintf(w, "%s_request_seconds_count{endpoint=%q} %d\n", ns, name, cells[i].count.Load())
	}

	fmt.Fprintf(w, "# HELP %s_rejected_total Requests shed by the in-flight limiter.\n", ns)
	fmt.Fprintf(w, "# TYPE %s_rejected_total counter\n", ns)
	fmt.Fprintf(w, "%s_rejected_total %d\n", ns, r.rejected.Load())

	fmt.Fprintf(w, "# HELP %s_in_flight Requests currently being served.\n", ns)
	fmt.Fprintf(w, "# TYPE %s_in_flight gauge\n", ns)
	fmt.Fprintf(w, "%s_in_flight %d\n", ns, r.inFlight.Load())

	for i, name := range gnames {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n", ns, name)
		fmt.Fprintf(w, "%s_%s %g\n", ns, name, gvals[i])
	}

	// Labeled live gauges: one TYPE line per name, one sample per series,
	// both in deterministic (sorted) order. Samplers run outside the lock
	// like plain gauge fns.
	for _, s := range lseries {
		fmt.Fprintf(w, "# TYPE %s_%s gauge\n", ns, s.name)
		for i, v := range s.values {
			fmt.Fprintf(w, "%s_%s{%s=%q} %g\n", ns, s.name, s.label, v, s.fns[i]())
		}
	}

	for i, name := range cnames {
		fmt.Fprintf(w, "# TYPE %s_%s counter\n", ns, name)
		fmt.Fprintf(w, "%s_%s %g\n", ns, name, cfns[i]())
	}
}

// statusWriter records the status code and byte count of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// instrumented handlers keep streaming semantics.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

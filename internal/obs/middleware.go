package obs

import (
	"context"
	"log"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"
)

// requestIDKey is the context key under which RequestID stores the id.
type requestIDKey struct{}

// reqPrefix is a per-process random prefix so request ids from different
// server instances don't collide in aggregated logs; reqSeq is the
// monotonically increasing suffix.
var (
	reqPrefix = uint32(rand.Int63())
	reqSeq    atomic.Uint64
)

// RequestIDFrom returns the request id assigned by AccessLog, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// AccessLog wraps next with structured access logging: it assigns each
// request an id (also set as the X-Request-Id response header and stored in
// the request context), and logs one line per request with method, path,
// status, response bytes, duration and remote address. A nil logger uses
// the stdlib default.
func AccessLog(logger *log.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := nextRequestID()
		w.Header().Set("X-Request-Id", id)
		req = req.WithContext(context.WithValue(req.Context(), requestIDKey{}, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, req)
		logger.Printf("access id=%s method=%s path=%q status=%d bytes=%d dur=%s remote=%s",
			id, req.Method, req.URL.RequestURI(), sw.status, sw.bytes,
			time.Since(start).Round(time.Microsecond), req.RemoteAddr)
	})
}

func nextRequestID() string {
	seq := reqSeq.Add(1)
	const hexdig = "0123456789abcdef"
	var b [16]byte
	i := len(b)
	for v := seq; ; v >>= 4 {
		i--
		b[i] = hexdig[v&0xf]
		if v>>4 == 0 {
			break
		}
	}
	i--
	b[i] = '-'
	for v, k := reqPrefix, 0; k < 8; k++ {
		i--
		b[i] = hexdig[v&0xf]
		v >>= 4
	}
	return string(b[i:])
}

// LimitInFlight bounds the number of concurrently executing requests to
// limit; excess requests are shed immediately with 503 and a Retry-After
// hint rather than queued, so a traffic spike degrades to fast rejections
// instead of piling up goroutines. limit <= 0 disables the limiter.
// Rejections are counted in the registry's <ns>_rejected_total.
func (r *Registry) LimitInFlight(limit int, next http.Handler) http.Handler {
	return r.LimitInFlightWith(limit, next, nil)
}

// LimitInFlightWith is LimitInFlight with a caller-supplied rejection
// handler, so servers with extra headers or codes can shed load in their
// own wire format. A nil reject falls back to a WriteError 503 carrying
// the canonical {"error":{code,message}} envelope.
func (r *Registry) LimitInFlightWith(limit int, next http.Handler, reject http.Handler) http.Handler {
	if limit <= 0 {
		return next
	}
	if reject == nil {
		reject = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Retry-After", "1")
			WriteError(w, http.StatusServiceUnavailable, "overloaded", "server overloaded; retry")
		})
	}
	sem := make(chan struct{}, limit)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, req)
		default:
			r.rejected.Add(1)
			reject.ServeHTTP(w, req)
		}
	})
}

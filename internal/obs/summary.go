package obs

import (
	"sort"
	"sync"
	"time"
)

// Latencies is a simple exact-quantile latency sampler for bounded runs —
// load generation, replay, smoke tests — where the observation count is small
// enough (up to a few hundred thousand) that keeping every sample beats a
// histogram's bucket-resolution error. It is not for unbounded server use;
// the Registry's histograms cover that.
type Latencies struct {
	mu sync.Mutex
	ns []int64 // guarded by mu
}

// Observe records one latency sample.
func (l *Latencies) Observe(d time.Duration) {
	l.mu.Lock()
	l.ns = append(l.ns, int64(d))
	l.mu.Unlock()
}

// Count reports how many samples have been observed.
func (l *Latencies) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ns)
}

// Quantile returns the q-th nearest-rank quantile (q in [0,1]) of the
// observed samples, or 0 with no samples. It sorts in place under the lock;
// callers query quantiles after the run, not on the hot path.
func (l *Latencies) Quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ns) == 0 {
		return 0
	}
	sort.Slice(l.ns, func(i, j int) bool { return l.ns[i] < l.ns[j] })
	if q <= 0 {
		return time.Duration(l.ns[0])
	}
	if q >= 1 {
		return time.Duration(l.ns[len(l.ns)-1])
	}
	i := int(q*float64(len(l.ns))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(l.ns) {
		i = len(l.ns) - 1
	}
	return time.Duration(l.ns[i])
}

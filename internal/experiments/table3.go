package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"resistecc/internal/dataset"
	"resistecc/internal/graph"
	"resistecc/internal/optimize"
)

// Table3Row records running times of the four heuristics on one network.
type Table3Row struct {
	Name    string
	N, M    int
	K       int
	Seconds map[string]float64 // algorithm → wall-clock seconds
	Paper   *dataset.Info
}

// Table3 reproduces Table III: the running time of FARMINRECC, CENMINRECC,
// CHMINRECC and MINRECC at k = Options.K on the four largest networks
// (proxied at Options.LargeScale). The paper's shape to preserve:
// CenMinRecc fastest (sketches once), FarMinRecc ≈ ChMinRecc, MinRecc
// slowest (superset candidate set).
func Table3(ctx context.Context, w io.Writer, opt Options) ([]Table3Row, error) {
	opt = opt.withDefaults()
	header(w, fmt.Sprintf("Table III — optimizer running time at k=%d", opt.K))
	fmt.Fprintf(w, "large proxies at scale %.4g\n", opt.LargeScale)
	tw := newTable(w)
	fmt.Fprintln(tw, "Network\tn\tm\tFarMinRecc\tCenMinRecc\tChMinRecc\tMinRecc")
	var rows []Table3Row
	for _, name := range dataset.Largest4() {
		g, in, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		s, err := peripheralSource(ctx, g, opt.Seed)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Name: name, N: g.N(), M: g.M(), K: opt.K, Seconds: map[string]float64{}, Paper: in}
		fopt := optFast(opt)
		for _, a := range []struct {
			label string
			run   func(context.Context, *graph.Graph, int, int, optimize.FastOptions) (*optimize.Result, error)
		}{
			{"FarMinRecc", optimize.FarMinRecc},
			{"CenMinRecc", optimize.CenMinRecc},
			{"ChMinRecc", optimize.ChMinRecc},
			{"MinRecc", optimize.MinRecc},
		} {
			start := time.Now()
			if _, err := a.run(ctx, g, s, opt.K, fopt); err != nil {
				return nil, fmt.Errorf("experiments: table3 %s %s: %w", name, a.label, err)
			}
			row.Seconds[a.label] = time.Since(start).Seconds()
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fs\t%.2fs\t%.2fs\t%.2fs\n",
			row.Name, row.N, row.M,
			row.Seconds["FarMinRecc"], row.Seconds["CenMinRecc"],
			row.Seconds["ChMinRecc"], row.Seconds["MinRecc"])
	}
	return rows, tw.Flush()
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"resistecc/internal/dataset"
	"resistecc/internal/graph"
	"resistecc/internal/optimize"
	"resistecc/internal/pagerank"
)

// Fig9Row holds the c(s)-vs-k curves of one network (one Figure 9 panel).
type Fig9Row struct {
	Name   string
	Source int
	K      []int
	Curves map[string][]float64
}

// Fig9 reproduces Figure 9: the resistance eccentricity c(s) after adding
// k = 1..K edges, comparing FARMINRECC/CENMINRECC (REMD panels) and
// CHMINRECC/MINRECC (REM panels) against the DE-, PK- and PATH- baselines.
// On the paper's large networks only DE-REM remains feasible among the
// baselines; the same degradation is reproduced via the `largeMode` flag in
// Fig9Large.
func Fig9(ctx context.Context, w io.Writer, opt Options, names []string, kStep int) ([]Fig9Row, error) {
	opt = opt.withDefaults()
	if names == nil {
		names = dataset.Figure9Mid()
	}
	if kStep <= 0 {
		kStep = 10
	}
	header(w, fmt.Sprintf("Figure 9 — c(s) vs k (k = 1..%d)", opt.K))
	var rows []Fig9Row
	for _, name := range names {
		g, _, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		s, err := peripheralSource(ctx, g, opt.Seed)
		if err != nil {
			return nil, err
		}
		row, err := fig9Panel(ctx, g, s, opt, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 %s: %w", name, err)
		}
		row.Name = name
		rows = append(rows, *row)
		printFig9Panel(w, g, row, kStep)
	}
	return rows, nil
}

// Fig9Large reproduces the Figure 9 large-network panels (i)-(l): only the
// DE-REM baseline is run against the four heuristics.
func Fig9Large(ctx context.Context, w io.Writer, opt Options, kStep int) ([]Fig9Row, error) {
	opt = opt.withDefaults()
	if kStep <= 0 {
		kStep = 10
	}
	header(w, fmt.Sprintf("Figure 9 (large) — c(s) vs k (k = 1..%d), DE-REM baseline only", opt.K))
	var rows []Fig9Row
	for _, name := range dataset.Largest4() {
		g, _, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		s, err := peripheralSource(ctx, g, opt.Seed)
		if err != nil {
			return nil, err
		}
		row, err := fig9Panel(ctx, g, s, opt, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9large %s: %w", name, err)
		}
		row.Name = name
		rows = append(rows, *row)
		printFig9Panel(w, g, row, kStep)
	}
	return rows, nil
}

func fig9Panel(ctx context.Context, g *graph.Graph, s int, opt Options, largeMode bool) (*Fig9Row, error) {
	k := opt.K
	fopt := optFast(opt)
	row := &Fig9Row{Source: s, Curves: map[string][]float64{}}
	for i := 0; i <= k; i++ {
		row.K = append(row.K, i)
	}

	type algo struct {
		label string
		run   func() (*optimize.Result, error)
	}
	algos := []algo{
		{"FarMinRecc", func() (*optimize.Result, error) { return optimize.FarMinRecc(ctx, g, s, k, fopt) }},
		{"CenMinRecc", func() (*optimize.Result, error) { return optimize.CenMinRecc(ctx, g, s, k, fopt) }},
		{"ChMinRecc", func() (*optimize.Result, error) { return optimize.ChMinRecc(ctx, g, s, k, fopt) }},
		{"MinRecc", func() (*optimize.Result, error) { return optimize.MinRecc(ctx, g, s, k, fopt) }},
		{"DE-REM", func() (*optimize.Result, error) { return optimize.Degree(g, optimize.REM, s, k) }},
	}
	if !largeMode {
		algos = append(algos,
			algo{"DE-REMD", func() (*optimize.Result, error) { return optimize.Degree(g, optimize.REMD, s, k) }},
			algo{"PK-REMD", func() (*optimize.Result, error) {
				return optimize.PageRank(g, optimize.REMD, s, k, pagerank.Options{})
			}},
			algo{"PK-REM", func() (*optimize.Result, error) {
				return optimize.PageRank(g, optimize.REM, s, k, pagerank.Options{})
			}},
			algo{"PATH-REMD", func() (*optimize.Result, error) {
				return optimize.Path(g, optimize.REMD, s, k, optimize.PathOptions{})
			}},
			algo{"PATH-REM", func() (*optimize.Result, error) {
				return optimize.Path(g, optimize.REM, s, k, optimize.PathOptions{})
			}},
		)
	}
	for _, a := range algos {
		res, err := a.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.label, err)
		}
		traj, err := optimize.ExactTrajectory(g, s, res.Edges)
		if err != nil {
			return nil, fmt.Errorf("%s trajectory: %w", a.label, err)
		}
		for len(traj) <= k {
			traj = append(traj, traj[len(traj)-1])
		}
		row.Curves[a.label] = traj[:k+1]
	}
	return row, nil
}

func printFig9Panel(w io.Writer, g *graph.Graph, row *Fig9Row, kStep int) {
	fmt.Fprintf(w, "\n%s (n=%d m=%d source=%d):\n", row.Name, g.N(), g.M(), row.Source)
	tw := newTable(w)
	var labels []string
	for _, l := range []string{
		"FarMinRecc", "CenMinRecc", "ChMinRecc", "MinRecc",
		"DE-REMD", "DE-REM", "PK-REMD", "PK-REM", "PATH-REMD", "PATH-REM",
	} {
		if _, ok := row.Curves[l]; ok {
			labels = append(labels, l)
		}
	}
	fmt.Fprint(tw, "k")
	for _, l := range labels {
		fmt.Fprintf(tw, "\t%s", l)
	}
	fmt.Fprintln(tw)
	for _, k := range row.K {
		if k != 0 && k != row.K[len(row.K)-1] && k%kStep != 0 {
			continue
		}
		fmt.Fprintf(tw, "%d", k)
		for _, l := range labels {
			fmt.Fprintf(tw, "\t%.4f", row.Curves[l][k])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

package experiments

import (
	"fmt"
	"io"

	"resistecc/internal/ecc"
	"resistecc/internal/stats"
)

// Fig2Row summarizes the resistance-eccentricity distribution of one network
// and its Burr XII fit (the paper's Figure 2 panels).
type Fig2Row struct {
	Name     string
	N        int
	Radius   float64
	Diameter float64
	Mean     float64
	Skewness float64
	Kurtosis float64
	Fit      stats.BurrFit
	Hist     *stats.Histogram
}

// Fig2 reproduces Figure 2: the resistance eccentricity distribution of the
// four Table I networks with a fitted Burr Type XII density. The paper's
// qualitative claims — asymmetry, rightward skew, pronounced heavy tail —
// are checked through the sample skewness (positive) and the mass
// concentration just above the radius.
func Fig2(w io.Writer, opt Options) ([]Fig2Row, error) {
	opt = opt.withDefaults()
	header(w, "Figure 2 — resistance eccentricity distribution + Burr fit")
	tw := newTable(w)
	fmt.Fprintln(tw, "Network\tn\tphi\tR\tmean\tskewness\tkurtosis\tBurr c\tBurr k\tBurr lambda\tKS")
	var rows []Fig2Row
	for _, name := range tableINames() {
		g, _, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		ex, err := ecc.NewExact(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig2 %s: %w", name, err)
		}
		dist := ex.Distribution()
		sum := ecc.Summarize(dist)
		mom := stats.ComputeMoments(dist)
		fit, err := stats.FitBurr(dist)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig2 %s burr fit: %w", name, err)
		}
		hist, err := stats.NewHistogram(dist, 30)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{
			Name: name, N: g.N(),
			Radius: sum.Radius, Diameter: sum.Diameter,
			Mean: mom.Mean, Skewness: mom.Skewness, Kurtosis: mom.ExcessKurtosis,
			Fit: *fit, Hist: hist,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.4f\n",
			row.Name, row.N, row.Radius, row.Diameter, row.Mean,
			row.Skewness, row.Kurtosis, fit.C, fit.K, fit.Lambda, fit.KS)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	// ASCII sketch of each histogram (x: eccentricity bins, y: node counts),
	// the visual analogue of the Figure 2 panels.
	for _, row := range rows {
		fmt.Fprintf(w, "\n%s (phi=%.2f R=%.2f):\n", row.Name, row.Radius, row.Diameter)
		renderHistogram(w, row.Hist)
	}
	return rows, nil
}

// renderHistogram prints a compact horizontal-bar histogram.
func renderHistogram(w io.Writer, h *stats.Histogram) {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return
	}
	const width = 50
	for i, c := range h.Counts {
		bar := c * width / maxC
		fmt.Fprintf(w, "  %8.3f |%s %d\n", h.BinCenter(i), repeat('#', bar), c)
	}
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}

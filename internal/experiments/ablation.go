package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/linalg"
	"resistecc/internal/sketch"
	"resistecc/internal/solver"
)

// AblationHull quantifies design choice 1 of DESIGN.md: FASTQUERY's hull
// pruning versus APPROXQUERY's full scan, at equal sketches. Reported per
// network: hull size l, full-distribution query time with and without the
// hull, and the accuracy cost.
func AblationHull(w io.Writer, opt Options, names []string) error {
	opt = opt.withDefaults()
	if names == nil {
		names = []string{"EmailUN", "Politician"}
	}
	header(w, "Ablation 1 — hull pruning (FASTQUERY) vs full scan (APPROXQUERY)")
	tw := newTable(w)
	fmt.Fprintln(tw, "Network\tn\tl\tscan all\tscan hull\tspeedup\tsigma(hull vs scan)")
	eps := opt.Epsilons[0]
	for _, name := range names {
		g, _, err := opt.proxy(name)
		if err != nil {
			return err
		}
		f, err := ecc.NewFast(g, opt.fastOptions(eps))
		if err != nil {
			return err
		}
		// Full scan over the same sketch.
		start := time.Now()
		full := make([]float64, g.N())
		for v := 0; v < g.N(); v++ {
			full[v], _ = f.Sk.Eccentricity(v)
		}
		fullDur := time.Since(start)
		start = time.Now()
		pruned := f.Distribution()
		prunedDur := time.Since(start)
		sigma, err := ecc.RelativeError(pruned, full)
		if err != nil {
			return err
		}
		speedup := float64(fullDur) / float64(prunedDur)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%.1fx\t%.3f%%\n",
			name, g.N(), f.L(), fmtDur(fullDur), fmtDur(prunedDur), speedup, sigma*100)
	}
	return tw.Flush()
}

// AblationSketchDim quantifies design choice 2: accuracy as a function of
// the sketch dimension, against the theoretical ⌈24 ln n/ε²⌉.
func AblationSketchDim(w io.Writer, opt Options, name string, dims []int) error {
	opt = opt.withDefaults()
	if name == "" {
		name = "EmailUN"
	}
	if len(dims) == 0 {
		dims = []int{16, 32, 64, 128, 256, 512}
	}
	g, _, err := opt.proxy(name)
	if err != nil {
		return err
	}
	ex, err := ecc.NewExact(g)
	if err != nil {
		return err
	}
	exact := ex.Distribution()
	eps := opt.Epsilons[0]
	header(w, fmt.Sprintf("Ablation 2 — sketch dimension on %s (n=%d, theoretical d=%d at eps=%.1f)",
		name, g.N(), sketch.TheoreticalDim(g.N(), eps), eps))
	tw := newTable(w)
	fmt.Fprintln(tw, "dim\tbuild time\tsigma")
	for _, d := range dims {
		o := opt
		o.Dim = d
		start := time.Now()
		ap, err := ecc.NewApprox(g, o.sketchOptions(eps))
		if err != nil {
			return err
		}
		approx := ap.Distribution()
		dur := time.Since(start)
		sigma, err := ecc.RelativeError(approx, exact)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%s\t%.3f%%\n", d, fmtDur(dur), sigma*100)
	}
	return tw.Flush()
}

// AblationSolver quantifies design choice 3: CG preconditioners on one
// representative solve workload (a full sketch build).
func AblationSolver(ctx context.Context, w io.Writer, opt Options, name string) error {
	opt = opt.withDefaults()
	if name == "" {
		name = "EmailUN"
	}
	g, _, err := opt.proxy(name)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Ablation 3 — solver preconditioner on %s (n=%d m=%d)", name, g.N(), g.M()))
	tw := newTable(w)
	fmt.Fprintln(tw, "preconditioner\titers\ttime")
	csr := g.ToCSR()
	b := make([]float64, g.N())
	// A representative hard RHS: unit dipole between two peripheral nodes.
	s, err := peripheralSource(ctx, g, opt.Seed)
	if err != nil {
		return err
	}
	_, far := g.Eccentricity(s)
	b[s], b[far] = 1, -1
	for _, pc := range []solver.Preconditioner{solver.None, solver.Jacobi, solver.SGS} {
		lap, err := solver.NewLap(csr, solver.Options{Precond: pc})
		if err != nil {
			return err
		}
		x := make([]float64, g.N())
		start := time.Now()
		iters, err := lap.Solve(b, x)
		dur := time.Since(start)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", pc, iters, fmtDur(dur))
	}
	return tw.Flush()
}

// AblationShermanMorrison quantifies design choice 4: the SIMPLE greedy's
// O(n)-per-candidate Sherman–Morrison scoring versus naive re-inversion.
func AblationShermanMorrison(w io.Writer, opt Options, n int) error {
	opt = opt.withDefaults()
	if n <= 0 {
		n = 150
	}
	g := graph.BarabasiAlbert(n, 3, opt.Seed)
	s := 0
	header(w, fmt.Sprintf("Ablation 4 — Sherman–Morrison greedy vs naive re-inversion (n=%d)", n))
	lp, err := linalg.Pseudoinverse(g)
	if err != nil {
		return err
	}
	cands := g.SourceCandidates(s)
	if len(cands) > 40 {
		cands = cands[:40]
	}
	// Sherman–Morrison scoring.
	start := time.Now()
	smBest, smVal := graph.Edge{}, math.Inf(1)
	for _, e := range cands {
		c := eccAfterEdgeSM(lp, s, e.U, e.V)
		if c < smVal {
			smVal, smBest = c, e
		}
	}
	smDur := time.Since(start)
	// Naive scoring: clone + add edge + full pseudoinverse per candidate.
	start = time.Now()
	nvBest, nvVal := graph.Edge{}, math.Inf(1)
	for _, e := range cands {
		h := g.Clone()
		if err := h.AddEdge(e.U, e.V); err != nil {
			return err
		}
		lph, err := linalg.Pseudoinverse(h)
		if err != nil {
			return err
		}
		c, _ := linalg.EccentricityFromPinv(lph, s)
		if c < nvVal {
			nvVal, nvBest = c, e
		}
	}
	nvDur := time.Since(start)
	tw := newTable(w)
	fmt.Fprintln(tw, "method\tbest edge\tc(s)\ttime")
	fmt.Fprintf(tw, "Sherman–Morrison\t%v\t%.6f\t%s\n", smBest, smVal, fmtDur(smDur))
	fmt.Fprintf(tw, "naive re-inversion\t%v\t%.6f\t%s\n", nvBest, nvVal, fmtDur(nvDur))
	fmt.Fprintf(tw, "speedup\t\t\t%.1fx\n", float64(nvDur)/float64(smDur))
	return tw.Flush()
}

// eccAfterEdgeSM mirrors optimize.eccAfterEdge for the ablation without
// exporting the internal helper.
func eccAfterEdgeSM(lp *linalg.Dense, s, u, v int) float64 {
	best := 0.0
	n := lp.N
	lss := lp.At(s, s)
	denom := 1 + linalg.Resistance(lp, u, v)
	for j := 0; j < n; j++ {
		if j == s {
			continue
		}
		r := lss + lp.At(j, j) - 2*lp.At(s, j)
		diff := (lp.At(s, u) - lp.At(s, v)) - (lp.At(j, u) - lp.At(j, v))
		r -= diff * diff / denom
		if r > best {
			best = r
		}
	}
	return best
}

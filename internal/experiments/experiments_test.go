package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func tinyOpts() Options {
	return Options{
		Scale:           0.03,
		LargeScale:      0.0006,
		Epsilons:        []float64{0.3},
		Dim:             32,
		K:               4,
		Seed:            1,
		MaxHullVertices: 12,
		MaxCandidates:   8,
		ExactLimit:      2500,
	}
}

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table1(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Phi <= 0 || r.R < r.Phi {
			t.Fatalf("%s: phi=%g R=%g", r.Name, r.Phi, r.R)
		}
		if r.CentralNodes < 1 {
			t.Fatalf("%s: no central nodes", r.Name)
		}
		// Paper-reported metadata must flow through for the comparison.
		if r.PaperPhi <= 0 || r.PaperR <= r.PaperPhi {
			t.Fatalf("%s: paper metadata missing", r.Name)
		}
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatal("missing banner")
	}
}

func TestFig2Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig2(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	positiveSkew := 0
	for _, r := range rows {
		if r.Fit.C <= 0 || r.Fit.K <= 0 {
			t.Fatalf("%s: bad Burr fit %+v", r.Name, r.Fit)
		}
		if r.Skewness > 0 {
			positiveSkew++
		}
	}
	// §IV-B: right skewness should be the norm on scale-free proxies.
	if positiveSkew < 3 {
		t.Fatalf("only %d of 4 networks right-skewed", positiveSkew)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Fatal("histogram rendering missing")
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	rows, err := Table2(&buf, opt, []string{"Unicode-language", "EmailUN"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Capped {
			t.Fatalf("%s should not be capped at this scale", r.Name)
		}
		for _, eps := range opt.Epsilons {
			if r.Fast[eps] <= 0 {
				t.Fatalf("%s: no fast timing", r.Name)
			}
			// The measured σ must respect (generously) the ε guarantee.
			if r.Sigma[eps] > eps {
				t.Fatalf("%s: sigma %.3f > eps %.3f", r.Name, r.Sigma[eps], eps)
			}
			if r.HullL[eps] <= 0 {
				t.Fatalf("%s: hull size", r.Name)
			}
		}
	}
}

func TestTable2LargeSkipsExact(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	opt.ExactLimit = 10 // force the cap (EmailUN proxy has ≈ 34 nodes here)
	rows, err := Table2(&buf, opt, []string{"EmailUN"})
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].Capped || rows[0].Exact != 0 {
		t.Fatal("exact should be skipped above the limit")
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatal("dash for skipped exact missing")
	}
}

func TestFig7Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig7(&buf, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Diameter < r.Radius || r.L <= 0 {
			t.Fatalf("%s: %+v", r.Name, r)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	opt.K = 2 // keep exhaustive search fast
	rows, err := Fig8(context.Background(), &buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		opt := r.Curves["OPT-REMD"]
		sim := r.Curves["SIM-REMD"]
		for ki := range r.K {
			// OPT is a lower bound for every REMD heuristic.
			if sim[ki] < opt[ki]-1e-9 {
				t.Fatalf("%s k=%d: SIM %.4f below OPT %.4f", r.Name, r.K[ki], sim[ki], opt[ki])
			}
			// OPT-REM dominates OPT-REMD (larger candidate set).
			if r.Curves["OPT-REM"][ki] > opt[ki]+1e-9 {
				t.Fatalf("%s k=%d: OPT-REM above OPT-REMD", r.Name, r.K[ki])
			}
		}
		// The paper's claim: greedy heuristics are near-optimal on these
		// tiny dense networks (within a small factor at k ≤ 2).
		last := len(r.K) - 1
		if sim[last] > opt[last]*1.25+1e-9 {
			t.Fatalf("%s: SIM-REMD %.4f far from OPT %.4f", r.Name, sim[last], opt[last])
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	opt.K = 5
	rows, err := Fig9(context.Background(), &buf, opt, []string{"EmailUN"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	want := []string{
		"FarMinRecc", "CenMinRecc", "ChMinRecc", "MinRecc",
		"DE-REMD", "DE-REM", "PK-REMD", "PK-REM", "PATH-REMD", "PATH-REM",
	}
	for _, l := range want {
		curve, ok := r.Curves[l]
		if !ok {
			t.Fatalf("missing curve %s", l)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-9 {
				t.Fatalf("%s not monotone at k=%d", l, i)
			}
		}
	}
	// Our heuristics should beat the weakest baseline at the budget end.
	k := opt.K
	best := r.Curves["MinRecc"][k]
	if far := r.Curves["FarMinRecc"][k]; far < best {
		best = far
	}
	if best > r.Curves["PK-REM"][k]+1e-9 && best > r.Curves["DE-REM"][k]+1e-9 {
		t.Fatalf("heuristics (%.4f) beaten by both PK-REM (%.4f) and DE-REM (%.4f)",
			best, r.Curves["PK-REM"][k], r.Curves["DE-REM"][k])
	}
}

func TestFig9LargeSmoke(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	opt.K = 2
	opt.LargeScale = 0.0002
	opt.MaxCandidates = 6
	opt.MaxHullVertices = 8
	rows, err := Fig9Large(context.Background(), &buf, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if _, ok := r.Curves["PK-REM"]; ok {
			t.Fatal("large mode must omit PK baselines")
		}
		if _, ok := r.Curves["DE-REM"]; !ok {
			t.Fatal("large mode keeps DE-REM")
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	opt.K = 2
	opt.LargeScale = 0.0002
	opt.MaxCandidates = 6
	opt.MaxHullVertices = 8
	rows, err := Table3(context.Background(), &buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		for _, algo := range []string{"FarMinRecc", "CenMinRecc", "ChMinRecc", "MinRecc"} {
			if r.Seconds[algo] <= 0 {
				t.Fatalf("%s: missing timing for %s", r.Name, algo)
			}
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	var buf bytes.Buffer
	opt := tinyOpts()
	if err := AblationHull(&buf, opt, []string{"EmailUN"}); err != nil {
		t.Fatal(err)
	}
	if err := AblationSketchDim(&buf, opt, "EmailUN", []int{16, 64}); err != nil {
		t.Fatal(err)
	}
	if err := AblationSolver(context.Background(), &buf, opt, "EmailUN"); err != nil {
		t.Fatal(err)
	}
	if err := AblationShermanMorrison(&buf, opt, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banner := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "Ablation 4"} {
		if !strings.Contains(out, banner) {
			t.Fatalf("missing %s", banner)
		}
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV and §VIII) on the synthetic dataset proxies, printing
// paper-reported values side by side with measured ones. Both the
// cmd/reccexp binary and the root-level benchmarks drive this package.
//
// All experiments accept a scale factor so the full suite runs on laptop/CI
// budgets: structural claims (who wins, by what factor, where crossovers
// fall) are scale-invariant even though absolute wall-clock numbers are not
// comparable to the authors' Julia testbed. See EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"resistecc/internal/dataset"
	"resistecc/internal/ecc"
	"resistecc/internal/graph"
	"resistecc/internal/hull"
	"resistecc/internal/sketch"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks each dataset proxy to Scale·n nodes (default 0.05 for
	// mid-size networks; the per-experiment runners clamp further).
	Scale float64
	// LargeScale applies to the four asterisked 10⁶–10⁷-node networks
	// (default 0.004, about 7k–16k proxy nodes).
	LargeScale float64
	// Epsilons for Table II (default 0.3, 0.2, 0.1 as in the paper).
	Epsilons []float64
	// Dim overrides the sketch dimension (default: 24·ln(n)/ε² is far too
	// conservative to be interesting; we use 12/ε², which tracks the ε
	// ordering while staying runnable — the dimension ablation quantifies
	// the residual).
	Dim int
	// K is the edge budget for the optimization experiments (default 50 for
	// Figure 9 / Table III, 4 for Figure 8).
	K int
	// Seed fixes all randomness.
	Seed int64
	// MaxHullVertices caps l (default 64; 0 keeps the certified hull).
	MaxHullVertices int
	// MaxCandidates caps the hull-pair candidates each ChMinRecc/MinRecc
	// round scores with a fresh APPROXRECC sketch (default 32). The paper
	// evaluates all O(l²) pairs; the cap keeps runs tractable while
	// preserving the ranking (pairs are pre-sorted by sketched distance).
	MaxCandidates int
	// ExactLimit is the largest n for which EXACTQUERY is attempted
	// (default 4000; mirrors the paper's "—" entries for large networks).
	ExactLimit int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.LargeScale <= 0 {
		o.LargeScale = 0.004
	}
	if len(o.Epsilons) == 0 {
		o.Epsilons = []float64{0.3, 0.2, 0.1}
	}
	if o.K <= 0 {
		o.K = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxHullVertices == 0 {
		o.MaxHullVertices = 64
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 32
	}
	if o.ExactLimit <= 0 {
		o.ExactLimit = 4000
	}
	return o
}

// dimFor picks the sketch dimension for a given ε (see Options.Dim).
func (o Options) dimFor(eps float64) int {
	if o.Dim > 0 {
		return o.Dim
	}
	return int(12/(eps*eps)) + 1
}

// sketchOptions assembles APPROXER options for one ε.
func (o Options) sketchOptions(eps float64) sketch.Options {
	return sketch.Options{Epsilon: eps, Dim: o.dimFor(eps), Seed: o.Seed}
}

// fastOptions assembles FASTQUERY options for one ε.
func (o Options) fastOptions(eps float64) ecc.FastOptions {
	return ecc.FastOptions{
		Sketch: o.sketchOptions(eps),
		Hull:   hull.Options{MaxVertices: o.MaxHullVertices},
	}
}

// proxy instantiates a dataset proxy at the right scale for its size class.
func (o Options) proxy(name string) (*graph.Graph, *dataset.Info, error) {
	in, err := dataset.Get(name)
	if err != nil {
		return nil, nil, err
	}
	scale := o.Scale
	if in.Large {
		scale = o.LargeScale
	}
	if in.Family == dataset.DenseSocial {
		scale = 1
	}
	g, err := in.Proxy(scale)
	if err != nil {
		return nil, nil, err
	}
	return g, in, nil
}

// timed measures fn's wall clock.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// newTable returns a tabwriter suitable for aligned experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// peripheralSource returns a deterministic peripheral node: the node with
// the largest approximate resistance eccentricity. The paper optimizes "a
// given node s"; a peripheral source leaves room for improvement, matching
// the Figure 8/9 setting where c(s) drops substantially.
func peripheralSource(ctx context.Context, g *graph.Graph, seed int64) (int, error) {
	sk, err := sketch.NewContext(ctx, g.ToCSR(), sketch.Options{Epsilon: 0.5, Dim: 32, Seed: seed})
	if err != nil {
		return 0, err
	}
	// Farthest node from an arbitrary start is peripheral (double sweep in
	// the resistance metric).
	_, far := sk.Eccentricity(0)
	return far, nil
}

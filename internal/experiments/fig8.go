package experiments

import (
	"context"
	"fmt"
	"io"

	"resistecc/internal/dataset"
	"resistecc/internal/optimize"
)

// Fig8Row holds c(s) after k additions for every algorithm on one tiny
// network (one Figure 8 panel).
type Fig8Row struct {
	Name   string
	Source int
	K      []int
	// Curves maps algorithm name → c(s) values aligned with K.
	Curves map[string][]float64
}

// Fig8 reproduces Figure 8: on the four tiny sociograms (Kangaroo, Rhesus,
// Cloister, Tribes) the greedy heuristics are compared against the true
// optimum (exhaustive search) for k = 0..4, separately for REMD and REM.
// The paper's claim: the heuristics are near-optimal on all four. ctx
// cancels the sketch rebuilds inside the heuristics.
func Fig8(ctx context.Context, w io.Writer, opt Options) ([]Fig8Row, error) {
	opt = opt.withDefaults()
	kMax := opt.K
	if kMax > 4 {
		kMax = 4 // exhaustive search is exponential in k
	}
	header(w, "Figure 8 — heuristics vs optimum on tiny networks (k = 0..4)")
	var rows []Fig8Row
	for _, name := range dataset.Tiny() {
		g, _, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		s, err := peripheralSource(ctx, g, opt.Seed)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Name: name, Source: s, Curves: map[string][]float64{}}
		for k := 0; k <= kMax; k++ {
			row.K = append(row.K, k)
		}

		// Exhaustive optima per k (REMD and REM).
		for _, p := range []optimize.Problem{optimize.REMD, optimize.REM} {
			label := "OPT-" + p.String()
			for k := 0; k <= kMax; k++ {
				_, val, err := optimize.Exhaustive(g, p, s, k)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig8 %s %s k=%d: %w", name, label, k, err)
				}
				row.Curves[label] = append(row.Curves[label], val)
			}
		}

		// Greedy heuristics: run once at k=kMax and replay prefixes.
		fopt := optFast(opt)
		algos := []struct {
			label string
			run   func() (*optimize.Result, error)
		}{
			{"SIM-REMD", func() (*optimize.Result, error) { return optimize.Simple(g, optimize.REMD, s, kMax) }},
			{"SIM-REM", func() (*optimize.Result, error) { return optimize.Simple(g, optimize.REM, s, kMax) }},
			{"FarMinRecc", func() (*optimize.Result, error) { return optimize.FarMinRecc(ctx, g, s, kMax, fopt) }},
			{"CenMinRecc", func() (*optimize.Result, error) { return optimize.CenMinRecc(ctx, g, s, kMax, fopt) }},
			{"ChMinRecc", func() (*optimize.Result, error) { return optimize.ChMinRecc(ctx, g, s, kMax, fopt) }},
			{"MinRecc", func() (*optimize.Result, error) { return optimize.MinRecc(ctx, g, s, kMax, fopt) }},
		}
		for _, a := range algos {
			res, err := a.run()
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 %s %s: %w", name, a.label, err)
			}
			traj, err := optimize.ExactTrajectory(g, s, res.Edges)
			if err != nil {
				return nil, err
			}
			// Trajectories may stop early if candidates ran out; pad with the
			// final value so curves stay aligned.
			for len(traj) <= kMax {
				traj = append(traj, traj[len(traj)-1])
			}
			row.Curves[a.label] = traj[:kMax+1]
		}
		rows = append(rows, row)

		fmt.Fprintf(w, "\n%s (n=%d m=%d source=%d):\n", name, g.N(), g.M(), s)
		tw := newTable(w)
		fmt.Fprint(tw, "k")
		order := []string{"OPT-REMD", "SIM-REMD", "FarMinRecc", "CenMinRecc", "OPT-REM", "SIM-REM", "ChMinRecc", "MinRecc"}
		for _, l := range order {
			fmt.Fprintf(tw, "\t%s", l)
		}
		fmt.Fprintln(tw)
		for ki, k := range row.K {
			fmt.Fprintf(tw, "%d", k)
			for _, l := range order {
				fmt.Fprintf(tw, "\t%.4f", row.Curves[l][ki])
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// optFast builds FastOptions from the experiment options.
func optFast(opt Options) optimize.FastOptions {
	f := optimize.FastOptions{MaxCandidates: opt.MaxCandidates}
	f.Sketch = opt.sketchOptions(opt.Epsilons[0])
	f.Hull.MaxVertices = opt.MaxHullVertices
	return f
}

package experiments

import (
	"fmt"
	"io"

	"resistecc/internal/dataset"
	"resistecc/internal/ecc"
	"resistecc/internal/stats"
)

// Fig7Row summarizes one large network's FASTQUERY distribution.
type Fig7Row struct {
	Name     string
	N, M     int
	L        int // hull boundary size
	Radius   float64
	Diameter float64
	Skewness float64
	Hist     *stats.Histogram
}

// Fig7 reproduces Figure 7: the approximate resistance eccentricity
// distribution of the four largest networks, computed with FASTQUERY
// (EXACTQUERY is infeasible there). The qualitative claim re-checked here:
// asymmetry, rightward skew and a pronounced heavy tail on every network.
func Fig7(w io.Writer, opt Options) ([]Fig7Row, error) {
	opt = opt.withDefaults()
	header(w, "Figure 7 — FASTQUERY distribution on the largest networks")
	fmt.Fprintf(w, "large proxies at scale %.4g\n", opt.LargeScale)
	tw := newTable(w)
	fmt.Fprintln(tw, "Network\tn\tm\tl\tphi\tR\tskewness")
	eps := opt.Epsilons[0]
	var rows []Fig7Row
	for _, name := range dataset.Largest4() {
		g, _, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		f, err := ecc.NewFast(g, opt.fastOptions(eps))
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s: %w", name, err)
		}
		dist := f.Distribution()
		sum := ecc.Summarize(dist)
		mom := stats.ComputeMoments(dist)
		hist, err := stats.NewHistogram(dist, 30)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{
			Name: name, N: g.N(), M: g.M(), L: f.L(),
			Radius: sum.Radius, Diameter: sum.Diameter,
			Skewness: mom.Skewness, Hist: hist,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\n",
			row.Name, row.N, row.M, row.L, row.Radius, row.Diameter, row.Skewness)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	for _, row := range rows {
		fmt.Fprintf(w, "\n%s:\n", row.Name)
		renderHistogram(w, row.Hist)
	}
	return rows, nil
}

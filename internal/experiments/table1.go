package experiments

import (
	"fmt"
	"io"

	"resistecc/internal/ecc"
)

// Table1Row is one measured row of Table I.
type Table1Row struct {
	Name          string
	N, M          int
	AvgDegree     float64
	Gamma         float64
	Phi, R        float64 // measured resistance radius and diameter
	PaperPhi      float64
	PaperR        float64
	CentralNodes  int
	PaperN        int
	PaperM        int
	PaperAvgDeg   float64
	PaperGammaVal float64
}

// Table1 reproduces Table I: dataset statistics plus resistance radius φ and
// resistance diameter R for the four distribution-analysis networks, via
// EXACTQUERY on the scaled proxies.
func Table1(w io.Writer, opt Options) ([]Table1Row, error) {
	opt = opt.withDefaults()
	header(w, "Table I — dataset statistics, resistance radius and diameter")
	fmt.Fprintf(w, "proxies at scale %.3g; paper values in parentheses\n", opt.Scale)
	tw := newTable(w)
	fmt.Fprintln(tw, "Network\tn\tm\td_avg\tgamma\tphi\tR\t|center|")
	var rows []Table1Row
	for _, name := range tableINames() {
		g, in, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		ex, err := ecc.NewExact(g)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %s: %w", name, err)
		}
		sum := ecc.Summarize(ex.Distribution())
		st := g.SummarizeFast()
		row := Table1Row{
			Name: name, N: st.N, M: st.M, AvgDegree: st.AvgDegree,
			Gamma: st.PowerLawGamma, Phi: sum.Radius, R: sum.Diameter,
			PaperPhi: in.PaperPhi, PaperR: in.PaperR,
			CentralNodes: len(sum.Center),
			PaperN:       in.N, PaperM: in.M,
			PaperAvgDeg: in.AvgDegree, PaperGammaVal: in.Gamma,
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%d (%d)\t%d (%d)\t%.2f (%.2f)\t%.2f (%.2f)\t%.2f (%.2f)\t%.2f (%.2f)\t%d\n",
			row.Name, row.N, row.PaperN, row.M, row.PaperM,
			row.AvgDegree, row.PaperAvgDeg, row.Gamma, row.PaperGammaVal,
			row.Phi, row.PaperPhi, row.R, row.PaperR, row.CentralNodes)
	}
	return rows, tw.Flush()
}

func tableINames() []string {
	return []string{"Politician", "Musae-FR", "Government", "HepPh"}
}

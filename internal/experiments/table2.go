package experiments

import (
	"fmt"
	"io"
	"time"

	"resistecc/internal/dataset"
	"resistecc/internal/ecc"
)

// Table2Row records one network's Table II measurements.
type Table2Row struct {
	Name   string
	N, M   int
	Exact  time.Duration             // EXACTQUERY full-distribution time (0 if skipped)
	Fast   map[float64]time.Duration // ε → FASTQUERY full-distribution time
	Sigma  map[float64]float64       // ε → measured relative error (fraction)
	HullL  map[float64]int           // ε → boundary size l
	Paper  *dataset.Info
	Capped bool // EXACTQUERY skipped (n above ExactLimit)
}

// table2Names selects the Table II corpus: all scale-free registry networks,
// small and large.
func table2Names(includeLarge bool) []string {
	var names []string
	for _, in := range dataset.All() {
		if in.Family != dataset.ScaleFree {
			continue
		}
		if in.Large && !includeLarge {
			continue
		}
		names = append(names, in.Name)
	}
	return names
}

// Table2 reproduces Table II: running time of EXACTQUERY vs FASTQUERY for
// ε ∈ {0.3, 0.2, 0.1} plus the relative error σ (Eq. 8) of FASTQUERY's
// distribution. Large (asterisked) networks skip EXACTQUERY, exactly as the
// paper's "—" entries do — there the exact method is infeasible, here the
// same cutoff is enforced by Options.ExactLimit.
//
// names narrows the corpus (nil = every scale-free registry network,
// including the large ones at Options.LargeScale).
func Table2(w io.Writer, opt Options, names []string) ([]Table2Row, error) {
	opt = opt.withDefaults()
	if names == nil {
		names = table2Names(true)
	}
	header(w, "Table II — EXACTQUERY vs FASTQUERY running time and relative error")
	fmt.Fprintf(w, "scale=%.3g largeScale=%.3g dim(eps)=%v hullCap=%d\n",
		opt.Scale, opt.LargeScale, func() []int {
			var d []int
			for _, e := range opt.Epsilons {
				d = append(d, opt.dimFor(e))
			}
			return d
		}(), opt.MaxHullVertices)
	tw := newTable(w)
	fmt.Fprint(tw, "Network\tn\tm\tEXACT")
	for _, e := range opt.Epsilons {
		fmt.Fprintf(tw, "\tFAST e=%.1f", e)
	}
	for _, e := range opt.Epsilons {
		fmt.Fprintf(tw, "\tsigma e=%.1f", e)
	}
	fmt.Fprintln(tw, "\tl")

	var rows []Table2Row
	for _, name := range names {
		g, in, err := opt.proxy(name)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Name: name, N: g.N(), M: g.M(), Paper: in,
			Fast:  map[float64]time.Duration{},
			Sigma: map[float64]float64{},
			HullL: map[float64]int{},
		}
		var exactDist []float64
		if g.N() <= opt.ExactLimit {
			d, err := timed(func() error {
				ex, err := ecc.NewExact(g)
				if err != nil {
					return err
				}
				exactDist = ex.Distribution()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: table2 %s exact: %w", name, err)
			}
			row.Exact = d
		} else {
			row.Capped = true
		}
		for _, eps := range opt.Epsilons {
			var fastDist []float64
			var l int
			d, err := timed(func() error {
				f, err := ecc.NewFast(g, opt.fastOptions(eps))
				if err != nil {
					return err
				}
				l = f.L()
				fastDist = f.Distribution()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: table2 %s fast eps=%g: %w", name, eps, err)
			}
			row.Fast[eps] = d
			row.HullL[eps] = l
			if exactDist != nil {
				sigma, err := ecc.RelativeError(fastDist, exactDist)
				if err != nil {
					return nil, err
				}
				row.Sigma[eps] = sigma
			}
		}
		rows = append(rows, row)

		exact := "-"
		if !row.Capped {
			exact = fmtDur(row.Exact)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s", row.Name, row.N, row.M, exact)
		for _, e := range opt.Epsilons {
			fmt.Fprintf(tw, "\t%s", fmtDur(row.Fast[e]))
		}
		for _, e := range opt.Epsilons {
			if row.Capped {
				fmt.Fprint(tw, "\t-")
			} else {
				fmt.Fprintf(tw, "\t%.2f%%", row.Sigma[e]*100)
			}
		}
		fmt.Fprintf(tw, "\t%d\n", row.HullL[opt.Epsilons[0]])
	}
	return rows, tw.Flush()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

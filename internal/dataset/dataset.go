// Package dataset catalogues the real-world networks used in the paper's
// experiments (Tables I–III, Figures 2 and 7–9) and provides deterministic
// synthetic proxies for them.
//
// The originals come from the Koblenz Network Collection (KONECT) and
// NetworkRepository and are not redistributable nor downloadable in this
// offline environment, so each entry carries (a) the statistics the paper
// reports — kept verbatim so EXPERIMENTS.md can show paper-vs-measured — and
// (b) a generator recipe that reproduces the structural regime the paper's
// claims rest on: scale-free degree tail, small-world distances, high
// clustering (see DESIGN.md, "Substitutions"). The proxy scale is tunable so
// experiments can run at laptop- or CI-friendly sizes while preserving
// density (m/n) and generator shape.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"resistecc/internal/graph"
)

// Family selects the proxy generator shape.
type Family int

const (
	// ScaleFree uses the Holme–Kim powerlaw-cluster model (social networks,
	// citation networks — the bulk of the paper's corpus).
	ScaleFree Family = iota
	// DenseSocial uses RandomConnected at the exact (n, m) of the tiny
	// Figure-8 animal/tribe sociograms, which are small and dense rather
	// than scale-free.
	DenseSocial
)

// Info describes one dataset: paper-reported statistics plus proxy recipe.
type Info struct {
	Name string
	// N, M are the LCC sizes the paper reports (Table I/II).
	N, M int
	// AvgDegree and Gamma are Table I columns where reported (0 otherwise).
	AvgDegree, Gamma float64
	// PaperPhi, PaperR are the resistance radius/diameter of Table I
	// (0 where the paper does not report them).
	PaperPhi, PaperR float64
	// PaperExactSec is EXACTQUERY's running time in seconds from Table II
	// (0 where not run / not executable).
	PaperExactSec float64
	// PaperFastSec maps ε → FASTQUERY running time (seconds) from Table II.
	PaperFastSec map[float64]float64
	// PaperSigma maps ε → the relative error σ column of Table II, in the
	// units printed there (×10⁻², i.e. percent: values like 0.82 sit far
	// below the ε = 0.3 guarantee only when read as 0.82%).
	PaperSigma map[float64]float64
	// Large marks the asterisked Table II networks where EXACTQUERY was not
	// executable (10⁶–10⁷ nodes).
	Large bool
	// Family and Tri define the proxy generator.
	Family Family
	Tri    float64
}

// Proxy deterministically generates the synthetic stand-in at the given
// scale ∈ (0, 1]. Node count is ⌈scale·N⌉ (clamped to a workable minimum)
// and density m/n is preserved via the attachment parameter. The same
// (name, scale) always yields the same graph.
func (in *Info) Proxy(scale float64) (*graph.Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale must be in (0,1], got %g", scale)
	}
	seed := int64(1)
	for _, c := range in.Name {
		seed = seed*131 + int64(c)
	}
	switch in.Family {
	case DenseSocial:
		// Tiny graphs are used verbatim (scale ignored): Figure 8 needs the
		// exact sizes for exhaustive search to stay feasible. Cloister's
		// paper-reported 189 edges exceed the simple-graph bound C(18,2)=153
		// (the original is a directed multigraph), so the edge count is
		// clamped to the densest possible simple graph.
		m := in.M
		if maxM := in.N * (in.N - 1) / 2; m > maxM {
			m = maxM
		}
		return graph.RandomConnected(in.N, m, seed), nil
	default:
		n := int(math.Ceil(scale * float64(in.N)))
		k := int(math.Round(float64(in.M) / float64(in.N)))
		if k < 1 {
			k = 1
		}
		// Uniform attachment counts over [1, 2k−1] keep the mean degree at
		// 2k (≈ 2m/n) while producing the degree-1 pendant periphery that
		// real networks have — the source of the heavy right eccentricity
		// tail of §IV-B. Plain BA/Holme–Kim would floor the degree at k and
		// suppress that tail.
		kmax := 2*k - 1
		if kmax < 1 {
			kmax = 1
		}
		if n < kmax+2 {
			n = kmax + 2
		}
		return graph.ScaleFreeMixed(n, 1, kmax, in.Tri, seed), nil
	}
}

// registry lists every dataset appearing in the paper's evaluation.
var registry = []Info{
	// --- Table I (distribution analysis; Figure 2). ---
	{Name: "Politician", N: 5908, M: 41729, AvgDegree: 14.12, Gamma: 3.29, PaperPhi: 4.04, PaperR: 7.67,
		PaperExactSec: 21.221, PaperFastSec: map[float64]float64{0.3: 14.35, 0.2: 15.335, 0.1: 20.191},
		PaperSigma: map[float64]float64{0.3: 0.74, 0.2: 0.64, 0.1: 0.15}, Family: ScaleFree, Tri: 0.5},
	{Name: "Musae-FR", N: 6549, M: 112666, AvgDegree: 34.41, Gamma: 2.64, PaperPhi: 2.07, PaperR: 4.13,
		Family: ScaleFree, Tri: 0.4},
	{Name: "Government", N: 7057, M: 89429, AvgDegree: 25.34, Gamma: 2.85, PaperPhi: 3.11, PaperR: 6.21,
		PaperExactSec: 35.108, PaperFastSec: map[float64]float64{0.3: 8.13, 0.2: 21.915, 0.1: 51.605},
		PaperSigma: map[float64]float64{0.3: 1.06, 0.2: 0.83, 0.1: 0.16}, Family: ScaleFree, Tri: 0.5},
	{Name: "HepPh", N: 11204, M: 117619, AvgDegree: 21.00, Gamma: 2.09, PaperPhi: 3.42, PaperR: 6.75,
		Family: ScaleFree, Tri: 0.6},

	// --- Table II additions (query benchmarks). ---
	{Name: "Unicode-language", N: 614, M: 1252, PaperExactSec: 0.111,
		PaperFastSec: map[float64]float64{0.3: 2.01, 0.2: 2.98, 0.1: 4.65},
		PaperSigma:   map[float64]float64{0.3: 0.82, 0.2: 0.34, 0.1: 0.02}, Family: ScaleFree, Tri: 0.2},
	{Name: "EmailUN", N: 1133, M: 5451, PaperExactSec: 0.425,
		PaperFastSec: map[float64]float64{0.3: 2.821, 0.2: 3.125, 0.1: 4.045},
		PaperSigma:   map[float64]float64{0.3: 1.14, 0.2: 0.82, 0.1: 0.18}, Family: ScaleFree, Tri: 0.3},
	{Name: "MusaeRU", N: 4385, M: 37304, PaperExactSec: 10.218,
		PaperFastSec: map[float64]float64{0.3: 7.48, 0.2: 7.501, 0.1: 12.685},
		PaperSigma:   map[float64]float64{0.3: 1.03, 0.2: 0.75, 0.1: 0.33}, Family: ScaleFree, Tri: 0.4},
	{Name: "Bitcoinotc", N: 5875, M: 35587, PaperExactSec: 20.836,
		PaperFastSec: map[float64]float64{0.3: 7.509, 0.2: 8.498, 0.1: 18.189},
		PaperSigma:   map[float64]float64{0.3: 1.02, 0.2: 0.88, 0.1: 0.09}, Family: ScaleFree, Tri: 0.2},
	{Name: "Wiki-Vote", N: 7066, M: 103663, PaperExactSec: 39.875,
		PaperFastSec: map[float64]float64{0.3: 9.324, 0.2: 19.289, 0.1: 29.615},
		PaperSigma:   map[float64]float64{0.3: 0.96, 0.2: 0.77, 0.1: 0.25}, Family: ScaleFree, Tri: 0.3},
	{Name: "MusaeENGB", N: 7126, M: 35324, PaperExactSec: 36.782,
		PaperFastSec: map[float64]float64{0.3: 11.42, 0.2: 22.469, 0.1: 114.909},
		PaperSigma:   map[float64]float64{0.3: 0.89, 0.2: 0.57, 0.1: 0.07}, Family: ScaleFree, Tri: 0.3},
	{Name: "HepTh", N: 8361, M: 15751, PaperExactSec: 23.174,
		PaperFastSec: map[float64]float64{0.3: 33.395, 0.2: 49.37, 0.1: 153.79},
		PaperSigma:   map[float64]float64{0.3: 0.57, 0.2: 0.28, 0.1: 0.19}, Family: ScaleFree, Tri: 0.5},
	{Name: "Cond-mat", N: 13861, M: 44619, PaperExactSec: 242.199,
		PaperFastSec: map[float64]float64{0.3: 42.405, 0.2: 54.95, 0.1: 122.39},
		PaperSigma:   map[float64]float64{0.3: 1.07, 0.2: 0.88, 0.1: 0.47}, Family: ScaleFree, Tri: 0.6},
	{Name: "Musae-facebook", N: 22470, M: 170823, PaperExactSec: 315.303,
		PaperFastSec: map[float64]float64{0.3: 114.42, 0.2: 175.145, 0.1: 189.325},
		PaperSigma:   map[float64]float64{0.3: 1.01, 0.2: 0.85, 0.1: 0.24}, Family: ScaleFree, Tri: 0.5},
	{Name: "HU", N: 47538, M: 222887, PaperExactSec: 1718.067,
		PaperFastSec: map[float64]float64{0.3: 233.07, 0.2: 263.255, 0.1: 451.085},
		PaperSigma:   map[float64]float64{0.3: 0.97, 0.2: 0.72, 0.1: 0.66}, Family: ScaleFree, Tri: 0.3},
	{Name: "HR", N: 54573, M: 498202, PaperExactSec: 2689.555,
		PaperFastSec: map[float64]float64{0.3: 187.08, 0.2: 237.915, 0.1: 613.35},
		PaperSigma:   map[float64]float64{0.3: 1.04, 0.2: 0.76, 0.1: 0.28}, Family: ScaleFree, Tri: 0.3},
	{Name: "Epinions", N: 75877, M: 508836, PaperExactSec: 6101.568,
		PaperFastSec: map[float64]float64{0.3: 178.789, 0.2: 381.704, 0.1: 551.629},
		PaperSigma:   map[float64]float64{0.3: 0.99, 0.2: 0.82, 0.1: 0.37}, Family: ScaleFree, Tri: 0.2},
	{Name: "Delicious", N: 536108, M: 1365961, Large: true,
		PaperFastSec: map[float64]float64{0.3: 1048.794, 0.2: 1341.102, 0.1: 8876.461}, Family: ScaleFree, Tri: 0.1},
	{Name: "FourSquare", N: 639014, M: 3214986, Large: true,
		PaperFastSec: map[float64]float64{0.3: 1163.352, 0.2: 2864.142, 0.1: 6775.753}, Family: ScaleFree, Tri: 0.1},
	{Name: "Youtube-snap", N: 1134890, M: 2987624, Large: true,
		PaperFastSec: map[float64]float64{0.3: 6985, 0.2: 8123, 0.1: 15471}, Family: ScaleFree, Tri: 0.1},
	{Name: "Wikipedia-growth", N: 1870521, M: 39953004, Large: true,
		PaperFastSec: map[float64]float64{0.3: 8126, 0.2: 11891, 0.1: 21378}, Family: ScaleFree, Tri: 0.1},
	{Name: "Web-baidu-baike", N: 2107689, M: 17758243, Large: true,
		PaperFastSec: map[float64]float64{0.3: 7362, 0.2: 10274, 0.1: 18185}, Family: ScaleFree, Tri: 0.1},
	{Name: "Soc-orkut", N: 2997166, M: 106349209, Large: true,
		PaperFastSec: map[float64]float64{0.3: 10941, 0.2: 14517, 0.1: 29592}, Family: ScaleFree, Tri: 0.1},
	{Name: "Live-journal", N: 4033137, M: 27933062, Large: true,
		PaperFastSec: map[float64]float64{0.3: 10887, 0.2: 17851, 0.1: 32182}, Family: ScaleFree, Tri: 0.1},

	// --- Figure 8 tiny sociograms (exhaustive OPT feasible). ---
	{Name: "Kangaroo", N: 17, M: 91, Family: DenseSocial},
	{Name: "Rhesus", N: 16, M: 111, Family: DenseSocial},
	{Name: "Cloister", N: 18, M: 189, Family: DenseSocial},
	{Name: "Tribes", N: 16, M: 58, Family: DenseSocial},
}

// Get returns the Info for a dataset name (case-sensitive).
func Get(name string) (*Info, error) {
	for i := range registry {
		if registry[i].Name == name {
			return &registry[i], nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Names lists all registered datasets, sorted by LCC node count.
func Names() []string {
	out := make([]string, len(registry))
	idx := make([]int, len(registry))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return registry[idx[a]].N < registry[idx[b]].N })
	for i, j := range idx {
		out[i] = registry[j].Name
	}
	return out
}

// All returns a copy of the registry slice, sorted by node count.
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, n := range Names() {
		in, _ := Get(n)
		out = append(out, *in)
	}
	return out
}

// TableI returns the four Table I / Figure 2 networks in paper order.
func TableI() []string { return []string{"Politician", "Musae-FR", "Government", "HepPh"} }

// Tiny returns the four Figure 8 networks in paper order.
func Tiny() []string { return []string{"Kangaroo", "Rhesus", "Cloister", "Tribes"} }

// Figure9Mid returns the four mid-size Figure 9 networks in paper order.
func Figure9Mid() []string { return []string{"EmailUN", "Politician", "Government", "HepTh"} }

// Largest4 returns the four largest networks (Figure 7, Table III).
func Largest4() []string {
	return []string{"Wikipedia-growth", "Web-baidu-baike", "Soc-orkut", "Live-journal"}
}

package dataset

import (
	"testing"
)

func TestRegistryLookup(t *testing.T) {
	in, err := Get("Politician")
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 5908 || in.M != 41729 || in.PaperPhi != 4.04 || in.PaperR != 7.67 {
		t.Fatalf("Politician metadata %+v", in)
	}
	if _, err := Get("NoSuchNetwork"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestNamesSortedBySize(t *testing.T) {
	names := Names()
	if len(names) < 20 {
		t.Fatalf("registry too small: %d", len(names))
	}
	prev := 0
	for _, n := range names {
		in, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if in.N < prev {
			t.Fatalf("names not sorted by size at %s", n)
		}
		prev = in.N
	}
	if all := All(); len(all) != len(names) {
		t.Fatal("All() length mismatch")
	}
}

func TestPaperGroups(t *testing.T) {
	for _, group := range [][]string{TableI(), Tiny(), Figure9Mid(), Largest4()} {
		if len(group) != 4 {
			t.Fatalf("group %v should have 4 entries", group)
		}
		for _, name := range group {
			if _, err := Get(name); err != nil {
				t.Fatalf("group member %s not in registry", name)
			}
		}
	}
}

func TestProxyScaleFree(t *testing.T) {
	in, err := Get("EmailUN")
	if err != nil {
		t.Fatal(err)
	}
	g, err := in.Proxy(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("proxy must be connected")
	}
	wantN := (in.N + 1) / 2
	if g.N() != wantN {
		t.Fatalf("proxy n=%d, want %d", g.N(), wantN)
	}
	// Density within 2x of the original m/n ratio.
	origDensity := float64(in.M) / float64(in.N)
	got := float64(g.M()) / float64(g.N())
	if got < origDensity/2 || got > origDensity*2 {
		t.Fatalf("proxy density %.2f vs original %.2f", got, origDensity)
	}
	// Deterministic.
	h, err := in.Proxy(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M() {
		t.Fatal("proxy not deterministic")
	}
}

func TestProxyTiny(t *testing.T) {
	for _, name := range Tiny() {
		in, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := in.Proxy(1.0)
		if err != nil {
			t.Fatal(err)
		}
		wantM := in.M
		if maxM := in.N * (in.N - 1) / 2; wantM > maxM {
			wantM = maxM // Cloister: paper count exceeds the simple bound
		}
		if g.N() != in.N || g.M() != wantM {
			t.Fatalf("%s proxy %d/%d, want exact %d/%d", name, g.N(), g.M(), in.N, wantM)
		}
		if !g.Connected() {
			t.Fatalf("%s proxy disconnected", name)
		}
	}
}

func TestProxyScaleValidation(t *testing.T) {
	in, err := Get("HepTh")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Proxy(0); err == nil {
		t.Fatal("scale 0 must fail")
	}
	if _, err := in.Proxy(1.5); err == nil {
		t.Fatal("scale > 1 must fail")
	}
}

func TestTableIIMetadataPresent(t *testing.T) {
	// Every non-large Table II network must carry exact + fast timings and
	// sigma values for all three epsilons.
	for _, in := range All() {
		if in.Family == DenseSocial || in.PaperFastSec == nil {
			continue
		}
		for _, eps := range []float64{0.3, 0.2, 0.1} {
			if _, ok := in.PaperFastSec[eps]; !ok {
				t.Fatalf("%s missing fast time for eps=%g", in.Name, eps)
			}
			if !in.Large {
				if _, ok := in.PaperSigma[eps]; in.PaperSigma != nil && !ok {
					t.Fatalf("%s missing sigma for eps=%g", in.Name, eps)
				}
			}
		}
		if in.Large && in.PaperExactSec != 0 {
			t.Fatalf("%s: large networks have no exact timing", in.Name)
		}
	}
}

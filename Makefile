# Developer / CI entry points. `make check` is the gate: vet, the recclint
# static-analysis suite, and the full test suite under the race detector
# (the reccd server paths are deliberately concurrent).

GO ?= go

.PHONY: check build vet lint test race bench

check: vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo-specific invariant checkers: lockguard, syncerr, floateq,
# determinism (see internal/analysis and DESIGN.md §9).
lint:
	$(GO) run ./cmd/recclint ./...

test:
	$(GO) test ./...

# internal/experiments legitimately exceeds the 10m default under the race
# detector on slower machines (Table 3 smoke runs the full MINRECC pipeline),
# so give the suite explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

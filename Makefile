# Developer / CI entry points. `make check` is the gate: vet, the recclint
# static-analysis suite, and the full test suite under the race detector
# (the reccd server paths are deliberately concurrent).

GO ?= go

.PHONY: check build vet lint lint-fix lint-sarif lint-v3 lint-v4 test race repl-smoke trace-smoke bench bench-json bench-trend

check: vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo-specific invariant checkers, all sixteen: apisurface, atomicmix,
# chandisc, ctxflow, determinism, erridentity, floateq, goroutinelife,
# hotpath, lockguard, lockorder, metrichygiene, mustclose, syncerr,
# wgbalance, wireproto (see internal/analysis and DESIGN.md §9, §13 and
# §14). The ./... pattern includes internal/analysis itself, so the suite
# lints its own framework and analyzers. -budget fails the run if any single
# analyzer exceeds the ceiling, keeping lint wall time an enforced contract;
# add -v for the slowest-first per-analyzer breakdown.
lint:
	$(GO) run ./cmd/recclint -budget=30s ./...

# Apply every suggested fix (mustclose deferred Closes, ctxflow rewrites),
# gofmt-formatting the touched files in place.
lint-fix:
	$(GO) run ./cmd/recclint -fix ./...

# SARIF 2.1.0 on stdout, for CI code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/recclint -format=sarif ./...

# Fixture smoke for the v3 concurrency analyzers only: each package's test
# runs its analyzer over the // want fixture module under testdata/src,
# exercising the spawn/capture dataflow substrate without type-checking the
# whole repository (that is `make lint`).
lint-v3:
	$(GO) test -count=1 ./internal/analysis/goroutinelife/ ./internal/analysis/chandisc/ \
		./internal/analysis/wgbalance/ ./internal/analysis/atomicmix/

# Fixture smoke for the v4 protocol & surface analyzers: wire-format
# symmetry, HTTP envelope/routes-manifest discipline, metrics registration
# hygiene, and sentinel-error identity (including the erridentity autofix
# round trip in cmd/recclint's tests).
lint-v4:
	$(GO) test -count=1 ./internal/analysis/wireproto/ ./internal/analysis/apisurface/ \
		./internal/analysis/metrichygiene/ ./internal/analysis/erridentity/

test:
	$(GO) test ./...

# internal/experiments legitimately exceeds the 10m default under the race
# detector on slower machines (Table 3 smoke runs the full MINRECC pipeline),
# so give the suite explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

# End-to-end replication smoke: boots a durable writer, two WAL-tailing
# replicas and a consistent-hash router as real HTTP servers, then asserts
# bit-identical replica answers, read-your-writes through the router,
# resync-after-rebuild and zero 5xx across a replica kill/restart.
repl-smoke:
	$(GO) test -race -count=1 -run '^TestRepl' ./cmd/reccd/

# End-to-end trace smoke: records a mixed workload through the serving layer
# and replays it bit-exactly against fresh indexes (in-process and over HTTP),
# then drives a generated open-loop workload through the PR-7 replica set
# asserting zero 5xx and generation convergence.
trace-smoke:
	$(GO) test -race -count=1 -run '^TestTrace' ./cmd/reccd/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Machine-readable bench trajectory (BENCH_10.json): the batch-engine
# benchmarks at batch sizes 1/16/256 against the serial per-node baseline,
# the ColdBuild/WarmStart durability carry-overs, and the trace-driven
# loadgen capacity probes (single node and the replicated tier; their req/s
# and latency quantiles land in the record's metrics map). The one-shot runs
# use -benchtime=1x because each iteration is a full cold build or load run;
# cmd/benchjson merges all runs into one JSON record list.
bench-json:
	{ $(GO) test -run='^$$' -bench='^BenchmarkBatch' -benchmem . ; \
	  $(GO) test -run='^$$' -bench='^Benchmark(ColdBuild|WarmStart)$$' -benchtime=1x -benchmem . ; \
	  $(GO) test -run='^$$' -bench='^BenchmarkLoadgen' -benchtime=1x ./cmd/reccd/ ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_10.json

# Walk the committed BENCH_*.json trajectory oldest to newest and fail on
# any tracked metric regressing more than 20% between a benchmark's
# consecutive appearances. CI runs this against the committed records (never
# against freshly benchmarked ones — runner hardware varies), so degrading
# the trajectory requires a deliberate rewrite of the record files.
bench-trend:
	$(GO) run ./cmd/benchjson -trend

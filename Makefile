# Developer / CI entry points. `make check` is the gate: vet, the recclint
# static-analysis suite, and the full test suite under the race detector
# (the reccd server paths are deliberately concurrent).

GO ?= go

.PHONY: check build vet lint lint-fix lint-sarif test race repl-smoke bench bench-json

check: vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo-specific invariant checkers, all eight: ctxflow, determinism,
# floateq, hotpath, lockguard, lockorder, mustclose, syncerr (see
# internal/analysis and DESIGN.md §9).
lint:
	$(GO) run ./cmd/recclint ./...

# Apply every suggested fix (mustclose deferred Closes, ctxflow rewrites),
# gofmt-formatting the touched files in place.
lint-fix:
	$(GO) run ./cmd/recclint -fix ./...

# SARIF 2.1.0 on stdout, for CI code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/recclint -format=sarif ./...

test:
	$(GO) test ./...

# internal/experiments legitimately exceeds the 10m default under the race
# detector on slower machines (Table 3 smoke runs the full MINRECC pipeline),
# so give the suite explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

# End-to-end replication smoke: boots a durable writer, two WAL-tailing
# replicas and a consistent-hash router as real HTTP servers, then asserts
# bit-identical replica answers, read-your-writes through the router,
# resync-after-rebuild and zero 5xx across a replica kill/restart.
repl-smoke:
	$(GO) test -race -count=1 -run '^TestRepl' ./cmd/reccd/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Machine-readable bench trajectory (BENCH_6.json): the batch-engine
# benchmarks at batch sizes 1/16/256 against the serial per-node baseline,
# plus the ColdBuild/WarmStart durability carry-overs. The durable pair runs
# at -benchtime=1x because a cold build is a full sketch solve (~15 s/op);
# cmd/benchjson merges both runs into one JSON record list.
bench-json:
	{ $(GO) test -run='^$$' -bench='^BenchmarkBatch' -benchmem . ; \
	  $(GO) test -run='^$$' -bench='^Benchmark(ColdBuild|WarmStart)$$' -benchtime=1x -benchmem . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_6.json

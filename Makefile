# Developer / CI entry points. `make check` is the gate: vet plus the full
# test suite under the race detector (the reccd server paths are
# deliberately concurrent).

GO ?= go

.PHONY: check build vet test race bench

check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

// Spectral toolkit tour: the resistance-adjacent invariants built on the
// same substrate as FASTQUERY — Kirchhoff index, Kemeny's constant (the
// paper's stated future-work target), algebraic connectivity bounds,
// spanning-edge centrality via Wilson's algorithm, and effective-resistance
// spectral sparsification.
//
//	go run ./examples/spectraltools
package main

import (
	"context"
	"fmt"
	"log"

	"resistecc"
)

func main() {
	g, err := resistecc.ScaleFreeMixed(800, 1, 6, 0.4, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d m=%d\n\n", g.N(), g.M())

	// --- Global invariants, exact vs near-linear estimates. ---
	kf, err := g.KirchhoffIndex()
	if err != nil {
		log.Fatal(err)
	}
	kfEst, err := g.EstimateKirchhoffIndex(resistecc.SpectralEstimateOptions{Probes: 128, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	km, err := g.KemenyConstant()
	if err != nil {
		log.Fatal(err)
	}
	kmEst, err := g.EstimateKemenyConstant(resistecc.SpectralEstimateOptions{Probes: 128, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kirchhoff index  exact %.1f   estimated %.1f (%.1f%% off, 128 probes)\n",
		kf, kfEst, 100*abs(kfEst-kf)/kf)
	fmt.Printf("Kemeny constant  exact %.2f   estimated %.2f (%.1f%% off)\n\n",
		km, kmEst, 100*abs(kmEst-km)/km)

	// --- Spectral bounds on resistance eccentricity. ---
	l2, err := g.AlgebraicConnectivity(1)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := resistecc.NewFastIndex(context.Background(), g,
		resistecc.WithEpsilon(0.3), resistecc.WithDim(128),
		resistecc.WithSeed(1), resistecc.WithMaxHullVertices(48))
	if err != nil {
		log.Fatal(err)
	}
	diam, pair, err := idx.ResistanceDiameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algebraic connectivity λ₂ = %.5f → upper bound R(G) ≤ 2/λ₂ = %.2f\n", l2, 2/l2)
	fmt.Printf("hull-pair resistance diameter R ≈ %.3f (pair %v)\n\n", diam, pair)

	// --- Spanning-edge centrality (= per-edge effective resistance). ---
	sec, err := g.SpanningEdgeCentrality(400, 2)
	if err != nil {
		log.Fatal(err)
	}
	edges := g.Edges()
	bridgiest, best := 0, 0.0
	for i, r := range sec {
		if r > best {
			best, bridgiest = r, i
		}
	}
	fmt.Printf("most bridge-like edge: %v with UST inclusion %.2f (r(e) ≈ %.2f)\n",
		edges[bridgiest], best, best)

	// --- Sparsification (on a dense graph, where it pays off). ---
	dense, err := resistecc.BarabasiAlbert(400, 40, 7)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := dense.Sparsify(context.Background(), resistecc.SparsifyOptions{Epsilon: 0.4, Samples: 8000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	exactDense, err := resistecc.NewExactIndex(context.Background(), dense)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := sp.Resistance(0, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsparsifier of a dense BA graph: %d weighted edges from %d (%.1fx fewer)\n",
		sp.EdgeCount, dense.M(), float64(dense.M())/float64(sp.EdgeCount))
	fmt.Printf("r(0,200): exact %.4f, sparsifier %.4f\n", exactDense.Resistance(0, 200), rs)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Hub protection (Problem 1 / REMD): a data-center graph has a "key
// service" node whose worst-case electrical distance to the rest of the
// network should shrink — the paper's motivation of protecting key nodes by
// bolstering their connectivity (§VI). Only links incident to the service
// itself may be added (REMD). Compares the exact greedy, FARMINRECC and
// CENMINRECC against the lowest-degree baseline.
//
//	go run ./examples/hubprotection
package main

import (
	"context"
	"fmt"
	"log"

	"resistecc"
)

func main() {
	// Infrastructure-ish topology: a dense core (the main site) with long
	// chains of aggregation/edge nodes hanging off it.
	g, err := resistecc.ScaleFreeMixed(900, 1, 5, 0.3, 11)
	if err != nil {
		log.Fatal(err)
	}
	// The protected service: a peripheral placement (worst case).
	exact, err := resistecc.NewExactIndex(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	dist := exact.Distribution()
	s := 0
	for v, c := range dist {
		if c > dist[s] {
			s = v
		}
	}
	fmt.Printf("network n=%d m=%d; protecting node %d with c(s)=%.4f (graph radius %.4f)\n",
		g.N(), g.M(), s, dist[s], resistecc.Summarize(dist).Radius)

	const k = 8
	opt := resistecc.OptimizeOptions{
		Sketch: resistecc.SketchOptions{Epsilon: 0.3, Dim: 96, Seed: 3},
		Hull:   resistecc.HullOptions{MaxVertices: 24},
	}

	type entry struct {
		name string
		plan *resistecc.Plan
	}
	var entries []entry
	if p, err := resistecc.GreedyExact(g, resistecc.REMD, s, k); err == nil {
		entries = append(entries, entry{"GreedyExact (SIMPLE)", p})
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.FarMinRecc(context.Background(), g, s, k, opt); err == nil {
		entries = append(entries, entry{"FarMinRecc", p})
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.CenMinRecc(context.Background(), g, s, k, opt); err == nil {
		entries = append(entries, entry{"CenMinRecc", p})
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.RunBaseline(g, resistecc.BaselineDegree, resistecc.REMD, s, k, 1); err == nil {
		entries = append(entries, entry{"DE-REMD baseline", p})
	} else {
		log.Fatal(err)
	}

	fmt.Printf("\nc(s) after adding k direct links (budget %d):\n", k)
	fmt.Printf("%-22s", "k")
	for kk := 0; kk <= k; kk += 2 {
		fmt.Printf("%9d", kk)
	}
	fmt.Println()
	for _, e := range entries {
		traj, err := e.plan.ExactTrajectory(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s", e.name)
		for kk := 0; kk <= k; kk += 2 {
			fmt.Printf("%9.4f", traj[kk])
		}
		fmt.Println()
	}
	fmt.Println("\nthe resistance-aware strategies find the electrically-distant periphery;")
	fmt.Println("the degree baseline wires low-degree nodes that may already be electrically close.")
}

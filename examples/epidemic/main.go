// Epidemic seeding (the paper's reference-[20] motivation): resistance
// eccentricity ranks how fast a spread seeded at a node saturates the
// network, because it accounts for *all* transmission routes rather than
// just shortest paths. This example seeds SI epidemics at the most
// resistance-central and the most resistance-peripheral nodes, compares
// their saturation times, and reports the rank correlation between c(v) and
// spread time across a node sample.
//
//	go run ./examples/epidemic
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"resistecc"
)

func main() {
	g, err := resistecc.ScaleFreeMixed(1000, 1, 5, 0.3, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contact network: n=%d m=%d\n", g.N(), g.M())

	idx, err := resistecc.NewFastIndex(context.Background(), g,
		resistecc.WithEpsilon(0.3), resistecc.WithDim(128),
		resistecc.WithSeed(17), resistecc.WithMaxHullVertices(48))
	if err != nil {
		log.Fatal(err)
	}
	dist := idx.Distribution()
	central, peripheral := 0, 0
	for v, c := range dist {
		if c < dist[central] {
			central = v
		}
		if c > dist[peripheral] {
			peripheral = v
		}
	}

	opt := resistecc.SpreadOptions{Beta: 0.25, Runs: 48, Seed: 3}
	cRes, err := g.SimulateSpread(central, opt)
	if err != nil {
		log.Fatal(err)
	}
	pRes, err := g.SimulateSpread(peripheral, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseed at resistance center   (node %4d, c=%.3f): saturation %.1f steps, half %.1f\n",
		central, dist[central], cRes.MeanSaturation, cRes.MeanHalf)
	fmt.Printf("seed at resistance periphery (node %4d, c=%.3f): saturation %.1f steps, half %.1f\n",
		peripheral, dist[peripheral], pRes.MeanSaturation, pRes.MeanHalf)

	// Rank correlation across a node sample.
	var seeds []int
	var eccs []float64
	for v := 0; v < g.N(); v += 25 {
		seeds = append(seeds, v)
		eccs = append(eccs, dist[v])
	}
	sat, err := g.SpreadSaturationTimes(seeds, opt)
	if err != nil {
		log.Fatal(err)
	}
	rho, err := resistecc.Spearman(eccs, sat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSpearman(c(v), saturation time) over %d seeds: %.3f (positive ⇒ c(v) ranks spread speed)\n",
		len(seeds), rho)

	// Show the 5 best seeding nodes per the resistance metric.
	type pair struct {
		v int
		c float64
	}
	all := make([]pair, g.N())
	for v, c := range dist {
		all[v] = pair{v, c}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].c < all[b].c })
	fmt.Println("\nbest spreaders by resistance eccentricity:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  node %4d  c=%.3f  degree=%d\n", all[i].v, all[i].c, g.Degree(all[i].v))
	}
}

// Distribution analysis (§IV of the paper): compute the resistance
// eccentricity distribution of a scale-free network with pendant periphery,
// verify the asymmetry / right-skew / heavy-tail claims, and fit a Burr
// Type XII density to it.
//
//	go run ./examples/distribution
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"resistecc"
)

func main() {
	// A scale-free graph with degree-1 pendant nodes: mixed attachment in
	// [1,7] reproduces the core/periphery split of real social networks.
	g, err := resistecc.ScaleFreeMixed(1500, 1, 7, 0.4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d m=%d\n", g.N(), g.M())

	idx, err := resistecc.NewExactIndex(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	dist := idx.Distribution()
	sum := resistecc.Summarize(dist)

	fmt.Printf("resistance radius   φ = %.4f\n", sum.Radius)
	fmt.Printf("resistance diameter R = %.4f\n", sum.Diameter)
	fmt.Printf("mean                  = %.4f\n", sum.Mean)
	fmt.Printf("skewness              = %.4f  (positive ⇒ right-skewed, as §IV-B predicts)\n", sum.Skewness)
	fmt.Printf("resistance center     = %v\n", sum.Center)

	fit, err := resistecc.FitBurr(dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBurr XII fit: c=%.3f k=%.3f λ=%.3f (KS distance %.4f)\n",
		fit.C, fit.K, fit.Lambda, fit.KS)

	// Histogram with the fitted density overlaid as '*'.
	const bins = 24
	lo, hi := sum.Radius, sum.Diameter
	counts := make([]int, bins)
	width := (hi - lo) / bins
	for _, c := range dist {
		b := int((c - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxC := 1
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	fmt.Println("\neccentricity histogram (#) with Burr fit (*):")
	for i, c := range counts {
		x := lo + (float64(i)+0.5)*width
		bar := c * 48 / maxC
		model := int(fit.PDF(x) * float64(g.N()) * width * 48 / float64(maxC))
		if model > 60 {
			model = 60
		}
		line := []byte(strings.Repeat("#", bar) + strings.Repeat(" ", 61))
		if model >= 0 && model < len(line) {
			line[model] = '*'
		}
		fmt.Printf("%8.3f |%s\n", x, strings.TrimRight(string(line), " \x00"))
	}
	fmt.Println("\nmass concentrates just above φ with a long right tail — the Figure 2 shape.")
}

// Quickstart: compute exact and approximate resistance eccentricities on a
// small scale-free network, and confirm the FASTQUERY guarantee of
// Theorem 5.6 empirically.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"resistecc"
)

func main() {
	// A 2000-node scale-free network with degree-1 pendant periphery — the
	// regime the paper studies (heavy-tailed eccentricity, separated
	// farthest nodes).
	g, err := resistecc.ScaleFreeMixed(2000, 1, 7, 0.4, 1)
	if err != nil {
		log.Fatal(err)
	}
	st := g.StatsFast()
	fmt.Printf("graph: n=%d m=%d avg degree=%.2f max degree=%d\n",
		st.N, st.M, st.AvgDegree, st.MaxDegree)

	// EXACTQUERY: O(n^3) preprocessing, exact answers.
	exact, err := resistecc.NewExactIndex(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	// FASTQUERY: near-linear preprocessing, (1±ε) answers.
	fast, err := resistecc.NewFastIndex(context.Background(), g,
		resistecc.WithEpsilon(0.2), // error target
		resistecc.WithDim(256),     // sketch dimension (0 = the conservative theoretical bound)
		resistecc.WithSeed(1),
		resistecc.WithMaxHullVertices(64), // practical hull cap; 0 keeps the certified hull
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FASTQUERY index: sketch dimension d=%d, hull boundary l=%d of %d nodes\n",
		fast.SketchDim(), fast.BoundarySize(), g.N())

	queries := []int{0, 500, 1000, 1999}
	fmt.Println("\nnode   exact c(v)   fast ĉ(v)   rel.err   farthest")
	for _, v := range queries {
		e := exact.Eccentricity(v)
		f := fast.Eccentricity(v)
		rel := (f.Value - e.Value) / e.Value
		fmt.Printf("%4d   %10.4f   %9.4f   %+6.2f%%   %d\n",
			v, e.Value, f.Value, 100*rel, f.Farthest)
	}

	// Graph-level metrics from the full distribution.
	sum := resistecc.Summarize(fast.Distribution())
	fmt.Printf("\nresistance radius φ=%.4f, diameter R=%.4f, %d central node(s), skewness %.2f\n",
		sum.Radius, sum.Diameter, len(sum.Center), sum.Skewness)
}

// Link recommendation (Problem 2 / REM): a social platform may create any
// missing friendship edge — not only ones touching the target user — to pull
// a poorly-embedded user toward the network core (§VI's link-recommendation
// motivation). Compares CHMINRECC and MINRECC against PK-REM and PATH-REM
// baselines, and demonstrates the Figure-3 phenomenon: free edge placement
// (REM) beats source-only placement (REMD).
//
//	go run ./examples/linkrec
package main

import (
	"context"
	"fmt"
	"log"

	"resistecc"
)

func main() {
	g, err := resistecc.ScaleFreeMixed(700, 1, 6, 0.5, 21)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := resistecc.NewExactIndex(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	dist := exact.Distribution()
	// The "isolated user": worst resistance eccentricity in the network.
	s := 0
	for v, c := range dist {
		if c > dist[s] {
			s = v
		}
	}
	fmt.Printf("social graph n=%d m=%d; target user %d with c(s)=%.4f\n",
		g.N(), g.M(), s, dist[s])

	const k = 6
	opt := resistecc.OptimizeOptions{
		Sketch:        resistecc.SketchOptions{Epsilon: 0.3, Dim: 96, Seed: 5},
		Hull:          resistecc.HullOptions{MaxVertices: 20},
		MaxCandidates: 48,
	}

	show := func(name string, plan *resistecc.Plan) {
		traj, err := plan.ExactTrajectory(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s c(s): %.4f -> %.4f   edges:", name, traj[0], traj[len(traj)-1])
		for _, e := range plan.Edges {
			fmt.Printf(" (%d,%d)", e[0], e[1])
		}
		fmt.Println()
	}

	if p, err := resistecc.ChMinRecc(context.Background(), g, s, k, opt); err == nil {
		show("ChMinRecc", p)
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.MinRecc(context.Background(), g, s, k, opt); err == nil {
		show("MinRecc", p)
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.FarMinRecc(context.Background(), g, s, k, opt); err == nil {
		show("FarMinRecc (REMD)", p)
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.RunBaseline(g, resistecc.BaselinePageRank, resistecc.REM, s, k, 1); err == nil {
		show("PK-REM", p)
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.RunBaseline(g, resistecc.BaselinePath, resistecc.REM, s, k, 1); err == nil {
		show("PATH-REM", p)
	} else {
		log.Fatal(err)
	}
	if p, err := resistecc.RunBaseline(g, resistecc.BaselineRandom, resistecc.REM, s, k, 1); err == nil {
		show("RAND-REM", p)
	} else {
		log.Fatal(err)
	}

	fmt.Println("\nMinRecc unions hull-pair edges with the best direct edge, so it matches or")
	fmt.Println("beats both pure strategies (Figures 3 and 6 show neither dominates alone).")
}

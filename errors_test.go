package resistecc

import (
	"context"
	"errors"
	"testing"
)

// The public sentinels must match errors produced at every layer, so callers
// can branch with errors.Is without knowing which package failed.
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()

	// ErrBadEpsilon: approximate constructors require an explicit ε.
	if _, err := NewFastIndex(ctx, PathGraph(8)); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("missing epsilon: %v", err)
	}
	if _, err := NewApproxIndex(ctx, PathGraph(8), WithEpsilon(1.5)); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("epsilon out of range: %v", err)
	}

	// ErrDisconnected: exact and sketch builds refuse disconnected inputs.
	d := NewGraph(4)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExactIndex(ctx, d); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("exact on disconnected: %v", err)
	}
	if _, err := NewFastIndex(ctx, d, WithEpsilon(0.3), WithDim(8)); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("fast on disconnected: %v", err)
	}

	// Graph mutation sentinels.
	g := PathGraph(5)
	if err := g.AddEdge(0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := g.AddEdge(0, 17); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("range: %v", err)
	}
	if err := g.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop: %v", err)
	}
	if err := g.RemoveEdge(0, 3); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
}

// A Plan naming out-of-range nodes must fail Apply cleanly, not panic.
func TestPlanApplyOutOfRange(t *testing.T) {
	g := PathGraph(6)
	p := &Plan{Algorithm: "handmade", Source: 0, Edges: [][2]int{{0, 42}}}
	if _, err := p.Apply(g, -1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("apply out of range: %v", err)
	}
	// A duplicate edge is also a clean failure.
	p2 := &Plan{Algorithm: "handmade", Source: 0, Edges: [][2]int{{0, 1}}}
	if _, err := p2.Apply(g, -1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("apply duplicate: %v", err)
	}
}

// Batch Query on every index flavor rejects out-of-range nodes with
// ErrNodeOutOfRange instead of panicking.
func TestBatchQueryOutOfRange(t *testing.T) {
	ctx := context.Background()
	g := CycleGraph(10)

	ex, err := NewExactIndex(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Query([]int{3, -1}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("exact batch: %v", err)
	}

	ap, err := NewApproxIndex(ctx, g, WithEpsilon(0.3), WithDim(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Query([]int{10}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("approx batch: %v", err)
	}

	fi, err := NewFastIndex(ctx, g, WithEpsilon(0.3), WithDim(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fi.Query([]int{0, 10}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("fast batch: %v", err)
	}
	if vals, err := fi.Query([]int{0, 5}); err != nil || len(vals) != 2 {
		t.Fatalf("valid batch: %v %v", vals, err)
	}
}

// WithSketchOptions must produce the same index as the equivalent individual
// options (same seeds → bit-identical answers).
func TestSketchOptionsEquivalence(t *testing.T) {
	g := CycleGraph(16)
	old, err := NewFastIndex(context.Background(), g,
		WithSketchOptions(SketchOptions{Epsilon: 0.3, Dim: 32, Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	neu, err := NewFastIndex(context.Background(), g,
		WithEpsilon(0.3), WithDim(32), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if old.BoundarySize() != neu.BoundarySize() {
		t.Fatalf("boundary %d vs %d", old.BoundarySize(), neu.BoundarySize())
	}
	for v := 0; v < g.N(); v++ {
		if a, b := old.Eccentricity(v), neu.Eccentricity(v); a != b {
			t.Fatalf("node %d: %+v vs %+v", v, a, b)
		}
	}
}

// DynamicIndex surfaces the same sentinels for mutations.
func TestDynamicIndexSentinels(t *testing.T) {
	ctx := context.Background()
	d, err := NewDynamicIndex(ctx, CycleGraph(12),
		WithEpsilon(0.3), WithDim(16), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.AddEdge(ctx, 0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("dynamic duplicate: %v", err)
	}
	if _, err := d.AddEdge(ctx, 0, 50); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("dynamic range: %v", err)
	}
	if _, err := d.RemoveEdge(ctx, 0, 6); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("dynamic missing edge: %v", err)
	}
	res, err := d.AddEdge(ctx, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != MutationIncremental || res.Generation != 2 {
		t.Fatalf("dynamic add: %+v", res)
	}
	if s := d.Snapshot(); s.Generation != 2 || s.M != 13 {
		t.Fatalf("snapshot: %+v", s)
	}
	d.Close()
	if _, err := d.AddEdge(ctx, 1, 7); !errors.Is(err, ErrIndexClosed) {
		t.Fatalf("after close: %v", err)
	}
}

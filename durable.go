package resistecc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"resistecc/internal/graph"
	"resistecc/internal/lifecycle"
	"resistecc/internal/persist"
)

// ErrIndexStale is returned by SaveSnapshot and Checkpoint while the served
// index lags the master graph (a background rebuild is pending): persisting
// then would pair a graph with an index that does not reflect it. Trigger or
// await the rebuild (WaitIdle) and retry.
var ErrIndexStale = lifecycle.ErrStale

// ErrSnapshotMismatch is returned by LoadSnapshot when explicitly supplied
// build options conflict with the parameters stored in the snapshot.
var ErrSnapshotMismatch = persist.ErrMismatch

// ErrNotDurable is returned by Checkpoint and PersistStats accessors on an
// index that was built without a data directory (NewDynamicIndex or
// LoadSnapshot instead of OpenDynamicIndex).
var ErrNotDurable = errors.New("resistecc: index has no data directory (use OpenDynamicIndex)")

// paramsOf extracts the content-determining build parameters from an
// applied option set. Workers and queue/rebuild tuning are excluded: they
// change speed and policy, never index content.
func paramsOf(c buildConfig) persist.Params {
	return persist.Params{
		Epsilon:         c.sk.Epsilon,
		Dim:             c.sk.Dim,
		Seed:            c.sk.Seed,
		SolverTol:       c.sk.SolverTol,
		HullTheta:       c.hull.Theta,
		HullSeed:        c.hull.Seed,
		HullDirections:  c.hull.Directions,
		HullMaxVertices: c.hull.MaxVertices,
		HullMaxFWIters:  c.hull.MaxFWIters,
	}
}

// lifecycleConfig assembles the manager config from stored build params
// plus the caller's dynamic-only knobs.
func lifecycleConfig(p persist.Params, c buildConfig) lifecycle.Config {
	return lifecycle.Config{
		Sketch:         p.SketchOptions(),
		Hull:           p.HullOptions(),
		DriftThreshold: c.driftThreshold,
		MaxDeletions:   c.maxDeletions,
		QueueSize:      c.queueSize,
		Follower:       c.follower,
	}
}

// SaveSnapshot writes the current index state — graph, sketch matrix, hull
// boundary and eccentricity cache, each section checksummed — to a single
// file, atomically (temp file + fsync + rename). The saved index answers
// bit-identically after LoadSnapshot. Fails with ErrIndexStale while a
// rebuild is pending, since graph and index would disagree.
func (d *DynamicIndex) SaveSnapshot(path string) error {
	cs, err := d.m.CheckpointState()
	if err != nil {
		return err
	}
	return persist.WriteSnapshotFile(path, persist.Capture(cs, d.params, d.baseFP, true))
}

// LoadSnapshot rebuilds a DynamicIndex from a SaveSnapshot file without any
// solver work: the stored sketch matrix is restored bit-exactly, so queries
// answer identically to the index that was saved. Build parameters come
// from the snapshot itself; opts may add dynamic knobs (WithDriftThreshold,
// WithMaxDeletions, WithMutationQueue). Build-parameter options, when
// given, must match the stored ones (ErrSnapshotMismatch otherwise).
// Corrupt or version-mismatched files fail with persist errors — callers
// wanting automatic cold-build fallback use OpenDynamicIndex.
func LoadSnapshot(path string, opts ...Option) (*DynamicIndex, error) {
	snap, err := persist.ReadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return loadSnapshot(snap, opts)
}

// LoadSnapshotBytes is LoadSnapshot over an in-memory encoding — the form a
// replication replica receives from the writer's snapshot endpoint. Combine
// with WithFollower so the restored index never rebuilds locally and stays
// bit-identical to the writer it tails.
func LoadSnapshotBytes(b []byte, opts ...Option) (*DynamicIndex, error) {
	snap, err := persist.ReadSnapshot(b)
	if err != nil {
		return nil, err
	}
	return loadSnapshot(snap, opts)
}

func loadSnapshot(snap *persist.Snapshot, opts []Option) (*DynamicIndex, error) {
	c := applyOptions(opts)
	if (c.sk != (SketchOptions{}) || c.hull != (HullOptions{})) && paramsOf(c) != snap.Params {
		return nil, fmt.Errorf("%w: stored eps=%g dim=%d seed=%d",
			ErrSnapshotMismatch, snap.Params.Epsilon, snap.Params.Dim, snap.Params.Seed)
	}
	fast, err := snap.Index()
	if err != nil {
		return nil, err
	}
	m, err := lifecycle.NewFromState(snap.Graph, fast,
		lifecycle.Restored{Gen: snap.Gen, Seq: snap.Seq}, lifecycleConfig(snap.Params, c))
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{m: m, params: snap.Params, baseFP: snap.BaseFP}, nil
}

// RecoveryInfo reports how OpenDynamicIndex started.
type RecoveryInfo struct {
	// Warm is true when the index was restored from a snapshot; false means
	// a cold build ran (first start, or fallback — see Reason).
	Warm bool
	// Reason explains a cold start ("no snapshot", "snapshot mismatch: …",
	// "replay failed: …"); empty for a warm start.
	Reason string
	// Generation is the served generation after recovery.
	Generation uint64
	// ReplayedMutations counts WAL records applied on top of the snapshot.
	ReplayedMutations int
}

// OpenDynamicIndex is NewDynamicIndex with durability: index state lives in
// dataDir as a checksummed snapshot plus a mutation WAL.
//
// On startup it loads the newest valid snapshot, verifies it matches g and
// the build options (fingerprint + parameters), restores the index without
// solver work, and replays WAL records through the ordinary mutation path —
// landing exactly where a live server that ran those mutations would,
// including the incremental-vs-rebuild decisions. Any corruption, torn
// write, version or parameter mismatch falls back to a cold build (never to
// wrong answers) and resets the store. From then on every committed
// mutation is appended to the WAL before it is acknowledged, and every
// rebuild swap checkpoints a fresh snapshot and truncates the log; pair
// with (*DynamicIndex).Checkpoint for time-based checkpoints.
//
// g must be the same input graph across restarts (reccd passes the LCC of
// its -in file); if it changes, the stale persisted state is discarded.
func OpenDynamicIndex(ctx context.Context, dataDir string, g *Graph, opts ...Option) (*DynamicIndex, RecoveryInfo, error) {
	c := applyOptions(opts)
	params := paramsOf(c)
	baseFP := persist.Fingerprint(g.inner())
	cfg := lifecycleConfig(params, c)

	st, err := persist.Open(dataDir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	d, info, err := openRecover(ctx, st, g.inner(), params, baseFP, cfg)
	if err != nil {
		st.Close()
		return nil, RecoveryInfo{}, err
	}
	d.hook = &persist.Hook{Store: st, Params: params, BaseFP: baseFP}
	d.m.AttachJournal(d.hook)
	info.Generation = d.m.Current().Gen
	return d, info, nil
}

// openRecover attempts the warm path and falls back to a cold build. The
// journal is NOT yet attached: replayed mutations must not be re-logged.
func openRecover(ctx context.Context, st *persist.Store, g *graph.Graph, params persist.Params, baseFP uint64, cfg lifecycle.Config) (*DynamicIndex, RecoveryInfo, error) {
	cold := func(reason string) (*DynamicIndex, RecoveryInfo, error) {
		m, err := lifecycle.New(ctx, g, cfg)
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
		d := &DynamicIndex{m: m, params: params, baseFP: baseFP, store: st}
		// New lineage: wipe whatever the fallback rejected, then persist the
		// cold build immediately so the next restart is already warm. A
		// failed initial checkpoint only degrades durability (it is counted
		// in PersistStats.CheckpointFailures and retried at the next
		// rebuild/interval checkpoint).
		if err := st.Reset(); err == nil {
			if cs, cerr := m.CheckpointState(); cerr == nil {
				_ = st.Checkpoint(persist.Capture(cs, params, baseFP, true))
			}
		}
		return d, RecoveryInfo{Warm: false, Reason: reason}, nil
	}

	snap, recs, err := st.Recover()
	if err != nil {
		return cold(fmt.Sprintf("store unreadable: %v", err))
	}
	if snap == nil {
		return cold("no snapshot")
	}
	if snap.Params != params {
		return cold("snapshot mismatch: build parameters differ")
	}
	if snap.BaseFP != baseFP {
		return cold("snapshot mismatch: input graph changed")
	}
	fast, err := snap.Index()
	if err != nil {
		return cold(fmt.Sprintf("snapshot unusable: %v", err))
	}
	m, err := lifecycle.NewFromState(snap.Graph, fast,
		lifecycle.Restored{Gen: snap.Gen, Seq: snap.Seq}, cfg)
	if err != nil {
		return cold(fmt.Sprintf("snapshot unusable: %v", err))
	}
	// Replay the log through the live mutation path: each record takes the
	// same incremental/stale route it took originally, and structural
	// surprises (a record that no longer applies) abandon the warm start.
	for i, r := range recs {
		var merr error
		if r.Add {
			_, merr = m.AddEdge(ctx, r.U, r.V)
		} else {
			_, merr = m.RemoveEdge(ctx, r.U, r.V)
		}
		if merr != nil {
			m.Close()
			if ctx.Err() != nil {
				return nil, RecoveryInfo{}, ctx.Err()
			}
			return cold(fmt.Sprintf("replay failed at record %d/%d: %v", i+1, len(recs), merr))
		}
	}
	d := &DynamicIndex{m: m, params: params, baseFP: baseFP, store: st}
	return d, RecoveryInfo{Warm: true, ReplayedMutations: len(recs)}, nil
}

// Checkpoint forces a snapshot of the current state into the data
// directory, absorbing and truncating the WAL. A no-op when the on-disk
// snapshot is already current. Fails with ErrNotDurable on a non-durable
// index and with ErrIndexStale while a rebuild is pending (the rebuild's
// own checkpoint will cover the backlog; callers may retry after WaitIdle).
func (d *DynamicIndex) Checkpoint() error {
	if d.store == nil {
		return ErrNotDurable
	}
	cs, err := d.m.CheckpointState()
	if err != nil {
		return err
	}
	if st := d.store.Stats(); st.HasSnapshot && st.SnapshotSeq == cs.Seq {
		return nil
	}
	return d.store.Checkpoint(persist.Capture(cs, d.params, d.baseFP, true))
}

// PersistStats is a point-in-time view of the durability subsystem.
type PersistStats struct {
	// Durable reports whether the index has a data directory at all; every
	// other field is zero when it does not.
	Durable bool
	// HasSnapshot / SnapshotSeq / SnapshotGeneration / SnapshotAgeSeconds
	// describe the newest on-disk snapshot.
	HasSnapshot        bool
	SnapshotSeq        uint64
	SnapshotGeneration uint64
	SnapshotAgeSeconds float64
	// WALRecords counts mutations logged since that snapshot.
	WALRecords int
	// Checkpoints / CheckpointFailures count snapshot writes; JournalFailures
	// counts WAL appends or checkpoints the lifecycle journal could not
	// complete (non-zero means durability is degraded, serving is not).
	Checkpoints           uint64
	CheckpointFailures    uint64
	JournalFailures       uint64
	LastCheckpointSeconds float64
}

// PersistStats reports durability gauges for health and metrics endpoints.
func (d *DynamicIndex) PersistStats() PersistStats {
	if d.store == nil {
		return PersistStats{}
	}
	st := d.store.Stats()
	ps := PersistStats{
		Durable:               true,
		HasSnapshot:           st.HasSnapshot,
		SnapshotSeq:           st.SnapshotSeq,
		SnapshotGeneration:    st.SnapshotGen,
		WALRecords:            st.WALRecords,
		Checkpoints:           st.Checkpoints,
		CheckpointFailures:    st.CheckpointFailures,
		JournalFailures:       d.m.Stats().JournalFailures,
		LastCheckpointSeconds: st.LastCheckpointDur.Seconds(),
	}
	if st.HasSnapshot {
		ps.SnapshotAgeSeconds = time.Since(st.SnapshotTime).Seconds()
	}
	return ps
}
